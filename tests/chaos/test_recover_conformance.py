"""Conformance under recovery: crashed runs must match the oracle.

With ``--recover`` a scripted worker kill is no longer allowed to
surface as a typed MPI error: the run must detect it, shrink, restore
from partner checkpoints, replay the op-log and still produce the
NumPy oracle's answer under the sweep's ULP policy.
"""

import pytest

from repro.chaos.__main__ import main as chaos_main
from repro.chaos.conformance import (ConformanceFailure, generate_program,
                                     run_sweep)


class TestRecoverSweep:
    def test_small_recover_sweep_is_conformant(self):
        failures = run_sweep(20260806, 6, [2, 3], chaos_mode="crash",
                             timeout=30.0, shrink=False, recover=True)
        assert failures == []

    def test_recover_failure_replay_line_carries_flag(self):
        """A failure recorded under --recover advertises the flag in its
        replay line, so the printed command reproduces the same mode."""
        prog = generate_program(20260806, max_steps=4)
        fail = ConformanceFailure(20260806, 2, "crash", prog,
                                  "synthetic", recover=True)
        assert fail.replay_line().endswith(
            "--nranks 2 --chaos crash --recover")

    def test_crash_without_recover_still_allows_typed_errors(self):
        """The pre-existing contract is unchanged: without --recover a
        crash may produce a typed MPI error (never a wrong answer)."""
        failures = run_sweep(20260806, 4, [2], chaos_mode="crash",
                             timeout=30.0, shrink=False, recover=False)
        assert failures == []


class TestRecoverCli:
    def test_recover_rejects_single_worker(self, capsys):
        with pytest.raises(SystemExit):
            chaos_main(["--recover", "--nranks", "1,2", "--chaos", "crash",
                        "--programs", "1"])
        assert "--recover needs every --nranks >= 2" in \
            capsys.readouterr().err

    def test_recovery_replay_is_deterministic(self, capsys):
        """Two identical --recover runs print byte-identical reports --
        the property the CI replay-determinism job diffs at scale."""
        args = ["--seed", "20260806", "--programs", "2", "--nranks", "2",
                "--chaos", "crash", "--recover", "--timeout", "30"]
        assert chaos_main(args) == 0
        first = capsys.readouterr().out
        assert chaos_main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "RESULT: OK" in first
