"""Trace analysis over injected faults: the analyzer must point at the
fault, not just at its victims.

The synthetic tests use exactly-known schedules (hand-written event
tuples) so the expected attribution is arithmetic, not approximation;
the live test runs a real delayed program end to end.
"""

import numpy as np
import pytest

from repro import chaos, mpi, trace
from repro.chaos import FaultPlan
from repro.trace.analyze import critical_path, report, wait_states


@pytest.fixture(autouse=True)
def clean_state():
    yield
    chaos.uninstall()
    trace.TRACER.disable()
    trace.TRACER.clear()


def _ev(cat, name, rank, ts, dur, **args):
    return ("X", cat, name, rank, ts, dur, args)


class TestSyntheticSchedules:
    def test_late_sender_wait_blames_the_delayed_sender(self):
        """Rank 1's send completes at t=1.0; rank 0 has been blocked in
        recv since t=0.1.  The 0.9 s wait is charged to rank 0 in
        per_rank (who waited) and to rank 1 in by_sender (who caused
        it)."""
        events = [
            _ev("mpi.p2p", "send", 1, 0.9, 0.1, dest=0, seq=1, nbytes=8),
            _ev("mpi.p2p", "recv", 0, 0.1, 0.9, source=1, seq=1, nbytes=8),
        ]
        late = wait_states(events)["late_sender"]
        assert late["count"] == 1
        assert late["total"] == pytest.approx(0.9)
        assert late["per_rank"] == {0: pytest.approx(0.9)}
        assert late["by_sender"] == {1: pytest.approx(0.9)}

    def test_prompt_sender_is_not_blamed(self):
        # the send finished before the recv even started: no wait at all
        events = [
            _ev("mpi.p2p", "send", 1, 0.0, 0.05, dest=0, seq=1, nbytes=8),
            _ev("mpi.p2p", "recv", 0, 0.2, 0.1, source=1, seq=1, nbytes=8),
        ]
        late = wait_states(events)["late_sender"]
        assert late["count"] == 0 and late["by_sender"] == {}

    def test_two_senders_blame_splits_correctly(self):
        events = [
            _ev("mpi.p2p", "send", 1, 0.5, 0.1, dest=0, seq=1, nbytes=8),
            _ev("mpi.p2p", "recv", 0, 0.0, 0.6, source=1, seq=1, nbytes=8),
            _ev("mpi.p2p", "send", 2, 0.8, 0.1, dest=0, seq=1, nbytes=8),
            _ev("mpi.p2p", "recv", 0, 0.7, 0.2, source=2, seq=1, nbytes=8),
        ]
        late = wait_states(events)["late_sender"]
        assert late["by_sender"] == {1: pytest.approx(0.6),
                                     2: pytest.approx(0.2)}

    def test_critical_path_routes_through_injected_delay(self):
        """Rank 1 slept 0.85 s (chaos:delay span), then sent; rank 0
        spent the whole run blocked in the matching recv.  The critical
        path must be recv -> send -> the injected delay."""
        events = [
            _ev("chaos", "delay", 1, 0.0, 0.85, op="send", step=0,
                seconds=0.85),
            _ev("mpi.p2p", "send", 1, 0.85, 0.05, dest=0, seq=1, nbytes=8),
            _ev("mpi.p2p", "recv", 0, 0.0, 0.95, source=1, seq=1, nbytes=8),
        ]
        cp = critical_path(events)
        keys = [key for _rank, key, _start, _dur in cp["segments"]]
        assert keys[0] == "mpi.p2p:recv"
        assert "chaos:delay" in keys
        # the delay dominates the path's contributor table
        top_key, top_time, _n = cp["contributors"][0]
        assert top_key == "mpi.p2p:recv"
        assert ("chaos:delay", pytest.approx(0.85), 1) in cp["contributors"]

    def test_critical_path_skips_uninvolved_fast_rank(self):
        events = [
            _ev("chaos", "delay", 1, 0.0, 0.8, op="send", step=0,
                seconds=0.8),
            _ev("mpi.p2p", "send", 1, 0.8, 0.1, dest=0, seq=1, nbytes=8),
            _ev("mpi.p2p", "recv", 0, 0.0, 0.95, source=1, seq=1, nbytes=8),
            # rank 2 did quick unrelated work early on
            _ev("compute", "local", 2, 0.0, 0.1),
        ]
        cp = critical_path(events)
        ranks_on_path = {rank for rank, _k, _s, _d in cp["segments"]}
        assert ranks_on_path == {0, 1}


class TestLiveInjectedDelay:
    def test_analyzer_attributes_live_injected_delay(self):
        """End-to-end: inject a per-rank send delay, trace the run, and
        check the analyzer (a) blames the delayed rank for the late-sender
        wait and (b) records the chaos span that explains it."""
        trace.TRACER.clear()
        trace.TRACER.enable()
        chaos.install(FaultPlan(seed=13)
                      .delay(seconds=0.05, rank=1, op="send", prob=1.0))

        def body(comm):
            if comm.rank == 1:
                comm.send(np.arange(4.0), dest=0)
            elif comm.rank == 0:
                return comm.recv(source=1)
        mpi.run_spmd(body, 2, timeout=30)
        chaos.uninstall()
        trace.TRACER.disable()

        events = trace.TRACER.events()
        delays = [ev for ev in events
                  if ev[0] == "X" and ev[1] == "chaos" and ev[2] == "delay"]
        assert delays and all(ev[3] == 1 for ev in delays)

        late = wait_states(events)["late_sender"]
        assert late["count"] >= 1
        blamed = max(late["by_sender"], key=late["by_sender"].get)
        assert blamed == 1
        # and the rendered report names the blamed rank
        text = report(events)
        assert "caused by late sends from:" in text

    def test_live_delay_dominates_critical_path(self):
        trace.TRACER.clear()
        trace.TRACER.enable()
        chaos.install(FaultPlan(seed=14)
                      .delay(seconds=0.08, rank=1, op="recv", prob=1.0))

        def body(comm):
            # rank 1's recv is delayed, holding up its reply to rank 0
            if comm.rank == 0:
                comm.send("ping", dest=1)
                return comm.recv(source=1)
            msg = comm.recv(source=0)
            comm.send(msg + "-pong", dest=0)
            return msg
        results = mpi.run_spmd(body, 2, timeout=30)
        chaos.uninstall()
        trace.TRACER.disable()
        assert results[0] == "ping-pong"

        cp = critical_path(trace.TRACER.events())
        keys = [key for _rank, key, _start, _dur in cp["segments"]]
        # the injected recv-side delay sits on the chain that bounded
        # the run: rank 0's final recv <- rank 1's send <- chaos:delay
        assert "chaos:delay" in keys
