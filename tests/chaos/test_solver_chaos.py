"""Solvers under payload corruption must never be silently wrong.

Differential contract: against a statically-known system (dense oracle
via ``numpy.linalg.solve``), a Krylov or Newton solve under injected
truncation may (a) raise a typed MPI error, or (b) report
``converged=False``, or (c) converge to the right answer -- but it must
never certify a wrong one.
"""

import numpy as np
import pytest

from repro import chaos, mpi, solvers, tpetra
from repro.chaos import FaultPlan
from repro.solvers.krylov import SolverResult, _verified
from tests.conftest import spmd

N = 16
_A_DENSE = (np.diag(np.full(N, 2.5))
            + np.diag(np.full(N - 1, -1.0), 1)
            + np.diag(np.full(N - 1, -1.0), -1))
_B = np.arange(1.0, N + 1)
_X_REF = np.linalg.solve(_A_DENSE, _B)


@pytest.fixture(autouse=True)
def clean_engine():
    yield
    chaos.uninstall()


def _tridiag(comm):
    """Distributed copy of the oracle system (SPD tridiagonal)."""
    m = tpetra.Map.create_contiguous(N, comm)
    A = tpetra.CrsMatrix(m)
    for gid in m.my_gids:
        g = int(gid)
        cols, vals = [g], [2.5]
        if g > 0:
            cols.append(g - 1)
            vals.append(-1.0)
        if g < N - 1:
            cols.append(g + 1)
            vals.append(-1.0)
        A.insert_global_values(g, cols, vals)
    A.fillComplete()
    b = tpetra.Vector(m)
    b.local_view[...] = _B[m.my_gids]
    return A, b, m


def _krylov_body(method):
    def body(comm):
        A, b, m = _tridiag(comm)
        r = getattr(solvers, method)(A, b, tol=1e-10, maxiter=200)
        err = float(np.abs(r.x.local_view - _X_REF[m.my_gids]).max())
        return r.converged, err
    return body


def _run_under(plan, body, nranks=2, timeout=30):
    """One faulted solve: ('typed-error', cls) or ('results', [...])."""
    chaos.install(plan)
    try:
        results = spmd(nranks, timeout=timeout)(body)
    except mpi.MPIError as exc:
        return "typed-error", type(exc).__name__
    finally:
        fired = len(chaos.ENGINE.injected())
        chaos.uninstall()
    return "results", (results, fired)


class TestKrylovUnderCorruption:
    @pytest.mark.parametrize("method", ["cg", "gmres"])
    def test_truncation_never_silently_wrong(self, method):
        total_fired = 0
        for seed in range(6):
            plan = FaultPlan(seed=seed).truncate(keep=0.5, prob=0.08)
            kind, detail = _run_under(plan, _krylov_body(method))
            if kind == "typed-error":
                total_fired += 1
                continue
            results, fired = detail
            total_fired += fired
            for converged, err in results:
                if converged:
                    assert err < 1e-6, \
                        f"{method} certified a wrong answer (err={err})"
        assert total_fired > 0, "no fault ever fired: sweep proved nothing"

    @pytest.mark.parametrize("method", ["cg", "gmres", "bicgstab"])
    def test_benign_delay_converges_correctly(self, method):
        plan = (FaultPlan(seed=7)
                .delay(seconds=0.001, prob=0.2)
                .reorder(depth=2, prob=0.2))
        kind, detail = _run_under(plan, _krylov_body(method), nranks=3)
        assert kind == "results"
        for converged, err in detail[0]:
            assert converged and err < 1e-6


class TestTrustButVerify:
    def test_verified_rejects_wrong_answer(self):
        def body(comm):
            A, b, _m = _tridiag(comm)
            x_bad = tpetra.Vector(A.row_map).putScalar(1.0)
            res = _verified(A, x_bad, b, b.norm2(), 5, [1e-12], 1e-10)
            return res.converged, res.message
        converged, message = spmd(1)(body)[0]
        assert not converged
        assert "possible data corruption" in message

    def test_verified_accepts_true_solution(self):
        def body(comm):
            A, b, m = _tridiag(comm)
            x = tpetra.Vector(m)
            x.local_view[...] = _X_REF[m.my_gids]
            res = _verified(A, x, b, b.norm2(), 5, [1e-12], 1e-10)
            return res.converged
        assert spmd(2)(body) == [True, True]

    def test_history_tail_is_true_residual(self):
        """The verified result's last history entry is the recomputed
        true residual, not the recurrence estimate it replaced."""
        def body(comm):
            A, b, _m = _tridiag(comm)
            r = solvers.cg(A, b, tol=1e-10, maxiter=200)
            from repro.solvers.krylov import _residual
            rel = _residual(A, r.x, b).norm2() / b.norm2()
            return r.converged, r.history[-1], rel
        converged, tail, rel = spmd(2)(body)[0]
        assert converged and tail == pytest.approx(rel)


class TestNewtonUnderCorruption:
    def test_jfnk_truncation_never_silently_wrong(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(8, comm)
            targets = m.my_gids + 1.0

            def residual(x):
                r = tpetra.Vector(m)
                r.local_view[...] = x.local_view ** 2 - targets
                return r

            x0 = tpetra.Vector(m).putScalar(2.0)
            result = solvers.NewtonSolver(residual).solve(x0)
            err = float(np.abs(result.x.local_view -
                               np.sqrt(targets)).max())
            return result.converged, err

        total_fired = 0
        for seed in range(4):
            plan = FaultPlan(seed=seed).truncate(keep=0.5, prob=0.1)
            kind, detail = _run_under(plan, body, nranks=3)
            if kind == "typed-error":
                total_fired += 1
                continue
            results, fired = detail
            total_fired += fired
            for converged, err in results:
                if converged:
                    assert err < 1e-6, \
                        f"Newton certified a wrong root (err={err})"
        assert total_fired > 0
