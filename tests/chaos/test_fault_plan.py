"""Fault-plan engine tests: determinism, typed surfacing, MPI legality."""

import numpy as np
import pytest

from repro import chaos, mpi
from repro.chaos import ENGINE, FaultPlan, FaultRule
from repro.chaos.core import _mix, _unit
from repro.mpi.counters import CounterSnapshot


@pytest.fixture(autouse=True)
def clean_engine():
    """No test leaves a plan installed behind it."""
    yield
    chaos.uninstall()


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("explode")

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op class"):
            FaultRule("delay", op="teleport")

    def test_prob_range_checked(self):
        with pytest.raises(ValueError, match="prob"):
            FaultRule("delay", prob=1.5)

    def test_keep_must_drop_bytes(self):
        with pytest.raises(ValueError, match="keep"):
            FaultRule("truncate", keep=1.0)

    def test_matching_is_and_over_set_fields(self):
        rule = FaultRule("delay", op="send", rank=1)
        assert rule.matches("send", 1, 0)
        assert rule.matches("send", 1, None)
        assert not rule.matches("send", 2, 0)
        assert not rule.matches("recv", 1, 0)

    def test_plan_dict_round_trip(self):
        plan = (FaultPlan(seed=99, max_sleep=0.5)
                .delay(seconds=0.01, rank=1, prob=0.3)
                .crash(rank=2, after=10)
                .truncate(keep=0.25)
                .reorder(depth=3))
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 99 and clone.max_sleep == 0.5
        assert [r.to_dict() for r in clone.rules] == \
            [r.to_dict() for r in plan.rules]


class TestDeterminism:
    def test_mix_is_stable_and_salt_free(self):
        # fixed-point values: any change to the mixing constants (or an
        # accidental switch to Python's salted hash()) breaks replay
        assert _mix(0) == _mix(0)
        assert _mix(1, 2, 3) != _mix(3, 2, 1)
        assert 0.0 <= _unit(42, 0, 1, 7) < 1.0
        assert _unit(42, 0, 1, 7) == _unit(42, 0, 1, 7)

    def test_injected_schedule_replays_identically(self):
        """The same plan against the same program fires the same faults
        at the same rank-local steps, run after run."""
        plan_dict = (FaultPlan(seed=21)
                     .delay(seconds=0.0005, prob=0.4)
                     .slowdown(seconds=0.0002, rank=1, prob=0.3)).to_dict()

        def body(comm):
            total = comm.allreduce(comm.rank)
            comm.barrier()
            return total

        schedules = []
        for _run in range(2):
            chaos.install(FaultPlan.from_dict(plan_dict))
            assert mpi.run_spmd(body, 3, timeout=30) == [3, 3, 3]
            schedule = sorted((e["kind"], e["rank"], e["op"], e["step"])
                              for e in ENGINE.injected())
            chaos.uninstall()
            schedules.append(schedule)
        assert schedules[0], "plan with prob=0.4 never fired"
        assert schedules[0] == schedules[1]


class TestFaultKinds:
    def test_crash_raises_typed_and_aborts_peers(self):
        chaos.install(FaultPlan(seed=1).crash(rank=0, after=0))

        def body(comm):
            comm.barrier()
            return comm.rank
        with pytest.raises((mpi.InjectedFault, mpi.AbortError)) as exc_info:
            mpi.run_spmd(body, 3, timeout=30)
        # the log records the scripted crash on the victim
        crashes = [e for e in ENGINE.injected() if e["kind"] == "crash"]
        assert crashes and crashes[0]["rank"] == 0
        assert isinstance(exc_info.value, mpi.MPIError)

    def test_crash_fires_exactly_once(self):
        chaos.install(FaultPlan(seed=1).crash(rank=1, after=1))

        def body(comm):
            fired = 0
            for i in range(5):
                try:
                    comm.send(i, comm.rank)
                    comm.recv(source=comm.rank)
                except mpi.InjectedFault:
                    fired += 1
            return fired
        results = mpi.run_spmd(body, 2, timeout=30)
        assert results[1] == 1 and results[0] == 0
        crashes = [e for e in ENGINE.injected() if e["kind"] == "crash"]
        assert len(crashes) == 1

    def test_pickle_truncation_is_typed(self):
        chaos.install(FaultPlan(seed=2).truncate(keep=0.3, prob=1.0))

        def body(comm):
            if comm.rank == 0:
                comm.send({"data": list(range(100))}, dest=1)
            else:
                return comm.recv(source=0)
        with pytest.raises((mpi.TruncationError, mpi.AbortError)):
            mpi.run_spmd(body, 2, timeout=10)

    def test_buffer_truncation_is_typed(self):
        chaos.install(FaultPlan(seed=3).truncate(keep=0.5, prob=1.0))

        def body(comm):
            out = np.zeros(16)
            comm.Allreduce(np.ones(16), out)
            return out
        with pytest.raises((mpi.TruncationError, mpi.AbortError)):
            mpi.run_spmd(body, 2, timeout=10)

    def test_reorder_never_overtakes_same_stream(self):
        """MPI non-overtaking: messages between one (src, ctx) pair stay
        FIFO even with aggressive reordering injected."""
        chaos.install(FaultPlan(seed=4).reorder(depth=3, prob=1.0))

        def body(comm):
            if comm.rank == 0:
                for i in range(6):
                    comm.send(i, dest=1)
            else:
                return [comm.recv(source=0) for _ in range(6)]
        results = mpi.run_spmd(body, 2, timeout=10)
        assert results[1] == list(range(6))

    def test_delay_preserves_semantics(self):
        chaos.install(FaultPlan(seed=5).delay(seconds=0.001, prob=0.5))

        def body(comm):
            return comm.allreduce(comm.rank + 1)
        assert mpi.run_spmd(body, 4, timeout=30) == [10] * 4

    def test_sleep_capped_by_max_sleep(self):
        chaos.install(FaultPlan(seed=6, max_sleep=0.01)
                      .delay(seconds=60.0, prob=1.0))

        def body(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
            else:
                return comm.recv(source=0)
        import time
        start = time.monotonic()
        assert mpi.run_spmd(body, 2, timeout=30)[1] == "x"
        assert time.monotonic() - start < 5
        delays = [e for e in ENGINE.injected() if e["kind"] == "delay"]
        assert delays and all(e["seconds"] <= 0.01 for e in delays)


class TestDisabledPath:
    def test_no_plan_means_no_effect(self):
        assert not ENGINE.enabled
        assert chaos.active_plan() is None

        def body(comm):
            return comm.allreduce(comm.rank)
        assert mpi.run_spmd(body, 3) == [3, 3, 3]

    def test_install_uninstall_toggles_enabled(self):
        chaos.install(FaultPlan(seed=0))
        assert ENGINE.enabled and chaos.active_plan() is not None
        chaos.uninstall()
        assert not ENGINE.enabled and chaos.active_plan() is None


class TestCrashedRankCounters:
    """Satellite: post-mortem counter reports over a half-dead world."""

    def test_snapshot_minus_none_is_self(self):
        snap = CounterSnapshot(3, 2, 100, 80, {1: 100}, {1: 80})
        delta = snap - None
        assert delta.sends == 3 and delta.bytes_sent == 100
        assert delta.by_peer == {1: 100}

    def test_matrix_tolerates_crashed_rank(self):
        alive = CounterSnapshot(1, 0, 64, 0, {1: 64}, {})
        # rank 1 crashed: its snapshot was never captured
        mat = CounterSnapshot.matrix([alive, None])
        assert mat.shape == (2, 2)
        assert mat[0, 1] == 64          # survivor's send still appears
        assert mat[1, :].sum() == 0     # crashed rank's row is zeros

    def test_matrix_reconciles_receiver_side_for_crashed_sender(self):
        # rank 0 died, but rank 1 counted 32 bytes received from it
        survivor = CounterSnapshot(0, 1, 0, 32, {}, {0: 32})
        mat = CounterSnapshot.matrix([None, survivor])
        assert mat[0, 1] == 32

    def test_live_crash_then_report(self):
        chaos.install(FaultPlan(seed=8).crash(rank=1, after=2))

        def body(comm):
            try:
                for _ in range(10):
                    comm.allreduce(1.0)
            except mpi.MPIError:
                pass
            return comm.counters().snapshot()
        world_snaps = mpi.run_spmd(body, 3, timeout=30)
        world_snaps[1] = None  # crashed rank: counters lost
        mat = CounterSnapshot.matrix(world_snaps, nranks=3)
        assert mat.shape == (3, 3)  # and no KeyError along the way
