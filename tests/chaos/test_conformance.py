"""Property-based differential conformance harness tests."""

import json

import numpy as np
import pytest

from repro import chaos
from repro.chaos import conformance as conf
from repro.chaos.__main__ import main as chaos_main


@pytest.fixture(autouse=True)
def clean_engine():
    yield
    chaos.uninstall()


class TestGenerator:
    def test_same_seed_same_program(self):
        a = conf.generate_program(1234)
        b = conf.generate_program(1234)
        assert a.steps == b.steps

    def test_different_seeds_differ(self):
        assert conf.generate_program(1).steps != \
            conf.generate_program(2).steps

    def test_programs_are_json_round_trippable(self):
        p = conf.generate_program(7, max_steps=12)
        clone = conf.Program.from_dict(json.loads(json.dumps(p.to_dict())))
        assert clone.steps == p.steps and clone.seed == p.seed

    def test_every_program_runs_on_the_oracle(self):
        for seed in range(30):
            conf.run_numpy(conf.generate_program(seed))

    def test_describe_names_every_step(self):
        p = conf.generate_program(3, max_steps=8)
        text = p.describe()
        assert len(text.splitlines()) == len(p.steps)
        assert "<unknown" not in text


class TestComparison:
    def test_ulp_close_accepts_one_float32_ulp(self):
        a = np.float32(9.564284)
        b = float(np.float32(9.5642834))  # neighbouring float32 value
        assert conf._ulp_close(a, b, ulps=4)

    def test_ulp_close_rejects_large_gaps(self):
        assert not conf._ulp_close(np.float32(1.0), 1.01, ulps=64)

    def test_wrong_element_is_always_a_failure(self):
        p = conf.generate_program(11)
        oracle = conf.run_numpy(p)
        subject = [np.array(o, copy=True) if isinstance(o, np.ndarray)
                   else o for o in oracle]
        # corrupt one element of the first array observation
        for i, o in enumerate(subject):
            if isinstance(o, np.ndarray) and o.size and \
                    o.dtype.kind in "if":
                o.reshape(-1)[0] += 1
                break
        detail = conf.compare_observations(p, oracle, subject)
        assert detail is not None and f"step {i}" in detail

    def test_identical_observations_pass(self):
        p = conf.generate_program(12)
        oracle = conf.run_numpy(p)
        assert conf.compare_observations(p, oracle, oracle) is None


class TestDifferential:
    def test_mini_sweep_no_faults(self):
        failures = conf.run_sweep(1234, 4, [1, 2], shrink=False)
        assert failures == []

    def test_mini_sweep_benign_faults_stay_exact(self):
        failures = conf.run_sweep(2024, 2, [2], chaos_mode="benign",
                                  shrink=False)
        assert failures == []

    def test_crash_mode_accepts_typed_errors_only(self):
        # seed chosen so the scripted crash actually fires mid-program
        program = conf.generate_program(1235)
        plan, expect = conf.plan_for_mode("crash", 1235, 3)
        assert expect
        assert conf.check_program(program, 3, plan, expect_errors=True) \
            is None
        detail = conf.check_program(program, 3, plan, expect_errors=False)
        assert detail is not None and detail.startswith("typed MPI error")

    def test_plan_for_mode_never_targets_the_driver(self):
        for mode in ("benign", "delay", "crash", "truncate"):
            for nranks in (1, 2, 3, 4):
                plan, _ = conf.plan_for_mode(mode, 9, nranks)
                for rule in plan.rules:
                    assert rule.rank is None or 1 <= rule.rank <= nranks

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            conf.plan_for_mode("meteor", 0, 2)


class TestShrinker:
    def test_shrinks_to_minimal_failing_program(self):
        program = conf.generate_program(55, max_steps=14)
        assert len(program.steps) > 2

        def fails(cand):
            return any(s[0] == "reduce" for s in cand.steps)

        if not fails(program):
            program.steps.append(["reduce", 0, "sum", None])
        shrunk = conf.shrink_program(program, fails)
        assert fails(shrunk)
        conf.run_numpy(shrunk)  # still a valid program
        # minimal: one source + one reduce (plus at most one dependency)
        assert len(shrunk.steps) <= 3

    def test_shrinker_drops_dependents_transitively(self):
        p = conf.Program(0, [
            ["source", [8], "float64", ["block", 0, 0], 1],
            ["unary", 0, "square"],
            ["binary", 0, 1, "add"],
            ["source", [4], "int64", ["block", 0, 0], 2],
        ])
        cand = conf._drop_step(p, 1)
        # dropping step 1 removes its dependent (step 2) and reindexes
        assert [s[0] for s in cand.steps] == ["source", "source"]
        conf.run_numpy(cand)

    def test_shape_shrink_keeps_program_valid(self):
        p = conf.Program(0, [
            ["source", [20], "float64", ["block", 0, 0], 1],
            ["reduce", 0, "sum", None],
        ])
        cand = conf._shrink_source(p, 0)
        assert cand.steps[0][1] == [10]
        conf.run_numpy(cand)


class TestReplayCLI:
    def test_replay_is_bit_identical(self, capsys):
        argv = ["--seed", "1235", "--programs", "1", "--nranks", "3",
                "--chaos", "crash", "--strict", "--no-shrink"]
        assert chaos_main(argv) == 1
        first = capsys.readouterr().out
        assert chaos_main(argv) == 1
        second = capsys.readouterr().out
        assert first == second
        assert "REPLAY: python -m repro.chaos --seed 1235" in first

    def test_conformant_sweep_exits_zero(self, capsys):
        assert chaos_main(["--seed", "1234", "--programs", "2",
                           "--nranks", "1,2"]) == 0
        assert "RESULT: OK" in capsys.readouterr().out

    def test_repro_artifact_written_on_failure(self, tmp_path, capsys):
        out = tmp_path / "repro.json"
        code = chaos_main(["--seed", "1235", "--programs", "1",
                           "--nranks", "3", "--chaos", "crash",
                           "--strict", "--no-shrink",
                           "--repro-out", str(out)])
        assert code == 1 and out.exists()
        artifact = json.loads(out.read_text())
        assert artifact["seed"] == 1235 and artifact["nranks"] == 3
        # the artifact replays: its program regenerates from its seed
        regen = conf.generate_program(artifact["seed"])
        assert regen.steps == \
            conf.Program.from_dict(artifact["program"]).steps

    def test_bad_nranks_rejected(self, capsys):
        with pytest.raises(SystemExit):
            chaos_main(["--nranks", "zero"])
