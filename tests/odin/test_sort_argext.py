"""Distributed sample sort and argmin/argmax tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import odin


class TestSort:
    def test_matches_numpy(self, odin4):
        xs = np.random.default_rng(0).normal(size=50_000)
        s = odin.sort(odin.array(xs))
        assert np.allclose(s.gather(), np.sort(xs))

    def test_stays_distributed_and_balanced(self, odin4):
        xs = np.random.default_rng(1).uniform(size=40_000)
        s = odin.sort(odin.array(xs))
        counts = s.dist.counts()
        assert sum(counts) == 40_000
        # sample splitters keep the blocks within ~2x of ideal
        assert max(counts) < 2.5 * (40_000 / 4)

    def test_data_plane_only(self, odin4):
        xs = np.random.default_rng(2).normal(size=80_000)
        x = odin.array(xs)
        ctx = odin.get_context()
        ctx.reset_counters()
        _s = odin.sort(x)
        _cm, cb = ctx.control_traffic()
        assert cb < 4_000          # only opcodes + counts through driver

    def test_duplicates(self, odin4):
        xs = np.random.default_rng(3).integers(0, 3, size=9_000) \
            .astype(float)
        s = odin.sort(odin.array(xs))
        assert np.allclose(s.gather(), np.sort(xs))

    def test_cyclic_input(self, odin4):
        xs = np.random.default_rng(4).normal(size=3_000)
        s = odin.sort(odin.array(xs, dist="cyclic"))
        assert np.allclose(s.gather(), np.sort(xs))

    @given(n=st.integers(1, 500), seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_property(self, odin4, n, seed):
        xs = np.random.default_rng(seed).normal(size=n)
        s = odin.sort(odin.array(xs))
        assert np.allclose(s.gather(), np.sort(xs))

    def test_2d_rejected(self, odin4):
        with pytest.raises(ValueError):
            odin.sort(odin.ones((3, 3)))

    def test_result_composes(self, odin4):
        xs = np.random.default_rng(5).normal(size=1000)
        s = odin.sort(odin.array(xs))
        assert s[0] == pytest.approx(xs.min())
        assert s[999] == pytest.approx(xs.max())
        assert (s[1:] - s[:-1]).min() >= 0  # nondecreasing differences


class TestArgExtremes:
    def test_matches_numpy(self, odin4):
        xs = np.random.default_rng(6).normal(size=7_777)
        x = odin.array(xs)
        assert odin.argmin(x) == int(np.argmin(xs))
        assert odin.argmax(x) == int(np.argmax(xs))

    def test_extreme_on_each_worker(self, odin4):
        n = 100
        for pos in (0, 30, 60, 99):
            xs = np.zeros(n)
            xs[pos] = -5.0
            assert odin.argmin(odin.array(xs)) == pos
            xs[pos] = 5.0
            assert odin.argmax(odin.array(xs)) == pos

    def test_tie_breaks_to_lowest_index(self, odin4):
        xs = np.zeros(80)
        xs[10] = xs[70] = 9.0
        assert odin.argmax(odin.array(xs)) == 10

    def test_cyclic_distribution(self, odin4):
        xs = np.random.default_rng(7).normal(size=901)
        x = odin.array(xs, dist="cyclic")
        assert odin.argmin(x) == int(np.argmin(xs))

    def test_2d_rejected(self, odin4):
        with pytest.raises(ValueError):
            odin.argmin(odin.ones((2, 2)))

    @given(n=st.integers(1, 400), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_property(self, odin4, n, seed):
        xs = np.random.default_rng(seed).normal(size=n)
        x = odin.array(xs)
        assert xs[odin.argmin(x)] == xs.min()
        assert xs[odin.argmax(x)] == xs.max()
