"""Worker-side communication-plan cache (PR 4).

Redistribution and slicing compute their intersection/index math once per
``(src dist, dst dist, dtype)`` key and replay precomputed schedules on
every later call.  These tests pin down correctness under cache hits,
key discrimination across dtype/distribution changes, the LRU eviction
bound, and the driver-visible statistics API.
"""

import numpy as np
import pytest

from repro import odin
from repro.odin import opcodes
from repro.odin.context import OdinContext
from repro.odin.distribution import (ArbitraryDistribution,
                                     BlockCyclicDistribution,
                                     BlockDistribution, ConcatDistribution,
                                     CyclicDistribution, GridDistribution)


@pytest.fixture
def ctx():
    with OdinContext(4) as c:
        yield c


def _stats(ctx):
    return ctx.plan_cache_stats()


class TestCacheKeys:
    def test_equal_distributions_share_a_key(self):
        a = BlockDistribution((100,), 0, 4)
        b = BlockDistribution((100,), 0, 4)
        assert a.cache_key() == b.cache_key()

    def test_keys_discriminate_shape_axis_scheme(self):
        base = BlockDistribution((100,), 0, 4)
        assert base.cache_key() != BlockDistribution((101,), 0, 4).cache_key()
        assert base.cache_key() != CyclicDistribution((100,), 0,
                                                      4).cache_key()
        two_d = BlockDistribution((10, 10), 0, 4)
        assert two_d.cache_key() != \
            BlockDistribution((10, 10), 1, 4).cache_key()
        bc2 = BlockCyclicDistribution((100,), 0, 4, block_size=2)
        bc3 = BlockCyclicDistribution((100,), 0, 4, block_size=3)
        assert bc2.cache_key() != bc3.cache_key()

    def test_arbitrary_key_hashes_index_lists(self):
        lists_a = [np.array([0, 1]), np.array([2, 3])]
        lists_b = [np.array([0, 2]), np.array([1, 3])]
        da = ArbitraryDistribution((4,), 0, lists_a)
        db = ArbitraryDistribution((4,), 0, lists_b)
        same = ArbitraryDistribution((4,), 0,
                                     [np.array([0, 1]), np.array([2, 3])])
        assert da.cache_key() != db.cache_key()
        assert da.cache_key() == same.cache_key()

    def test_grid_and_concat_keys(self):
        g = GridDistribution((8, 8), (0, 1), (2, 2))
        assert g.cache_key() == \
            GridDistribution((8, 8), (0, 1), (2, 2)).cache_key()
        parts = [BlockDistribution((4,), 0, 2), BlockDistribution((6,), 0, 2)]
        c = ConcatDistribution(parts, 0)
        assert c.cache_key() is not None
        assert c.cache_key() != ConcatDistribution(
            [BlockDistribution((6,), 0, 2), BlockDistribution((4,), 0, 2)],
            0).cache_key()


class TestCachedRedistribution:
    def test_repeated_redistribution_hits_and_stays_correct(self, ctx):
        data = np.arange(4000.0)
        x = odin.array(data, ctx=ctx)
        cyc = CyclicDistribution((4000,), 0, 4)
        for _ in range(5):
            y = x.redistribute(cyc)
            assert np.array_equal(y.gather(), data)
        stats = _stats(ctx)
        # 4 workers miss once each; every later call hits
        assert stats["hits"] > 0
        assert stats["hit_rate"] > 0.5

    def test_hit_rate_exceeds_90_percent_on_repeats(self, ctx):
        data = np.arange(2000.0)
        x = odin.array(data, ctx=ctx)
        cyc = CyclicDistribution((2000,), 0, 4)
        blk = BlockDistribution((2000,), 0, 4)
        for _ in range(25):
            y = x.redistribute(cyc)
            x = y.redistribute(blk)
        assert np.array_equal(x.gather(), data)
        assert _stats(ctx)["hit_rate"] > 0.9

    def test_dtype_change_misses_but_stays_correct(self, ctx):
        cyc = CyclicDistribution((1000,), 0, 4)
        f64 = odin.array(np.arange(1000.0), ctx=ctx)
        i64 = odin.array(np.arange(1000), ctx=ctx)
        assert np.array_equal(f64.redistribute(cyc).gather(),
                              np.arange(1000.0))
        s_mid = _stats(ctx)
        assert np.array_equal(i64.redistribute(cyc).gather(),
                              np.arange(1000))
        s_end = _stats(ctx)
        # the int64 redistribution keyed differently: fresh misses
        assert s_end["misses"] > s_mid["misses"]

    def test_distribution_change_misses_but_stays_correct(self, ctx):
        data = np.arange(1200.0)
        x = odin.array(data, ctx=ctx)
        for target in (CyclicDistribution((1200,), 0, 4),
                       BlockCyclicDistribution((1200,), 0, 4, block_size=8),
                       BlockDistribution((1200,), 0, 4,
                                         counts=[600, 300, 200, 100])):
            assert np.array_equal(x.redistribute(target).gather(), data)
        stats = _stats(ctx)
        assert stats["misses"] >= 3 * 4  # three distinct keys, 4 workers

    def test_grid_redistribution_cached(self, ctx):
        data = np.random.default_rng(7).normal(size=(16, 12))
        g = odin.array(data, ctx=ctx, dist="grid", axes=(0, 1), grid=(2, 2))
        blk = BlockDistribution((16, 12), 0, 4)
        for _ in range(3):
            assert np.allclose(g.redistribute(blk).gather(), data)
        assert _stats(ctx)["hits"] > 0

    def test_sliced_views_cached(self, ctx):
        data = np.arange(3000.0)
        x = odin.array(data, ctx=ctx)
        for _ in range(4):
            y = x[100:2900:3]
            assert np.array_equal(y.gather(), data[100:2900:3])
        assert _stats(ctx)["hits"] > 0


class TestEvictionBound:
    def test_cache_size_is_bounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_ODIN_PLAN_CACHE", "4")
        with OdinContext(2) as ctx:
            data = np.arange(600.0)
            x = odin.array(data, ctx=ctx)
            # 8 distinct keys through a 4-entry cache
            targets = [
                BlockCyclicDistribution((600,), 0, 2, block_size=b)
                for b in (1, 2, 3, 4, 5, 6, 7, 8)
            ]
            for t in targets:
                assert np.array_equal(x.redistribute(t).gather(), data)
            stats = ctx.plan_cache_stats()
            assert stats["cached_plans"] <= 4 * 2  # cap x workers
            # re-running the oldest key misses again (it was evicted)
            before = stats["misses"]
            assert np.array_equal(
                x.redistribute(targets[0]).gather(), data)
            assert ctx.plan_cache_stats()["misses"] > before

    def test_plan_stats_opcode_roundtrip(self):
        with OdinContext(2) as ctx:
            raw = ctx.run(opcodes.PLAN_STATS)
            assert len(raw) == 2
            for hits, misses, cached in raw:
                assert hits == 0 and misses == 0 and cached == 0
