"""Distributed histogram/bincount tests."""

import numpy as np
import pytest

from repro import odin


class TestHistogram:
    def test_matches_numpy(self, odin4):
        xs = np.random.default_rng(0).normal(size=5000)
        x = odin.array(xs)
        counts, edges = odin.histogram(x, bins=25)
        ref_c, ref_e = np.histogram(xs, bins=25,
                                    range=(xs.min(), xs.max()))
        assert np.array_equal(counts, ref_c)
        assert np.allclose(edges, ref_e)

    def test_explicit_range(self, odin4):
        xs = np.linspace(-5, 5, 1000)
        x = odin.array(xs)
        counts, edges = odin.histogram(x, bins=10, range=(-2, 2))
        ref_c, _ = np.histogram(xs, bins=10, range=(-2, 2))
        assert np.array_equal(counts, ref_c)
        assert edges[0] == -2 and edges[-1] == 2

    def test_total_count_conserved(self, odin4):
        xs = np.random.default_rng(1).normal(size=3000)
        x = odin.array(xs)
        counts, _ = odin.histogram(x, bins=7)
        assert counts.sum() == 3000

    def test_cyclic_distribution(self, odin4):
        xs = np.random.default_rng(2).uniform(size=777)
        x = odin.array(xs, dist="cyclic")
        counts, _ = odin.histogram(x, bins=5, range=(0, 1))
        ref_c, _ = np.histogram(xs, bins=5, range=(0, 1))
        assert np.array_equal(counts, ref_c)


class TestBincount:
    def test_matches_numpy(self, odin4):
        data = np.random.default_rng(3).integers(0, 20, size=4000)
        d = odin.array(data)
        assert np.array_equal(odin.bincount(d), np.bincount(data))

    def test_minlength(self, odin4):
        d = odin.array(np.zeros(10, dtype=np.int64))
        got = odin.bincount(d, minlength=5)
        assert got.tolist() == [10, 0, 0, 0, 0]

    def test_float_rejected(self, odin4):
        with pytest.raises(TypeError):
            odin.bincount(odin.ones(5))
