"""ODIN fault recovery: partner checkpoints, op-log replay, shrink.

Faults are injected by raising :class:`InjectedFault` inside an
``@odin.local`` function on a chosen worker -- the same mechanism the
chaos harness uses.  Each test owns its context (the default fixture
pool must not be cross-contaminated by shrinks).
"""

import numpy as np
import pytest

from repro import odin
from repro.metrics import REGISTRY as _MX
from repro.mpi.errors import InjectedFault


def _killer(name, victim_windex, killed):
    """An ``@odin.local`` identity fn that kills one worker, once."""
    @odin.local
    def boom(a):
        if not killed and odin.worker_index() == victim_windex:
            killed.append(victim_windex)
            raise InjectedFault(victim_windex + 1, 0, name)
        return a * 1.0
    return boom


class TestCheckpointReplay:
    def test_crash_after_checkpoint_restores_and_replays(self):
        """Checkpoint, then more ops, then a crash: state restores from
        the partner copies and the post-checkpoint ops replay."""
        ctx = odin.init(3, recover=True)
        try:
            src = np.arange(30.0)
            x = odin.array(src)
            y = x * 2.0
            nbytes = ctx.checkpoint()
            assert nbytes > 0
            z = y + 1.0                     # logged after the checkpoint
            killed = []
            w = _killer("post-ckpt crash", 1, killed)(z)
            assert ctx.nworkers == 2
            expect = src * 2.0 + 1.0
            assert np.array_equal(np.asarray(z), expect)
            assert np.array_equal(np.asarray(w), expect)
            # post-recovery liveness: fresh ops on the shrunk pool
            assert float(odin.sum(z)) == float(expect.sum())
        finally:
            odin.shutdown()

    def test_crash_without_checkpoint_replays_full_log(self):
        """No explicit checkpoint: version 0 is the empty baseline and
        the whole op-log (including the scatter) replays."""
        ctx = odin.init(4, recover=True)
        try:
            src = np.linspace(0.0, 1.0, 101)
            x = odin.array(src)
            y = odin.sin(x) + x * 3.0
            killed = []
            _killer("empty-baseline crash", 2, killed)(y)
            assert ctx.nworkers == 3
            expect = np.sin(src) + src * 3.0
            # replay is deterministic re-execution: bit-identical
            assert np.array_equal(np.asarray(y), expect)
        finally:
            odin.shutdown()

    def test_successive_crashes_shrink_to_one(self):
        """Two crashes in a row: checkpoint generation bookkeeping must
        compose across shrinks (3 -> 2 -> 1 workers)."""
        ctx = odin.init(3, recover=True)
        try:
            src = np.arange(24.0)
            z = odin.array(src) * 2.0 + 1.0
            expect = src * 2.0 + 1.0
            killed = []
            _killer("first", 1, killed)(z)
            assert ctx.nworkers == 2
            killed.clear()
            _killer("second", 1, killed)(z)
            assert ctx.nworkers == 1
            assert np.array_equal(np.asarray(z), expect)
        finally:
            odin.shutdown()

    def test_auto_checkpoint_every_n_ops(self):
        ctx = odin.init(3, recover=True, ckpt_every=2)
        try:
            a = odin.array(np.arange(12.0))
            d = ((a + 1.0) * 2.0) - 3.0     # enough logged ops to trigger
            assert ctx._ckpt_version >= 1
            killed = []
            _killer("after auto ckpt", 0, killed)(d)
            assert ctx.nworkers == 2
            assert np.array_equal(np.asarray(d),
                                  (np.arange(12.0) + 1.0) * 2.0 - 3.0)
        finally:
            odin.shutdown()

    def test_env_vars_enable_recovery_and_auto_checkpoint(self, monkeypatch):
        monkeypatch.setenv("REPRO_ODIN_RECOVER", "1")
        monkeypatch.setenv("REPRO_ODIN_CKPT", "2")
        ctx = odin.init(2)
        try:
            assert ctx._recover and ctx._ckpt_every == 2
        finally:
            odin.shutdown()

    def test_checkpoint_requires_recovery_mode(self):
        ctx = odin.init(2)
        try:
            with pytest.raises(RuntimeError, match="recover"):
                ctx.checkpoint()
        finally:
            odin.shutdown()

    def test_recovery_metrics_and_trace(self):
        """Detections, shrinks, replayed ops and checkpoint bytes are
        visible through repro.metrics."""
        _MX.clear()
        _MX.enable()
        try:
            ctx = odin.init(3, recover=True)
            z = odin.array(np.arange(10.0)) + 5.0
            ctx.checkpoint()
            z = z * 1.0        # logged after the checkpoint -> replayed
            killed = []
            _killer("metrics crash", 1, killed)(z)
            assert np.array_equal(np.asarray(z), np.arange(10.0) + 5.0)
            odin.shutdown()

            def total(name):
                return sum(m.value for m in _MX.metrics()
                           if m.name == name and hasattr(m, "value"))

            assert total("recover.detections") >= 1
            assert total("recover.shrinks") >= 1
            assert total("recover.replayed_ops") >= 1
            assert total("recover.checkpoints") >= 1
            assert total("recover.ckpt_total_bytes") > 0
        finally:
            _MX.disable()
            _MX.clear()


class TestShutdownWithDeadWorkers:
    """Satellite: teardown must never raise once workers are gone."""

    def test_shutdown_after_abort_does_not_raise(self):
        """Without recovery an injected fault aborts the pool; the
        driver already saw the AbortError -- shutdown() swallows it."""
        ctx = odin.init(2)
        e = odin.array(np.arange(6.0))
        killed = []
        with pytest.raises(Exception):
            _killer("die during op", 1, killed)(e)
        odin.shutdown()   # must not raise

    def test_del_after_shutdown_does_not_raise(self):
        ctx = odin.init(2)
        e = odin.array(np.arange(6.0))
        odin.shutdown()
        del e             # __del__ on a dead context: silent

    def test_shutdown_idempotent_after_recovery(self):
        ctx = odin.init(2, recover=True)
        z = odin.array(np.arange(8.0)) * 3.0
        killed = []
        _killer("crash then close", 0, killed)(z)
        assert ctx.nworkers == 1
        odin.shutdown()
        odin.shutdown()   # second call: no-op, no raise
