"""Property-based redistribution invariants over random distribution pairs.

For any pair of distributions (including grids), redistribute must
preserve every element: gather(redistribute(x)) == gather(x), and a
round trip restores the exact layout.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import odin
from repro.odin.distribution import (BlockCyclicDistribution,
                                     BlockDistribution, CyclicDistribution,
                                     GridDistribution)

W = 4  # matches the odin4 fixture


def _dist_strategy(shape):
    """Random distribution of a 2-D shape over W workers."""
    single_axis = st.sampled_from([0, 1]).flatmap(
        lambda ax: st.one_of(
            st.just(BlockDistribution(shape, ax, W)),
            st.just(CyclicDistribution(shape, ax, W)),
            st.integers(1, 4).map(
                lambda b: BlockCyclicDistribution(shape, ax, W,
                                                  block_size=b)),
        ))
    grid = st.sampled_from([(2, 2), (4, 1), (1, 4)]).map(
        lambda g: GridDistribution(shape, (0, 1), g))
    return st.one_of(single_axis, grid)


class TestRedistributeProperty:
    @given(data=st.data(), rows=st.integers(2, 24),
           cols=st.integers(2, 12), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_any_pair_preserves_elements(self, odin4, data, rows, cols,
                                         seed):
        shape = (rows, cols)
        src = data.draw(_dist_strategy(shape))
        dst = data.draw(_dist_strategy(shape))
        values = np.random.default_rng(seed).normal(size=shape)
        x = odin.array(values, dist=src)
        y = x.redistribute(dst)
        assert np.allclose(y.gather(), values)
        # round trip restores the original layout exactly
        z = y.redistribute(src)
        assert np.allclose(z.gather(), values)
        assert z.dist.same_as(src)

    @given(data=st.data(), n=st.integers(2, 100), seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_1d_pairs(self, odin4, data, n, seed):
        shape = (n,)
        dists = st.one_of(
            st.just(BlockDistribution(shape, 0, W)),
            st.just(CyclicDistribution(shape, 0, W)),
            st.integers(1, 5).map(
                lambda b: BlockCyclicDistribution(shape, 0, W,
                                                  block_size=b)))
        src = data.draw(dists)
        dst = data.draw(dists)
        values = np.random.default_rng(seed).normal(size=n)
        x = odin.array(values, dist=src)
        assert np.allclose(x.redistribute(dst).gather(), values)

    @given(rows=st.integers(4, 20), cols=st.integers(4, 20),
           seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_cost_model_zero_iff_same(self, odin4, rows, cols, seed):
        shape = (rows, cols)
        a = BlockDistribution(shape, 0, W)
        b = CyclicDistribution(shape, 0, W)
        assert odin.redistribution_cost(a, a) == 0
        cost_ab = odin.redistribution_cost(a, b)
        # moving and moving back costs the same volume
        assert cost_ab == odin.redistribution_cost(b, a)
