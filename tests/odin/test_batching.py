"""Control-plane batching semantics (PR 4).

Fire-and-forget ops collapse N bcast+gather round trips into N bcast +
one gather; worker errors from a batched epoch are delivered -- original
type preserved, originating op named -- at the next synchronizing op or
explicit flush().
"""

import numpy as np
import pytest

from repro import odin
from repro.odin import opcodes
from repro.odin.context import ASYNC_OPCODES, OdinContext
from repro.odin.creation import _create


@pytest.fixture
def ctx():
    with OdinContext(3) as c:
        yield c


class TestBatchedResults:
    def test_create_store_gather_roundtrip(self, ctx):
        x = odin.zeros(99, ctx=ctx)
        y = odin.sin(x) + 1.0
        assert np.allclose(y.gather(), np.ones(99))

    def test_batch_off_matches_batch_on(self):
        results = {}
        for batch in (True, False):
            with OdinContext(3, batch=batch) as ctx:
                x = odin.arange(500, ctx=ctx, dtype=np.float64)
                y = x.redistribute(
                    odin.CyclicDistribution((500,), 0, 3))
                z = odin.sqrt(y * y)
                results[batch] = z.gather()
        assert np.array_equal(results[True], results[False])

    def test_scatter_is_acknowledged_lazily(self, ctx):
        data = np.random.default_rng(0).normal(size=(40, 5))
        x = odin.array(data, ctx=ctx)
        assert np.allclose(x.gather(), data)

    def test_flush_is_idempotent(self, ctx):
        odin.zeros(10, ctx=ctx)
        ctx.flush()
        ctx.flush()


class TestDeferredErrors:
    def test_error_surfaces_at_next_sync_with_op_named(self, ctx):
        dist = odin.GridDistribution((10, 10), (0, 1), (1, 3))
        with pytest.raises(ValueError) as excinfo:
            # index-dependent fill on a 2-D grid fails on the workers;
            # the CREATE is fire-and-forget so the error is deferred
            _create(ctx, dist, np.float64, ("arange", 0.0, 1.0))
            ctx.flush()
        notes = getattr(excinfo.value, "__notes__", [])
        assert any(opcodes.CREATE in n for n in notes)

    def test_error_type_is_preserved(self, ctx):
        with pytest.raises(KeyError):
            ctx.run(opcodes.UFUNC, "negative",
                    (("array", 424242),), ctx.new_array_id())
            ctx.flush()

    def test_earliest_deferred_error_wins(self, ctx):
        bad_ufunc_in = (("array", 555555),)
        with pytest.raises(KeyError, match="555555"):
            ctx.run(opcodes.UFUNC, "negative", bad_ufunc_in,
                    ctx.new_array_id())
            ctx.run(opcodes.UFUNC, "negative", (("array", 666666),),
                    ctx.new_array_id())
            ctx.flush()

    def test_epoch_clears_after_delivery(self, ctx):
        with pytest.raises(KeyError):
            ctx.run(opcodes.UFUNC, "negative", (("array", 777777),),
                    ctx.new_array_id())
            ctx.flush()
        # the failed epoch is drained: later work is unaffected
        x = odin.ones(30, ctx=ctx)
        assert x.gather().sum() == 30.0

    def test_shutdown_delivers_trailing_deferred_errors(self):
        ctx = OdinContext(2)
        ctx.run(opcodes.UFUNC, "negative", (("array", 888888),),
                ctx.new_array_id())
        with pytest.raises(KeyError):
            ctx.shutdown()
        assert not ctx._alive

    def test_sync_op_error_still_raises_immediately(self, ctx):
        with pytest.raises(KeyError):
            ctx.gather(131313)  # GATHER synchronizes: no deferral


class TestBatchPolicy:
    def test_result_bearing_opcodes_are_not_async(self):
        for code in (opcodes.GATHER, opcodes.FETCH, opcodes.REDUCE,
                     opcodes.CALL_LOCAL, opcodes.TRANSFORM,
                     opcodes.GROUPBY, opcodes.SAVE, opcodes.LOAD,
                     opcodes.PLAN_STATS):
            assert code not in ASYNC_OPCODES

    def test_env_var_disables_batching(self, monkeypatch):
        monkeypatch.setenv("REPRO_ODIN_BATCH", "0")
        with OdinContext(2) as ctx:
            assert ctx._batch is False
            x = odin.zeros(8, ctx=ctx)
            assert x.gather().sum() == 0.0

    def test_epoch_cap_auto_flushes(self):
        import repro.odin.context as context_mod
        orig = context_mod._EPOCH_CAP
        context_mod._EPOCH_CAP = 8
        try:
            with OdinContext(2) as ctx:
                for _ in range(20):
                    odin.zeros(4, ctx=ctx)
                assert ctx._epoch_len < 8
        finally:
            context_mod._EPOCH_CAP = orig

    def test_pending_deletes_ride_the_epoch(self, ctx):
        x = odin.zeros(64, ctx=ctx)
        array_id = x.array_id
        del x
        # the queued delete joins the next op's epoch (one broadcast, no
        # extra gather); the id must be gone on the workers afterwards
        odin.zeros(8, ctx=ctx)
        ctx.flush()
        with pytest.raises(KeyError):
            ctx.gather(array_id)
