"""Local-mode (@odin.local) and context lifecycle tests."""

import numpy as np
import pytest

from repro import odin
from repro.odin.context import OdinContext


@odin.local
def _hypot(x, y):
    return np.sqrt(x ** 2 + y ** 2)


@odin.local
def _scaled(x, factor=2.0):
    return x * factor


@odin.local
def _stats(x):
    return float(x.sum())


@odin.local
def _neighbor_sum(x):
    """Uses the worker communicator directly (Fig. 1 peer traffic)."""
    comm = odin.worker_comm()
    total = comm.allreduce(float(x.sum()))
    return np.full_like(x, total)


class TestLocalFunctions:
    def test_paper_hypot(self, odin4):
        x = odin.random((300, 4), seed=1)
        y = odin.random((300, 4), seed=2)
        h = _hypot(x, y)
        assert isinstance(h, odin.DistArray)
        assert np.allclose(h.gather(),
                           np.hypot(x.gather(), y.gather()))

    def test_kwargs_and_scalars(self, odin4):
        x = odin.ones(20)
        out = _scaled(x, factor=5.0)
        assert np.allclose(out.gather(), 5.0)

    def test_non_array_returns_collected(self, odin4):
        x = odin.ones(40)
        sums = _stats(x)
        assert isinstance(sums, list) and len(sums) == 4
        assert sum(sums) == pytest.approx(40.0)

    def test_worker_comm_collective_inside_local(self, odin4):
        x = odin.arange(16, dtype=np.float64)
        out = _neighbor_sum(x)
        assert np.allclose(out.gather(), np.arange(16.0).sum())

    def test_worker_index_available(self, odin4):
        @odin.local
        def who(x):
            return {"w": odin.worker_index()}
        infos = who(odin.ones(8))
        assert [i["w"] for i in infos] == [0, 1, 2, 3]

    def test_worker_comm_outside_worker_raises(self, odin4):
        with pytest.raises(RuntimeError):
            odin.worker_comm()
        with pytest.raises(RuntimeError):
            odin.worker_index()

    def test_local_call_serial_escape_hatch(self, odin4):
        assert np.allclose(_hypot.local_call(np.array([3.0]),
                                             np.array([4.0])), 5.0)

    def test_exception_in_local_fn_propagates(self, odin4):
        @odin.local
        def broken(x):
            raise ValueError("worker-side failure")
        with pytest.raises(ValueError, match="worker-side failure"):
            broken(odin.ones(4))

    def test_registered_name(self, odin4):
        @odin.local(name="custom.name")
        def fn(x):
            return x
        assert odin.local_registry["custom.name"] is fn.fn


class TestContextLifecycle:
    def test_explicit_context(self):
        ctx = OdinContext(2)
        try:
            a = odin.arange(10, ctx=ctx)
            assert a.dist.nworkers == 2
            assert np.array_equal(a.gather(), np.arange(10))
        finally:
            ctx.shutdown()

    def test_context_manager(self):
        with OdinContext(3) as ctx:
            a = odin.ones(9, ctx=ctx)
            assert a.sum() == 9.0

    def test_shutdown_blocks_further_use(self):
        ctx = OdinContext(2)
        a = odin.ones(4, ctx=ctx)
        ctx.shutdown()
        with pytest.raises(RuntimeError):
            ctx.gather(a.array_id)

    def test_double_shutdown_ok(self):
        ctx = OdinContext(2)
        ctx.shutdown()
        ctx.shutdown()

    def test_single_worker(self):
        with OdinContext(1) as ctx:
            x = odin.linspace(0, 1, 10, ctx=ctx)
            assert np.allclose(x.gather(), np.linspace(0, 1, 10))

    def test_garbage_collected_arrays_freed(self):
        with OdinContext(2) as ctx:
            ids = []
            for _ in range(5):
                tmp = odin.zeros(100, ctx=ctx)
                ids.append(tmp.array_id)
                del tmp
            # the next op drains the pending-delete queue
            keeper = odin.ones(4, ctx=ctx)
            keeper.gather()
            assert ctx._pending_deletes == []
            # the dead ids are really gone from the worker tables
            for dead in ids:
                with pytest.raises(KeyError):
                    ctx.gather(dead)

    def test_worker_error_does_not_kill_context(self, odin4):
        @odin.local
        def sometimes_bad(x):
            raise KeyError("nope")
        with pytest.raises(KeyError):
            sometimes_bad(odin.ones(4))
        # context still functional afterwards
        assert odin.ones(8).sum() == 8.0

    def test_traffic_accessors(self, odin4):
        ctx = odin.get_context()
        ctx.reset_counters()
        _x = odin.zeros(1000)
        msgs, nbytes = ctx.control_traffic()
        assert msgs >= 1
        # a create is control-only: few hundred bytes regardless of the
        # megabyte-scale payload it allocates
        assert nbytes < 4096
