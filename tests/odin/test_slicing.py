"""Distributed slicing tests (paper section III-G machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import odin


class TestBasicSlices:
    def test_simple_ranges(self, odin4):
        x = odin.arange(40, dtype=np.float64)
        xs = np.arange(40.0)
        for sl in (slice(1, None), slice(None, -1), slice(5, 30),
                   slice(None, None, 2), slice(3, 33, 5),
                   slice(None, None, -1), slice(30, 5, -3)):
            got = x[sl].gather()
            assert np.allclose(got, xs[sl]), sl

    def test_shifted_difference(self, odin4):
        """The paper's dy = y[1:] - y[:-1]."""
        y = odin.linspace(0, 1, 500) ** 2
        ys = np.linspace(0, 1, 500) ** 2
        dy = y[1:] - y[:-1]
        assert np.allclose(dy.gather(), ys[1:] - ys[:-1])

    def test_result_rebalanced(self, odin4):
        x = odin.arange(41, dtype=np.float64)
        s = x[1:]
        # 40 elements over 4 workers: balanced block again
        assert s.dist.counts() == [10, 10, 10, 10]

    def test_2d_slice_both_axes(self, odin4):
        data = np.arange(60.0).reshape(12, 5)
        x = odin.array(data)
        got = x[2:10, 1:4].gather()
        assert np.allclose(got, data[2:10, 1:4])

    def test_integer_index_on_local_axis_squeezes(self, odin4):
        data = np.arange(60.0).reshape(12, 5)
        x = odin.array(data)
        col = x[:, 2]
        assert col.shape == (12,)
        assert np.allclose(col.gather(), data[:, 2])

    def test_integer_on_distributed_axis_of_2d_rejected(self, odin4):
        x = odin.zeros((8, 3))
        with pytest.raises(NotImplementedError):
            x[2]

    def test_empty_slice(self, odin4):
        x = odin.arange(10, dtype=np.float64)
        assert x[5:5].shape == (0,)

    def test_slice_of_cyclic_array(self, odin4):
        x = odin.arange(30, dist="cyclic", dtype=np.float64)
        got = x[4:25:3].gather()
        assert np.allclose(got, np.arange(30.0)[4:25:3])

    @given(start=st.integers(-45, 45),
           stop=st.integers(-45, 45) | st.none(),
           step=st.integers(-5, 5).filter(lambda s: s != 0))
    @settings(max_examples=30, deadline=None)
    def test_slice_property(self, odin4, start, stop, step):
        xs = np.arange(41.0)
        x = odin.array(xs)
        sl = slice(start, stop, step)
        assert np.allclose(x[sl].gather(), xs[sl])


class TestHaloTraffic:
    def test_shift_by_one_moves_boundary_only(self, odin4):
        """A unit shift should move O(P) elements, not O(N)."""
        n = 4000
        y = odin.arange(n, dtype=np.float64)
        ctx = odin.get_context()
        ctx.reset_counters()
        _dy = y[1:] - y[:-1]
        _msgs, nbytes = ctx.worker_traffic()
        # boundary exchange: a handful of elements per worker boundary,
        # far below the 32 KB payload
        assert nbytes < 8 * n / 4
