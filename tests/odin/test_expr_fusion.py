"""Lazy expressions and loop fusion tests."""

import numpy as np
import pytest

from repro import odin
from repro.odin.expr import LazyExpr


class TestLazyGraphs:
    def test_lazy_defers_execution(self, odin4):
        a = odin.ones(20)
        ctx = odin.get_context()
        ctx.reset_counters()
        with odin.lazy():
            expr = a * 2 + 1
        # nothing ran yet: no control messages for the arithmetic
        msgs, _bytes = ctx.control_traffic()
        assert msgs == 0
        assert isinstance(expr, LazyExpr)
        assert expr.num_ops() == 2

    def test_evaluate_matches_eager(self, odin4):
        u = odin.random(200, seed=10)
        v = odin.random(200, seed=11)
        with odin.lazy():
            expr = odin.sqrt(u * u + v * v) * 2.0 - 1.0
        fused = odin.evaluate(expr, use_seamless=False).gather()
        eager = (odin.sqrt(u * u + v * v) * 2.0 - 1.0).gather()
        assert np.allclose(fused, eager)

    def test_one_control_roundtrip_for_whole_expression(self, odin4):
        a = odin.ones(50)
        b = odin.ones(50)
        with odin.lazy():
            expr = a * 2 + b * 3 - 1
        ctx = odin.get_context()
        ctx.reset_counters()
        odin.evaluate(expr, use_seamless=False)
        msgs, _ = ctx.control_traffic()
        # one fused op: one bcast tree (<= nworkers messages from driver)
        assert msgs <= 4

    def test_module_ufuncs_participate(self, odin4):
        x = odin.linspace(0.1, 2.0, 64)
        with odin.lazy():
            expr = odin.exp(odin.log(x))
        got = odin.evaluate(expr, use_seamless=False).gather()
        assert np.allclose(got, x.gather())

    def test_scalars_and_reflected_ops(self, odin4):
        x = odin.ones(16)
        with odin.lazy():
            expr = 10.0 - x / 2
        assert np.allclose(odin.evaluate(expr,
                                         use_seamless=False).gather(), 9.5)

    def test_mixed_distributions_conformed_once(self, odin4):
        a = odin.arange(32, dist="block", dtype=np.float64)
        b = odin.arange(32, dist="cyclic", dtype=np.float64)
        with odin.lazy():
            expr = a * b + a
        got = odin.evaluate(expr, use_seamless=False).gather()
        ref = np.arange(32.0) ** 2 + np.arange(32.0)
        assert np.allclose(got, ref)

    def test_dtype_inference(self, odin4):
        x = odin.arange(8)      # integer
        with odin.lazy():
            expr = x / 2        # true divide -> float
        out = odin.evaluate(expr, use_seamless=False)
        assert out.dtype == np.float64

    def test_evaluate_rejects_junk(self, odin4):
        with pytest.raises(TypeError):
            odin.evaluate(42)

    def test_evaluate_passthrough_distarray(self, odin4):
        x = odin.ones(4)
        assert odin.evaluate(x) is x

    def test_is_lazy_flag(self, odin4):
        assert not odin.is_lazy()
        with odin.lazy():
            assert odin.is_lazy()
        assert not odin.is_lazy()


class TestSeamlessFusion:
    def test_native_kernel_matches(self, odin4, has_cc):
        if not has_cc:
            pytest.skip("no C compiler")
        u = odin.random(500, seed=20)
        v = odin.random(500, seed=21)
        with odin.lazy():
            expr = odin.sqrt(u * u + v * v)
        native = odin.evaluate(expr, use_seamless=True).gather()
        ref = np.hypot(u.gather(), v.gather())
        assert np.allclose(native, ref)

    def test_long_chain(self, odin4, has_cc):
        if not has_cc:
            pytest.skip("no C compiler")
        x = odin.linspace(0.0, 1.0, 300)
        with odin.lazy():
            expr = odin.sin(x) * odin.cos(x) + odin.exp(-x) / (x + 1.0)
        got = odin.evaluate(expr, use_seamless=True).gather()
        xs = x.gather()
        assert np.allclose(got,
                           np.sin(xs) * np.cos(xs) + np.exp(-xs) / (xs + 1))
