"""odin.concatenate tests."""

import numpy as np
import pytest

from repro import odin


class TestConcatenate:
    def test_1d_matches_numpy(self, odin4):
        a = np.random.default_rng(0).normal(size=37)
        b = np.random.default_rng(1).normal(size=23)
        got = odin.concatenate([odin.array(a), odin.array(b)]).gather()
        assert np.allclose(got, np.concatenate([a, b]))

    def test_three_operands(self, odin4):
        parts = [np.arange(float(n)) for n in (5, 9, 2)]
        got = odin.concatenate([odin.array(p) for p in parts]).gather()
        assert np.allclose(got, np.concatenate(parts))

    def test_2d_axis0(self, odin4):
        A = np.random.default_rng(2).normal(size=(10, 3))
        B = np.random.default_rng(3).normal(size=(14, 3))
        got = odin.concatenate([odin.array(A), odin.array(B)]).gather()
        assert np.allclose(got, np.concatenate([A, B]))

    def test_zero_communication_for_block_operands(self, odin4):
        a = odin.random(40_000, seed=1)
        b = odin.random(40_000, seed=2)
        ctx = odin.get_context()
        ctx.reset_counters()
        _c = odin.concatenate([a, b])
        _m, nbytes = ctx.worker_traffic()
        assert nbytes < 4_000  # control relay only, never the payload

    def test_cyclic_operand_normalized(self, odin4):
        a = np.arange(30.0)
        da = odin.array(a, dist="cyclic")
        db = odin.array(a)
        got = odin.concatenate([da, db]).gather()
        assert np.allclose(got, np.concatenate([a, a]))

    def test_result_composes_downstream(self, odin4):
        c = odin.concatenate([odin.ones(10), odin.zeros(6)])
        assert c.sum() == 10.0
        assert np.allclose((c * 3).gather()[:10], 3.0)
        assert c[12] == 0.0

    def test_extent_mismatch_rejected(self, odin4):
        with pytest.raises(ValueError):
            odin.concatenate([odin.ones((4, 3)), odin.ones((4, 5))])

    def test_dim_mismatch_rejected(self, odin4):
        with pytest.raises(ValueError):
            odin.concatenate([odin.ones(4), odin.ones((4, 2))])

    def test_empty_list(self, odin4):
        with pytest.raises(ValueError):
            odin.concatenate([])

    def test_mixed_dtypes_promote(self, odin4):
        c = odin.concatenate([odin.ones(4, dtype=np.int64),
                              odin.ones(4, dtype=np.float64)])
        assert c.dtype == np.float64
