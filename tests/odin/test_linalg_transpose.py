"""Distributed dot/matmul and transpose tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import odin


class TestDot:
    def test_inner_product(self, odin4):
        xs = np.random.default_rng(0).normal(size=77)
        ys = np.random.default_rng(1).normal(size=77)
        x = odin.array(xs)
        y = odin.array(ys)
        assert odin.dot(x, y) == pytest.approx(xs @ ys)

    def test_shape_mismatch(self, odin4):
        with pytest.raises(ValueError):
            odin.dot(odin.ones(5), odin.ones(6))

    def test_non_distarray_rejected(self, odin4):
        with pytest.raises(TypeError):
            odin.matmul(np.ones((2, 2)), odin.ones(2))


class TestMatmul:
    def test_matvec(self, odin4):
        A = np.random.default_rng(2).normal(size=(31, 9))
        x = np.random.default_rng(3).normal(size=9)
        got = odin.matmul(odin.array(A), odin.array(x))
        assert isinstance(got, odin.DistArray)
        assert np.allclose(got.gather(), A @ x)

    def test_matmat(self, odin4):
        A = np.random.default_rng(4).normal(size=(20, 7))
        B = np.random.default_rng(5).normal(size=(7, 3))
        got = odin.matmul(odin.array(A), odin.array(B))
        assert np.allclose(got.gather(), A @ B)

    def test_result_stays_distributed_for_chaining(self, odin4):
        A = np.random.default_rng(6).normal(size=(16, 16))
        x = np.random.default_rng(7).normal(size=16)
        dA = odin.array(A)
        y = odin.matmul(dA, odin.matmul(dA, odin.array(x)))
        assert np.allclose(y.gather(), A @ (A @ x))

    def test_left_operand_redistributed_if_needed(self, odin4):
        A = np.random.default_rng(8).normal(size=(12, 6))
        x = np.random.default_rng(9).normal(size=6)
        dA = odin.array(A, axis=1)   # column-distributed
        got = odin.matmul(dA, odin.array(x))
        assert np.allclose(got.gather(), A @ x)

    def test_inner_dim_mismatch(self, odin4):
        with pytest.raises(ValueError):
            odin.matmul(odin.ones((4, 5)), odin.ones(6))

    @given(n=st.integers(2, 25), m=st.integers(1, 10),
           seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_matvec_property(self, odin4, n, m, seed):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(n, m))
        x = rng.normal(size=m)
        got = odin.matmul(odin.array(A), odin.array(x))
        assert np.allclose(got.gather(), A @ x)


class TestTranspose:
    def test_2d_roundtrip(self, odin4):
        data = np.arange(35.0).reshape(7, 5)
        d = odin.array(data)
        t = d.T
        assert t.shape == (5, 7)
        assert np.allclose(t.gather(), data.T)
        assert np.allclose(t.T.gather(), data)

    def test_transpose_moves_no_data(self, odin4):
        d = odin.random((400, 30), seed=1)
        ctx = odin.get_context()
        ctx.reset_counters()
        _t = d.T
        _m, nbytes = ctx.worker_traffic()
        assert nbytes < 2_000  # control relay only

    def test_3d_permutation(self, odin4):
        data = np.arange(2 * 12 * 3.0).reshape(12, 2, 3)
        d = odin.array(data)
        p = d.transpose((2, 0, 1))
        assert p.shape == (3, 12, 2)
        assert np.allclose(p.gather(), data.transpose(2, 0, 1))

    def test_cyclic_distribution_preserved(self, odin4):
        data = np.arange(24.0).reshape(8, 3)
        d = odin.array(data, dist="cyclic")
        t = d.T
        assert t.dist.kind == "cyclic" and t.dist.axis == 1
        assert np.allclose(t.gather(), data.T)

    def test_grid_transpose(self, odin4):
        data = np.arange(48.0).reshape(8, 6)
        g = odin.array(data, dist="grid", grid=(2, 2))
        t = g.T
        assert t.dist.kind == "grid"
        assert np.allclose(t.gather(), data.T)

    def test_invalid_permutation(self, odin4):
        with pytest.raises(ValueError):
            odin.ones((4, 4)).transpose((0, 0))

    def test_transposed_array_computes(self, odin4):
        data = np.random.default_rng(10).normal(size=(10, 4))
        d = odin.array(data)
        s = (d.T * 2).sum()
        assert s == pytest.approx(2 * data.sum())
