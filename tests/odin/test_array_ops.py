"""DistArray global-mode tests: creation, ufuncs, reductions, indexing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import odin


class TestCreation:
    def test_zeros_ones_full_empty(self, odin4):
        assert np.allclose(odin.zeros(10).gather(), 0.0)
        assert np.allclose(odin.ones((3, 4)).gather(), 1.0)
        assert np.allclose(odin.full(6, 2.5).gather(), 2.5)
        assert odin.empty(5).shape == (5,)

    def test_arange_matches_numpy(self, odin4):
        assert np.array_equal(odin.arange(17).gather(), np.arange(17))
        assert np.allclose(odin.arange(2, 20, 3).gather(),
                           np.arange(2, 20, 3))

    def test_linspace_matches_numpy(self, odin4):
        got = odin.linspace(1.0, 2 * np.pi, 101).gather()
        assert np.allclose(got, np.linspace(1.0, 2 * np.pi, 101))

    def test_linspace_no_endpoint(self, odin4):
        got = odin.linspace(0, 1, 10, endpoint=False).gather()
        assert np.allclose(got, np.linspace(0, 1, 10, endpoint=False))

    def test_random_reproducible_and_different_per_worker(self, odin4):
        a = odin.random(100, seed=7).gather()
        b = odin.random(100, seed=7).gather()
        assert np.array_equal(a, b)
        # different workers draw different streams
        quarters = [a[i * 25:(i + 1) * 25] for i in range(4)]
        assert not np.allclose(quarters[0], quarters[1])

    def test_array_from_numpy(self, odin4):
        data = np.random.default_rng(1).normal(size=(13, 3))
        d = odin.array(data)
        assert np.allclose(d.gather(), data)

    def test_fromfunction(self, odin4):
        d = odin.fromfunction(lambda i: i ** 2, (12,))
        assert np.allclose(d.gather(), np.arange(12.0) ** 2)

    def test_fromfunction_2d(self, odin4):
        d = odin.fromfunction(lambda i, j: i * 10 + j, (6, 4))
        assert np.allclose(d.gather(), np.fromfunction(
            lambda i, j: i * 10 + j, (6, 4)))

    def test_like_constructors(self, odin4):
        a = odin.random((8, 2), seed=1)
        assert np.allclose(odin.zeros_like(a).gather(), 0.0)
        assert np.allclose(odin.ones_like(a).gather(), 1.0)
        assert odin.empty_like(a).shape == (8, 2)

    def test_dtype_control(self, odin4):
        assert odin.zeros(4, dtype=np.int32).gather().dtype == np.int32
        assert odin.ones(4, dtype=np.complex128).dtype == np.complex128

    @pytest.mark.parametrize("dist,kind", [("block", "block"),
                                           ("cyclic", "cyclic"),
                                           ("block-cyclic", "block-cyclic")])
    def test_distribution_choices(self, odin4, dist, kind):
        d = odin.arange(20, dist=dist)
        assert d.dist.kind == kind
        assert np.array_equal(d.gather(), np.arange(20))

    def test_axis_choice(self, odin4):
        d = odin.ones((3, 16), axis=1)
        assert d.dist.axis == 1
        assert np.allclose(d.gather(), 1.0)

    def test_nonuniform_counts(self, odin4):
        d = odin.zeros(10, counts=[1, 2, 3, 4])
        assert d.dist.counts() == [1, 2, 3, 4]


class TestUfuncs:
    def test_unary_match_numpy(self, odin4):
        x = odin.linspace(0.1, 1.0, 57)
        xs = x.gather()
        for name in ("sqrt", "exp", "log", "sin", "tanh", "floor",
                     "square"):
            got = getattr(odin, name)(x).gather()
            assert np.allclose(got, getattr(np, name)(xs)), name

    def test_binary_match_numpy(self, odin4):
        a = odin.random(40, seed=3)
        b = odin.random(40, seed=4) + 0.5
        av, bv = a.gather(), b.gather()
        for name in ("add", "subtract", "multiply", "divide", "hypot",
                     "maximum", "power"):
            got = getattr(odin, name)(a, b).gather()
            assert np.allclose(got, getattr(np, name)(av, bv)), name

    def test_operator_sugar(self, odin4):
        x = odin.arange(10, dtype=np.float64)
        xs = np.arange(10.0)
        assert np.allclose(((2 * x + 1 - x / 2) ** 2).gather(),
                           (2 * xs + 1 - xs / 2) ** 2)
        assert np.allclose((-x).gather(), -xs)
        assert np.allclose(abs(x - 5).gather(), abs(xs - 5))

    def test_comparisons_produce_bool(self, odin4):
        x = odin.arange(10, dtype=np.float64)
        mask = x > 4
        assert mask.dtype == np.bool_
        assert mask.gather().sum() == 5

    def test_scalar_operands(self, odin4):
        x = odin.ones(12)
        assert np.allclose((10.0 / x).gather(), 10.0)
        assert np.allclose((x - 3).gather(), -2.0)

    def test_ufunc_on_plain_numpy_passthrough(self, odin4):
        assert np.allclose(odin.sqrt(np.array([4.0, 9.0])), [2, 3])

    def test_nonconformable_redistributes_automatically(self, odin4):
        a = odin.arange(30, dist="block")
        b = odin.arange(30, dist="cyclic")
        c = a * b
        assert np.allclose(c.gather(), np.arange(30.0) ** 2)

    def test_strategy_context_manager(self, odin4):
        a = odin.arange(24, dist="block")
        b = odin.arange(24, dist="cyclic")
        for strat in ("left", "right", "block"):
            with odin.strategy(strat):
                assert odin.current_strategy() == strat
                c = a + b
            assert np.allclose(c.gather(), 2 * np.arange(24))
        assert odin.current_strategy() == "auto"

    def test_unknown_strategy(self, odin4):
        with pytest.raises(ValueError):
            with odin.strategy("teleport"):
                pass

    def test_shape_mismatch_rejected(self, odin4):
        with pytest.raises(ValueError):
            odin.ones(5) + odin.ones(6)

    def test_cost_chooser_prefers_zero_move(self, odin4):
        a = odin.ones(40, dist="block")
        b = odin.ones(40, dist="block")
        assert odin.redistribution_cost(a.dist, b.dist) == 0
        name, _ta, _tb = odin.choose_strategy(a.dist, b.dist)
        # any plan is fine when nothing moves, but cost must be 0
        cyc = odin.CyclicDistribution((40,), 0, 4)
        assert odin.redistribution_cost(a.dist, cyc) > 0


class TestReductions:
    def test_full_reductions(self, odin4):
        x = odin.array(np.random.default_rng(5).normal(size=123))
        xs = x.gather()
        assert x.sum() == pytest.approx(xs.sum())
        assert x.min() == pytest.approx(xs.min())
        assert x.max() == pytest.approx(xs.max())
        assert x.mean() == pytest.approx(xs.mean())
        assert x.std() == pytest.approx(xs.std())

    def test_prod(self, odin4):
        x = odin.full(10, 2.0)
        assert x.prod() == pytest.approx(1024.0)

    def test_any_all(self, odin4):
        x = odin.arange(10, dtype=np.float64)
        assert (x > 8).any() and not (x > 8).all()
        assert (x >= 0).all()

    def test_axis_reduction_along_dist_axis(self, odin4):
        data = np.random.default_rng(6).normal(size=(20, 7))
        x = odin.array(data)
        assert np.allclose(x.sum(axis=0), data.sum(axis=0))

    def test_axis_reduction_local_axis_stays_distributed(self, odin4):
        data = np.random.default_rng(7).normal(size=(20, 7))
        x = odin.array(data)
        rowsum = x.sum(axis=1)
        assert isinstance(rowsum, odin.DistArray)
        assert np.allclose(rowsum.gather(), data.sum(axis=1))

    def test_module_level_functions(self, odin4):
        x = odin.arange(9, dtype=np.float64)
        assert odin.sum(x) == pytest.approx(36.0)
        assert odin.amax(x) == 8.0
        assert odin.mean(x) == 4.0

    @given(n=st.integers(1, 300), seed=st.integers(0, 99))
    @settings(max_examples=15, deadline=None)
    def test_sum_property(self, odin4, n, seed):
        data = np.random.default_rng(seed).normal(size=n)
        assert odin.array(data).sum() == pytest.approx(data.sum())


class TestIndexing:
    def test_scalar_fetch(self, odin4):
        x = odin.arange(50, dtype=np.float64)
        assert x[0] == 0.0 and x[49] == 49.0 and x[-1] == 49.0

    def test_scalar_fetch_2d(self, odin4):
        data = np.arange(24.0).reshape(6, 4)
        x = odin.array(data)
        assert x[3, 2] == data[3, 2]

    def test_setitem_scalar_slice(self, odin4):
        x = odin.zeros(20)
        x[5:15] = 3.0
        ref = np.zeros(20)
        ref[5:15] = 3.0
        assert np.allclose(x.gather(), ref)

    def test_setitem_single_index(self, odin4):
        x = odin.zeros(10)
        x[7] = 1.5
        assert x[7] == 1.5 and x.sum() == 1.5

    def test_len_and_metadata(self, odin4):
        x = odin.zeros((12, 3))
        assert len(x) == 12 and x.size == 36 and x.ndim == 2
        assert x.nbytes == 36 * 8
        assert "DistArray" in repr(x)

    def test_out_of_range(self, odin4):
        x = odin.zeros(5)
        with pytest.raises(IndexError):
            x[0, 0]
