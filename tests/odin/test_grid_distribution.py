"""GridDistribution (multi-axis) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import odin
from repro.odin.context import OdinContext
from repro.odin.distribution import (BlockDistribution, GridDistribution)


class TestIndexMath:
    def test_coords_roundtrip(self):
        d = GridDistribution((8, 9), (0, 1), (2, 3))
        assert d.nworkers == 6
        for w in range(6):
            assert d.worker_at(d.coords_of(w)) == w

    def test_tiles_partition_plane(self):
        d = GridDistribution((7, 5), (0, 1), (2, 2))
        covered = np.zeros((7, 5), dtype=int)
        for w in range(4):
            rows = d.axis_indices(w, 0)
            cols = d.axis_indices(w, 1)
            covered[np.ix_(rows, cols)] += 1
        assert np.all(covered == 1)

    @given(n0=st.integers(1, 30), n1=st.integers(1, 30),
           g0=st.integers(1, 4), g1=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_partition_property(self, n0, n1, g0, g1):
        d = GridDistribution((n0, n1), (0, 1), (g0, g1))
        total = sum(int(np.prod(d.local_shape(w)))
                    for w in range(d.nworkers))
        assert total == n0 * n1

    def test_axis_local_position(self):
        d = GridDistribution((10, 10), (0, 1), (2, 2))
        w = d.worker_at((1, 1))  # owns rows 5..9, cols 5..9
        assert d.axis_local_position(w, 0, np.array([5, 9])).tolist() == \
            [0, 4]
        # non-distributed third axis passes through
        d3 = GridDistribution((4, 4, 6), (0, 1), (2, 2))
        assert d3.axis_indices(0, 2) is None

    def test_single_axis_ownership_queries_rejected(self):
        d = GridDistribution((8, 8), (0, 1), (2, 2))
        with pytest.raises(NotImplementedError):
            d.owner_of(np.array([3]))

    def test_validation(self):
        with pytest.raises(ValueError):
            GridDistribution((8, 8), (0, 0), (2, 2))   # repeated axis
        with pytest.raises(ValueError):
            GridDistribution((8, 8), (0, 1), (2,))     # length mismatch

    def test_same_as(self):
        a = GridDistribution((8, 8), (0, 1), (2, 2))
        b = GridDistribution((8, 8), (0, 1), (2, 2))
        c = GridDistribution((8, 8), (0, 1), (4, 1))
        assert a.same_as(b) and not a.same_as(c)

    def test_one_axis_grid_equals_block(self):
        g = GridDistribution((12, 5), (0,), (4,))
        b = BlockDistribution((12, 5), 0, 4)
        assert b.same_as(g)


class TestGridArrays:
    def test_scatter_gather_roundtrip(self, odin4):
        data = np.random.default_rng(0).normal(size=(18, 14))
        g = odin.array(data, dist="grid", axes=(0, 1), grid=(2, 2))
        assert np.allclose(g.gather(), data)

    def test_creation_routines(self, odin4):
        z = odin.zeros((10, 12), dist="grid")
        assert z.dist.kind == "grid" and z.sum() == 0.0
        r = odin.random((10, 12), dist="grid", seed=3)
        assert r.gather().shape == (10, 12)

    def test_index_dependent_fill_on_2d_grid_rejected(self, odin4):
        from repro.odin.creation import _create
        dist = odin.GridDistribution((10, 10), (0, 1), (2, 2))
        ctx = odin.get_context()
        with pytest.raises(ValueError, match="fromfunction"):
            # with control-plane batching the CREATE is fire-and-forget;
            # the worker error surfaces at the next synchronizing op
            _create(ctx, dist, np.float64, ("linspace", 0.0, 1.0, 10, True))
            ctx.flush()

    def test_fromfunction(self, odin4):
        f = odin.fromfunction(lambda i, j: i - j, (9, 9), dist="grid")
        assert np.allclose(f.gather(),
                           np.fromfunction(lambda i, j: i - j, (9, 9)))

    def test_elementwise_and_reductions(self, odin4):
        data = np.random.default_rng(1).normal(size=(16, 10))
        g = odin.array(data, dist="grid")
        assert np.allclose((g * 2 + 1).gather(), data * 2 + 1)
        assert g.sum() == pytest.approx(data.sum())
        assert np.allclose(g.sum(axis=0), data.sum(axis=0))
        assert np.allclose(g.sum(axis=1), data.sum(axis=1))
        assert np.allclose(g.min(axis=0), data.min(axis=0))
        assert g.mean() == pytest.approx(data.mean())

    def test_scalar_fetch(self, odin4):
        data = np.arange(48.0).reshape(8, 6)
        g = odin.array(data, dist="grid")
        assert g[5, 4] == data[5, 4]
        assert g[0, 0] == 0.0

    def test_redistribute_to_and_from_grid(self, odin4):
        data = np.random.default_rng(2).normal(size=(20, 8))
        g = odin.array(data, dist="grid", grid=(2, 2))
        rows = g.redistribute(odin.BlockDistribution((20, 8), 0, 4))
        assert np.allclose(rows.gather(), data)
        back = rows.redistribute(odin.GridDistribution((20, 8), (0, 1),
                                                       (1, 4)))
        assert np.allclose(back.gather(), data)

    def test_grid_to_grid_transpose_layout(self, odin4):
        data = np.random.default_rng(3).normal(size=(12, 12))
        a = odin.array(data, dist="grid", grid=(4, 1))
        b = a.redistribute(odin.GridDistribution((12, 12), (0, 1), (1, 4)))
        assert np.allclose(b.gather(), data)

    def test_binary_between_different_grids(self, odin4):
        data = np.arange(64.0).reshape(8, 8)
        a = odin.array(data, dist="grid", grid=(2, 2))
        b = odin.array(data, dist="grid", grid=(4, 1))
        c = a + b
        assert np.allclose(c.gather(), 2 * data)

    def test_slicing_rejected_with_hint(self, odin4):
        g = odin.zeros((8, 8), dist="grid")
        with pytest.raises(NotImplementedError, match="redistribute"):
            g[1:4, :]
        with pytest.raises(NotImplementedError, match="redistribute"):
            g[1:4] = 0.0

    def test_local_function_gets_tiles(self, odin4):
        data = np.arange(36.0).reshape(6, 6)
        g = odin.array(data, dist="grid", grid=(2, 2))

        @odin.local
        def tile_shape(x):
            return x.shape

        shapes = tile_shape(g)
        assert shapes == [(3, 3)] * 4

    def test_worker_count_mismatch(self, odin4):
        with pytest.raises(ValueError):
            odin.zeros((8, 8), dist="grid", grid=(3, 3))  # needs 9

    def test_cost_model_grid(self, odin4):
        a = odin.GridDistribution((16, 16), (0, 1), (2, 2))
        b = odin.GridDistribution((16, 16), (0, 1), (4, 1))
        same = odin.GridDistribution((16, 16), (0, 1), (2, 2))
        assert odin.redistribution_cost(a, same) == 0
        cost = odin.redistribution_cost(a, b)
        assert 0 < cost < 16 * 16

    def test_3d_array_grid_over_two_axes(self, odin4):
        data = np.random.default_rng(4).normal(size=(8, 6, 3))
        g = odin.array(data, dist="grid", axes=(0, 1), grid=(2, 2))
        assert np.allclose(g.gather(), data)
        assert np.allclose((g ** 2).gather(), data ** 2)
        assert g.sum() == pytest.approx(data.sum())
        assert np.allclose(g.sum(axis=2).gather()
                           if hasattr(g.sum(axis=2), "gather")
                           else g.sum(axis=2), data.sum(axis=2))