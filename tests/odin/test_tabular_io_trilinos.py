"""Tabular Map-Reduce, distributed I/O, and the Trilinos bridge."""

import numpy as np
import pytest

from repro import odin
from repro.odin import tabular


def _records(n=500, ncat=6, seed=0):
    rng = np.random.default_rng(seed)
    rec = np.zeros(n, dtype=[("k", "i8"), ("v", "f8")])
    rec["k"] = rng.integers(0, ncat, n)
    rec["v"] = rng.normal(size=n)
    return rec


class TestTabular:
    def test_from_records_roundtrip(self, odin4):
        rec = _records()
        t = tabular.from_records(rec)
        assert np.array_equal(t.gather(), rec)

    def test_from_records_needs_structured(self, odin4):
        with pytest.raises(TypeError):
            tabular.from_records(np.zeros(5))

    def test_map_records(self, odin4):
        rec = _records()
        t = tabular.from_records(rec)

        def double(block):
            out = block.copy()
            out["v"] *= 2
            return out

        out = tabular.map_records(double, t).gather()
        assert np.allclose(out["v"], rec["v"] * 2)

    def test_filter_records(self, odin4):
        rec = _records()
        t = tabular.from_records(rec)
        kept = tabular.filter_records(lambda b: b["v"] > 0, t)
        assert kept.shape[0] == (rec["v"] > 0).sum()
        assert np.all(kept.gather()["v"] > 0)

    @pytest.mark.parametrize("op", ["sum", "count", "mean", "min", "max"])
    def test_group_aggregate_matches_serial(self, odin4, op):
        rec = _records()
        t = tabular.from_records(rec)
        out = tabular.group_aggregate(t, "k", "v", op=op)
        got = {int(r["key"]): float(r["value"]) for r in out.gather()}
        for k in np.unique(rec["k"]):
            vals = rec["v"][rec["k"] == k]
            ref = {"sum": vals.sum(), "count": len(vals),
                   "mean": vals.mean(), "min": vals.min(),
                   "max": vals.max()}[op]
            assert got[int(k)] == pytest.approx(ref), (op, k)

    def test_group_aggregate_string_keys(self, odin4):
        rec = np.zeros(60, dtype=[("name", "U4"), ("x", "f8")])
        rec["name"] = np.array(["ab", "cd", "ef"] * 20)
        rec["x"] = 1.0
        t = tabular.from_records(rec)
        out = tabular.group_aggregate(t, "name", "x", op="sum")
        got = {str(r["key"]): float(r["value"]) for r in out.gather()}
        assert got == {"ab": 20.0, "cd": 20.0, "ef": 20.0}

    def test_bad_field_names(self, odin4):
        t = tabular.from_records(_records())
        with pytest.raises(ValueError):
            tabular.group_aggregate(t, "nope", "v")
        with pytest.raises(ValueError):
            tabular.group_aggregate(t, "k", "nope")


class TestDistributedIO:
    def test_save_load_roundtrip(self, odin4, tmp_path):
        x = odin.random((60, 3), seed=4)
        odin.save(x, str(tmp_path / "ds"))
        y = odin.load_dataset(str(tmp_path / "ds"))
        assert np.allclose(y.gather(), x.gather())
        assert y.dist.same_as(x.dist)

    def test_per_worker_files_exist(self, odin4, tmp_path):
        x = odin.ones(16)
        odin.save(x, str(tmp_path / "ds"))
        for w in range(4):
            assert (tmp_path / "ds" / f"block_{w}.npy").exists()
        assert (tmp_path / "ds" / "manifest.json").exists()

    def test_nonuniform_counts_roundtrip(self, odin4, tmp_path):
        x = odin.arange(10, counts=[1, 2, 3, 4], dtype=np.float64)
        odin.save(x, str(tmp_path / "ds"))
        y = odin.load_dataset(str(tmp_path / "ds"))
        assert y.dist.counts() == [1, 2, 3, 4]
        assert np.allclose(y.gather(), np.arange(10.0))

    def test_worker_count_mismatch_rejected(self, odin4, tmp_path):
        from repro.odin.context import OdinContext
        x = odin.ones(8)
        odin.save(x, str(tmp_path / "ds"))
        with OdinContext(2) as other:
            with pytest.raises(ValueError):
                odin.load_dataset(str(tmp_path / "ds"), ctx=other)


class TestTrilinosBridge:
    def test_solve_poisson_through_bridge(self, odin4):
        b = odin.ones(15 * 15)
        x, info = odin.trilinos.solve(
            "Laplace2D", b, matrix_params={"nx": 15, "ny": 15},
            solver="CG", preconditioner="Jacobi", tol=1e-10)
        assert info["converged"]
        resid = odin.trilinos.matvec("Laplace2D", x,
                                     {"nx": 15, "ny": 15}) - b
        assert float(abs(resid).max()) < 1e-7

    def test_solver_and_prec_choices(self, odin4):
        b = odin.ones(64)
        for solver, prec in [("GMRES", "ILU"), ("BICGSTAB", "None")]:
            _x, info = odin.trilinos.solve(
                "Laplace1D", b, matrix_params={"n": 64},
                solver=solver, preconditioner=prec, tol=1e-9)
            assert info["converged"], (solver, prec)

    def test_matvec_matches_serial_stencil(self, odin4):
        n = 32
        xs = np.sin(np.arange(n, dtype=float))
        x = odin.array(xs)
        y = odin.trilinos.matvec("Laplace1D", x, {"n": n})
        import scipy.sparse as sp
        ref = sp.diags([-1, 2, -1], [-1, 0, 1], shape=(n, n)) @ xs
        assert np.allclose(y.gather(), ref)

    def test_rejects_2d_rhs(self, odin4):
        with pytest.raises(ValueError):
            odin.trilinos.solve("Laplace1D", odin.ones((4, 4)),
                                matrix_params={"n": 16})
