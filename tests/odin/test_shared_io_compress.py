"""Shared-file MPI-IO for ODIN arrays and boolean-mask compression."""

import numpy as np
import pytest

from repro import odin


class TestSharedIO:
    def test_roundtrip_1d(self, odin4, tmp_path):
        xs = np.random.default_rng(0).normal(size=997)
        x = odin.array(xs)
        path = str(tmp_path / "x.bin")
        odin.save_shared(x, path)
        assert np.allclose(np.fromfile(path), xs)   # plain C-order dump
        y = odin.load_shared(path, 997)
        assert np.allclose(y.gather(), xs)

    def test_roundtrip_2d(self, odin4, tmp_path):
        data = np.random.default_rng(1).normal(size=(50, 7))
        a = odin.array(data)
        path = str(tmp_path / "m.bin")
        odin.save_shared(a, path)
        b = odin.load_shared(path, (50, 7))
        assert np.allclose(b.gather(), data)

    def test_interoperates_with_tofile(self, odin4, tmp_path):
        data = np.arange(64.0)
        path = str(tmp_path / "serial.bin")
        data.tofile(path)
        d = odin.load_shared(path, 64)
        assert np.allclose(d.gather(), data)

    def test_int_dtype(self, odin4, tmp_path):
        data = np.arange(100, dtype=np.int64)
        a = odin.array(data)
        path = str(tmp_path / "i.bin")
        odin.save_shared(a, path)
        b = odin.load_shared(path, 100, dtype=np.int64)
        assert np.array_equal(b.gather(), data)

    def test_requires_axis0_block(self, odin4, tmp_path):
        x = odin.arange(24, dist="cyclic")
        with pytest.raises(ValueError, match="axis-0 block"):
            odin.save_shared(x, str(tmp_path / "c.bin"))


class TestCompress:
    def test_matches_numpy_mask(self, odin4):
        xs = np.random.default_rng(2).normal(size=500)
        x = odin.array(xs)
        kept = odin.compress(x > 0.5, x)
        assert np.allclose(kept.gather(), xs[xs > 0.5])

    def test_counts_follow_data(self, odin4):
        xs = np.concatenate([np.ones(100), -np.ones(300)])
        x = odin.array(xs)
        kept = odin.compress(x > 0, x)
        assert kept.shape == (100,)
        # all survivors live on the first worker(s)
        assert kept.dist.counts()[0] == 100

    def test_empty_result(self, odin4):
        x = odin.ones(40)
        kept = odin.compress(x > 5, x)
        assert kept.shape == (0,)

    def test_mask_redistributed_if_needed(self, odin4):
        xs = np.arange(60.0)
        x = odin.array(xs, dist="block")
        mask = odin.array((xs % 3 == 0), dist="cyclic")
        kept = odin.compress(mask, x)
        assert np.allclose(kept.gather(), xs[::3])

    def test_2d_rejected(self, odin4):
        x = odin.ones((4, 4))
        with pytest.raises(ValueError):
            odin.compress(x > 0, x)

    def test_shape_mismatch(self, odin4):
        with pytest.raises(ValueError):
            odin.compress(odin.ones(5) > 0, odin.ones(6))
