"""Tests for n-ary distributed ufuncs (where, clip)."""

import numpy as np
import pytest

from repro import odin


class TestWhere:
    def test_matches_numpy(self, odin4):
        xs = np.linspace(-2, 2, 121)
        x = odin.array(xs)
        got = odin.where(x > 0, x, -x).gather()
        assert np.allclose(got, np.where(xs > 0, xs, -xs))

    def test_scalar_branches(self, odin4):
        xs = np.linspace(-1, 1, 60)
        x = odin.array(xs)
        got = odin.where(x >= 0, 1.0, -1.0).gather()
        assert np.allclose(got, np.where(xs >= 0, 1.0, -1.0))

    def test_mixed_distributions(self, odin4):
        xs = np.arange(40.0)
        a = odin.array(xs, dist="block")
        b = odin.array(xs[::-1].copy(), dist="cyclic")
        got = odin.where(a > b, a, b).gather()
        assert np.allclose(got, np.maximum(xs, xs[::-1]))

    def test_result_dtype_from_value_operands(self, odin4):
        x = odin.arange(10)
        out = odin.where(x > 5, 1.0, 0.0)
        assert out.dtype == np.float64

    def test_numpy_passthrough(self, odin4):
        assert np.allclose(odin.where(np.array([True, False]),
                                      np.array([1.0, 2.0]),
                                      np.array([3.0, 4.0])), [1.0, 4.0])

    def test_all_scalars_rejected(self, odin4):
        with pytest.raises(TypeError):
            odin.nary_ufunc("where", (True, 1.0, 2.0))


class TestClip:
    def test_matches_numpy(self, odin4):
        xs = np.linspace(-3, 3, 77)
        x = odin.array(xs)
        got = odin.clip(x, -1.0, 1.5).gather()
        assert np.allclose(got, np.clip(xs, -1.0, 1.5))

    def test_on_2d(self, odin4):
        data = np.random.default_rng(0).normal(size=(24, 5)) * 3
        x = odin.array(data)
        got = odin.clip(x, -1.0, 1.0).gather()
        assert np.allclose(got, np.clip(data, -1.0, 1.0))

    def test_shape_mismatch_rejected(self, odin4):
        a = odin.ones(5)
        b = odin.ones(6)
        with pytest.raises(ValueError):
            odin.where(a > 0, a, b)

    def test_unknown_name_rejected(self, odin4):
        with pytest.raises(ValueError):
            odin.nary_ufunc("lerp", (odin.ones(3), 0.0, 1.0))
