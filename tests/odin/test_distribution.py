"""Distribution index-math tests (pure, no communication)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.odin.distribution import (ArbitraryDistribution,
                                     BlockCyclicDistribution,
                                     BlockDistribution, CyclicDistribution,
                                     make_distribution)

DISTS = {
    "block": lambda shape, axis, p: BlockDistribution(shape, axis, p),
    "cyclic": lambda shape, axis, p: CyclicDistribution(shape, axis, p),
    "bc2": lambda shape, axis, p: BlockCyclicDistribution(shape, axis, p,
                                                          block_size=2),
    "bc3": lambda shape, axis, p: BlockCyclicDistribution(shape, axis, p,
                                                          block_size=3),
}


class TestPartitionInvariants:
    @pytest.mark.parametrize("name", list(DISTS))
    @given(n=st.integers(1, 200), p=st.integers(1, 7))
    @settings(max_examples=25, deadline=None)
    def test_indices_partition_axis(self, name, n, p):
        d = DISTS[name]((n,), 0, p)
        pieces = [d.indices_for(w) for w in range(p)]
        union = np.sort(np.concatenate(pieces))
        assert np.array_equal(union, np.arange(n))

    @pytest.mark.parametrize("name", list(DISTS))
    @given(n=st.integers(1, 150), p=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_owner_and_local_position_consistent(self, name, n, p):
        d = DISTS[name]((n,), 0, p)
        gids = np.arange(n)
        owners = d.owner_of(gids)
        pos = d.local_position(gids)
        for w in range(p):
            mine = gids[owners == w]
            expect = d.indices_for(w)
            assert np.array_equal(np.sort(mine), np.sort(expect))
            # local positions invert indices_for
            assert np.array_equal(expect[pos[mine]]
                                  if len(mine) else mine, mine)

    @given(n=st.integers(1, 100), p=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_counts_sum_to_axis_length(self, n, p):
        for name, mk in DISTS.items():
            d = mk((n,), 0, p)
            assert sum(d.counts()) == n


class TestBlock:
    def test_uniform_split(self):
        d = BlockDistribution((10,), 0, 3)
        assert d.counts() == [4, 3, 3]
        assert d.indices_for(0).tolist() == [0, 1, 2, 3]

    def test_custom_counts(self):
        d = BlockDistribution((10,), 0, 3, counts=[1, 2, 7])
        assert d.counts() == [1, 2, 7]
        assert d.owner_of(9) == 2
        assert not d.uniform

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            BlockDistribution((10,), 0, 2, counts=[3, 3])

    def test_multidim_local_shape(self):
        d = BlockDistribution((9, 5, 2), 0, 3)
        assert d.local_shape(0) == (3, 5, 2)
        d2 = BlockDistribution((9, 5, 2), 1, 5)
        assert d2.local_shape(0) == (9, 1, 2)

    def test_negative_axis(self):
        d = BlockDistribution((4, 6), -1, 2)
        assert d.axis == 1


class TestCyclic:
    def test_round_robin(self):
        d = CyclicDistribution((7,), 0, 3)
        assert d.indices_for(0).tolist() == [0, 3, 6]
        assert d.owner_of(np.array([5])).tolist() == [2]
        assert d.local_position(np.array([6])).tolist() == [2]


class TestBlockCyclic:
    def test_blocks_dealt_round_robin(self):
        d = BlockCyclicDistribution((10,), 0, 2, block_size=2)
        assert d.indices_for(0).tolist() == [0, 1, 4, 5, 8, 9]
        assert d.indices_for(1).tolist() == [2, 3, 6, 7]

    def test_block_size_one_equals_cyclic(self):
        bc = BlockCyclicDistribution((11,), 0, 3, block_size=1)
        cy = CyclicDistribution((11,), 0, 3)
        assert bc.same_as(cy)

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            BlockCyclicDistribution((5,), 0, 2, block_size=0)


class TestArbitrary:
    def test_explicit_lists(self):
        d = ArbitraryDistribution((5,), 0, [np.array([4, 0]),
                                            np.array([1, 2, 3])])
        assert d.owner_of(np.array([4])).tolist() == [0]
        assert d.local_position(np.array([4])).tolist() == [0]
        assert d.local_position(np.array([0])).tolist() == [1]

    def test_non_partition_rejected(self):
        with pytest.raises(ValueError):
            ArbitraryDistribution((4,), 0, [np.array([0, 1]),
                                            np.array([1, 2])])

    def test_with_shape_unsupported(self):
        d = ArbitraryDistribution((2,), 0, [np.array([0, 1])])
        with pytest.raises(ValueError):
            d.with_shape((3,))


class TestConformability:
    def test_same_as_detects_identical_assignment(self):
        a = BlockDistribution((12,), 0, 3)
        b = BlockDistribution((12,), 0, 3)
        c = CyclicDistribution((12,), 0, 3)
        assert a.same_as(b) and not a.same_as(c)

    def test_arbitrary_matching_block_is_conformable(self):
        a = BlockDistribution((6,), 0, 2)
        b = ArbitraryDistribution((6,), 0, [np.arange(3),
                                            np.arange(3, 6)])
        assert a.same_as(b)

    def test_shape_mismatch(self):
        assert not BlockDistribution((6,), 0, 2).same_as(
            BlockDistribution((7,), 0, 2))


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("block", BlockDistribution), ("cyclic", CyclicDistribution),
        ("block-cyclic", BlockCyclicDistribution),
    ])
    def test_make_by_name(self, name, cls):
        d = make_distribution((10,), 2, dist=name)
        assert isinstance(d, cls)

    def test_arbitrary_needs_lists(self):
        with pytest.raises(ValueError):
            make_distribution((4,), 2, dist="arbitrary")

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_distribution((4,), 2, dist="fractal")
