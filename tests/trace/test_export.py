"""Exporters: Chrome trace JSON, text summary, traffic report."""

import io
import json

import numpy as np

from repro import mpi, trace
from repro.teuchos import TimeMonitor
from repro.trace import (chrome_trace_events, summary, traffic_report,
                         write_chrome_trace)
from tests.conftest import spmd


class TestChromeTrace:
    def test_metadata_names_rank_lanes(self, tracer):
        tracer.instant("t", "a", rank=1)
        tracer.instant("t", "b", rank="driver")
        events = chrome_trace_events(tracer)
        meta = [e for e in events if e["ph"] == "M"
                and e["name"] == "thread_name"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"rank 1", "driver"}
        # integer ranks take the first timeline rows
        by_name = {e["args"]["name"]: e["tid"] for e in meta}
        assert by_name["rank 1"] < by_name["driver"]

    def test_span_event_microsecond_fields(self, tracer):
        with tracer.span("cat", "work", rank=0, n=2):
            pass
        ev = [e for e in chrome_trace_events(tracer)
              if e["ph"] == "X"][0]
        assert ev["cat"] == "cat" and ev["name"] == "work"
        assert ev["ts"] >= 0 and ev["dur"] >= 0  # microseconds
        assert ev["args"] == {"n": 2}

    def test_instant_event_scope(self, tracer):
        tracer.instant("cat", "mark", rank=0)
        ev = [e for e in chrome_trace_events(tracer)
              if e["ph"] == "i"][0]
        assert ev["s"] == "t" and "dur" not in ev

    def test_write_produces_valid_json(self, tracer):
        with tracer.span("cat", "work", rank=0):
            pass
        buf = io.StringIO()
        n = write_chrome_trace(buf, tracer)
        payload = json.loads(buf.getvalue())
        assert len(payload["traceEvents"]) == n > 0
        assert payload["displayTimeUnit"] == "ms"

    def test_events_sorted_by_timestamp_within_lane(self, tracer):
        # record out of global order across two lanes: completion order
        # is inner-before-outer, but the export must stream each lane in
        # timestamp order for Perfetto's nesting reconstruction
        t0 = tracer.now()
        with tracer.span("cat", "outer", rank=0):
            with tracer.span("cat", "inner", rank=0):
                pass
        tracer.complete("cat", "late", t0, rank=1)
        events = [e for e in chrome_trace_events(tracer)
                  if e["ph"] == "X"]
        for tid in {e["tid"] for e in events}:
            ts = [e["ts"] for e in events if e["tid"] == tid]
            assert ts == sorted(ts)
        lane0 = [e["name"] for e in events if e["tid"] == 0]
        # equal-timestamp ties break longer-span-first: the enclosing
        # span precedes the child it starts simultaneously with
        assert lane0.index("outer") < lane0.index("inner")


class TestSummary:
    def test_empty(self, tracer):
        text = summary(tracer, merge_time_monitor=False)
        assert "no trace spans" in text

    def test_per_rank_blocks_and_totals(self, tracer):
        with tracer.span("solve", "cg", rank=0):
            pass
        with tracer.span("solve", "cg", rank=1):
            pass
        text = summary(tracer, merge_time_monitor=False)
        assert "-- rank 0 --" in text and "-- rank 1 --" in text
        assert "solve:cg" in text

    def test_merges_time_monitor(self, tracer):
        TimeMonitor.clear()
        with TimeMonitor("named phase"):
            pass
        text = summary(tracer)
        assert "TimeMonitor" in text and "named phase" in text
        TimeMonitor.clear()


class TestTrafficReport:
    def test_per_peer_bidirectional_lines(self):
        def body(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.zeros(16), dest=right)
            comm.recv(source=left)
            return comm.context.world
        world = spmd(3)(body)[0]
        text = traffic_report(world)
        assert "bytes sent" in text and "bytes recvd" in text
        # every rank sent to and received from a neighbor
        assert "->" in text and "<-" in text

    def test_comm_time_column_with_tracer(self, tracer):
        def body(comm):
            comm.barrier()
            return comm.context.world
        world = spmd(2)(body)[0]
        text = traffic_report(world, tracer)
        assert "comm time (s)" in text

    def test_accepts_snapshot_sequence(self):
        from repro.mpi.counters import CommCounters
        c = CommCounters()
        c.record_send(1, 100)
        c.record_recv(1, 50)
        text = traffic_report([c.snapshot()])
        assert "-> 1:" in text and "<- 1:" in text

    def test_includes_rank_by_rank_matrix(self):
        def body(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.zeros(16), dest=right)
            comm.recv(source=left)
            return comm.context.world
        world = spmd(3)(body)[0]
        text = traffic_report(world)
        assert "row = source rank" in text


class TestCounterMatrix:
    def test_reconciles_both_wire_ends(self):
        from repro.mpi.counters import CommCounters, CounterSnapshot
        c0, c1 = CommCounters(), CommCounters()
        c0.record_send(1, 100)
        c1.record_recv(0, 100)   # same transfer, receiver side
        c1.record_send(0, 40)    # counted on one end only
        mat = CounterSnapshot.matrix([c0.snapshot(), c1.snapshot()])
        assert mat.shape == (2, 2)
        assert mat[0, 1] == 100  # not double-counted
        assert mat[1, 0] == 40   # still visible from the single end
        assert mat[0, 0] == mat[1, 1] == 0

    def test_explicit_nranks_pads(self):
        from repro.mpi.counters import CommCounters, CounterSnapshot
        c = CommCounters()
        c.record_send(1, 8)
        mat = CounterSnapshot.matrix([c.snapshot()], nranks=4)
        assert mat.shape == (4, 4) and mat[0, 1] == 8


class TestLayerIntegration:
    """The instrumentation hooks produce events from every layer."""

    def test_mpi_collectives_tagged_by_algorithm(self, tracer):
        def body(comm):
            comm.bcast(comm.rank, root=0)
            comm.allreduce(1)
            comm.barrier()
            return None
        spmd(3)(body)
        colls = {ev[2]: ev[6] for ev in tracer.events()
                 if ev[1] == "mpi.coll"}
        assert colls["bcast"]["algorithm"] == "binomial-tree"
        assert colls["barrier"]["algorithm"] == "dissemination"
        assert "allreduce" in colls

    def test_mpi_p2p_send_recv_events(self, tracer):
        def body(comm):
            if comm.rank == 0:
                comm.send(b"x" * 32, dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            return None
        spmd(2)(body)
        p2p = [ev for ev in tracer.events() if ev[1] == "mpi.p2p"]
        names = {ev[2] for ev in p2p}
        assert "send" in names and "recv" in names

    def test_odin_layers_and_solver_iterations(self, tracer):
        from repro import odin
        from repro.odin.context import OdinContext
        with OdinContext(2) as ctx:
            x = odin.arange(64, ctx=ctx)
            y = odin.sin(x) + x
            assert float(y.sum()) != 0.0
            b = odin.ones(32, ctx=ctx)
            _xs, info = odin.trilinos.solve(
                "Laplace1D", b, matrix_params={"n": 32},
                solver="CG", tol=1e-10)
            assert info["converged"]
        cats = {ev[1] for ev in tracer.events()}
        assert {"odin.control", "odin.worker",
                "solver.krylov"} <= cats
        # the driver control plane is its own timeline lane
        assert any(ev[3] == "driver" for ev in tracer.events()
                   if ev[1] == "odin.control")
        # per-iteration spans carry residual norms
        iters = [ev for ev in tracer.events() if ev[2] == "cg.iter"]
        assert iters and all("resid" in ev[6] for ev in iters)
        resids = [ev[6]["resid"] for ev in iters]
        assert resids[-1] <= 1e-10

    def test_nox_newton_iteration_events(self, tracer):
        from repro import solvers, tpetra
        from repro.teuchos import ParameterList

        def body(comm):
            m = tpetra.Map.create_contiguous(8, comm)

            def residual(x):
                r = tpetra.Vector(m)
                r.local_view[...] = x.local_view ** 2 - 4.0
                return r

            res = solvers.NewtonSolver(
                residual,
                params=ParameterList().set("Line Search", "Backtrack")
            ).solve(tpetra.Vector(m).putScalar(3.0))
            return res.converged
        assert all(spmd(2)(body))
        newton = [ev for ev in tracer.events()
                  if ev[1] == "solver.nox" and ev[2] == "newton.iter"]
        assert newton and all("fnorm" in ev[6] for ev in newton)
