"""Fixtures for the tracing tests.

The tracer is a process-wide singleton; every test that turns it on must
leave it off and empty so the rest of the suite keeps its zero-overhead
disabled path (and its event-free state).
"""

import pytest

from repro.trace import TRACER


@pytest.fixture
def tracer():
    TRACER.clear()
    TRACER.enable()
    yield TRACER
    TRACER.disable()
    TRACER.clear()
