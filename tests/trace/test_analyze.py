"""Analyzer tests on hand-built event streams with known answers,
plus integration checks against real traced SPMD runs."""

import numpy as np
import pytest

from repro.trace import analyze
from tests.conftest import spmd


def X(cat, name, rank, ts, dur, **args):
    return ("X", cat, name, rank, ts, dur, args or None)


# ----------------------------------------------------------------------
# load imbalance
# ----------------------------------------------------------------------
def test_load_imbalance_max_mean_factor():
    events = [
        X("compute", "work", 0, 0.0, 3.0),
        X("compute", "work", 1, 0.0, 1.0),
        X("compute", "work", 2, 0.0, 1.0),
        X("compute", "work", 3, 0.0, 1.0),
        X("compute", "work", "driver", 0.0, 99.0),  # named lane: excluded
    ]
    imb = analyze.load_imbalance(events)
    stats = imb["compute"]
    assert stats["max"] == pytest.approx(3.0)
    assert stats["mean"] == pytest.approx(1.5)
    assert stats["imbalance"] == pytest.approx(2.0)
    assert stats["max_rank"] == 0
    assert stats["per_rank"] == {0: 3.0, 1: 1.0, 2: 1.0, 3: 1.0}


def test_load_imbalance_by_name_granularity():
    events = [
        X("mpi.coll", "bcast", 0, 0.0, 1.0),
        X("mpi.coll", "gather", 0, 1.0, 2.0),
        X("mpi.coll", "bcast", 1, 0.0, 3.0),
    ]
    imb = analyze.load_imbalance(events, by="name")
    assert set(imb) == {"mpi.coll:bcast", "mpi.coll:gather"}
    assert imb["mpi.coll:bcast"]["imbalance"] == pytest.approx(1.5)


# ----------------------------------------------------------------------
# wait states
# ----------------------------------------------------------------------
def test_late_sender_pair():
    # receiver blocks at 0.2; the matching send only completes at 1.5
    events = [
        X("mpi.p2p", "send", 0, 1.0, 0.5, dest=1, nbytes=100, seq=1),
        X("mpi.p2p", "recv", 1, 0.2, 1.4, source=0, nbytes=100, seq=1),
    ]
    waits = analyze.wait_states(events)
    late = waits["late_sender"]
    assert late["count"] == 1
    assert late["total"] == pytest.approx(1.3)  # 1.5 - 0.2
    assert late["per_rank"] == {1: pytest.approx(1.3)}
    assert waits["collective"]["count"] == 0


def test_early_sender_is_not_a_wait():
    events = [
        X("mpi.p2p", "send", 0, 0.0, 0.1, dest=1, nbytes=8, seq=1),
        X("mpi.p2p", "recv", 1, 5.0, 0.01, source=0, nbytes=8, seq=1),
    ]
    waits = analyze.wait_states(events)
    assert waits["late_sender"]["count"] == 0
    assert waits["late_sender"]["total"] == 0.0


def test_unmatched_seq_ignored():
    events = [
        X("mpi.p2p", "recv", 1, 0.0, 2.0, source=0, nbytes=8, seq=9),
    ]
    assert analyze.wait_states(events)["late_sender"]["count"] == 0


def test_imbalanced_collective_4_ranks():
    # ranks enter an allreduce at 0.0/0.1/0.2/0.9; all leave at 1.0
    events = [X("mpi.coll", "allreduce", r, t, 1.0 - t,
                algorithm="ring", size=4)
              for r, t in enumerate((0.0, 0.1, 0.2, 0.9))]
    coll = analyze.wait_states(events)["collective"]
    assert coll["count"] == 3  # the straggler itself waits 0
    assert coll["total"] == pytest.approx(0.9 + 0.8 + 0.7)
    assert coll["per_rank"][0] == pytest.approx(0.9)
    assert 3 not in coll["per_rank"]


def test_collective_instances_matched_by_occurrence():
    # two successive barriers: the k-th call on each rank pairs with the
    # k-th call on the others, not with the (k+1)-th
    events = [
        X("mpi.coll", "barrier", 0, 0.0, 1.0),
        X("mpi.coll", "barrier", 1, 0.9, 0.1),
        X("mpi.coll", "barrier", 0, 2.0, 0.5),
        X("mpi.coll", "barrier", 1, 2.4, 0.1),
    ]
    coll = analyze.wait_states(events)["collective"]
    # waits: first instance rank0 waits 0.9; second instance rank0 0.4
    assert coll["total"] == pytest.approx(0.9 + 0.4)
    assert coll["per_rank"] == {0: pytest.approx(1.3)}


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
def test_critical_path_linear_chain():
    # rank 0 computes then sends; rank 1's recv blocks on it, then
    # computes.  Exactly known path: B <- recv <- send <- A.
    events = [
        X("compute", "A", 0, 0.0, 1.0),
        X("mpi.p2p", "send", 0, 1.0, 0.1, dest=1, nbytes=8, seq=1),
        X("mpi.p2p", "recv", 1, 0.5, 0.6, source=0, nbytes=8, seq=1),
        X("compute", "B", 1, 1.1, 0.9),
    ]
    cp = analyze.critical_path(events)
    names = [seg[1] for seg in cp["segments"]]
    assert names == ["compute:B", "mpi.p2p:recv", "mpi.p2p:send",
                     "compute:A"]
    ranks = [seg[0] for seg in cp["segments"]]
    assert ranks == [1, 1, 0, 0]
    assert cp["total"] == pytest.approx(2.0)
    contrib = dict((k, t) for k, t, _n in cp["contributors"])
    assert contrib["compute:A"] == pytest.approx(1.0)
    assert contrib["compute:B"] == pytest.approx(0.9)


def test_critical_path_routes_through_collective_straggler():
    # rank 1 enters the barrier late because of its long compute; the
    # path from rank 0's tail must cross to rank 1's compute
    events = [
        X("compute", "fast", 0, 0.0, 0.1),
        X("mpi.coll", "barrier", 0, 0.1, 0.95),
        X("compute", "slow", 1, 0.0, 1.0),
        X("mpi.coll", "barrier", 1, 1.0, 0.05),
        X("compute", "tail", 0, 1.05, 0.2),
    ]
    cp = analyze.critical_path(events)
    names = [seg[1] for seg in cp["segments"]]
    assert names[0] == "compute:tail"
    assert "compute:slow" in names
    assert "compute:fast" not in names
    assert cp["total"] == pytest.approx(1.25)


def test_critical_path_total_within_wall_clock():
    rng = np.random.default_rng(7)
    events = []
    for r in range(4):
        t = 0.0
        for i in range(20):
            dur = float(rng.uniform(0.01, 0.1))
            events.append(X("compute", f"step{i}", r, t, dur))
            t += dur + float(rng.uniform(0.0, 0.02))
    cp = analyze.critical_path(events)
    t0 = min(e[4] for e in events)
    t1 = max(e[4] + e[5] for e in events)
    assert 0.0 < cp["total"] <= (t1 - t0) + 1e-9


def test_critical_path_empty():
    cp = analyze.critical_path([])
    assert cp == {"segments": [], "total": 0.0, "contributors": []}


# ----------------------------------------------------------------------
# communication matrix
# ----------------------------------------------------------------------
def test_communication_matrix_from_events():
    events = [
        X("mpi.p2p", "send", 0, 0.0, 0.1, dest=1, nbytes=100, seq=1),
        X("mpi.p2p", "send", 0, 0.2, 0.1, dest=1, nbytes=50, seq=2),
        X("mpi.rma", "Put", 1, 0.0, 0.1, target=2, nbytes=8),
        X("mpi.rma", "Get", 2, 0.5, 0.1, target=0, nbytes=16),
    ]
    bytes_mat, msgs_mat = analyze.communication_matrix(events)
    assert bytes_mat.shape == (3, 3)
    assert bytes_mat[0, 1] == 150 and msgs_mat[0, 1] == 2
    assert bytes_mat[1, 2] == 8
    assert bytes_mat[0, 2] == 16  # Get flows target -> origin
    assert bytes_mat.sum() == 174


def test_format_matrix_alignment():
    mat = np.array([[0, 150], [8, 0]], dtype=np.int64)
    text = analyze.format_matrix(mat)
    lines = text.splitlines()
    assert "row = source rank" in lines[0]
    assert len(lines) == 4
    assert "150" in lines[2] and "8" in lines[3]


# ----------------------------------------------------------------------
# integration: real traced runs
# ----------------------------------------------------------------------
def test_seq_metadata_matches_real_send_recv(tracer):
    def body(comm):
        if comm.rank == 0:
            for _ in range(3):
                comm.send(b"x" * 64, 1, tag=5)
        elif comm.rank == 1:
            for _ in range(3):
                comm.recv(0, tag=5)

    spmd(2)(body)
    events = tracer.events()
    sends = [e for e in events if e[1] == "mpi.p2p" and e[2] == "send"]
    recvs = [e for e in events if e[1] == "mpi.p2p" and e[2] == "recv"]
    assert len(sends) == 3 and len(recvs) == 3
    assert sorted(e[6]["seq"] for e in sends) == [1, 2, 3]
    assert sorted(e[6]["seq"] for e in recvs) == [1, 2, 3]
    waits = analyze.wait_states(events)
    # every recv found its matching send (wait may be zero, but all three
    # pairs must have been considered without error)
    assert waits["late_sender"]["count"] <= 3


def test_trace_matrix_agrees_with_counter_matrix(tracer):
    from repro.mpi.counters import CounterSnapshot

    worlds = {}

    def body(comm):
        payload = np.arange(100, dtype=np.float64)
        dest = (comm.rank + 1) % comm.size
        src = (comm.rank - 1) % comm.size
        comm.Send(payload, dest, tag=1)
        buf = np.empty(100, dtype=np.float64)
        comm.Recv(buf, src, tag=1)
        worlds[comm.rank] = comm.context.world

    spmd(4)(body)
    trace_mat, _msgs = analyze.communication_matrix(tracer.events(),
                                                    nranks=4)
    world = worlds[0]
    counter_mat = CounterSnapshot.matrix(
        [c.snapshot() for c in world.counters])
    np.testing.assert_array_equal(trace_mat, counter_mat)


def test_trace_matrix_agrees_with_counters_for_oob_objects(tracer):
    """Out-of-band (pickle-5) object sends change how nbytes is computed
    -- wire bytes are the blob plus every isolation-copy frame -- and the
    trace-derived matrix must keep agreeing with the counter matrix."""
    from repro.mpi.counters import CounterSnapshot

    worlds = {}
    payload_nbytes = {}

    def body(comm):
        obj = {"a": np.arange(200, dtype=np.float64),
               "b": np.ones((8, 8), dtype=np.int32),
               "meta": "oob"}
        dest = (comm.rank + 1) % comm.size
        src = (comm.rank - 1) % comm.size
        comm.send(obj, dest, tag=9)
        got = comm.recv(src, tag=9)
        assert np.array_equal(got["a"], np.arange(200, dtype=np.float64))
        payload_nbytes[comm.rank] = got["a"].nbytes + got["b"].nbytes
        worlds[comm.rank] = comm.context.world

    spmd(3)(body)
    events = tracer.events()
    trace_mat, _msgs = analyze.communication_matrix(events, nranks=3)
    counter_mat = CounterSnapshot.matrix(
        [c.snapshot() for c in worlds[0].counters])
    np.testing.assert_array_equal(trace_mat, counter_mat)
    # every send's recorded nbytes covers the raw array frames on top of
    # the pickle blob: the isolation copy IS the wire transfer
    sends = [e for e in events if e[1] == "mpi.p2p" and e[2] == "send"]
    assert len(sends) == 3
    for e in sends:
        assert e[6]["kind"] == "pickle5"
        assert e[6]["nbytes"] > payload_nbytes[e[3]]


def test_report_runs_on_real_trace(tracer):
    def body(comm):
        x = comm.allreduce(comm.rank)
        if comm.rank == 0:
            comm.send(b"y" * 32, 1, tag=2)
        elif comm.rank == 1:
            comm.recv(0, tag=2)
        return x

    spmd(2)(body)
    text = analyze.report(tracer.events())
    assert "critical path" in text
    assert "load imbalance" in text
    assert "wait states" in text
    assert "communication matrix" in text


def test_report_empty_trace():
    text = analyze.report([])
    assert "no span events" in text
