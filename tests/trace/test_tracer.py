"""Core Tracer behavior: events, rank attribution, disabled path."""

import time

from repro import trace
from repro.trace import NULL_SPAN, TRACER
from tests.conftest import spmd


class TestDisabled:
    def test_span_is_shared_null_object(self):
        TRACER.disable()
        assert TRACER.span("cat", "name") is NULL_SPAN
        with TRACER.span("cat", "name") as sp:
            sp.add_args(ignored=1)
        assert TRACER.events() == []

    def test_module_instant_is_noop(self):
        TRACER.disable()
        trace.instant("cat", "marker", detail=1)
        assert TRACER.events() == []


class TestEmit:
    def test_span_records_complete_event(self, tracer):
        with tracer.span("test", "work", rank=7, items=3):
            time.sleep(0.002)
        (ph, cat, name, rank, ts, dur, args), = tracer.events()
        assert (ph, cat, name, rank) == ("X", "test", "work", 7)
        assert dur >= 0.002
        assert args == {"items": 3}

    def test_add_args_from_inside_span(self, tracer):
        with tracer.span("test", "work", rank=0) as sp:
            sp.add_args(result=42)
        event = tracer.events()[0]
        assert event[6] == {"result": 42}

    def test_begin_complete_pair(self, tracer):
        t0 = tracer.now()
        time.sleep(0.002)
        tracer.complete("test", "hot", t0, rank=1, nbytes=64)
        (_ph, _cat, name, rank, ts, dur, args), = tracer.events()
        assert name == "hot" and rank == 1
        assert abs(ts - t0) < 1e-9 and dur >= 0.002
        assert args == {"nbytes": 64}

    def test_instant_event(self, tracer):
        tracer.instant("test", "marker", rank=2, hit=True)
        (ph, _cat, name, rank, _ts, dur, args), = tracer.events()
        assert ph == "i" and name == "marker" and rank == 2
        assert dur == 0.0 and args == {"hit": True}

    def test_events_sorted_by_timestamp(self, tracer):
        for i in range(5):
            tracer.instant("test", f"e{i}", rank=0)
        stamps = [ev[4] for ev in tracer.events()]
        assert stamps == sorted(stamps)

    def test_clear_drops_events_and_timers(self, tracer):
        with tracer.span("test", "work", rank=0):
            pass
        tracer.clear()
        assert tracer.events() == [] and tracer.span_timers() == {}

    def test_nested_spans_same_key_are_safe(self, tracer):
        # re-entrant span on the same (rank, cat:name) exercises the
        # nested-start Time semantics: only the outer activation counts
        with tracer.span("test", "outer_inner", rank=0):
            with tracer.span("test", "outer_inner", rank=0):
                time.sleep(0.001)
        assert len(tracer.events()) == 2
        timer = tracer.span_timers()[(0, "test:outer_inner")]
        assert timer.calls == 1 and timer.total >= 0.001


class TestRankAttribution:
    def test_main_thread_falls_back_to_label(self, tracer):
        tracer.instant("test", "from-main")
        assert tracer.events()[0][3] == "main"

    def test_spmd_threads_attributed_by_world_rank(self, tracer):
        def body(comm):
            trace.instant("test", "tick", r=comm.rank)
            return comm.rank
        spmd(3)(body)
        ranks = sorted(ev[3] for ev in tracer.events()
                       if ev[2] == "tick")
        assert ranks == [0, 1, 2]
        for ev in tracer.events():
            if ev[2] == "tick":
                assert ev[6]["r"] == ev[3]

    def test_unbind_restores_fallback(self, tracer):
        def body(comm):
            return None
        spmd(2)(body)
        # after the SPMD region the (dead) worker threads are unbound;
        # the main thread never was bound
        tracer.instant("test", "after")
        assert tracer.events()[-1][3] == "main"


class TestSpanTimers:
    def test_accumulate_across_calls(self, tracer):
        for _ in range(4):
            with tracer.span("phase", "step", rank=0):
                pass
        timer = tracer.span_timers()[(0, "phase:step")]
        assert timer.calls == 4 and timer.total >= 0.0

    def test_complete_updates_timers_too(self, tracer):
        t0 = tracer.now()
        tracer.complete("phase", "hot", t0, rank=0)
        timer = tracer.span_timers()[(0, "phase:hot")]
        assert timer.calls == 1


class TestModuleApi:
    def test_enable_disable_roundtrip(self):
        trace.set_enabled(True)
        assert trace.enabled()
        trace.disable()
        assert not trace.enabled()

    def test_get_tracer_is_singleton(self):
        assert trace.get_tracer() is TRACER
