"""Timer and TimeMonitor tests."""

import time

import pytest

from repro.teuchos import Time, TimeMonitor


class TestTime:
    def test_accumulates(self):
        t = Time("work")
        for _ in range(3):
            t.start()
            time.sleep(0.002)
            t.stop()
        assert t.calls == 3
        assert t.total >= 0.006

    def test_nested_starts_count_outer_elapsed_once(self):
        t = Time("x")
        t.start()                      # depth 1
        time.sleep(0.002)
        t.start()                      # depth 2 (re-entrant)
        assert t.depth == 2 and t.running
        assert t.stop() == 0.0         # inner stop accumulates nothing
        assert t.calls == 0 and t.running
        elapsed = t.stop()             # outer stop records the whole span
        assert elapsed >= 0.002
        assert t.calls == 1 and t.total == elapsed and not t.running

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Time("x").stop()

    def test_unbalanced_stop_raises(self):
        t = Time("x")
        t.start(); t.stop()
        with pytest.raises(RuntimeError):
            t.stop()

    def test_context_manager(self):
        t = Time("cm")
        with t:
            time.sleep(0.001)
            with t:                    # nested with: same timer, no raise
                pass
        assert t.calls == 1 and t.total >= 0.001 and not t.running

    def test_reset(self):
        t = Time("x")
        t.start(); t.stop()
        t.reset()
        assert t.total == 0.0 and t.calls == 0 and not t.running


class TestTimeMonitor:
    def setup_method(self):
        TimeMonitor.clear()

    def test_context_manager_registers(self):
        with TimeMonitor("phase A"):
            time.sleep(0.001)
        timer = TimeMonitor.get_timer("phase A")
        assert timer.calls == 1 and timer.total > 0

    def test_same_name_accumulates(self):
        for _ in range(4):
            with TimeMonitor("loop"):
                pass
        assert TimeMonitor.get_timer("loop").calls == 4

    def test_summarize_contains_rows(self):
        with TimeMonitor("alpha"):
            pass
        with TimeMonitor("beta"):
            pass
        text = TimeMonitor.summarize()
        assert "alpha" in text and "beta" in text and "Calls" in text

    def test_summarize_empty(self):
        assert TimeMonitor.summarize() == "(no timers)"

    def test_zero_out(self):
        with TimeMonitor("z"):
            pass
        TimeMonitor.zero_out_timers()
        assert TimeMonitor.get_timer("z").calls == 0

    def test_exception_still_stops_timer(self):
        with pytest.raises(ValueError):
            with TimeMonitor("err"):
                raise ValueError("inside")
        assert not TimeMonitor.get_timer("err").running
