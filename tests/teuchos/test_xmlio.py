"""XML serialization tests."""

import pytest

from repro.teuchos import ParameterList, from_xml, to_xml


class TestRoundtrip:
    def test_scalars(self):
        p = ParameterList("Solver")
        p.set("Max Iterations", 100)
        p.set("Tolerance", 1e-8)
        p.set("Method", "GMRES")
        p.set("Verbose", True)
        assert from_xml(to_xml(p)) == p

    def test_nested(self):
        p = ParameterList("Top")
        p.sublist("ML").set("max levels", 10)
        p.sublist("ML").sublist("smoother").set("type", "sgs")
        q = from_xml(to_xml(p))
        assert q.sublist("ML").sublist("smoother")["type"] == "sgs"

    def test_arrays(self):
        p = ParameterList("P")
        p.set("ints", [1, 2, 3])
        p.set("doubles", [1.5, 2.5])
        q = from_xml(to_xml(p))
        assert q["ints"] == [1, 2, 3]
        assert q["doubles"] == [1.5, 2.5]

    def test_bool_formatting(self):
        xml = to_xml(ParameterList("P").set("flag", False))
        assert 'value="false"' in xml
        assert from_xml(xml)["flag"] is False

    def test_trilinos_schema_shape(self):
        xml = to_xml(ParameterList("S").set("n", 3))
        assert '<ParameterList name="S">' in xml
        assert '<Parameter name="n" type="int" value="3"' in xml


class TestErrors:
    def test_unserializable_type(self):
        with pytest.raises(TypeError):
            to_xml(ParameterList().set("obj", object()))

    def test_mixed_array(self):
        with pytest.raises(TypeError):
            to_xml(ParameterList().set("mixed", [1, "a"]))

    def test_bad_root(self):
        with pytest.raises(ValueError):
            from_xml("<NotAList/>")

    def test_unknown_param_type(self):
        with pytest.raises(ValueError):
            from_xml('<ParameterList name="x">'
                     '<Parameter name="p" type="quaternion" value="1"/>'
                     '</ParameterList>')
