"""CommandLineProcessor tests."""

import pytest

from repro.teuchos import CommandLineError, CommandLineProcessor


def _clp():
    clp = CommandLineProcessor(doc="test driver")
    clp.set_option("n", 64, "grid size")
    clp.set_option("tol", 1e-8, "tolerance")
    clp.set_option("solver", "CG", "method")
    clp.set_option("verbose", False, "chatty output")
    return clp


class TestParsing:
    def test_defaults(self):
        params = _clp().parse([])
        assert params.get("n") == 64
        assert params.get("tol") == 1e-8
        assert params.get("solver") == "CG"
        assert params.get("verbose") is False

    def test_equals_spelling(self):
        params = _clp().parse(["--n=128", "--tol=1e-10", "--solver=GMRES"])
        assert params.get("n") == 128
        assert params.get("tol") == 1e-10
        assert params.get("solver") == "GMRES"

    def test_space_spelling(self):
        params = _clp().parse(["--n", "32", "--solver", "AMG"])
        assert params.get("n") == 32 and params.get("solver") == "AMG"

    def test_bool_flags(self):
        assert _clp().parse(["--verbose"]).get("verbose") is True
        assert _clp().parse(["--no-verbose"]).get("verbose") is False
        assert _clp().parse(["--verbose=true"]).get("verbose") is True
        assert _clp().parse(["--verbose=0"]).get("verbose") is False

    def test_type_preserved(self):
        params = _clp().parse(["--tol", "0.5"])
        assert isinstance(params.get("tol"), float)
        assert isinstance(_clp().parse(["--n=7"]).get("n"), int)


class TestErrors:
    def test_unknown_option(self):
        with pytest.raises(CommandLineError):
            _clp().parse(["--bogus=1"])

    def test_bad_value(self):
        with pytest.raises(CommandLineError):
            _clp().parse(["--n=notanint"])

    def test_missing_value(self):
        with pytest.raises(CommandLineError):
            _clp().parse(["--n"])

    def test_positional_rejected(self):
        with pytest.raises(CommandLineError):
            _clp().parse(["stray"])

    def test_lenient_mode(self):
        clp = CommandLineProcessor(throw_exceptions=False)
        clp.set_option("x", 1, "")
        params = clp.parse(["--bogus", "--x=5"])
        assert params.get("x") == 5

    def test_bad_default_type(self):
        with pytest.raises(TypeError):
            CommandLineProcessor().set_option("bad", [1, 2], "")


class TestHelp:
    def test_help_text_lists_options(self):
        text = _clp().help_text()
        assert "--n=<int>" in text and "--verbose / --no-verbose" in text
        assert "grid size" in text and "default: 64" in text

    def test_help_flag_exits(self, capsys):
        with pytest.raises(SystemExit):
            _clp().parse(["--help"])
        assert "Options:" in capsys.readouterr().out
