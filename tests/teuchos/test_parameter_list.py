"""ParameterList behavior tests."""

import pytest

from repro.teuchos import ParameterList, ParameterListAcceptor


class TestBasics:
    def test_set_get(self):
        p = ParameterList("Solver")
        p.set("Max Iterations", 100)
        assert p.get("Max Iterations") == 100

    def test_kwargs_constructor(self):
        p = ParameterList("X", tol=1e-8, iters=10)
        assert p["tol"] == 1e-8 and p["iters"] == 10

    def test_get_inserts_default(self):
        p = ParameterList()
        assert p.get("Tolerance", 1e-6) == 1e-6
        assert "Tolerance" in p
        # later gets agree even with another default
        assert p.get("Tolerance", 999.0) == 1e-6

    def test_get_missing_without_default_raises(self):
        with pytest.raises(KeyError):
            ParameterList().get("nope")

    def test_chaining(self):
        p = ParameterList().set("a", 1).set("b", 2)
        assert p["a"] == 1 and p["b"] == 2

    def test_dict_protocol(self):
        p = ParameterList()
        p["x"] = 5
        assert "x" in p and len(p) == 1 and list(p) == ["x"]
        p.remove("x")
        assert "x" not in p

    def test_non_string_key_rejected(self):
        with pytest.raises(TypeError):
            ParameterList().set(3, "x")


class TestSublists:
    def test_sublist_autocreates(self):
        p = ParameterList("Top")
        sub = p.sublist("Preconditioner")
        sub.set("Type", "ILU")
        assert p.sublist("Preconditioner")["Type"] == "ILU"
        assert p.isSublist("Preconditioner")

    def test_scalar_is_not_sublist(self):
        p = ParameterList().set("x", 3)
        assert not p.isSublist("x")
        with pytest.raises(TypeError):
            p.sublist("x")

    def test_nested_to_dict(self):
        p = ParameterList("T")
        p.sublist("A").set("k", 1)
        assert p.to_dict() == {"A": {"k": 1}}

    def test_from_dict_roundtrip(self):
        d = {"a": 1, "sub": {"b": 2.5, "deeper": {"c": "x"}}}
        p = ParameterList.from_dict(d)
        assert p.to_dict() == d


class TestHygiene:
    def test_unused_tracking(self):
        p = ParameterList()
        p.set("used", 1)
        p.set("unused", 2)
        p.sublist("sub").set("nested unused", 3)
        _ = p.get("used")
        unused = p.unused()
        assert "unused" in unused
        assert "sub.nested unused" in unused
        assert "used" not in unused

    def test_validator_on_set(self):
        p = ParameterList()
        p.set("omega", 1.0, validator=lambda v: 0 < v < 2)
        with pytest.raises(ValueError):
            p.set("omega", 5.0)

    def test_validator_rejects_initial(self):
        with pytest.raises(ValueError):
            ParameterList().set("n", -1, validator=lambda v: v >= 0)

    def test_update_merges_recursively(self):
        base = ParameterList.from_dict({"a": 1, "sub": {"x": 1}})
        other = ParameterList.from_dict({"b": 2, "sub": {"y": 2}})
        base.update(other)
        assert base.to_dict() == {"a": 1, "b": 2, "sub": {"x": 1, "y": 2}}

    def test_update_no_override(self):
        base = ParameterList.from_dict({"a": 1})
        base.update(ParameterList.from_dict({"a": 99, "b": 2}),
                    override=False)
        assert base["a"] == 1 and base["b"] == 2

    def test_copy_is_deep(self):
        p = ParameterList.from_dict({"sub": {"x": 1}})
        q = p.copy()
        q.sublist("sub")["x"] = 2
        assert p.sublist("sub")["x"] == 1

    def test_equality(self):
        assert ParameterList.from_dict({"a": 1}) == \
            ParameterList.from_dict({"a": 1})
        assert ParameterList.from_dict({"a": 1}) != \
            ParameterList.from_dict({"a": 2})

    def test_pretty_marks_unused(self):
        p = ParameterList("P").set("k", 1)
        assert "[unused]" in p.pretty()
        _ = p["k"]
        assert "[unused]" not in p.pretty()


class TestAcceptor:
    def test_defaults_plus_overrides(self):
        class Thing(ParameterListAcceptor):
            @classmethod
            def default_parameters(cls):
                return ParameterList("Thing").set("n", 10).set("tol", 1e-3)

        t = Thing(ParameterList("user").set("n", 99))
        assert t.plist.get("n") == 99
        assert t.plist.get("tol") == 1e-3

    def test_accepts_plain_dict(self):
        class Thing(ParameterListAcceptor):
            pass

        t = Thing({"alpha": 0.5})
        assert t.plist.get("alpha") == 0.5
