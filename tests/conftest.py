"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi


def spmd(nranks, timeout=60.0):
    """Run a function on an nranks-rank world, returning per-rank results.

    Usage::

        def body(comm):
            return comm.allreduce(1)
        results = spmd(4)(body)
    """
    def runner(fn, *args, **kwargs):
        return mpi.run_spmd(fn, nranks, args=args, kwargs=kwargs,
                            timeout=timeout)
    return runner


@pytest.fixture(params=[1, 2, 3, 4])
def nranks(request):
    """Sweep of world sizes for distribution-sensitive tests."""
    return request.param


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def has_cc():
    from repro.seamless import compiler_available
    return compiler_available()


@pytest.fixture(scope="module")
def odin4():
    """A module-scoped 4-worker ODIN context."""
    from repro import odin
    ctx = odin.init(4)
    yield ctx
    odin.shutdown()
