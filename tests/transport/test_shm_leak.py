"""No orphaned shared-memory segments, even after SIGKILL teardown.

The shm protocol already minimizes the leak window (receivers unlink a
segment's /dev/shm name the moment they attach), but a rank killed
between export and attach leaves a named segment behind.  The parent
sweeps its session's prefix at shutdown and again at interpreter exit;
these tests SIGKILL ranks mid-transfer and assert /dev/shm ends clean.
"""

import os
import signal

import numpy as np
import pytest

from repro import mpi, odin
from repro.mpi.errors import AbortError, RankFailure
from repro.mpi.transport.shm import SHM_PREFIX, segment_names
from repro.odin.context import OdinContext


def _repro_segments():
    try:
        return [n for n in os.listdir("/dev/shm")
                if n.startswith(SHM_PREFIX)]
    except OSError:
        return []


def test_clean_run_leaves_no_segments():
    before = set(_repro_segments())

    def body(comm):
        big = np.arange(40_000, dtype=np.float64)  # 320 KB: shm path
        if comm.rank == 0:
            comm.send({"x": big}, dest=1)
        else:
            comm.recv(source=0)
        return None

    mpi.run_spmd(body, 2, backend="process")
    assert set(_repro_segments()) <= before


def test_sigkill_mid_transfer_leaves_no_segments():
    before = set(_repro_segments())

    def body(comm):
        big = np.arange(100_000, dtype=np.float64)
        if comm.rank == 0:
            # keep exporting segments at the receiver; it dies mid-stream
            for _ in range(50):
                comm.send({"x": big}, dest=1)
            return None
        for _ in range(3):
            comm.recv(source=0)
        os.kill(os.getpid(), signal.SIGKILL)

    with pytest.raises((RankFailure, AbortError, RuntimeError)):
        mpi.run_spmd(body, 2, backend="process", timeout=30.0)
    assert set(_repro_segments()) <= before


def test_odin_worker_sigkill_sweeps_session():
    before = set(_repro_segments())
    ctx = OdinContext(2, backend="process", timeout=30.0)
    session = ctx.world.session_id
    try:
        x = odin.array(np.arange(90_000, dtype=np.float64), ctx=ctx)
        x.gather()  # large blocks crossed the shm path both ways
        os.kill(ctx.worker_pids()[1], signal.SIGKILL)
        with pytest.raises((RankFailure, AbortError)):
            for _ in range(5):
                x.gather()
    finally:
        ctx.shutdown()
    assert segment_names(session) == []
    assert set(_repro_segments()) <= before
