"""Cross-backend conformance: thread and process transports must agree.

A curated slice of the MPI and ODIN surface -- p2p envelopes, the PR 6
collective-algorithm catalogue, RMA, redistribution, batching, the
worker-side plan cache -- parametrized over ``backend=thread|process``
(see conftest).  Each case checks against a NumPy oracle, so agreement
with the oracle on both backends proves backend equivalence.
"""

import numpy as np
import pytest

from repro import mpi, odin
from repro.mpi import MAX, SUM

ALLREDUCE_ALGOS = ("reduce+bcast", "recursive-doubling", "ring",
                   "rabenseifner")
BCAST_ALGOS = ("binomial-tree", "scatter-allgather")
REDUCE_ALGOS = ("binomial-tree", "rank-ordered-tree", "gather-fold", "ring")


class TestP2P:
    def test_object_roundtrip(self, spmd):
        def body(comm):
            r = comm.rank
            if r == 0:
                comm.send({"payload": [1, 2, 3], "from": 0}, dest=1, tag=7)
                return comm.recv(source=1, tag=8)
            comm.send({"payload": "reply", "from": 1}, dest=0, tag=8)
            return comm.recv(source=0, tag=7)

        res = spmd(body, 2)
        assert res[0] == {"payload": "reply", "from": 1}
        assert res[1] == {"payload": [1, 2, 3], "from": 0}

    def test_buffer_send_recv(self, spmd):
        def body(comm):
            r = comm.rank
            if r == 0:
                comm.Send(np.arange(64, dtype=np.float64), dest=1)
                return None
            buf = np.empty(64, dtype=np.float64)
            comm.Recv(buf, source=0)
            return buf

        res = spmd(body, 2)
        np.testing.assert_array_equal(res[1], np.arange(64, dtype=float))

    def test_sendrecv_ring(self, spmd):
        def body(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank * 10, dest=right, source=left)

        assert spmd(body, 3) == [20, 0, 10]

    def test_isend_irecv_waitall(self, spmd):
        def body(comm):
            reqs = [comm.isend(("msg", comm.rank, d), dest=d, tag=3)
                    for d in range(comm.size) if d != comm.rank]
            got = sorted(comm.recv(source=s, tag=3)
                         for s in range(comm.size) if s != comm.rank)
            mpi.waitall(reqs)
            return got

        res = spmd(body, 3)
        for r, got in enumerate(res):
            assert got == sorted(("msg", s, r)
                                 for s in range(3) if s != r)

    def test_non_overtaking_same_pair(self, spmd):
        def body(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=1)
                return None
            return [comm.recv(source=0, tag=1) for _ in range(20)]

        assert spmd(body, 2)[1] == list(range(20))

    def test_received_arrays_are_readonly_views(self, spmd):
        # the PR 4 protocol-5 contract survives the process boundary:
        # out-of-band frames arrive as read-only views on both backends
        def body(comm):
            if comm.rank == 0:
                comm.send({"a": np.ones(32)}, dest=1)
                return None
            got = comm.recv(source=0)["a"]
            writable = got.flags.writeable
            copy = got.copy()
            copy[0] = 5.0  # the copy must be writable
            return (writable, float(copy[0]))

        assert spmd(body, 2)[1] == (False, 5.0)

    def test_truncation_is_typed(self, spmd):
        def body(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10, dtype=np.float64), dest=1)
                return "sent"
            small = np.empty(3, dtype=np.float64)
            try:
                comm.Recv(small, source=0)
                return "no-error"
            except mpi.TruncationError:
                return "truncation"

        assert spmd(body, 2)[1] == "truncation"


class TestCollectiveCatalogue:
    """Every PR 6 algorithm variant, against the NumPy oracle."""

    # 9000 float64 = 72 KB: crosses the 64 KB shared-memory frame
    # threshold, so large-message collectives exercise the shm path
    SIZES = (5, 1000, 9000)

    def test_allreduce_every_algorithm(self, spmd):
        def body(comm):
            out = {}
            for n in self.SIZES:
                mine = np.arange(n, dtype=np.float64) + comm.rank
                for algo in ALLREDUCE_ALGOS:
                    recv = np.empty(n, dtype=np.float64)
                    comm.Allreduce(mine, recv, SUM, algorithm=algo)
                    out[(n, algo)] = recv
            return out

        nranks = 4
        res = spmd(body, nranks)
        for n in self.SIZES:
            oracle = sum(np.arange(n, dtype=np.float64) + r
                         for r in range(nranks))
            for algo in ALLREDUCE_ALGOS:
                for r in range(nranks):
                    np.testing.assert_allclose(res[r][(n, algo)], oracle)

    def test_bcast_every_algorithm(self, spmd):
        def body(comm):
            out = {}
            for n in self.SIZES:
                for algo in BCAST_ALGOS:
                    buf = (np.arange(n, dtype=np.float64)
                           if comm.rank == 0
                           else np.empty(n, dtype=np.float64))
                    comm.Bcast(buf, root=0, algorithm=algo)
                    out[(n, algo)] = buf
            return out

        res = spmd(body, 4)
        for n in self.SIZES:
            for algo in BCAST_ALGOS:
                for r in range(4):
                    np.testing.assert_array_equal(
                        res[r][(n, algo)], np.arange(n, dtype=float))

    def test_reduce_every_algorithm(self, spmd):
        def body(comm):
            out = {}
            for algo in REDUCE_ALGOS:
                mine = np.full(100, float(comm.rank + 1))
                recv = np.empty(100) if comm.rank == 0 else None
                comm.Reduce(mine, recv, MAX, root=0, algorithm=algo)
                out[algo] = recv if comm.rank == 0 else None
            return out

        res = spmd(body, 3)
        for algo in REDUCE_ALGOS:
            np.testing.assert_array_equal(res[0][algo], np.full(100, 3.0))

    def test_gather_scatter_alltoall_scan(self, spmd):
        def body(comm):
            r, p = comm.rank, comm.size
            gathered = comm.gather(r * r, root=0)
            scattered = comm.scatter(
                [10 * i for i in range(p)] if r == 0 else None, root=0)
            allg = comm.allgather(r + 100)
            a2a = comm.alltoall([r * 10 + d for d in range(p)])
            scan = comm.scan(r + 1)
            comm.barrier()
            return gathered, scattered, allg, a2a, scan

        p = 3
        res = spmd(body, p)
        assert res[0][0] == [r * r for r in range(p)]
        assert [x[1] for x in res] == [0, 10, 20]
        for r in range(p):
            assert res[r][2] == [s + 100 for s in range(p)]
            assert res[r][3] == [s * 10 + r for s in range(p)]
            assert res[r][4] == sum(range(1, r + 2))


class TestRMA:
    def test_put_get_accumulate_fence(self, spmd):
        def body(comm):
            r, p = comm.rank, comm.size
            buf = np.zeros(8)
            win = mpi.Win.Create(buf, comm)
            win.Fence()
            win.Put(np.array([float(r + 1)]), (r + 1) % p, 0)
            for t in range(p):
                win.Accumulate(np.array([1.0]), t, 3)
            win.Fence()
            out = np.zeros(1)
            win.Get(out, 0, 0)
            win.Fence()
            win.Free()
            return float(buf[0]), float(buf[3]), float(out[0])

        res = spmd(body, 3)
        assert [x[0] for x in res] == [3.0, 1.0, 2.0]
        assert all(x[1] == 3.0 for x in res)
        assert all(x[2] == 3.0 for x in res)

    def test_lock_unlock_passive_target(self, spmd):
        def body(comm):
            r, p = comm.rank, comm.size
            buf = np.zeros(4)
            win = mpi.Win.Create(buf, comm)
            target = (r + 1) % p
            win.Lock(target)
            win.Put(np.array([42.0]), target, 1)
            win.Unlock(target)
            win.Fence()
            win.Free()
            return float(buf[1])

        assert spmd(body, 3) == [42.0, 42.0, 42.0]

    def test_overrun_is_typed(self, spmd):
        def body(comm):
            buf = np.zeros(4)
            win = mpi.Win.Create(buf, comm)
            win.Fence()
            try:
                win.Put(np.zeros(100), (comm.rank + 1) % comm.size, 0)
                out = "no-error"
            except mpi.MPIError:
                out = "typed"
            win.Fence()
            win.Free()
            return out

        assert spmd(body, 2) == ["typed", "typed"]


class TestOdin:
    def test_ufunc_chain(self, odin_ctx):
        with odin_ctx(3) as ctx:
            x = odin.arange(200, ctx=ctx, dtype=np.float64)
            y = odin.sqrt(x * x + 1.0) - 0.5
            np.testing.assert_allclose(
                y.gather(), np.sqrt(np.arange(200.0) ** 2 + 1.0) - 0.5)

    def test_redistribution_round_trip(self, odin_ctx):
        data = np.random.default_rng(7).normal(size=(12, 9))
        with odin_ctx(3) as ctx:
            x = odin.array(data, ctx=ctx)
            y = x.redistribute(odin.CyclicDistribution((12, 9), 0, 3))
            z = y.redistribute(odin.BlockDistribution((12, 9), 1, 3))
            np.testing.assert_allclose(y.gather(), data)
            np.testing.assert_allclose(z.gather(), data)

    def test_batch_on_off_agree(self, backend):
        from repro.odin.context import OdinContext
        results = {}
        for batch in (True, False):
            with OdinContext(2, batch=batch, backend=backend) as ctx:
                x = odin.arange(300, ctx=ctx, dtype=np.float64)
                y = x.redistribute(odin.CyclicDistribution((300,), 0, 2))
                results[batch] = odin.sqrt(y * y).gather()
        np.testing.assert_array_equal(results[True], results[False])

    def test_plan_cache_hits_across_processes(self, odin_ctx):
        with odin_ctx(2) as ctx:
            data = np.arange(60, dtype=np.float64)
            x = odin.array(data, ctx=ctx)
            dst = odin.CyclicDistribution((60,), 0, 2)
            x.redistribute(dst).gather()
            before = ctx.plan_cache_stats()
            x.redistribute(dst).gather()  # same key: must hit
            after = ctx.plan_cache_stats()
            assert after["hits"] > before["hits"]
            assert after["cached_plans"] >= 1

    def test_local_function_ships_to_workers(self, odin_ctx):
        with odin_ctx(2) as ctx:
            hypot = odin.local(lambda x, y: np.hypot(x, y),
                               name="conformance-hypot")
            a = odin.array(np.arange(30, dtype=np.float64), ctx=ctx)
            b = odin.array(np.ones(30), ctx=ctx)
            out = hypot(a, b)
            np.testing.assert_allclose(out.gather(),
                                       np.hypot(np.arange(30.0), 1.0))
