"""Fixtures for the cross-backend transport test matrix.

Every test taking the ``backend`` fixture runs twice -- once on the
thread transport, once on the multiprocess transport -- and must produce
identical results on both.  That equivalence is the contract that lets
the thread backend remain the deterministic default for tests and chaos
while the process backend carries real multicore workloads.
"""

from __future__ import annotations

import pytest

from repro import mpi
from repro.odin.context import OdinContext

BACKENDS = mpi.BACKENDS  # ("thread", "process")


@pytest.fixture(params=BACKENDS, ids=[f"backend={b}" for b in BACKENDS])
def backend(request):
    return request.param


@pytest.fixture
def spmd(backend):
    """Run an SPMD body on the selected backend; returns per-rank results."""
    def runner(fn, nranks, **kwargs):
        kwargs.setdefault("timeout", 60.0)
        return mpi.run_spmd(fn, nranks, backend=backend, **kwargs)
    return runner


@pytest.fixture
def odin_ctx(backend):
    """An ODIN context factory bound to the selected backend."""
    made = []

    def factory(nworkers, **kwargs):
        ctx = OdinContext(nworkers, backend=backend, **kwargs)
        made.append(ctx)
        return ctx

    yield factory
    for ctx in made:
        try:
            ctx.shutdown()
        except Exception:
            pass
