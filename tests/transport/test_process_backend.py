"""Process-backend mechanics: semantics specific to real OS processes.

The cross-backend matrix proves equivalence; this file pins down the
parts that only exist on the process transport -- backend selection,
fork/pipe boundary rules, the shared-memory bulk path, typed abort
propagation across processes, and the driver-side trace/counter merge.
"""

import os

import numpy as np
import pytest

from repro import mpi
from repro.mpi.errors import InjectedFault, RankFailure
from repro.mpi.transport import resolve_backend
from repro.mpi.transport.shm import shm_threshold
from repro.trace import TRACER


class TestSelection:
    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_MPI_BACKEND", raising=False)
        assert resolve_backend() == "thread"
        monkeypatch.setenv("REPRO_MPI_BACKEND", "process")
        assert resolve_backend() == "process"
        assert resolve_backend("thread") == "thread"  # arg beats env

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown transport backend"):
            resolve_backend("mpi4py")
        with pytest.raises(ValueError):
            mpi.run_spmd(lambda comm: 0, 2, backend="bogus")

    def test_env_var_reaches_run_spmd(self, monkeypatch):
        monkeypatch.setenv("REPRO_MPI_BACKEND", "process")
        pids = mpi.run_spmd(lambda comm: os.getpid(), 2)
        assert len(set(pids)) == 2
        assert os.getpid() not in pids

    def test_thread_backend_shares_the_process(self):
        pids = mpi.run_spmd(lambda comm: os.getpid(), 2, backend="thread")
        assert set(pids) == {os.getpid()}


class TestRunSpmdProcess:
    def test_results_indexed_by_rank_with_args(self):
        def body(comm, base, scale=1):
            return (comm.rank + base) * scale

        res = mpi.run_spmd(body, 3, args=(100,), kwargs={"scale": 2},
                           backend="process")
        assert res == [200, 202, 204]

    def test_closures_cross_the_fork(self):
        payload = np.arange(10.0)  # inherited by fork, not pickled

        def body(comm):
            return float(payload.sum()) + comm.rank

        assert mpi.run_spmd(body, 2, backend="process") == [45.0, 46.0]

    def test_unpicklable_result_is_a_typed_error(self):
        def body(comm):
            return lambda: None  # lambdas do not pickle

        with pytest.raises(RuntimeError, match="could not be pickled"):
            mpi.run_spmd(body, 2, backend="process")

    def test_exception_aborts_world_and_reraises(self):
        def body(comm):
            if comm.rank == 1:
                raise ValueError("boom on rank 1")
            # rank 0 blocks on a recv that can never complete; the abort
            # broadcast must wake it instead of hanging
            return comm.recv(source=1)

        with pytest.raises(ValueError, match="boom on rank 1"):
            mpi.run_spmd(body, 2, backend="process", timeout=30.0)

    def test_failstop_mode_marks_only_the_victim(self):
        def body(comm):
            if comm.rank == 2:
                raise InjectedFault(2, 0, "scripted")
            try:
                comm.send("hi", dest=2)
                comm.recv(source=2, tag=9)
                return "no-failure"
            except RankFailure as exc:
                return ("rankfailure", exc.rank)

        res = mpi.run_spmd(body, 3, backend="process",
                           fault_mode="failstop", timeout=30.0)
        assert isinstance(res[2], InjectedFault)
        assert res[0] == ("rankfailure", 2)
        assert res[1] == ("rankfailure", 2)


class TestSharedMemoryPath:
    def test_large_frames_ride_shm(self):
        n = shm_threshold() // 8 + 4096  # comfortably above the threshold
        def body(comm):
            if comm.rank == 0:
                comm.send({"big": np.arange(n, dtype=np.float64)}, dest=1)
                return None
            got = comm.recv(source=0)["big"]
            return (got.flags.writeable, float(got.sum()))

        writable, total = mpi.run_spmd(body, 2, backend="process")[1]
        assert writable is False  # read-only view over the mapped segment
        assert total == float(np.arange(n, dtype=np.float64).sum())

    def test_counters_see_true_payload_bytes(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(np.zeros(50_000), dest=1)  # 400 KB via shm
            else:
                comm.recv(source=0)
            snap = comm.counters().snapshot()
            return snap.bytes_sent if comm.rank == 0 else snap.bytes_recvd

        sent, recvd = mpi.run_spmd(body, 2, backend="process")
        assert sent >= 400_000
        assert recvd >= 400_000


class TestDriverSideMerge:
    def test_trace_events_merge_from_all_ranks(self):
        was_enabled = TRACER.enabled
        TRACER.enable()
        TRACER.clear()
        try:
            def body(comm):
                comm.allreduce(comm.rank)
                return None

            mpi.run_spmd(body, 3, backend="process")
            ranks = {ev[3] for ev in TRACER.events()
                     if ev[1].startswith("mpi")}
        finally:
            TRACER.clear()
            TRACER.enabled = was_enabled
        assert {0, 1, 2} <= ranks
