"""Chaos parity: the conformance harness holds on the process backend.

The thread backend has carried every chaos sweep so far; these runs
repeat a reduced sweep on real processes.  CI runs the full 50-program
sweep via ``python -m repro.chaos --backend process`` (see
.github/workflows/ci.yml); this file keeps a smaller always-on slice in
tier-1: clean-mode oracle agreement, crash-mode typed aborts (never
hangs), and crash+recover oracle agreement after a real worker death.
"""

import numpy as np

from repro.chaos.conformance import (generate_program, run_distributed,
                                     run_sweep)


def _assert_same(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(np.asarray(x), np.asarray(y))


def test_backend_results_identical_without_faults():
    """The same generated program yields bit-identical observations."""
    for seed in (777, 778):
        prog = generate_program(seed, max_steps=8)
        _assert_same(run_distributed(prog, 2, backend="thread"),
                     run_distributed(prog, 2, backend="process"))


def test_clean_sweep_conformant():
    failures = run_sweep(seed=4200, nprograms=4, nranks_list=[2],
                         chaos_mode="none", shrink=False,
                         backend="process")
    assert failures == []


def test_crash_sweep_typed_aborts_never_hang():
    # destructive mode: a wrong answer fails, a typed MPI error is the
    # accepted outcome -- and the 30 s timeout bounds any hang
    failures = run_sweep(seed=4300, nprograms=3, nranks_list=[2],
                         chaos_mode="crash", shrink=False, timeout=30.0,
                         backend="process")
    assert failures == []


def test_crash_recover_matches_oracle():
    # with recovery on, the injected crash must be survived: the pool
    # shrinks and the results still match the NumPy oracle
    failures = run_sweep(seed=4400, nprograms=3, nranks_list=[2],
                         chaos_mode="crash", recover=True, shrink=False,
                         timeout=30.0, backend="process")
    assert failures == []
