"""Real process death: SIGKILL a worker and watch the runtime cope.

The thread backend can only *simulate* rank death (InjectedFault); on
the process backend ``os.kill(pid, SIGKILL)`` is the real thing.  The
contract under test: death surfaces as a typed ``RankFailure`` --
detected via socket EOF / process-lease lapse, well inside the world
timeout, never a hang -- and with ``recover=True`` the ULFM-style
shrink + checkpoint/replay path restores oracle-conformant results.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro import mpi, odin
from repro.mpi.errors import AbortError, RankFailure
from repro.odin.context import OdinContext

#: detection must land well within the world timeout; socket EOF makes
#: it near-instant, the process-lease sweep bounds it even when the
#: socket lingers (see docs/INTERNALS.md section 11)
DETECT_BOUND = 10.0


class TestRawSpmd:
    def test_sigkill_surfaces_rank_failure_for_peers(self):
        def body(comm):
            if comm.rank == 1:
                os.kill(os.getpid(), signal.SIGKILL)
            t0 = time.monotonic()
            try:
                comm.recv(source=1, tag=5)
                return "no-error"
            except RankFailure as exc:
                return ("rankfailure", exc.rank, time.monotonic() - t0)

        res = mpi.run_spmd(body, 2, backend="process",
                           fault_mode="failstop", timeout=30.0)
        tag, rank, elapsed = res[0]
        assert (tag, rank) == ("rankfailure", 1)
        assert elapsed < DETECT_BOUND
        # the dead rank reported nothing: the driver synthesizes its slot
        assert isinstance(res[1], RuntimeError)

    def test_sigkill_in_abort_mode_raises_not_hangs(self):
        def body(comm):
            if comm.rank == 1:
                os.kill(os.getpid(), signal.SIGKILL)
            return comm.recv(source=1)

        t0 = time.monotonic()
        with pytest.raises((RankFailure, AbortError, RuntimeError)):
            mpi.run_spmd(body, 2, backend="process", timeout=30.0)
        assert time.monotonic() - t0 < 40.0


class TestOdinCrash:
    def test_worker_death_is_typed_and_fast(self):
        ctx = OdinContext(2, backend="process", timeout=30.0)
        try:
            x = odin.arange(100, ctx=ctx, dtype=np.float64)
            assert x.gather().shape == (100,)  # world is healthy
            os.kill(ctx.worker_pids()[0], signal.SIGKILL)
            t0 = time.monotonic()
            with pytest.raises((RankFailure, AbortError)):
                for _ in range(5):  # first op may ride a live socket
                    odin.sqrt(x).gather()
            assert time.monotonic() - t0 < DETECT_BOUND
        finally:
            ctx.shutdown()

    def test_recover_matches_no_fault_oracle(self):
        oracle = np.sqrt(np.arange(120.0) ** 2 + 3.0)
        ctx = OdinContext(3, backend="process", recover=True,
                          timeout=30.0)
        try:
            x = odin.arange(120, ctx=ctx, dtype=np.float64)
            y = (x * x + 3.0)
            assert y.gather().shape == (120,)
            os.kill(ctx.worker_pids()[1], signal.SIGKILL)
            # shrink + partner-checkpoint replay must hide the death
            z = odin.sqrt(y)
            np.testing.assert_allclose(z.gather(), oracle)
            assert ctx.nworkers == 2  # the pool really shrank
        finally:
            ctx.shutdown()
