"""Datatype handles and buffer-spec decoding."""

import numpy as np
import pytest

from repro.mpi import (DOUBLE, INT, Datatype, from_numpy_dtype)
from repro.mpi.datatypes import decode_buffer_spec


class TestDatatype:
    def test_extent(self):
        assert DOUBLE.extent == 8
        assert INT.extent == 4

    def test_equality_by_dtype(self):
        assert from_numpy_dtype(np.float64) == DOUBLE
        assert from_numpy_dtype(np.int32) == INT
        assert DOUBLE != INT

    def test_unknown_dtype_gets_adhoc_handle(self):
        dt = from_numpy_dtype([("a", "i4"), ("b", "f8")])
        assert isinstance(dt, Datatype)
        assert dt.extent == 12

    def test_hashable(self):
        assert len({DOUBLE, from_numpy_dtype("f8")}) == 1


class TestBufferSpec:
    def test_bare_array(self):
        arr = np.arange(6.0)
        flat, count, dt = decode_buffer_spec(arr)
        assert count == 6 and dt == DOUBLE
        assert flat.base is arr or flat is arr

    def test_pair_spec(self):
        arr = np.arange(4, dtype="i")
        flat, count, dt = decode_buffer_spec([arr, INT])
        assert count == 4 and dt == INT

    def test_triple_spec_limits_count(self):
        arr = np.arange(10.0)
        flat, count, dt = decode_buffer_spec([arr, 3, DOUBLE])
        assert count == 3
        assert flat.tolist() == [0.0, 1.0, 2.0]

    def test_count_too_large(self):
        with pytest.raises(ValueError):
            decode_buffer_spec([np.zeros(2), 5, DOUBLE])

    def test_bad_spec_length(self):
        with pytest.raises(ValueError):
            decode_buffer_spec([np.zeros(2), 1, DOUBLE, "extra"])

    def test_2d_flattened(self):
        arr = np.zeros((3, 4))
        _flat, count, _dt = decode_buffer_spec(arr)
        assert count == 12

    def test_view_is_writable_into_original(self):
        arr = np.zeros(5)
        flat, _count, _dt = decode_buffer_spec(arr)
        flat[0] = 9.0
        assert arr[0] == 9.0
