"""Cartesian topology tests."""

import pytest

from repro import mpi
from repro.mpi import CartComm, dims_create
from tests.conftest import spmd


class TestDimsCreate:
    def test_balanced_2d(self):
        assert sorted(dims_create(12, 2)) == [3, 4]

    def test_three_dims(self):
        dims = dims_create(8, 3)
        assert sorted(dims) == [2, 2, 2]

    def test_fixed_dimension_respected(self):
        dims = dims_create(12, 2, dims=[3, 0])
        assert dims == [3, 4]

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            dims_create(7, 2, dims=[3, 0])

    def test_prime(self):
        assert sorted(dims_create(7, 2)) == [1, 7]


class TestCartComm:
    def test_coords_roundtrip(self):
        def body(comm):
            cart = CartComm(comm, [2, 3])
            coords = cart.coords
            return cart.rank_of(coords) == cart.rank, coords
        results = spmd(6)(body)
        assert all(ok for ok, _c in results)
        assert results[0][1] == (0, 0)
        assert results[5][1] == (1, 2)

    def test_row_major_ordering(self):
        def body(comm):
            cart = CartComm(comm, [2, 2])
            return cart.coords_of(1), cart.coords_of(2)
        assert spmd(4)(body)[0] == ((0, 1), (1, 0))

    def test_wrong_size_raises(self):
        def body(comm):
            CartComm(comm, [2, 3])
        with pytest.raises(ValueError):
            mpi.run_spmd(body, 4)

    def test_shift_interior_and_boundary(self):
        def body(comm):
            cart = CartComm(comm, [4], periods=[False])
            return cart.Shift(0, 1)
        results = spmd(4)(body)
        assert results[0] == (None, 1)
        assert results[1] == (0, 2)
        assert results[3] == (2, None)

    def test_shift_periodic(self):
        def body(comm):
            cart = CartComm(comm, [4], periods=[True])
            return cart.Shift(0, 1)
        results = spmd(4)(body)
        assert results[0] == (3, 1)
        assert results[3] == (2, 0)

    def test_neighbor_exchange_ring(self):
        def body(comm):
            cart = CartComm(comm, [comm.size], periods=[True])
            from_down, from_up = cart.neighbor_exchange(
                0, send_up=f"up{cart.rank}", send_down=f"dn{cart.rank}")
            return from_down, from_up
        results = spmd(4)(body)
        # from_down is the -1 neighbor's send_up
        assert results[1] == ("up0", "dn2")
        assert results[0] == ("up3", "dn1")

    def test_neighbor_exchange_open_boundary(self):
        def body(comm):
            cart = CartComm(comm, [comm.size], periods=[False])
            return cart.neighbor_exchange(0, send_up=cart.rank,
                                          send_down=cart.rank)
        results = spmd(3)(body)
        assert results[0] == (None, 1)
        assert results[2] == (1, None)

    def test_2d_exchange_axes_do_not_cross(self):
        def body(comm):
            cart = CartComm(comm, [2, 2], periods=[True, True])
            d0 = cart.neighbor_exchange(0, send_up=("ax0", cart.rank),
                                        send_down=("ax0", cart.rank))
            d1 = cart.neighbor_exchange(1, send_up=("ax1", cart.rank),
                                        send_down=("ax1", cart.rank))
            return d0[0][0], d1[0][0]
        for tags in spmd(4)(body):
            assert tags == ("ax0", "ax1")

    def test_cart_still_a_comm(self):
        def body(comm):
            cart = CartComm(comm, [comm.size])
            return cart.allreduce(1)
        assert spmd(3)(body) == [3, 3, 3]
