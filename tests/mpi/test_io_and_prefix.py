"""MPI-IO file access and buffer-path prefix reductions."""

import numpy as np
import pytest

from repro import mpi
from tests.conftest import spmd


class TestFile:
    def test_write_at_read_at_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.bin")

        def body(comm):
            fh = mpi.File.Open(comm, path,
                               mpi.MODE_RDWR | mpi.MODE_CREATE)
            fh.Set_view(0, np.float64)
            block = np.full(10, float(comm.rank))
            fh.Write_at_all(comm.rank * 10, block)
            # every rank reads the whole file back
            out = np.zeros(10 * comm.size)
            fh.Read_at_all(0, out)
            fh.Close()
            return out
        results = spmd(3)(body)
        expected = np.repeat(np.arange(3.0), 10)
        for r in results:
            assert np.allclose(r, expected)

    def test_write_ordered(self, tmp_path):
        path = str(tmp_path / "ordered.bin")

        def body(comm):
            fh = mpi.File.Open(comm, path,
                               mpi.MODE_WRONLY | mpi.MODE_CREATE)
            # variable-size contributions, rank order preserved
            block = np.full(comm.rank + 1, float(comm.rank))
            fh.Write_ordered(block)
            size = fh.Get_size()
            fh.Close()
            return size
        sizes = spmd(3)(body)
        assert sizes[0] == 6 * 8
        data = np.fromfile(path)
        assert data.tolist() == [0.0, 1.0, 1.0, 2.0, 2.0, 2.0]

    def test_view_displacement(self, tmp_path):
        path = str(tmp_path / "disp.bin")

        def body(comm):
            fh = mpi.File.Open(comm, path,
                               mpi.MODE_RDWR | mpi.MODE_CREATE)
            if comm.rank == 0:
                fh.Write_at(0, np.arange(4, dtype=np.uint8))  # header
            comm.barrier()
            fh.Set_view(4, np.int32)
            fh.Write_at_all(comm.rank, np.array([100 + comm.rank],
                                                dtype=np.int32))
            fh.Close()
            return True
        spmd(2)(body)
        raw = open(path, "rb").read()
        assert list(raw[:4]) == [0, 1, 2, 3]
        assert np.frombuffer(raw[4:], dtype=np.int32).tolist() == [100, 101]

    def test_missing_file_raises_everywhere(self, tmp_path):
        path = str(tmp_path / "nope.bin")

        def body(comm):
            mpi.File.Open(comm, path, mpi.MODE_RDONLY)
        with pytest.raises(FileNotFoundError):
            spmd(2)(body)

    def test_short_read(self, tmp_path):
        path = str(tmp_path / "short.bin")
        open(path, "wb").write(b"1234")

        def body(comm):
            fh = mpi.File.Open(comm, path, mpi.MODE_RDONLY)
            buf = np.zeros(100)
            fh.Read_at(0, buf)
        with pytest.raises(mpi.MPIError):
            spmd(1)(body)

    def test_closed_file_rejected(self, tmp_path):
        path = str(tmp_path / "c.bin")

        def body(comm):
            with mpi.File.Open(comm, path,
                               mpi.MODE_RDWR | mpi.MODE_CREATE) as fh:
                pass
            fh.Write_at(0, np.zeros(1))
        with pytest.raises(mpi.MPIError):
            spmd(2)(body)


class TestPrefixBuffers:
    def test_scan(self):
        def body(comm):
            send = np.array([float(comm.rank + 1), 1.0])
            recv = np.zeros(2)
            comm.Scan(send, recv)
            return recv.tolist()
        results = spmd(4)(body)
        assert results[0] == [1.0, 1.0]
        assert results[3] == [10.0, 4.0]

    def test_exscan(self):
        def body(comm):
            send = np.array([float(comm.rank + 1)])
            recv = np.full(1, -99.0)
            comm.Exscan(send, recv)
            return recv[0]
        results = spmd(4)(body)
        assert results[0] == -99.0      # untouched on rank 0
        assert results[1:] == [1.0, 3.0, 6.0]

    def test_scan_max(self):
        def body(comm):
            values = [5.0, 1.0, 7.0, 3.0]
            send = np.array([values[comm.rank]])
            recv = np.zeros(1)
            comm.Scan(send, recv, op=mpi.MAX)
            return recv[0]
        assert spmd(4)(body) == [5.0, 5.0, 7.0, 7.0]


class TestReduceScatter:
    def test_object_reduce_scatter(self):
        def body(comm):
            # rank r contributes [r*10 + c for c in range(size)]
            sendobjs = [comm.rank * 10 + c for c in range(comm.size)]
            return comm.reduce_scatter(sendobjs)
        results = spmd(4)(body)
        # rank c receives sum over r of (r*10 + c) = 60 + 4c
        assert results == [60, 64, 68, 72]

    def test_wrong_length(self):
        def body(comm):
            comm.reduce_scatter([1])
        with pytest.raises(ValueError):
            spmd(3)(body)
