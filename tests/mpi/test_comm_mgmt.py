"""Communicator construction: dup, split, groups, Create."""

import pytest

from repro import mpi
from tests.conftest import spmd


class TestDup:
    def test_dup_isolates_traffic(self):
        def body(comm):
            dup = comm.dup()
            # same op issued on both comms; tags/contexts must not mix
            a = comm.allreduce(comm.rank)
            b = dup.allreduce(comm.rank * 10)
            return a, b
        assert spmd(3)(body) == [(3, 30)] * 3

    def test_dup_counter_isolation_per_comm(self):
        def body(comm):
            dup = comm.dup()
            before = comm.traffic_snapshot()
            if comm.rank == 0:
                dup.send(b"z" * 200, 1)
            elif comm.rank == 1:
                dup.recv(source=0)
            dup.barrier()
            delta = comm.traffic_snapshot() - before
            # counters are per *rank*, shared across comms: traffic on
            # the dup is visible from the parent's snapshot too (the
            # isolation dup provides is message matching, not metering)
            return delta.by_peer.get(1, 0), delta.by_peer_recv.get(0, 0)
        results = spmd(2)(body)
        assert results[0][0] >= 200    # rank 0 sent on the dup
        assert results[1][1] >= 200    # rank 1 received from world rank 0

    def test_dup_preserves_rank_size(self):
        def body(comm):
            dup = comm.dup()
            return dup.rank == comm.rank and dup.size == comm.size
        assert all(spmd(4)(body))


class TestSplit:
    def test_split_even_odd(self):
        def body(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return sub.size, sub.rank, sub.allreduce(comm.rank)
        results = spmd(5)(body)
        # evens: ranks 0,2,4 ; odds: 1,3
        assert results[0] == (3, 0, 6)
        assert results[1] == (2, 0, 4)
        assert results[2] == (3, 1, 6)
        assert results[4] == (3, 2, 6)

    def test_split_key_reorders(self):
        def body(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank
        # descending key: world rank 3 becomes sub rank 0
        assert spmd(4)(body) == [3, 2, 1, 0]

    def test_negative_color_gets_none(self):
        def body(comm):
            sub = comm.split(color=0 if comm.rank == 0 else -1)
            return sub is None
        assert spmd(3)(body) == [False, True, True]

    def test_nested_split(self):
        def body(comm):
            half = comm.split(comm.rank // 2)
            quarter = half.split(half.rank % 2)
            return quarter.size
        assert spmd(4)(body) == [1, 1, 1, 1]

    def test_all_negative_colors(self):
        def body(comm):
            return comm.split(color=-1) is None
        assert all(spmd(3)(body))

    def test_duplicate_keys_tie_break_by_world_rank(self):
        def body(comm):
            # same key everywhere: ordering must fall back to the world
            # rank, making the sub-comm rank order deterministic
            sub = comm.split(color=0, key=7)
            return sub.rank, sub.world_rank(sub.rank)
        results = spmd(4)(body)
        assert [r for r, _w in results] == [0, 1, 2, 3]
        assert [w for _r, w in results] == [0, 1, 2, 3]

    def test_duplicate_keys_mixed_with_distinct(self):
        def body(comm):
            # ranks 1,2 share key 0; 0,3 share key 1 -- grouping by key
            # then world rank gives (1,2,0,3)
            key = 0 if comm.rank in (1, 2) else 1
            sub = comm.split(color=0, key=key)
            return sub.rank
        assert spmd(4)(body) == [2, 0, 1, 3]

    def test_split_p2p_source_translation(self):
        def body(comm):
            # reversed sub-comm: sub rank i is world rank size-1-i; the
            # receive path must translate world sources to sub ranks
            sub = comm.split(color=0, key=-comm.rank)
            status = mpi.Status()
            if sub.rank == 0:
                sub.send(b"payload", dest=sub.size - 1)
                return None
            if sub.rank == sub.size - 1:
                sub.recv(source=mpi.ANY_SOURCE, status=status)
                return status.source
            return None
        results = spmd(3)(body)
        # receiver (world rank 0 = sub rank size-1) saw sub rank 0
        assert results[0] == 0


class TestGroup:
    def test_group_incl(self):
        def body(comm):
            group = comm.group.Incl([0, 2])
            sub = comm.Create(group)
            if sub is None:
                return None
            return sub.rank, sub.size
        results = spmd(3)(body)
        assert results == [(0, 2), None, (1, 2)]

    def test_group_excl(self):
        def body(comm):
            group = comm.group.Excl([1])
            sub = comm.Create(group)
            return None if sub is None else sub.allreduce(1)
        assert spmd(3)(body) == [2, None, 2]

    def test_group_rank_of(self):
        def body(comm):
            g = comm.group
            return [g.rank_of(wr) for wr in g.world_ranks()]
        assert spmd(3)(body)[0] == [0, 1, 2]


class TestWorldAccessors:
    def test_world_rank_translation(self):
        def body(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reversed
            return sub.world_rank(0)
        # sub rank 0 is the highest world rank
        assert spmd(3)(body) == [2, 2, 2]

    def test_repr(self):
        def body(comm):
            return repr(comm)
        assert "Intracomm(rank=0" in spmd(2)(body)[0]
