"""Tests for the SPMD thread runtime."""

import numpy as np
import pytest

from repro import mpi
from tests.conftest import spmd


class TestRunSpmd:
    def test_returns_per_rank_results(self):
        results = spmd(4)(lambda comm: comm.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_single_rank(self):
        assert spmd(1)(lambda comm: comm.size) == [1]

    def test_many_ranks(self):
        results = spmd(16)(lambda comm: comm.rank)
        assert results == list(range(16))

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            mpi.run_spmd(lambda comm: None, 0)

    def test_args_and_kwargs_forwarded(self):
        def body(comm, a, b=0):
            return a + b + comm.rank
        results = mpi.run_spmd(body, 2, args=(5,), kwargs={"b": 7})
        assert results == [12, 13]

    def test_pass_comm_false_uses_get_comm_world(self):
        def body():
            return mpi.get_comm_world().rank
        assert mpi.run_spmd(body, 3, pass_comm=False) == [0, 1, 2]

    def test_exception_propagates_to_caller(self):
        def body(comm):
            if comm.rank == 1:
                raise ValueError("boom on rank 1")
            comm.barrier()
        with pytest.raises(ValueError, match="boom on rank 1"):
            mpi.run_spmd(body, 3)

    def test_one_failing_rank_aborts_blocked_peers(self):
        # rank 0 waits on a message that never comes; rank 1 dies.  The
        # abort must wake rank 0 instead of waiting for the full timeout.
        def body(comm):
            if comm.rank == 0:
                return comm.recv(source=1)
            raise RuntimeError("dying before send")
        with pytest.raises(RuntimeError, match="dying before send"):
            mpi.run_spmd(body, 2, timeout=30)

    def test_current_context_outside_region_raises(self):
        with pytest.raises(mpi.MPIError):
            mpi.current_context()


class TestDeadlockDetection:
    def test_recv_without_send_times_out(self):
        def body(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=99)  # never sent
            # rank 1 exits immediately -> join still works because rank 0
            # raises DeadlockError
        with pytest.raises(mpi.DeadlockError):
            mpi.run_spmd(body, 2, timeout=0.5)

    def test_mismatched_tag_times_out(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=3)
            else:
                comm.recv(source=0, tag=4)
        with pytest.raises(mpi.DeadlockError):
            mpi.run_spmd(body, 2, timeout=0.5)

    def test_default_timeout_setter(self):
        old = mpi.default_timeout()
        try:
            mpi.set_default_timeout(42.0)
            assert mpi.default_timeout() == 42.0
        finally:
            mpi.set_default_timeout(old)


class TestCounters:
    def test_send_recv_counted(self):
        def body(comm):
            if comm.rank == 0:
                comm.send([1, 2, 3], 1)
            elif comm.rank == 1:
                comm.recv(source=0)
            snap = comm.traffic_snapshot()
            return snap.sends, snap.recvs, snap.bytes_sent
        results = spmd(2)(body)
        assert results[0][0] == 1          # one send from rank 0
        assert results[0][2] > 0
        assert results[1][1] == 1          # one recv on rank 1

    def test_snapshot_delta(self):
        def body(comm):
            before = comm.traffic_snapshot()
            comm.allreduce(1)
            after = comm.traffic_snapshot()
            delta = after - before
            return delta.sends >= 1
        assert all(spmd(4)(body))

    def test_by_peer_accounting(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(b"x" * 100, 1)
                comm.send(b"y" * 50, 2)
            elif comm.rank in (1, 2):
                comm.recv(source=0)
            comm.barrier()
            return dict(comm.counters().snapshot().by_peer)
        peers = spmd(3)(body)[0]
        assert peers[1] > peers[2] > 0

    def test_by_peer_recv_accounting(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(b"x" * 100, 1)
                comm.send(b"y" * 50, 2)
            elif comm.rank in (1, 2):
                comm.recv(source=0)
            comm.barrier()
            snap = comm.counters().snapshot()
            return dict(snap.by_peer_recv), snap.bytes_recvd
        results = spmd(3)(body)
        recv1, total1 = results[1]
        recv2, total2 = results[2]
        # receive side attributes the source peer, mirroring by_peer
        assert recv1[0] > recv2[0] > 0
        assert sum(recv1.values()) == total1
        assert sum(recv2.values()) == total2

    def test_snapshot_delta_diffs_peer_maps(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(b"a" * 10, 1)
            elif comm.rank == 1:
                comm.recv(source=0)
            comm.barrier()
            before = comm.traffic_snapshot()
            if comm.rank == 0:
                comm.send(b"b" * 30, 1)
            elif comm.rank == 1:
                comm.recv(source=0)
            comm.barrier()
            delta = comm.traffic_snapshot() - before
            return dict(delta.by_peer), dict(delta.by_peer_recv)
        results = spmd(2)(body)
        sent0, _ = results[0]
        _, recv1 = results[1]
        # only the second round's bytes appear in the delta
        assert sent0[1] >= 30
        assert recv1[0] >= 30


class TestAbort:
    def test_comm_abort_raises_everywhere(self):
        def body(comm):
            if comm.rank == 0:
                comm.Abort(7)
            else:
                comm.recv(source=0)  # woken by abort
        with pytest.raises(mpi.AbortError):
            mpi.run_spmd(body, 2, timeout=30)
