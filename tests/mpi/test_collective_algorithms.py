"""Differential conformance for the adaptive collective algorithms.

Every algorithm variant (object + buffer paths) runs against a NumPy
oracle across communicator sizes 1-8 and message sizes straddling the
cost-model crossover points; trace spans, metrics and wire counters must
all record the algorithm that actually ran; oversized or truncated
payloads must surface as typed :class:`TruncationError`, and injected
faults (delay / truncate / crash) must abort rather than hang.
"""

import numpy as np
import pytest

from repro import chaos, mpi
from repro.chaos import FaultPlan
from repro.metrics import REGISTRY
from repro.mpi import (COMMODITY_CLUSTER, FLAT, MAX, SUM, Topology,
                       TruncationError, collective_label_catalogue, create_op,
                       select_algorithm)
from repro.mpi.errors import InjectedFault
from repro.trace import TRACER

ALLREDUCE_ALGOS = ("reduce+bcast", "recursive-doubling", "ring",
                   "rabenseifner")
BCAST_ALGOS = ("binomial-tree", "scatter-allgather")
REDUCE_ALGOS = ("binomial-tree", "rank-ordered-tree", "gather-fold", "ring")

#: element counts whose float64 byte sizes straddle the recdbl/segmented
#: (~12 KB at p=8) and binomial/scatter-allgather (~28 KB) crossovers
SIZES = (1, 3, 7, 64, 1000, 6000)

RECOVERABLE = (mpi.RankFailure, mpi.CommRevokedError)


@pytest.fixture(autouse=True)
def reset_global_tuning():
    """No test leaves process-wide tuning or a fault plan behind."""
    yield
    mpi.set_collective_tuning(COMMODITY_CLUSTER, FLAT)
    chaos.uninstall()


def _concat(a, b):
    return a + b


class TestBufferConformance:
    """Forced-algorithm sweeps against NumPy oracles."""

    @pytest.mark.parametrize("nranks", range(1, 9))
    def test_allreduce_every_algorithm(self, nranks):
        def body(comm):
            out = {}
            r = comm.Get_rank()
            for n in SIZES:
                mine = np.arange(n, dtype=np.float64) + r
                for algo in ALLREDUCE_ALGOS:
                    recv = np.empty(n, dtype=np.float64)
                    comm.Allreduce(mine, recv, SUM, algorithm=algo)
                    out[(n, algo, "sum")] = recv
                recv = np.empty(n, dtype=np.float64)
                comm.Allreduce(mine, recv, MAX, algorithm="ring")
                out[(n, "ring", "max")] = recv
            return out

        results = mpi.run_spmd(body, nranks)
        for n in SIZES:
            base = np.arange(n, dtype=np.float64)
            expect_sum = nranks * base + sum(range(nranks))
            expect_max = base + (nranks - 1)
            for out in results:
                for algo in ALLREDUCE_ALGOS:
                    np.testing.assert_allclose(out[(n, algo, "sum")],
                                               expect_sum)
                np.testing.assert_allclose(out[(n, "ring", "max")],
                                           expect_max)

    @pytest.mark.parametrize("nranks", (1, 2, 3, 5, 8))
    def test_reduce_every_algorithm_and_root(self, nranks):
        roots = sorted({0, nranks - 1, nranks // 2})

        def body(comm):
            out = {}
            r = comm.Get_rank()
            for n in (3, 64, 1000):
                mine = np.arange(n, dtype=np.float64) * (r + 1)
                for algo in REDUCE_ALGOS:
                    for root in roots:
                        recv = (np.empty(n, dtype=np.float64)
                                if r == root else None)
                        comm.Reduce(mine, recv, SUM, root=root,
                                    algorithm=algo)
                        if r == root:
                            out[(n, algo, root)] = recv
            return out

        results = mpi.run_spmd(body, nranks)
        scale = sum(range(1, nranks + 1))
        for n in (3, 64, 1000):
            expect = np.arange(n, dtype=np.float64) * scale
            for algo in REDUCE_ALGOS:
                for root in roots:
                    np.testing.assert_allclose(
                        results[root][(n, algo, root)], expect)

    @pytest.mark.parametrize("nranks", (1, 2, 3, 5, 8))
    def test_bcast_every_algorithm_and_root(self, nranks):
        roots = sorted({0, nranks - 1})

        def body(comm):
            out = {}
            r = comm.Get_rank()
            for n in (1, 7, 1000, 6000):
                for algo in BCAST_ALGOS:
                    for root in roots:
                        buf = (np.arange(n, dtype=np.float64) * (root + 1)
                               if r == root
                               else np.zeros(n, dtype=np.float64))
                        comm.Bcast(buf, root=root, algorithm=algo)
                        out[(n, algo, root)] = buf
            return out

        for out in mpi.run_spmd(body, nranks):
            for n in (1, 7, 1000, 6000):
                for algo in BCAST_ALGOS:
                    for root in roots:
                        np.testing.assert_allclose(
                            out[(n, algo, root)],
                            np.arange(n, dtype=np.float64) * (root + 1))


class TestObjectConformance:
    """Lowercase (pickled-object) paths, including non-commutative ops."""

    @pytest.mark.parametrize("nranks", (1, 2, 3, 5, 8))
    def test_object_allreduce_and_bcast(self, nranks):
        def body(comm):
            out = {}
            r = comm.Get_rank()
            for algo in ("reduce+bcast", "recursive-doubling"):
                out[("sum", algo)] = comm.allreduce(r + 1, SUM,
                                                    algorithm=algo)
            # ndarray objects delegate to the buffer engines, so the
            # segmented algorithms are legal here too
            arr = np.full(100, float(r))
            for algo in ALLREDUCE_ALGOS:
                out[("arr", algo)] = comm.allreduce(arr, SUM,
                                                    algorithm=algo)
            payload = {"blob": list(range(50)), "rank": 0}
            for algo in BCAST_ALGOS:
                got = comm.bcast(payload if r == 0 else None, root=0,
                                 algorithm=algo)
                out[("bcast", algo)] = got
            return out

        expect_arr = np.full(100, float(sum(range(nranks))))
        for out in mpi.run_spmd(body, nranks):
            for algo in ("reduce+bcast", "recursive-doubling"):
                assert out[("sum", algo)] == sum(range(1, nranks + 1))
            for algo in ALLREDUCE_ALGOS:
                np.testing.assert_allclose(out[("arr", algo)], expect_arr)
            for algo in BCAST_ALGOS:
                assert out[("bcast", algo)] == {"blob": list(range(50)),
                                                "rank": 0}

    @pytest.mark.parametrize("nranks", (2, 3, 5, 8))
    def test_noncommutative_ops_preserve_rank_order(self, nranks):
        """String concatenation distinguishes every evaluation order."""
        concat = create_op(_concat, commute=False, name="concat")

        def body(comm):
            word = f"[{comm.Get_rank()}]"
            out = {}
            for algo in ("reduce+bcast", "recursive-doubling"):
                out[("allreduce", algo)] = comm.allreduce(word, concat,
                                                          algorithm=algo)
            for algo in ("rank-ordered-tree", "gather-fold"):
                out[("reduce", algo)] = comm.reduce(word, concat, root=0,
                                                    algorithm=algo)
            out["auto"] = comm.reduce(word, concat, root=0)
            return out

        expect = "".join(f"[{i}]" for i in range(nranks))
        results = mpi.run_spmd(body, nranks)
        for out in results:
            for algo in ("reduce+bcast", "recursive-doubling"):
                assert out[("allreduce", algo)] == expect
        for algo in ("rank-ordered-tree", "gather-fold"):
            assert results[0][("reduce", algo)] == expect
        assert results[0]["auto"] == expect


class TestHierarchical:
    """Topology-aware variants over the same p2p substrate."""

    TOPOLOGIES = {
        5: [(0,), (1, 2, 3, 4)],
        8: [(0, 1, 2, 3), (4, 5, 6, 7)],
    }

    @pytest.mark.parametrize("nranks", (5, 8))
    def test_hierarchical_matches_flat(self, nranks):
        topo = Topology(intra_node_groups=self.TOPOLOGIES[nranks])

        def body(comm):
            comm.set_collective_tuning(topology=topo)
            r = comm.Get_rank()
            out = {"obj": comm.allreduce(r + 1, SUM,
                                         algorithm="hierarchical")}
            mine = np.arange(200, dtype=np.float64) + r
            recv = np.empty(200, dtype=np.float64)
            comm.Allreduce(mine, recv, SUM, algorithm="hierarchical")
            out["buf"] = recv
            buf = (np.arange(64, dtype=np.float64) if r == 2
                   else np.zeros(64, dtype=np.float64))
            comm.Bcast(buf, root=2, algorithm="hierarchical")
            out["bcast_buf"] = buf
            out["bcast_obj"] = comm.bcast(
                "deep payload" if r == 3 else None, root=3,
                algorithm="hierarchical")
            return out

        expect = (nranks * np.arange(200, dtype=np.float64)
                  + sum(range(nranks)))
        for out in mpi.run_spmd(body, nranks):
            assert out["obj"] == sum(range(1, nranks + 1))
            np.testing.assert_allclose(out["buf"], expect)
            np.testing.assert_allclose(out["bcast_buf"],
                                       np.arange(64, dtype=np.float64))
            assert out["bcast_obj"] == "deep payload"

    def test_interleaved_groups(self):
        """Groups need not be contiguous rank runs."""
        topo = Topology(intra_node_groups=[(0, 2, 4, 6), (1, 3, 5, 7)])

        def body(comm):
            comm.set_collective_tuning(topology=topo)
            recv = np.empty(32, dtype=np.float64)
            comm.Allreduce(np.full(32, float(comm.Get_rank())), recv,
                           SUM, algorithm="hierarchical")
            return recv

        for recv in mpi.run_spmd(body, 8):
            np.testing.assert_allclose(recv, np.full(32, float(sum(range(8)))))

    def test_module_level_topology_is_inherited(self):
        mpi.set_collective_tuning(
            topology=Topology(intra_node_groups=[(0, 1), (2, 3)]))

        def body(comm):
            return comm.allreduce(comm.Get_rank(), SUM,
                                  algorithm="hierarchical")

        assert mpi.run_spmd(body, 4) == [6] * 4


class TestAutoSelection:
    """The adaptive path must agree with the cost model's argmin."""

    def test_allreduce_crossover(self):
        model = COMMODITY_CLUSTER
        small_n, large_n = 8, 200_000

        def body(comm):
            out = {}
            for n in (small_n, large_n):
                recv = np.empty(n, dtype=np.float64)
                before = comm.traffic_snapshot()
                comm.Allreduce(np.ones(n), recv, SUM)
                delta = comm.traffic_snapshot() - before
                out[n] = delta.algorithms_used("Allreduce")
            return out

        results = mpi.run_spmd(body, 8)
        small_pred = select_algorithm("allreduce", 8, 8 * small_n, model,
                                      count=small_n)
        large_pred = select_algorithm("allreduce", 8, 8 * large_n, model,
                                      count=large_n)
        for out in results:
            assert out[small_n] == {small_pred}
            assert out[large_n] == {large_pred}
        # the acceptance bar: at least two distinct algorithms selected,
        # at the sizes the cost model says they should flip
        assert small_pred != large_pred
        assert small_pred == "recursive-doubling"
        assert large_pred in ("ring", "rabenseifner")

    def test_bcast_crossover(self):
        model = COMMODITY_CLUSTER
        small_n, large_n = 8, 100_000

        def body(comm):
            out = {}
            for n in (small_n, large_n):
                buf = np.ones(n, dtype=np.float64)
                before = comm.traffic_snapshot()
                comm.Bcast(buf, root=0)
                out[n] = (comm.traffic_snapshot()
                          - before).algorithms_used("Bcast")
            return out

        small_pred = select_algorithm("bcast", 8, 8 * small_n, model,
                                      count=small_n)
        large_pred = select_algorithm("bcast", 8, 8 * large_n, model,
                                      count=large_n)
        for out in mpi.run_spmd(body, 8):
            assert out[small_n] == {small_pred}
            assert out[large_n] == {large_pred}
        assert (small_pred, large_pred) == ("binomial-tree",
                                            "scatter-allgather")

    def test_object_path_without_hint_stays_small(self):
        """Per-rank pickle sizes must not feed selection; a missing
        size_hint means the small-message algorithm on every rank."""
        def body(comm):
            # rank-dependent payload size on the root only: selection
            # still has to be SPMD-consistent
            payload = "x" * 100_000 if comm.Get_rank() == 0 else None
            before = comm.traffic_snapshot()
            got = comm.bcast(payload, root=0)
            algos = (comm.traffic_snapshot() - before).algorithms_used("bcast")
            return len(got), algos

        for n, algos in mpi.run_spmd(body, 4):
            assert n == 100_000
            assert algos == {"binomial-tree"}


class TestValidation:
    """Forced-algorithm and topology misuse fails loudly, SPMD-wide."""

    def test_bad_requests_raise_value_error(self):
        concat = create_op(_concat, commute=False, name="concat")

        def body(comm):
            checks = {}
            arr = np.ones(4)
            recv = np.empty(4)

            def expect_value_error(key, fn):
                try:
                    fn()
                    checks[key] = "no error"
                except ValueError:
                    checks[key] = "ValueError"
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    checks[key] = type(exc).__name__

            expect_value_error(
                "unknown", lambda: comm.allreduce(1, SUM,
                                                  algorithm="segmented"))
            expect_value_error(
                "local-forced", lambda: comm.allreduce(1, SUM,
                                                       algorithm="local"))
            expect_value_error(
                "ring-on-object",
                lambda: comm.allreduce([1, 2], SUM, algorithm="ring"))
            expect_value_error(
                "hier-no-topology",
                lambda: comm.Allreduce(arr, recv, SUM,
                                       algorithm="hierarchical"))
            expect_value_error(
                "noncomm-ring",
                lambda: comm.allreduce("x", concat, algorithm="ring"))
            expect_value_error(
                "noncomm-binomial-reduce",
                lambda: comm.reduce("x", concat, root=0,
                                    algorithm="binomial-tree"))
            expect_value_error(
                "wrong-size-topology",
                lambda: comm.set_collective_tuning(
                    topology=Topology(intra_node_groups=[(0, 1), (2, 3)])))
            return checks

        for checks in mpi.run_spmd(body, 2):
            assert checks == {k: "ValueError" for k in checks}, checks


class TestTruncation:
    """Size mismatches surface as TruncationError, never corruption."""

    def test_allgatherv_oversized_block_aborts_typed(self):
        """A rank whose declared count disagrees (oversized payload on
        the wire) must trigger TruncationError on the receiver instead
        of silently overwriting the neighbouring block."""
        recv_store = {}

        def body(comm):
            r = comm.Get_rank()
            # rank 1 believes its block is 6 elements; everyone else
            # expects 4 -- the 6-element payload would overflow into
            # block 2's slot without the size check
            counts = [4, 6, 4] if r == 1 else [4, 4, 4]
            displs = [0, 4, 8]
            send = np.full(counts[r], float(r + 1))
            recv = np.full(12, -1.0)
            recv_store[r] = recv
            comm.Allgatherv(send, recv, counts, displs)

        with pytest.raises(TruncationError, match="oversized"):
            mpi.run_spmd(body, 3, timeout=30.0)
        # rank 2's own block (slot 8:12) was written locally before the
        # ring started; the oversized block-1 payload must not have
        # spilled into it
        np.testing.assert_allclose(recv_store[2][8:12], np.full(4, 3.0))

    def test_chaos_truncate_aborts_every_algorithm(self):
        """In-flight truncation surfaces as TruncationError (no hang,
        no silent wrong answer) for each buffer algorithm."""
        cases = [
            lambda c: c.Allreduce(np.ones(1000), np.empty(1000), SUM,
                                  algorithm="ring"),
            lambda c: c.Allreduce(np.ones(1000), np.empty(1000), SUM,
                                  algorithm="rabenseifner"),
            lambda c: c.Allreduce(np.ones(1000), np.empty(1000), SUM,
                                  algorithm="recursive-doubling"),
            lambda c: c.Bcast(np.ones(1000), root=0,
                              algorithm="scatter-allgather"),
            lambda c: c.Bcast(np.ones(1000), root=0,
                              algorithm="binomial-tree"),
            lambda c: c.Reduce(np.ones(1000), np.empty(1000), SUM,
                               root=0, algorithm="ring"),
            lambda c: c.Alltoall(np.ones(16), np.empty(16)),
        ]
        for i, coll in enumerate(cases):
            chaos.install(FaultPlan(seed=100 + i)
                          .truncate(keep=0.5, prob=1.0, op="send"))
            try:
                with pytest.raises(TruncationError):
                    mpi.run_spmd(coll, 4, timeout=30.0)
            finally:
                chaos.uninstall()

    def test_chaos_delay_does_not_corrupt(self):
        """Late senders reshape timing, not results: FIFO ordering keeps
        every algorithm correct under injected delays."""
        chaos.install(FaultPlan(seed=7, max_sleep=0.005)
                      .delay(seconds=0.002, prob=0.5, op="send"))

        def body(comm):
            out = {}
            mine = np.arange(256, dtype=np.float64) + comm.Get_rank()
            for algo in ALLREDUCE_ALGOS:
                recv = np.empty(256, dtype=np.float64)
                comm.Allreduce(mine, recv, SUM, algorithm=algo)
                out[algo] = recv
            return out

        expect = 4 * np.arange(256, dtype=np.float64) + 6
        for out in mpi.run_spmd(body, 4, timeout=30.0):
            for algo in ALLREDUCE_ALGOS:
                np.testing.assert_allclose(out[algo], expect)


class TestCrashRecovery:
    """A dead rank aborts the new variants typed; shrink-and-redo works."""

    @pytest.mark.parametrize("algo", ALLREDUCE_ALGOS)
    def test_allreduce_variants_survive_crash(self, algo):
        victim = 2

        def body(comm):
            if comm.rank == victim:
                raise InjectedFault(victim, 0, "scripted collective crash")

            def coll(c):
                recv = np.empty(64, dtype=np.float64)
                c.Allreduce(np.ones(64), recv, SUM, algorithm=algo)
                return recv

            try:
                while True:
                    coll(comm)
            except RECOVERABLE:
                comm.revoke()
            new = comm.shrink()
            return new.size, coll(new)

        out = mpi.run_spmd(body, 4, timeout=30.0, fault_mode="failstop")
        assert isinstance(out[victim], InjectedFault)
        for r in (0, 1, 3):
            size, recv = out[r]
            assert size == 3
            np.testing.assert_allclose(recv, np.full(64, 3.0))

    def test_hierarchical_survives_crash_with_retuned_topology(self):
        victim = 1

        def body(comm):
            if comm.rank == victim:
                raise InjectedFault(victim, 0, "scripted collective crash")
            try:
                while True:
                    comm.set_collective_tuning(
                        topology=Topology(intra_node_groups=[(0, 1),
                                                             (2, 3)]))
                    comm.allreduce(1, SUM, algorithm="hierarchical")
            except RECOVERABLE:
                comm.revoke()
            new = comm.shrink()
            # the old topology no longer fits the shrunk size: declare a
            # fresh one before forcing the hierarchical variant again
            new.set_collective_tuning(
                topology=Topology(intra_node_groups=[(0, 1), (2,)]))
            return new.size, new.allreduce(1, SUM, algorithm="hierarchical")

        out = mpi.run_spmd(body, 4, timeout=30.0, fault_mode="failstop")
        assert isinstance(out[victim], InjectedFault)
        for r in (0, 2, 3):
            assert out[r] == (3, 3)


class TestLabelAudit:
    """Spans, metrics and wire counters must agree on what actually ran,
    and every label must come from the published catalogue."""

    @pytest.fixture(autouse=True)
    def observability(self):
        TRACER.clear()
        TRACER.enable()
        REGISTRY.clear()
        REGISTRY.enable()
        yield
        TRACER.disable()
        TRACER.clear()
        REGISTRY.disable()
        REGISTRY.clear()

    @staticmethod
    def _exercise(comm):
        """One call to every collective in the public surface."""
        p, r = comm.Get_size(), comm.Get_rank()
        big = np.ones(100_000, dtype=np.float64)
        comm.barrier()
        comm.bcast({"k": 1} if r == 0 else None, root=0)
        comm.scatter(list(range(p)) if r == 0 else None, root=0)
        comm.gather(r, root=0)
        comm.allgather(r)
        comm.alltoall([r] * p)
        comm.scan(r, SUM)
        comm.exscan(r, SUM)
        comm.reduce(r, SUM, root=0)
        comm.reduce(f"[{r}]", create_op(_concat, commute=False,
                                        name="concat"), root=0)
        comm.allreduce(r, SUM)
        comm.reduce_scatter([r] * p)
        buf = np.full(4, float(r))
        out4, outp = np.empty(4), np.empty(4 * p)
        comm.Bcast(buf, root=0)
        comm.Bcast(big, root=0)                      # large: segmented
        comm.Scatter(np.ones(4 * p) if r == 0 else None, out4, root=0)
        comm.Scatterv(np.ones(4 * p) if r == 0 else None, [4] * p,
                      [4 * i for i in range(p)], out4, root=0)
        comm.Gather(buf, outp if r == 0 else None, root=0)
        comm.Gatherv(buf, outp if r == 0 else None, [4] * p,
                     [4 * i for i in range(p)], root=0)
        comm.Allgather(buf, outp)
        comm.Allgatherv(buf, outp, [4] * p, [4 * i for i in range(p)])
        comm.Alltoall(np.ones(p), np.empty(p))
        comm.Scan(buf, out4, SUM)
        comm.Exscan(buf, out4, SUM)
        comm.Reduce(buf, out4 if r == 0 else None, SUM, root=0)
        comm.Allreduce(buf, out4, SUM)
        comm.Allreduce(big, np.empty_like(big), SUM)  # large: segmented
        return comm.traffic_snapshot()

    def test_labels_match_catalogue_and_counters(self):
        snaps = mpi.run_spmd(self._exercise, 4)
        catalogue = collective_label_catalogue()

        spans = [ev for ev in TRACER.events() if ev[1] == "mpi.coll"]
        assert spans, "no collective spans recorded"
        for _ph, _cat, op, rank, _ts, _dur, args in spans:
            assert op in catalogue, f"span op {op!r} not in catalogue"
            assert args["algorithm"] in catalogue[op], \
                f"{op} span labelled {args['algorithm']!r}, " \
                f"legal: {catalogue[op]}"
            assert args["size"] == 4

        # counters saw exactly what the spans saw, per (op, algorithm)
        span_counts = {}
        for _ph, _cat, op, rank, _ts, _dur, args in spans:
            key = (op, args["algorithm"])
            span_counts[key] = span_counts.get(key, 0) + 1
        counter_counts = {}
        for snap in snaps:
            for key, n in snap.coll_calls.items():
                counter_counts[key] = counter_counts.get(key, 0) + n
        assert counter_counts == span_counts

        # metrics carry the same label pairs with the same call counts
        metric_counts = {}
        for m in REGISTRY.metrics():
            if m.name == "mpi.coll.calls":
                labels = dict(m.labels)
                metric_counts[(labels["op"], labels["algorithm"])] = m.value
        assert metric_counts == counter_counts

        # the adaptive ops actually exercised more than one algorithm
        all_algos = set()
        for snap in snaps:
            all_algos |= snap.algorithms_used("Allreduce")
            all_algos |= snap.algorithms_used("Bcast")
        assert len(all_algos) >= 2, all_algos
        # and the dishonest "binary-tree"/mislabeled lineage is gone:
        # nothing outside the catalogue ever appears
        legal = {lbl for labels in catalogue.values() for lbl in labels}
        assert set(a for _op, a in counter_counts) <= legal

    def test_local_label_at_size_one(self):
        """Adaptive ops degenerate to 'local' on a singleton comm; the
        fixed-algorithm ops keep their static labels."""
        snaps = mpi.run_spmd(self._exercise, 1)
        catalogue = collective_label_catalogue()
        for op in ("bcast", "Bcast", "reduce", "Reduce", "allreduce",
                   "Allreduce"):
            assert snaps[0].algorithms_used(op) == {"local"}, op
        for (op, algo), _n in snaps[0].coll_calls.items():
            assert algo in catalogue[op]
