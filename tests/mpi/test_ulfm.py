"""ULFM-style fault-tolerance primitives: revoke / agree / shrink."""

import numpy as np
import pytest

from repro import mpi
from repro.mpi.errors import InjectedFault


class TestRevoke:
    def test_revoke_poisons_future_ops(self):
        def body(comm):
            if comm.rank == 0:
                comm.revoke()
            # every member, including the revoker, sees the typed error
            with pytest.raises(mpi.CommRevokedError):
                while True:
                    comm.barrier()
            return "poisoned"

        assert mpi.run_spmd(body, 3, timeout=30.0) == ["poisoned"] * 3

    def test_revoke_wakes_blocked_waiter(self):
        """An in-flight recv on the revoked comm wakes with the typed
        error inside the 0.25 s detection period, not at the timeout."""
        import time

        def body(comm):
            if comm.rank == 0:
                t0 = time.monotonic()
                with pytest.raises(mpi.CommRevokedError):
                    comm.recv(source=1, tag=5)
                return time.monotonic() - t0
            time.sleep(0.3)
            comm.revoke()
            return 0.0

        latency = mpi.run_spmd(body, 2, timeout=60.0)[0]
        assert latency < 5.0

    def test_revoke_is_idempotent(self):
        def body(comm):
            comm.revoke()
            comm.revoke()
            with pytest.raises(mpi.CommRevokedError):
                comm.bcast(1, root=0)

        mpi.run_spmd(body, 2, timeout=30.0)

    def test_revoke_does_not_cascade_to_derived(self):
        """Revoking the parent leaves a split-off child usable, and
        vice versa (ULFM revocation is per-communicator)."""
        def body(comm):
            child = comm.split(comm.rank % 2, comm.rank)
            sync = comm.split(0, comm.rank)
            # drain the parent-ctx split traffic on every rank before
            # revoking, so no rank is mid-split when the flag lands
            sync.barrier()
            if comm.rank == 0:
                comm.revoke()
            with pytest.raises(mpi.CommRevokedError):
                while True:
                    comm.barrier()           # parent is dead
            return child.allreduce(1)        # child still works

        out = mpi.run_spmd(body, 4, timeout=30.0)
        assert out == [2, 2, 2, 2]

    def test_child_revoke_leaves_parent_alive(self):
        def body(comm):
            child = comm.split(0, comm.rank)
            child.revoke()
            with pytest.raises(mpi.CommRevokedError):
                child.barrier()
            return comm.allreduce(1)

        assert mpi.run_spmd(body, 3, timeout=30.0) == [3, 3, 3]


class TestAgree:
    def test_default_combine_is_bitwise_and(self):
        def body(comm):
            return comm.agree(0b110 if comm.rank else 0b011)

        assert mpi.run_spmd(body, 3, timeout=30.0) == [0b010] * 3

    def test_custom_combine(self):
        def body(comm):
            return comm.agree({comm.rank},
                              combine=lambda vs: sorted(set().union(*vs)))

        assert mpi.run_spmd(body, 3, timeout=30.0) == [[0, 1, 2]] * 3

    def test_agree_works_on_revoked_comm(self):
        """Agreement is the one collective that must survive revocation:
        recovery is negotiated after the revoke."""
        def body(comm):
            comm.revoke()
            return comm.agree(1)

        assert mpi.run_spmd(body, 3, timeout=30.0) == [1, 1, 1]

    def test_agree_survives_member_death(self):
        """Survivors decide identically even when a member dies instead
        of contributing."""
        def body(comm):
            if comm.rank == 1:
                raise InjectedFault(1, 0, "dies before agree")
            return comm.agree({comm.rank},
                              combine=lambda vs: sorted(set().union(*vs)))

        out = mpi.run_spmd(body, 3, timeout=30.0, fault_mode="failstop")
        assert out[0] == out[2] == [0, 2]
        assert isinstance(out[1], InjectedFault)


class TestShrink:
    def test_shrink_densely_reranks_survivors(self):
        def body(comm):
            if comm.rank == 1:
                raise InjectedFault(1, 0, "dies before shrink")
            try:
                comm.allreduce(1)
            except (mpi.RankFailure, mpi.CommRevokedError):
                comm.revoke()
            new = comm.shrink()
            # dense re-rank in parent order: world 0 -> 0, world 2 -> 1
            total = new.allreduce(new.rank)
            return new.rank, new.size, total

        out = mpi.run_spmd(body, 3, timeout=30.0, fault_mode="failstop")
        assert out[0] == (0, 2, 1)
        assert out[2] == (1, 2, 1)

    def test_shrink_without_failures_is_identity_group(self):
        def body(comm):
            new = comm.shrink()
            return new.size, new.allreduce(1)

        assert mpi.run_spmd(body, 3, timeout=30.0) == [(3, 3)] * 3

    def test_shrunk_comm_supports_p2p_and_collectives(self):
        def body(comm):
            if comm.rank == 0:
                raise InjectedFault(0, 0, "root dies")
            try:
                comm.bcast(None, root=0)
            except (mpi.RankFailure, mpi.CommRevokedError):
                comm.revoke()
            new = comm.shrink()
            if new.rank == 0:
                new.send(np.arange(4.0), dest=1, tag=2)
                return new.allreduce(10)
            got = new.recv(source=0, tag=2)
            assert np.array_equal(got, np.arange(4.0))
            return new.allreduce(10)

        out = mpi.run_spmd(body, 3, timeout=30.0, fault_mode="failstop")
        assert out[1] == out[2] == 20

    def test_repeated_shrink_after_second_death(self):
        """A rank that dies after the first recovery is handled by
        shrinking again (the ULFM escalation loop)."""
        def body(comm):
            if comm.rank == 3:
                raise InjectedFault(3, 0, "first death")
            try:
                comm.allreduce(1)
            except (mpi.RankFailure, mpi.CommRevokedError):
                comm.revoke()
            c1 = comm.shrink()
            if comm.rank == 2:
                raise InjectedFault(2, 1, "second death")
            try:
                while True:
                    c1.allreduce(1)
            except (mpi.RankFailure, mpi.CommRevokedError):
                c1.revoke()
            c2 = c1.shrink()
            return c2.size, c2.allreduce(1)

        out = mpi.run_spmd(body, 4, timeout=30.0, fault_mode="failstop")
        assert out[0] == out[1] == (2, 2)
