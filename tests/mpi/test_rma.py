"""One-sided communication (RMA) tests."""

import numpy as np
import pytest

from repro import mpi
from tests.conftest import spmd


class TestWindow:
    def test_put_neighbor(self):
        def body(comm):
            exposed = np.zeros(4)
            win = mpi.Win.Create(exposed, comm)
            win.Fence()
            right = (comm.rank + 1) % comm.size
            win.Put(np.full(4, float(comm.rank)), right)
            win.Fence()
            win.Free()
            return exposed.tolist()
        results = spmd(3)(body)
        # rank r's window was written by its left neighbor
        assert results[0] == [2.0] * 4
        assert results[1] == [0.0] * 4
        assert results[2] == [1.0] * 4

    def test_get(self):
        def body(comm):
            exposed = np.full(3, float(comm.rank * 10))
            win = mpi.Win.Create(exposed, comm)
            win.Fence()
            out = np.zeros(3)
            win.Get(out, 0)
            win.Fence()
            win.Free()
            return out.tolist()
        assert spmd(3)(body) == [[0.0] * 3] * 3

    def test_accumulate_sums_all_origins(self):
        def body(comm):
            exposed = np.zeros(2)
            win = mpi.Win.Create(exposed, comm)
            win.Fence()
            win.Accumulate(np.array([1.0, float(comm.rank)]), 0)
            win.Fence()
            win.Free()
            return exposed.tolist()
        results = spmd(4)(body)
        assert results[0] == [4.0, 0.0 + 1 + 2 + 3]

    def test_offset_put(self):
        def body(comm):
            exposed = np.zeros(8)
            win = mpi.Win.Create(exposed, comm)
            win.Fence()
            win.Put(np.ones(2) * (comm.rank + 1), 0,
                    target_offset=2 * comm.rank)
            win.Fence()
            win.Free()
            return exposed.tolist()
        got = spmd(4)(body)[0]
        assert got == [1, 1, 2, 2, 3, 3, 4, 4]

    def test_passive_lock(self):
        def body(comm):
            exposed = np.zeros(1)
            win = mpi.Win.Create(exposed, comm)
            if comm.rank != 0:
                win.Lock(0)
                win.Accumulate(np.ones(1), 0)
                win.Unlock(0)
            comm.barrier()
            win.Free()
            return exposed[0]
        results = spmd(4)(body)
        assert results[0] == 3.0

    def test_outside_epoch_rejected(self):
        def body(comm):
            exposed = np.zeros(1)
            win = mpi.Win.Create(exposed, comm)
            win.Put(np.ones(1), 0)
        with pytest.raises(mpi.MPIError):
            spmd(2)(body)

    def test_overrun_rejected(self):
        def body(comm):
            win = mpi.Win.Create(np.zeros(2), comm)
            win.Fence()
            win.Put(np.ones(5), 0)
        with pytest.raises(mpi.MPIError):
            spmd(2)(body)

    def test_traffic_counted_with_direction(self):
        def body(comm):
            win = mpi.Win.Create(np.zeros(10), comm)
            win.Fence()
            if comm.rank == 1:
                win.Put(np.ones(10), 0)
            win.Fence()
            win.Free()
            snap = comm.traffic_snapshot()
            return dict(snap.by_peer)
        peers = spmd(2)(body)
        assert peers[1].get(0, 0) >= 80  # 10 float64 moved 1 -> 0

    def test_two_windows_isolated(self):
        def body(comm):
            a = np.zeros(2)
            b = np.zeros(2)
            wa = mpi.Win.Create(a, comm)
            wb = mpi.Win.Create(b, comm)
            wa.Fence(); wb.Fence()
            if comm.rank == 1:
                wa.Put(np.ones(2), 0)
                wb.Put(np.full(2, 7.0), 0)
            wa.Fence(); wb.Fence()
            wa.Free(); wb.Free()
            return a.tolist(), b.tolist()
        a0, b0 = spmd(2)(body)[0]
        assert a0 == [1.0, 1.0] and b0 == [7.0, 7.0]
