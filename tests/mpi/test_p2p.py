"""Point-to-point communication tests (object and buffer paths)."""

import numpy as np
import pytest

from repro import mpi
from tests.conftest import spmd


class TestObjectPath:
    def test_send_recv_roundtrip(self):
        def body(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)
        assert spmd(2)(body)[1] == {"a": 7, "b": 3.14}

    def test_any_source_any_tag(self):
        def body(comm):
            if comm.rank == 0:
                got = [comm.recv() for _ in range(2)]
                return sorted(got)
            comm.send(comm.rank, 0, tag=comm.rank)
            return None
        assert spmd(3)(body)[0] == [1, 2]

    def test_status_populated(self):
        def body(comm):
            if comm.rank == 1:
                comm.send("payload", 0, tag=5)
                return None
            status = mpi.Status()
            comm.recv(source=mpi.ANY_SOURCE, tag=mpi.ANY_TAG, status=status)
            return status.Get_source(), status.Get_tag()
        assert spmd(2)(body)[0] == (1, 5)

    def test_non_overtaking_same_pair(self):
        """Messages between a fixed (source, dest, tag) pair stay ordered."""
        def body(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.send(i, 1, tag=0)
                return None
            return [comm.recv(source=0, tag=0) for _ in range(50)]
        assert spmd(2)(body)[1] == list(range(50))

    def test_tag_selective_matching(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("first", 1, tag=1)
                comm.send("second", 1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)  # out of arrival order
            first = comm.recv(source=0, tag=1)
            return first, second
        assert spmd(2)(body)[1] == ("first", "second")

    def test_sendrecv(self):
        def body(comm):
            partner = 1 - comm.rank
            return comm.sendrecv(f"from {comm.rank}", dest=partner,
                                 source=partner)
        assert spmd(2)(body) == ["from 1", "from 0"]

    def test_rank_out_of_range(self):
        def body(comm):
            comm.send(1, dest=5)
        with pytest.raises(mpi.RankError):
            mpi.run_spmd(body, 2)

    def test_negative_tag_rejected(self):
        def body(comm):
            comm.send(1, dest=0, tag=-3)
        with pytest.raises(mpi.TagError):
            mpi.run_spmd(body, 2)


class TestNonblocking:
    def test_isend_irecv(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2], 1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()
        assert spmd(2)(body)[1] == [1, 2]

    def test_irecv_test_polls(self):
        def body(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0)
                ok, _val = req.test()
                first_poll = ok
                comm.send("ready", 0)
                value = req.wait()
                return first_poll, value
            comm.recv(source=1)   # wait until rank 1 polled once
            comm.send("data", 1)
            return None
        first_poll, value = spmd(2)(body)[1]
        assert first_poll is False
        assert value == "data"

    def test_waitall(self):
        def body(comm):
            if comm.rank == 0:
                reqs = [comm.isend(i, 1, tag=i) for i in range(4)]
                mpi.waitall(reqs)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in range(4)]
            return mpi.waitall(reqs)
        assert spmd(2)(body)[1] == [0, 1, 2, 3]


class TestProbe:
    def test_probe_returns_metadata_without_consuming(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("x" * 10, 1, tag=9)
                return None
            st = comm.probe(source=0)
            value = comm.recv(source=0, tag=st.Get_tag())
            return st.Get_tag(), value
        assert spmd(2)(body)[1] == (9, "x" * 10)

    def test_iprobe_false_when_empty(self):
        def body(comm):
            return comm.iprobe(source=0 if comm.rank else 1)
        assert spmd(2)(body) == [False, False]


class TestBufferPath:
    def test_send_recv_float64(self):
        def body(comm):
            if comm.rank == 0:
                data = np.arange(100, dtype=np.float64)
                comm.Send(data, dest=1, tag=13)
                return None
            data = np.empty(100, dtype=np.float64)
            comm.Recv(data, source=0, tag=13)
            return data.sum()
        assert spmd(2)(body)[1] == pytest.approx(4950.0)

    def test_explicit_datatype_spec(self):
        def body(comm):
            if comm.rank == 0:
                data = np.arange(10, dtype="i")
                comm.Send([data, mpi.INT], dest=1, tag=77)
                return None
            data = np.empty(10, dtype="i")
            comm.Recv([data, mpi.INT], source=0, tag=77)
            return data.tolist()
        assert spmd(2)(body)[1] == list(range(10))

    def test_truncation_error(self):
        def body(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(100), dest=1)
            else:
                small = np.zeros(10)
                comm.Recv(small, source=0)
        with pytest.raises(mpi.TruncationError):
            mpi.run_spmd(body, 2)

    def test_partial_fill_smaller_message(self):
        def body(comm):
            if comm.rank == 0:
                comm.Send(np.ones(5), dest=1)
                return None
            buf = np.zeros(10)
            comm.Recv(buf, source=0)
            return buf.tolist()
        assert spmd(2)(body)[1] == [1.0] * 5 + [0.0] * 5

    def test_isend_irecv_buffers(self):
        def body(comm):
            if comm.rank == 0:
                comm.Isend(np.full(4, 2.5), dest=1).wait()
                return None
            buf = np.zeros(4)
            comm.Irecv(buf, source=0).wait()
            return buf.tolist()
        assert spmd(2)(body)[1] == [2.5] * 4

    def test_sendrecv_buffers(self):
        def body(comm):
            partner = 1 - comm.rank
            out = np.full(3, float(comm.rank))
            buf = np.zeros(3)
            comm.Sendrecv(out, dest=partner, recvbuf=buf, source=partner)
            return buf[0]
        assert spmd(2)(body) == [1.0, 0.0]

    def test_status_count_elements(self):
        def body(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(25), dest=1)
                return None
            buf = np.zeros(25)
            st = mpi.Status()
            comm.Recv(buf, source=0, status=st)
            return st.Get_count(mpi.DOUBLE)
        assert spmd(2)(body)[1] == 25

    def test_complex_dtype(self):
        def body(comm):
            if comm.rank == 0:
                comm.Send(np.array([1 + 2j, 3 - 4j]), dest=1)
                return None
            buf = np.zeros(2, dtype=np.complex128)
            comm.Recv(buf, source=0)
            return buf.tolist()
        assert spmd(2)(body)[1] == [1 + 2j, 3 - 4j]

    def test_2d_array_flattened(self):
        def body(comm):
            if comm.rank == 0:
                comm.Send(np.arange(6.0).reshape(2, 3), dest=1)
                return None
            buf = np.zeros((2, 3))
            comm.Recv(buf, source=0)
            return buf[1, 2]
        assert spmd(2)(body)[1] == 5.0


class TestOutOfBandPath:
    """ndarray-bearing objects travel as pickle-protocol-5 out-of-band
    frames: one isolation copy at send time, zero-copy read-only views at
    receive time."""

    def test_object_with_arrays_roundtrips(self):
        def body(comm):
            if comm.rank == 0:
                obj = {"x": np.arange(50, dtype=np.float64),
                       "y": np.ones((3, 4), dtype=np.int32),
                       "label": "frames"}
                comm.send(obj, 1, tag=21)
                return None
            got = comm.recv(0, tag=21)
            return (got["x"].sum(), got["y"].shape, got["label"])
        assert spmd(2)(body)[1] == (1225.0, (3, 4), "frames")

    def test_received_arrays_are_readonly_views(self):
        def body(comm):
            if comm.rank == 0:
                comm.send({"a": np.arange(64, dtype=np.float64)}, 1, tag=22)
                return None
            a = comm.recv(0, tag=22)["a"]
            # zero-copy on receive: the array is a view of the sender's
            # single isolation copy, and that copy is immutable
            return (a.flags.writeable, a.base is not None,
                    a.flags.owndata)
        writeable, has_base, owndata = spmd(2)(body)[1]
        assert writeable is False
        assert has_base is True
        assert owndata is False

    def test_sender_mutation_after_send_is_isolated(self):
        def body(comm):
            if comm.rank == 0:
                data = np.arange(32, dtype=np.float64)
                comm.send({"a": data}, 1, tag=23)
                data[:] = -1.0  # after-send mutation must not leak
                return None
            return comm.recv(0, tag=23)["a"].copy()
        got = spmd(2)(body)[1]
        assert np.array_equal(got, np.arange(32, dtype=np.float64))

    def test_plain_objects_keep_single_blob_path(self):
        def body(comm):
            if comm.rank == 0:
                comm.send({"n": 5, "s": "no arrays here"}, 1, tag=24)
            else:
                assert comm.recv(0, tag=24)["n"] == 5
            # snapshot inside the rank: works on both transports (on the
            # process backend the world does not outlive the rank)
            return comm.counters().snapshot()

        snap = spmd(2)(body)[1]
        # a pickle-5 dump of an ndarray-free object emits no frames, so
        # the wire kind stays "pickle" -- assert via counters that only
        # one small message moved
        assert snap.recvs == 1 and snap.bytes_recvd < 256

    def test_readonly_view_copy_is_writable(self):
        def body(comm):
            if comm.rank == 0:
                comm.send({"a": np.zeros(16)}, 1, tag=25)
                return None
            a = comm.recv(0, tag=25)["a"]
            with pytest.raises((ValueError, RuntimeError)):
                a[0] = 1.0
            b = a.copy()
            b[0] = 1.0  # the standard escape hatch
            return b[0]
        assert spmd(2)(body)[1] == 1.0
