"""Crash propagation through each collective algorithm and RMA epochs.

For every collective: one rank dies mid-program (fail-stop), survivors
must observe a *typed* recoverable error (RankFailure or, once someone
revoked, CommRevokedError) -- never a hang, never a wrong answer -- and
after revoke + shrink the same collective succeeds on the survivor set.
"""

import numpy as np
import pytest

from repro import mpi
from repro.mpi import SUM
from repro.mpi.errors import InjectedFault

RECOVERABLE = (mpi.RankFailure, mpi.CommRevokedError)


def _crash_then_recover(collective_on, nranks=4, victim=2):
    """Run a collective with a dead member, then redo it post-shrink.

    ``collective_on(comm)`` runs the collective and returns a value;
    returns the per-rank list of (shrunk_size, value) for survivors.
    """
    def body(comm):
        if comm.rank == victim:
            raise InjectedFault(victim, 0, "scripted collective crash")
        try:
            while True:
                collective_on(comm)
        except RECOVERABLE:
            comm.revoke()
        new = comm.shrink()
        return new.size, collective_on(new)

    out = mpi.run_spmd(body, nranks, timeout=30.0, fault_mode="failstop")
    assert isinstance(out[victim], InjectedFault)
    return [out[r] for r in range(nranks) if r != victim]


class TestCollectiveCrash:
    def test_bcast(self):
        for size, val in _crash_then_recover(
                lambda c: c.bcast("payload" if c.rank == 0 else None,
                                  root=0)):
            assert size == 3 and val == "payload"

    def test_reduce(self):
        for size, val in _crash_then_recover(
                lambda c: c.reduce(c.rank + 1, SUM, root=0)):
            assert size == 3 and val in (None, 6)  # 1+2+3 on the root

    def test_allreduce(self):
        for size, val in _crash_then_recover(
                lambda c: c.allreduce(1, SUM)):
            assert size == 3 and val == 3

    def test_alltoall(self):
        for size, val in _crash_then_recover(
                lambda c: c.alltoall([c.rank * 10 + j
                                      for j in range(c.size)])):
            assert size == 3
            # rank r receives j*10 + r from every sender j
            assert len({v % 10 for v in val}) == 1
            assert [v // 10 for v in val] == [0, 1, 2]

    def test_scan(self):
        for size, val in _crash_then_recover(
                lambda c: c.scan(c.rank + 1, SUM)):
            assert size == 3
            # inclusive prefix over ranks 0..new_rank
            assert val in (1, 3, 6)

    def test_allgather(self):
        for size, val in _crash_then_recover(
                lambda c: c.allgather(c.rank)):
            assert size == 3 and val == [0, 1, 2]

    def test_barrier(self):
        for size, val in _crash_then_recover(lambda c: c.barrier()):
            assert size == 3

    def test_root_death_during_bcast(self):
        """The root itself dying is the worst case: nobody has the
        payload; survivors still unblock with a typed error."""
        def body(comm):
            if comm.rank == 0:
                raise InjectedFault(0, 0, "root dies")
            try:
                while True:
                    comm.bcast(None, root=0)
            except RECOVERABLE:
                comm.revoke()
            new = comm.shrink()
            return new.allreduce(1)

        out = mpi.run_spmd(body, 3, timeout=30.0, fault_mode="failstop")
        assert out[1] == out[2] == 2


class TestRmaEpochCrash:
    def test_fence_epoch_with_dead_rank(self):
        """A fence (collective barrier) with a dead member raises a
        typed error; after shrink a fresh window works."""
        def body(comm):
            if comm.rank == 1:
                raise InjectedFault(1, 0, "dies before fence")
            buf = np.full(4, float(comm.rank))
            try:
                win = mpi.Win.Create(buf, comm)  # collective create
                while True:
                    win.Fence()
            except RECOVERABLE:
                comm.revoke()
            new = comm.shrink()
            buf2 = np.full(4, float(new.rank))
            win2 = mpi.Win.Create(buf2, new)
            win2.Fence()
            got = np.zeros(4)
            win2.Get(got, target_rank=(new.rank + 1) % new.size)
            win2.Fence()
            return float(got[0])

        out = mpi.run_spmd(body, 3, timeout=30.0, fault_mode="failstop")
        # survivors 0,2 -> new ranks 0,1; each reads its neighbour
        assert out[0] == 1.0 and out[2] == 0.0

    def test_put_to_dead_rank_window(self):
        """One-sided ops targeting a failed rank's window fail typed,
        not silently."""
        def body(comm):
            if comm.rank == 1:
                raise InjectedFault(1, 0, "dies before window create")
            buf = np.zeros(2)
            try:
                while True:
                    win = mpi.Win.Create(buf, comm)   # collective: hangs
                    win.Fence()
            except RECOVERABLE:
                comm.revoke()
            return "typed"

        out = mpi.run_spmd(body, 3, timeout=30.0, fault_mode="failstop")
        assert out[0] == out[2] == "typed"
