"""Collective operation tests, object and buffer paths, multiple sizes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpi
from tests.conftest import spmd

SIZES = [1, 2, 3, 4, 7]


@pytest.mark.parametrize("p", SIZES)
class TestObjectCollectives:
    def test_bcast(self, p):
        def body(comm):
            obj = {"key": [1, 2.5]} if comm.rank == 0 else None
            return comm.bcast(obj, root=0)
        assert spmd(p)(body) == [{"key": [1, 2.5]}] * p

    def test_bcast_nonzero_root(self, p):
        root = p - 1

        def body(comm):
            obj = "hello" if comm.rank == root else None
            return comm.bcast(obj, root=root)
        assert spmd(p)(body) == ["hello"] * p

    def test_scatter(self, p):
        def body(comm):
            data = [(i + 1) ** 2 for i in range(comm.size)] \
                if comm.rank == 0 else None
            return comm.scatter(data, root=0)
        assert spmd(p)(body) == [(i + 1) ** 2 for i in range(p)]

    def test_gather(self, p):
        def body(comm):
            return comm.gather(comm.rank * 2, root=0)
        results = spmd(p)(body)
        assert results[0] == [2 * i for i in range(p)]
        assert all(r is None for r in results[1:])

    def test_allgather(self, p):
        def body(comm):
            return comm.allgather(comm.rank + 100)
        expected = [100 + i for i in range(p)]
        assert spmd(p)(body) == [expected] * p

    def test_alltoall(self, p):
        def body(comm):
            sendobjs = [(comm.rank, dest) for dest in range(comm.size)]
            return comm.alltoall(sendobjs)
        results = spmd(p)(body)
        for dest in range(p):
            assert results[dest] == [(src, dest) for src in range(p)]

    def test_reduce_sum(self, p):
        def body(comm):
            return comm.reduce(comm.rank + 1, op=mpi.SUM, root=0)
        assert spmd(p)(body)[0] == p * (p + 1) // 2

    def test_allreduce_max(self, p):
        def body(comm):
            return comm.allreduce(comm.rank * 3, op=mpi.MAX)
        assert spmd(p)(body) == [3 * (p - 1)] * p

    def test_scan(self, p):
        def body(comm):
            return comm.scan(comm.rank + 1)
        expected = [sum(range(1, i + 2)) for i in range(p)]
        assert spmd(p)(body) == expected

    def test_exscan(self, p):
        def body(comm):
            return comm.exscan(comm.rank + 1)
        results = spmd(p)(body)
        assert results[0] is None
        for i in range(1, p):
            assert results[i] == sum(range(1, i + 1))

    def test_barrier_completes(self, p):
        def body(comm):
            for _ in range(3):
                comm.barrier()
            return True
        assert all(spmd(p)(body))


class TestReduceSemantics:
    def test_noncommutative_op_rank_order(self):
        concat = mpi.create_op(lambda a, b: a + b, commute=False)

        def body(comm):
            return comm.reduce(f"[{comm.rank}]", op=concat, root=0)
        assert spmd(4)(body)[0] == "[0][1][2][3]"

    def test_maxloc(self):
        def body(comm):
            values = [5.0, 9.0, 2.0, 9.0]
            return comm.allreduce((values[comm.rank], comm.rank),
                                  op=mpi.MAXLOC)
        results = spmd(4)(body)
        assert results == [(9.0, 1)] * 4   # ties resolve to lower index

    def test_minloc(self):
        def body(comm):
            values = [5.0, 9.0, 2.0, 2.0]
            return comm.allreduce((values[comm.rank], comm.rank),
                                  op=mpi.MINLOC)
        assert spmd(4)(body) == [(2.0, 2)] * 4

    def test_logical_ops(self):
        def body(comm):
            every = comm.allreduce(comm.rank < 3, op=mpi.LAND)
            some = comm.allreduce(comm.rank == 2, op=mpi.LOR)
            return every, some
        assert spmd(4)(body) == [(False, True)] * 4

    def test_prod(self):
        def body(comm):
            return comm.allreduce(comm.rank + 1, op=mpi.PROD)
        assert spmd(4)(body) == [24] * 4

    def test_bitwise(self):
        def body(comm):
            return comm.allreduce(1 << comm.rank, op=mpi.BOR)
        assert spmd(4)(body) == [0b1111] * 4


@pytest.mark.parametrize("p", SIZES)
class TestBufferCollectives:
    def test_bcast(self, p):
        def body(comm):
            buf = np.arange(16.0) if comm.rank == 0 else np.zeros(16)
            comm.Bcast(buf, root=0)
            return buf.sum()
        assert spmd(p)(body) == [pytest.approx(120.0)] * p

    def test_scatter_gather_roundtrip(self, p):
        def body(comm):
            n = 8
            send = None
            if comm.rank == 0:
                send = np.arange(comm.size * n, dtype=np.float64)
            recv = np.zeros(n)
            comm.Scatter(send, recv, root=0)
            out = np.zeros(comm.size * n) if comm.rank == 0 else \
                np.zeros(0)
            comm.Gather(recv, out if comm.rank == 0 else np.zeros(0),
                        root=0)
            return out.tolist() if comm.rank == 0 else recv[0]
        results = spmd(p)(body)
        assert results[0] == list(np.arange(p * 8.0))

    def test_allgather(self, p):
        def body(comm):
            send = np.full(4, float(comm.rank))
            recv = np.zeros(4 * comm.size)
            comm.Allgather(send, recv)
            return recv
        results = spmd(p)(body)
        expected = np.repeat(np.arange(float(p)), 4)
        for r in results:
            assert np.allclose(r, expected)

    def test_allgatherv_nonuniform(self, p):
        def body(comm):
            count = comm.rank + 1
            counts = [r + 1 for r in range(comm.size)]
            displs = np.concatenate([[0], np.cumsum(counts)[:-1]]).tolist()
            send = np.full(count, float(comm.rank))
            recv = np.zeros(sum(counts))
            comm.Allgatherv(send, recv, counts, displs)
            return recv
        results = spmd(p)(body)
        expected = np.concatenate(
            [np.full(r + 1, float(r)) for r in range(p)])
        for r in results:
            assert np.allclose(r, expected)

    def test_alltoall(self, p):
        def body(comm):
            send = np.arange(comm.size * 2, dtype=np.float64) \
                + 100 * comm.rank
            recv = np.zeros(comm.size * 2)
            comm.Alltoall(send, recv)
            return recv
        results = spmd(p)(body)
        for dest in range(p):
            expected = np.concatenate(
                [100 * src + np.array([2 * dest, 2 * dest + 1.0])
                 for src in range(p)])
            assert np.allclose(results[dest], expected)

    def test_reduce(self, p):
        def body(comm):
            send = np.full(5, float(comm.rank + 1))
            recv = np.zeros(5)
            comm.Reduce(send, recv, op=mpi.SUM, root=0)
            return recv[0]
        assert spmd(p)(body)[0] == p * (p + 1) / 2

    def test_allreduce_min(self, p):
        def body(comm):
            send = np.array([float(comm.rank), -float(comm.rank)])
            recv = np.zeros(2)
            comm.Allreduce(send, recv, op=mpi.MIN)
            return recv.tolist()
        assert spmd(p)(body) == [[0.0, -(p - 1.0)]] * p


class TestCollectiveProperties:
    @given(values=st.lists(st.integers(-1000, 1000), min_size=4,
                           max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_allreduce_equals_serial_sum(self, values):
        def body(comm):
            return comm.allreduce(values[comm.rank])
        assert spmd(4)(body) == [sum(values)] * 4

    @given(data=st.lists(st.floats(-1e6, 1e6), min_size=3, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_allgather_preserves_order(self, data):
        def body(comm):
            return comm.allgather(data[comm.rank])
        assert spmd(3)(body) == [data] * 3

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_alltoall_is_transpose(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 100, size=(4, 4)).tolist()

        def body(comm):
            return comm.alltoall(matrix[comm.rank])
        results = spmd(4)(body)
        for j in range(4):
            assert results[j] == [matrix[i][j] for i in range(4)]
