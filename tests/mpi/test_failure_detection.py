"""Failure detection: heartbeats/leases, typed RankFailure, and the
REPRO_MPI_DEADLINE watchdog with its per-rank pending-op dump."""

import threading
import time

import numpy as np
import pytest

from repro import mpi
from repro.mpi.errors import InjectedFault
from repro.mpi.runtime import World


class TestDeadlineEnv:
    def test_deadline_caps_blocking_recv(self, monkeypatch):
        """REPRO_MPI_DEADLINE caps every blocking wait below the caller's
        timeout and the error dumps each rank's pending op + seq."""
        monkeypatch.setenv("REPRO_MPI_DEADLINE", "0.6")

        def body(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=9)   # rank 1 never sends

        t0 = time.monotonic()
        with pytest.raises(mpi.DeadlockError) as ei:
            mpi.run_spmd(body, 2, timeout=60.0)
        assert time.monotonic() - t0 < 10.0, "deadline did not cap the wait"
        msg = str(ei.value)
        assert "pending operations by rank" in msg
        assert "rank 0" in msg and "recv(source=1" in msg
        assert "op #" in msg and "heartbeat" in msg

    def test_deadline_ignored_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_MPI_DEADLINE", raising=False)

        def body(comm):
            if comm.rank == 0:
                with pytest.raises(mpi.DeadlockError):
                    comm.recv(source=1, tag=9)

        mpi.run_spmd(body, 2, timeout=0.5)

    def test_bad_deadline_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MPI_DEADLINE", "not-a-number")
        with pytest.raises(ValueError):
            World(2)


class TestRankFailureDetection:
    def test_recv_from_dead_rank_is_typed_and_bounded(self):
        """A blocked recv from a crashed rank raises RankFailure naming
        the dead rank and the pending op, well inside the 60 s timeout
        (the 0.25 s wake period is the detection latency bound)."""
        caught = {}

        def body(comm):
            if comm.rank == 1:
                raise InjectedFault(1, 0, "scripted death")
            t0 = time.monotonic()
            try:
                comm.recv(source=1, tag=3)
            except mpi.RankFailure as exc:
                caught["latency"] = time.monotonic() - t0
                caught["exc"] = exc

        mpi.run_spmd(body, 2, timeout=60.0, fault_mode="failstop")
        exc = caught["exc"]
        assert exc.rank == 1
        assert "recv(source=1" in exc.op
        assert caught["latency"] < 5.0

    def test_collective_with_dead_rank_fails_typed(self):
        outcomes = []

        def body(comm):
            if comm.rank == 2:
                raise InjectedFault(2, 0, "dead before allreduce")
            try:
                comm.allreduce(comm.rank)
            except (mpi.RankFailure, mpi.CommRevokedError) as exc:
                outcomes.append(type(exc).__name__)
                # a survivor may be blocked on another *survivor* (the
                # collective's internal topology), so the ULFM protocol
                # is to revoke: everyone wakes with a typed error
                comm.revoke()

        mpi.run_spmd(body, 3, timeout=30.0, fault_mode="failstop")
        assert len(outcomes) == 2


class TestRankLeases:
    def test_dead_thread_lease_marks_rank_failed(self):
        """A registered rank thread that dies without reporting (not even
        an InjectedFault) is detected by the lease check from a peer's
        blocking wait."""
        world = World(2, timeout=30.0)
        t = threading.Thread(target=lambda: None)
        t.start()
        t.join()  # thread is now dead without having reported anything
        world.register_rank_thread(1, t)
        assert not world.is_failed(1)
        world.check_leases()
        assert world.is_failed(1)
        assert "died without reporting" in repr(world.failure_cause(1))

    def test_unregistered_worlds_keep_deadlock_semantics(self):
        """Without lease registration a missing sender still surfaces as
        DeadlockError (plain run_spmd behaviour is unchanged)."""
        def body(comm):
            if comm.rank == 0:
                with pytest.raises(mpi.DeadlockError):
                    comm.recv(source=1, tag=1)

        mpi.run_spmd(body, 2, timeout=0.5)

    def test_lease_failure_unblocks_peer_recv(self):
        """End-to-end: peer blocked in recv wakes with RankFailure once
        the lease check notices the dead thread."""
        world = World(2, timeout=30.0)
        from repro.mpi.comm import Intracomm
        from repro.mpi.runtime import RankContext

        holder = {}

        def rank1():
            ctx = RankContext(world, 1)
            ctx.bind()
            holder["ready"] = True
            # dies "silently": no mark_failed, no abort

        t1 = threading.Thread(target=rank1)
        t1.start()
        t1.join()
        world.register_rank_thread(1, t1)

        def rank0():
            ctx = RankContext(world, 0)
            ctx.bind()
            comm = Intracomm(ctx, [0, 1])
            try:
                comm.recv(source=1, tag=7)
            except mpi.RankFailure as exc:
                holder["exc"] = exc

        t0 = threading.Thread(target=rank0)
        t0.start()
        t0.join(timeout=10.0)
        assert not t0.is_alive()
        assert holder["exc"].rank == 1
