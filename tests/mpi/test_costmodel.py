"""Alpha-beta cost model tests."""

import pytest

from repro.mpi import COMMODITY_CLUSTER, ETHERNET, FAST_INTERCONNECT, CostModel


class TestCostModel:
    def test_latency_dominates_small_messages(self):
        m = COMMODITY_CLUSTER
        many_small = m.comm_time(n_messages=1000, n_bytes=1000)
        one_big = m.comm_time(n_messages=1, n_bytes=1000)
        assert many_small > one_big

    def test_bandwidth_dominates_large_messages(self):
        m = COMMODITY_CLUSTER
        t = m.comm_time(n_messages=1, n_bytes=10**9)
        assert t == pytest.approx(m.alpha + 10**9 / m.beta)
        assert t > 0.1  # ~0.4s at 2.5 GB/s

    def test_interconnect_ordering(self):
        msgs, nbytes = 100, 10**7
        assert FAST_INTERCONNECT.comm_time(msgs, nbytes) < \
            COMMODITY_CLUSTER.comm_time(msgs, nbytes) < \
            ETHERNET.comm_time(msgs, nbytes)

    def test_total_time_includes_compute(self):
        m = CostModel("test", alpha=1e-6, beta=1e9, flop_rate=1e9)
        assert m.total_time(0, 0, 1e9) == pytest.approx(1.0)
        assert m.total_time(1, 1e9, 1e9) == pytest.approx(2.0 + 1e-6)

    def test_frozen(self):
        with pytest.raises(Exception):
            COMMODITY_CLUSTER.alpha = 0.0
