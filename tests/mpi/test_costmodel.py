"""Alpha-beta cost model and collective algorithm selection tests."""

import pytest

from repro.mpi import (COLLECTIVE_ALGORITHMS, COMMODITY_CLUSTER, ETHERNET,
                       FAST_INTERCONNECT, FLAT, CostModel, Topology,
                       collective_costs, crossover_size, select_algorithm)


class TestCostModel:
    def test_latency_dominates_small_messages(self):
        m = COMMODITY_CLUSTER
        many_small = m.comm_time(n_messages=1000, n_bytes=1000)
        one_big = m.comm_time(n_messages=1, n_bytes=1000)
        assert many_small > one_big

    def test_bandwidth_dominates_large_messages(self):
        m = COMMODITY_CLUSTER
        t = m.comm_time(n_messages=1, n_bytes=10**9)
        assert t == pytest.approx(m.alpha + 10**9 / m.beta)
        assert t > 0.1  # ~0.4s at 2.5 GB/s

    def test_interconnect_ordering(self):
        msgs, nbytes = 100, 10**7
        assert FAST_INTERCONNECT.comm_time(msgs, nbytes) < \
            COMMODITY_CLUSTER.comm_time(msgs, nbytes) < \
            ETHERNET.comm_time(msgs, nbytes)

    def test_total_time_includes_compute(self):
        m = CostModel("test", alpha=1e-6, beta=1e9, flop_rate=1e9)
        assert m.total_time(0, 0, 1e9) == pytest.approx(1.0)
        assert m.total_time(1, 1e9, 1e9) == pytest.approx(2.0 + 1e-6)

    def test_frozen(self):
        with pytest.raises(Exception):
            COMMODITY_CLUSTER.alpha = 0.0

    def test_intra_node_terms_default_to_network(self):
        m = CostModel("bare", alpha=1e-6, beta=1e9)
        assert m.intra_comm_time(3, 3000) == m.comm_time(3, 3000)
        fast = CostModel("fast", alpha=1e-6, beta=1e9,
                         intra_alpha=1e-7, intra_beta=1e10)
        assert fast.intra_comm_time(3, 3000) < fast.comm_time(3, 3000)


class TestTopology:
    def test_flat_variants(self):
        assert FLAT.is_flat
        assert Topology(intra_node_groups=[(0, 1, 2, 3)]).is_flat
        assert Topology(intra_node_groups=[(0,), (1,), (2,)]).is_flat
        assert not Topology(intra_node_groups=[(0, 1), (2, 3)]).is_flat

    def test_normalization(self):
        t = Topology(intra_node_groups=[(3, 2), (), (1, 0)])
        assert t.intra_node_groups == ((0, 1), (2, 3))
        assert t.nranks == 4

    def test_validate(self):
        t = Topology(intra_node_groups=[(0, 1), (2, 3)])
        t.validate(4)
        with pytest.raises(ValueError):
            t.validate(5)
        with pytest.raises(ValueError):
            Topology(intra_node_groups=[(0, 1), (1, 2)]).validate(3)

    def test_groups_for_degrades_to_flat_on_mismatch(self):
        t = Topology(intra_node_groups=[(0, 1), (2, 3)])
        assert t.groups_for(4) == [[0, 1], [2, 3]]
        assert t.groups_for(6) is None
        assert FLAT.groups_for(4) is None


class TestSelection:
    P = 8
    M = COMMODITY_CLUSTER

    def test_p1_is_local(self):
        for coll in COLLECTIVE_ALGORITHMS:
            assert select_algorithm(coll, 1, 10**6, self.M) == "local"

    def test_small_allreduce_prefers_recursive_doubling(self):
        assert select_algorithm("allreduce", self.P, 64, self.M,
                                count=8) == "recursive-doubling"

    def test_large_allreduce_prefers_segmented(self):
        algo = select_algorithm("allreduce", self.P, 8 * 10**6, self.M,
                                count=10**6)
        assert algo in ("ring", "rabenseifner")

    def test_noncommutative_allreduce_is_reduce_bcast(self):
        assert select_algorithm("allreduce", self.P, 8 * 10**6, self.M,
                                commutative=False,
                                count=10**6) == "reduce+bcast"

    def test_small_bcast_prefers_binomial(self):
        assert select_algorithm("bcast", self.P, 64, self.M,
                                count=8) == "binomial-tree"

    def test_large_bcast_prefers_scatter_allgather(self):
        assert select_algorithm("bcast", self.P, 8 * 10**6, self.M,
                                count=10**6) == "scatter-allgather"

    def test_noncommutative_reduce_is_rank_ordered(self):
        assert select_algorithm("reduce", self.P, 64, self.M,
                                commutative=False) == "rank-ordered-tree"

    def test_segmented_needs_count(self):
        costs = collective_costs("allreduce", self.P, 8 * 10**6, self.M)
        assert "ring" not in costs and "rabenseifner" not in costs

    def test_topology_enables_hierarchical(self):
        topo = Topology(intra_node_groups=[(0, 1, 2, 3), (4, 5, 6, 7)])
        costs = collective_costs("allreduce", self.P, 256, self.M,
                                 topology=topo)
        assert "hierarchical" in costs
        # with a cheap intra-node path, hierarchy beats flat
        # recursive doubling at small sizes
        assert costs["hierarchical"] < costs["recursive-doubling"]
        flat_costs = collective_costs("allreduce", self.P, 256, self.M)
        assert "hierarchical" not in flat_costs

    def test_crossover_matches_formulas(self):
        # recursive-doubling loses to rabenseifner once the bandwidth
        # saving beats the extra latency: n* = lg * alpha * beta /
        # (lg - 2 + 2/p) for power-of-two p
        lg, p = 3, self.P
        predicted = lg * self.M.alpha * self.M.beta / (lg - 2 + 2 / p)
        found = crossover_size("allreduce", "recursive-doubling",
                               "rabenseifner", p, self.M)
        assert found is not None
        assert found == pytest.approx(predicted, rel=0.01)
        small = select_algorithm("allreduce", p, found // 2, self.M,
                                 count=found // 16)
        large = select_algorithm("allreduce", p, 4 * found, self.M,
                                 count=found // 2)
        assert small == "recursive-doubling"
        assert large in ("rabenseifner", "ring")

    def test_selection_is_deterministic(self):
        for nbytes in (1, 100, 10**4, 10**6):
            a = select_algorithm("allreduce", 6, nbytes, self.M,
                                 count=max(6, nbytes // 8))
            b = select_algorithm("allreduce", 6, nbytes, self.M,
                                 count=max(6, nbytes // 8))
            assert a == b

    def test_unknown_collective_raises(self):
        with pytest.raises(ValueError):
            collective_costs("allgather", 4, 100, self.M)
