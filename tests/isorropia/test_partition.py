"""Partitioning algorithm tests."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import galeri, isorropia, tpetra
from repro.isorropia import (edge_cut, graph_partition, imbalance,
                             partition_1d, partition_quality, rcb_partition,
                             repartition)
from tests.conftest import spmd


class TestPartition1D:
    def test_uniform_weights_balanced(self):
        parts = partition_1d(np.ones(12), 3)
        assert np.bincount(parts).tolist() == [4, 4, 4]

    def test_contiguity(self):
        parts = partition_1d(np.random.default_rng(0).random(50), 5)
        # contiguous: part ids are nondecreasing
        assert np.all(np.diff(parts) >= 0)

    def test_weighted_balance(self):
        w = np.array([10.0, 1, 1, 1, 1, 1, 1, 1, 1, 1])
        parts = partition_1d(w, 2)
        sizes = np.zeros(2)
        np.add.at(sizes, parts, w)
        assert abs(sizes[0] - sizes[1]) <= 10.0

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            partition_1d(np.array([-1.0, 1.0]), 2)

    def test_zero_total_weight(self):
        parts = partition_1d(np.zeros(8), 4)
        assert imbalance(parts, 4) == pytest.approx(1.0)

    @given(n=st.integers(1, 100), p=st.integers(1, 8),
           seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_valid_part_ids(self, n, p, seed):
        w = np.random.default_rng(seed).random(n)
        parts = partition_1d(w, p)
        assert parts.min() >= 0 and parts.max() < p


class TestRCB:
    def test_grid_quadrants(self):
        xs, ys = np.meshgrid(np.arange(8), np.arange(8))
        coords = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)
        parts = rcb_partition(coords, 4)
        assert np.bincount(parts).tolist() == [16, 16, 16, 16]
        # points in the same quadrant share a part
        quadrant = (coords[:, 0] >= 4).astype(int) * 2 + \
            (coords[:, 1] >= 4).astype(int)
        for q in range(4):
            assert len(set(parts[quadrant == q])) == 1

    def test_nonpower_of_two(self):
        coords = np.random.default_rng(1).random((90, 2))
        parts = rcb_partition(coords, 3)
        sizes = np.bincount(parts, minlength=3)
        assert sizes.min() >= 25 and sizes.max() <= 35

    def test_weighted_median(self):
        coords = np.arange(10.0).reshape(-1, 1)
        w = np.zeros(10)
        w[0] = 100.0  # all weight at the left
        parts = rcb_partition(coords, 2, weights=w)
        assert parts[0] == 0
        # the heavy point alone balances the left side
        assert np.bincount(parts)[0] <= 2


class TestGraphPartition:
    def test_path_graph_cut_is_minimal_shape(self):
        n = 32
        A = sp.diags([np.ones(n - 1), np.ones(n - 1)], [-1, 1]).tocsr()
        parts = graph_partition(A, 4)
        q = partition_quality(A, parts, 4)
        # a path split into 4 chunks can achieve cut 3
        assert q["edge_cut"] <= 6
        assert q["imbalance"] <= 1.3

    def test_two_cliques_separated(self):
        blocks = sp.block_diag([np.ones((6, 6)), np.ones((6, 6))])
        blocks = sp.csr_matrix(blocks - sp.identity(12))
        bridge = sp.lil_matrix((12, 12))
        bridge[5, 6] = bridge[6, 5] = 1.0
        A = sp.csr_matrix(blocks + bridge)
        parts = graph_partition(A, 2)
        assert len(set(parts[:6])) == 1
        assert len(set(parts[6:])) == 1
        assert parts[0] != parts[6]
        assert edge_cut(A, parts) == pytest.approx(1.0)

    def test_deterministic(self):
        A = sp.random(40, 40, density=0.1, random_state=3)
        A = sp.csr_matrix(abs(A) + abs(A.T))
        assert np.array_equal(graph_partition(A, 3, seed=5),
                              graph_partition(A, 3, seed=5))

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            graph_partition(sp.csr_matrix((3, 4)), 2)


class TestMetrics:
    def test_edge_cut_counts_each_edge_once(self):
        A = sp.csr_matrix(np.array([[0, 1.0], [1.0, 0]]))
        assert edge_cut(A, np.array([0, 1])) == 1.0
        assert edge_cut(A, np.array([0, 0])) == 0.0

    def test_imbalance_perfect(self):
        assert imbalance(np.array([0, 0, 1, 1]), 2) == 1.0

    def test_imbalance_skewed(self):
        assert imbalance(np.array([0, 0, 0, 1]), 2) == 1.5


class TestRepartition:
    def test_graph_repartition_reduces_cut_of_bad_layout(self):
        def body(comm):
            # 2-D Laplacian initially distributed cyclically (bad locality)
            m = tpetra.Map.create_cyclic(64, comm)
            A = galeri.laplace_2d(8, 8, comm, map_=m)
            new_map = repartition(A, method="graph")
            # rebuild on the new map and compare off-rank column counts
            B = galeri.laplace_2d(8, 8, comm, map_=new_map)

            def offrank(M):
                return M.importer.num_remote

            return offrank(A), offrank(B)
        results = spmd(4)(body)
        total_before = sum(r[0] for r in results)
        total_after = sum(r[1] for r in results)
        assert total_after < total_before

    def test_1d_repartition_balances_nnz(self):
        def body(comm):
            A = galeri.laplace_1d(30, comm)
            new_map = repartition(A, method="1d")
            counts = comm.allgather(new_map.num_my_elements)
            return counts
        counts = spmd(3)(body)[0]
        assert sum(counts) == 30
        assert max(counts) - min(counts) <= 2

    def test_rcb_needs_coords(self):
        def body(comm):
            A = galeri.laplace_1d(8, comm)
            repartition(A, method="rcb")
        with pytest.raises(ValueError):
            spmd(1)(body)

    def test_rcb_with_coords(self):
        def body(comm):
            A = galeri.laplace_2d(6, 6, comm)
            xs, ys = np.meshgrid(np.arange(6), np.arange(6))
            coords = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(
                float)
            new_map = repartition(A, method="rcb", coords=coords)
            return new_map.num_my_elements
        counts = spmd(4)(body)
        assert sum(counts) == 36 and max(counts) == 9

    def test_data_moves_correctly_after_repartition(self):
        def body(comm):
            A = galeri.laplace_1d(20, comm)
            x = tpetra.Vector(A.row_map)
            x.local_view[...] = A.row_map.my_gids.astype(float)
            new_map = repartition(A, method="graph")
            imp = tpetra.Import(A.row_map, new_map)
            y = tpetra.Vector(new_map)
            y.import_from(x, imp)
            return bool(np.array_equal(y.local_view,
                                       new_map.my_gids.astype(float)))
        assert all(spmd(3)(body))
