"""Vector / MultiVector tests: reductions vs NumPy, operators, indexing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tpetra
from tests.conftest import spmd


def _ramp(m):
    v = tpetra.Vector(m)
    v.local_view[...] = m.my_gids.astype(float)
    return v


class TestNorms:
    def test_norms_match_numpy(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(50, comm)
            v = _ramp(m)
            return v.norm1(), v.norm2(), v.normInf(), v.meanValue()
        ref = np.arange(50.0)
        for n1, n2, ninf, mean in spmd(4)(body):
            assert n1 == pytest.approx(np.abs(ref).sum())
            assert n2 == pytest.approx(np.linalg.norm(ref))
            assert ninf == pytest.approx(49.0)
            assert mean == pytest.approx(ref.mean())

    def test_dot(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(30, comm)
            v = _ramp(m)
            w = tpetra.Vector(m).putScalar(2.0)
            return v.dot(w)
        ref = 2 * np.arange(30.0).sum()
        assert spmd(3)(body) == [pytest.approx(ref)] * 3

    def test_complex_dot_conjugates(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(10, comm)
            v = tpetra.Vector(m, dtype=np.complex128)
            v.local_view[...] = 1j * (m.my_gids + 1)
            return v.dot(v)
        ref = sum(abs(1j * (k + 1)) ** 2 for k in range(10))
        got = spmd(2)(body)[0]
        assert got == pytest.approx(ref)

    @given(n=st.integers(1, 80), p=st.integers(1, 4),
           seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_norm2_property(self, n, p, seed):
        data = np.random.default_rng(seed).normal(size=n)

        def body(comm):
            m = tpetra.Map.create_contiguous(n, comm)
            v = tpetra.Vector(m)
            v.local_view[...] = data[m.my_gids]
            return v.norm2()
        for got in spmd(p)(body):
            assert got == pytest.approx(np.linalg.norm(data))


class TestBlasOps:
    def test_update_axpby(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(12, comm)
            x = _ramp(m)
            y = tpetra.Vector(m).putScalar(1.0)
            y.update(2.0, x, -1.0)   # y = 2x - y
            return np.asarray(y).tolist()
        ref = (2 * np.arange(12.0) - 1).tolist()
        assert spmd(3)(body)[0] == ref

    def test_scale_abs_reciprocal(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(6, comm)
            v = tpetra.Vector(m)
            v.local_view[...] = -(m.my_gids + 1.0)
            v.scale(2.0)
            a = v.abs()
            r = a.reciprocal()
            return np.asarray(a).tolist(), np.asarray(r).tolist()
        a, r = spmd(2)(body)[0]
        assert a == [2.0 * k for k in range(1, 7)]
        assert r == [1 / (2.0 * k) for k in range(1, 7)]

    def test_elementwise_multiply(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(8, comm)
            x = _ramp(m)
            out = tpetra.Vector(m)
            out.elementwise_multiply(3.0, x, x)
            return np.asarray(out).tolist()
        assert spmd(2)(body)[0] == [3.0 * k * k for k in range(8)]


class TestOperators:
    def test_numpy_like_arithmetic(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(10, comm)
            x = _ramp(m)
            y = (2 * x + 1 - x / 2) ** 2
            return np.asarray(y)
        got = spmd(3)(body)[0]
        ref = (2 * np.arange(10.0) + 1 - np.arange(10.0) / 2) ** 2
        assert np.allclose(got, ref)

    def test_inplace_ops(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(5, comm)
            x = _ramp(m)
            x += 1
            x *= 2
            x -= 1
            x /= 2
            return np.asarray(x)
        assert np.allclose(spmd(1)(body)[0],
                           ((np.arange(5.0) + 1) * 2 - 1) / 2)

    def test_neg(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            return np.asarray(-_ramp(m))
        assert np.allclose(spmd(2)(body)[0], -np.arange(4.0))

    def test_mismatched_maps_rejected(self):
        def body(comm):
            a = _ramp(tpetra.Map.create_contiguous(8, comm))
            b = _ramp(tpetra.Map.create_cyclic(8, comm))
            return a + b
        with pytest.raises(ValueError):
            spmd(2)(body)


class TestGlobalIndexing:
    def test_getitem_local_and_remote(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(16, comm)
            v = _ramp(m)
            return float(v[0]), float(v[15]), v[[3, 9, 12]].tolist()
        for first, last, multi in spmd(4)(body):
            assert (first, last) == (0.0, 15.0)
            assert multi == [3.0, 9.0, 12.0]

    def test_setitem_owned_entries(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(8, comm)
            v = tpetra.Vector(m)
            v[np.arange(8)] = np.arange(8.0) * 3
            return np.asarray(v)
        assert np.allclose(spmd(4)(body)[0], np.arange(8.0) * 3)


class TestGather:
    def test_gather_root_only(self):
        def body(comm):
            m = tpetra.Map.create_cyclic(9, comm)
            v = _ramp(m)
            out = v.gather(root=0)
            return None if out is None else out[:, 0].tolist()
        results = spmd(3)(body)
        assert results[0] == list(np.arange(9.0))
        assert results[1] is None

    def test_asarray_any_distribution(self):
        def body(comm):
            m = tpetra.Map.create_cyclic(7, comm)
            return np.asarray(_ramp(m))
        for arr in spmd(3)(body):
            assert np.allclose(arr, np.arange(7.0))


class TestMultiVector:
    def test_column_views_share_storage(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(6, comm)
            mv = tpetra.MultiVector(m, 2)
            col = mv.vector(1)
            col.putScalar(5.0)
            return mv.local[:, 1].tolist(), mv.local[:, 0].tolist()
        ones, zeros = spmd(2)(body)[0]
        assert set(ones) == {5.0} and set(zeros) == {0.0}

    def test_columnwise_reductions(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(10, comm)
            mv = tpetra.MultiVector(m, 3)
            mv.local[...] = m.my_gids[:, None] * np.array([1.0, 2.0, 3.0])
            return mv.norm2()
        base = np.linalg.norm(np.arange(10.0))
        got = spmd(2)(body)[0]
        assert np.allclose(got, base * np.array([1, 2, 3]))

    def test_randomize_deterministic_per_distribution(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(12, comm)
            a = tpetra.Vector(m).randomize(seed=3)
            b = tpetra.Vector(m).randomize(seed=3)
            return np.array_equal(a.local, b.local)
        assert all(spmd(3)(body))

    def test_shape_validation(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(6, comm)
            tpetra.MultiVector(m, 2, _local=np.zeros((1, 2)))
        with pytest.raises(ValueError):
            spmd(2)(body)
