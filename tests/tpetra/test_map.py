"""Map distribution tests, including property-based partition checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tpetra
from tests.conftest import spmd


class TestContiguous:
    def test_partition_sizes(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(10, comm)
            return m.num_my_elements
        assert spmd(3)(body) == [4, 3, 3]

    def test_gid_lid_roundtrip(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(20, comm)
            return all(m.lid(m.gid(l)) == l
                       for l in range(m.num_my_elements))
        assert all(spmd(4)(body))

    def test_lid_of_remote_is_minus_one(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(10, comm)
            other = (m.max_my_gid + 1) % 10
            return int(m.lid(other))
        results = spmd(2)(body)
        assert all(r == -1 for r in results)

    def test_owner_rank_analytic(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(12, comm)
            return m.owner_rank(np.arange(12)).tolist()
        results = spmd(3)(body)
        assert results[0] == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]

    def test_vectorized_lid(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(8, comm)
            lids = m.lid(np.arange(8))
            return (lids >= 0).sum()
        assert spmd(4)(body) == [2, 2, 2, 2]


class TestCyclic:
    def test_ownership(self):
        def body(comm):
            m = tpetra.Map.create_cyclic(10, comm)
            return m.my_gids.tolist()
        results = spmd(3)(body)
        assert results[0] == [0, 3, 6, 9]
        assert results[1] == [1, 4, 7]
        assert results[2] == [2, 5, 8]

    def test_owner_rank(self):
        def body(comm):
            m = tpetra.Map.create_cyclic(9, comm)
            return m.owner_rank(np.arange(9)).tolist()
        assert spmd(3)(body)[0] == [0, 1, 2] * 3


class TestArbitrary:
    def test_from_gids_and_directory(self):
        def body(comm):
            # reversed block assignment
            n = 12
            per = n // comm.size
            lo = (comm.size - 1 - comm.rank) * per
            m = tpetra.Map.create_from_gids(
                np.arange(lo, lo + per), comm)
            owners = m.owner_rank(np.arange(n))
            return owners.tolist()
        results = spmd(3)(body)
        assert results[0] == [2] * 4 + [1] * 4 + [0] * 4

    def test_bad_partition_rejected(self):
        def body(comm):
            # every rank claims gid 0: overlap
            tpetra.Map.create_from_gids([0], comm)
        with pytest.raises(ValueError):
            spmd(3)(body)

    def test_directory_lids(self):
        def body(comm):
            m = tpetra.Map.create_from_gids(
                np.array([comm.rank * 2 + 1, comm.rank * 2]), comm)
            owners, lids = m.directory().owners_and_lids(
                np.arange(2 * comm.size))
            return owners.tolist(), lids.tolist()
        owners, lids = spmd(3)(body)[0]
        assert owners == [0, 0, 1, 1, 2, 2]
        assert lids == [1, 0, 1, 0, 1, 0]   # gids stored in swapped order


class TestLocalCounts:
    def test_nonuniform(self):
        def body(comm):
            m = tpetra.Map.create_from_local_counts(comm.rank + 1, comm)
            return m.num_global, m.my_gids.tolist()
        results = spmd(3)(body)
        assert results[0] == (6, [0])
        assert results[1] == (6, [1, 2])
        assert results[2] == (6, [3, 4, 5])


class TestComparison:
    def test_same_as(self):
        def body(comm):
            a = tpetra.Map.create_contiguous(10, comm)
            b = tpetra.Map.create_contiguous(10, comm)
            c = tpetra.Map.create_cyclic(10, comm)
            return a.same_as(b), a.same_as(c)
        assert spmd(3)(body) == [(True, False)] * 3

    def test_same_as_is_global_verdict(self):
        def body(comm):
            # identical on rank 0, different elsewhere
            gids = np.arange(comm.rank * 2, comm.rank * 2 + 2)
            a = tpetra.Map.create_from_gids(gids, comm)
            swapped = gids if comm.rank == 0 else gids[::-1]
            b = tpetra.Map.create_from_gids(swapped, comm)
            return a.same_as(b)
        assert spmd(3)(body) == [False] * 3


class TestProperties:
    @given(n=st.integers(1, 200), p=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_contiguous_partitions_exactly(self, n, p):
        def body(comm):
            m = tpetra.Map.create_contiguous(n, comm)
            return m.my_gids
        pieces = spmd(p)(body)
        union = np.sort(np.concatenate(pieces))
        assert np.array_equal(union, np.arange(n))

    @given(n=st.integers(1, 100), p=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_cyclic_partitions_exactly(self, n, p):
        def body(comm):
            m = tpetra.Map.create_cyclic(n, comm)
            return m.my_gids
        pieces = spmd(p)(body)
        union = np.sort(np.concatenate(pieces))
        assert np.array_equal(union, np.arange(n))
