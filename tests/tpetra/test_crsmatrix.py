"""CrsMatrix tests: SpMV vs scipy, assembly, transpose, matmat."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tpetra
from tests.conftest import spmd


def _random_csr(n, density, seed):
    rng = np.random.default_rng(seed)
    nnz = max(1, int(density * n * n))
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.normal(size=nnz)
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()


class TestAssembly:
    def test_local_insert_and_spmv(self):
        def body(comm):
            n = 10
            m = tpetra.Map.create_contiguous(n, comm)
            A = tpetra.CrsMatrix(m)
            for gid in m.my_gids:
                A.insert_global_values(gid, [gid], [2.0])
                if gid + 1 < n:
                    A.insert_global_values(gid, [gid + 1], [1.0])
            A.fillComplete()
            x = tpetra.Vector(m).putScalar(1.0)
            return np.asarray(A @ x)
        got = spmd(3)(body)[0]
        expected = np.full(10, 3.0)
        expected[-1] = 2.0
        assert np.allclose(got, expected)

    def test_duplicate_entries_summed(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            A = tpetra.CrsMatrix(m)
            for gid in m.my_gids:
                A.insert_global_values(gid, [gid], [1.5])
                A.insert_global_values(gid, [gid], [0.5])
            A.fillComplete()
            return np.asarray(A.diagonal())
        assert np.allclose(spmd(2)(body)[0], 2.0)

    def test_nonlocal_insert_shipped_at_fill(self):
        """FE-style assembly: rank 0 inserts into every row."""
        def body(comm):
            n = 3 * comm.size
            m = tpetra.Map.create_contiguous(n, comm)
            A = tpetra.CrsMatrix(m)
            if comm.rank == 0:
                for g in range(n):
                    A.insert_global_values(g, [g], [float(g + 1)])
            A.fillComplete()
            return np.asarray(A.diagonal())
        got = spmd(3)(body)[0]
        assert np.allclose(got, np.arange(1.0, 10.0))

    def test_fill_twice_raises(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            A = tpetra.CrsMatrix(m)
            A.fillComplete()
            A.fillComplete()
        with pytest.raises(RuntimeError):
            spmd(2)(body)

    def test_use_before_fill_raises(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            A = tpetra.CrsMatrix(m)
            A.diagonal()
        with pytest.raises(RuntimeError):
            spmd(2)(body)

    def test_column_out_of_range(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            A = tpetra.CrsMatrix(m)
            if comm.rank == 0:
                A.insert_global_values(0, [99], [1.0])
            A.fillComplete()
        with pytest.raises(IndexError):
            spmd(1)(body)


class TestSpMV:
    @given(n=st.integers(2, 40), p=st.integers(1, 4),
           seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_matches_scipy(self, n, p, seed):
        M = _random_csr(n, 0.2, seed)
        x_ref = np.random.default_rng(seed + 1).normal(size=n)

        def body(comm):
            m = tpetra.Map.create_contiguous(n, comm)
            A = tpetra.CrsMatrix.from_scipy(M, m)
            x = tpetra.Vector(m)
            x.local_view[...] = x_ref[m.my_gids]
            return np.asarray(A @ x)
        for got in spmd(p)(body):
            assert np.allclose(got, M @ x_ref)

    def test_transpose_apply(self):
        M = _random_csr(15, 0.3, 7)
        x_ref = np.random.default_rng(8).normal(size=15)

        def body(comm):
            m = tpetra.Map.create_contiguous(15, comm)
            A = tpetra.CrsMatrix.from_scipy(M, m)
            x = tpetra.Vector(m)
            x.local_view[...] = x_ref[m.my_gids]
            y = tpetra.Vector(m)
            A.apply(x, y, trans=True)
            return np.asarray(y)
        for got in spmd(3)(body):
            assert np.allclose(got, M.T @ x_ref)

    def test_multivector_apply(self):
        M = _random_csr(12, 0.3, 9)

        def body(comm):
            m = tpetra.Map.create_contiguous(12, comm)
            A = tpetra.CrsMatrix.from_scipy(M, m)
            X = tpetra.MultiVector(m, 2)
            X.local[...] = np.stack([m.my_gids, m.my_gids ** 2],
                                    axis=1).astype(float)
            Y = A @ X
            return Y.gather_all()
        got = spmd(2)(body)[0]
        base = np.arange(12.0)
        ref = np.stack([M @ base, M @ base ** 2], axis=1)
        assert np.allclose(got, ref)

    def test_cyclic_row_map(self):
        M = _random_csr(14, 0.25, 11)
        x_ref = np.arange(14.0)

        def body(comm):
            m = tpetra.Map.create_cyclic(14, comm)
            A = tpetra.CrsMatrix.from_scipy(M, m)
            x = tpetra.Vector(m)
            x.local_view[...] = x_ref[m.my_gids]
            return np.asarray(A @ x)
        for got in spmd(3)(body):
            assert np.allclose(got, M @ x_ref)


class TestMatrixAlgebra:
    def test_transpose_matches_scipy(self):
        M = _random_csr(12, 0.3, 3)

        def body(comm):
            m = tpetra.Map.create_contiguous(12, comm)
            A = tpetra.CrsMatrix.from_scipy(M, m)
            At = A.transpose()
            return At.to_scipy_global(root=None).toarray()
        got = spmd(3)(body)[0]
        assert np.allclose(got, M.T.toarray())

    def test_matmat_matches_scipy(self):
        A_ref = _random_csr(10, 0.3, 4)
        B_ref = _random_csr(10, 0.3, 5)

        def body(comm):
            m = tpetra.Map.create_contiguous(10, comm)
            A = tpetra.CrsMatrix.from_scipy(A_ref, m)
            B = tpetra.CrsMatrix.from_scipy(B_ref, m)
            C = A.matmat(B)
            return C.to_scipy_global(root=None).toarray()
        got = spmd(3)(body)[0]
        assert np.allclose(got, (A_ref @ B_ref).toarray())

    def test_matmul_operator_chains(self):
        M = sp.identity(6, format="csr") * 2

        def body(comm):
            m = tpetra.Map.create_contiguous(6, comm)
            A = tpetra.CrsMatrix.from_scipy(M, m)
            C = A @ A
            return C.to_scipy_global(root=None).toarray()
        assert np.allclose(spmd(2)(body)[0], np.eye(6) * 4)


class TestInspection:
    def test_norms(self):
        M = _random_csr(9, 0.4, 6)

        def body(comm):
            m = tpetra.Map.create_contiguous(9, comm)
            A = tpetra.CrsMatrix.from_scipy(M, m)
            return A.norm_frobenius(), A.norm_inf(), \
                A.num_global_nonzeros()
        fro, inf, nnz = spmd(3)(body)[0]
        assert fro == pytest.approx(np.sqrt((M.data ** 2).sum()))
        assert inf == pytest.approx(np.abs(M.toarray()).sum(axis=1).max())
        assert nnz == M.nnz

    def test_diagonal_and_row_sums(self):
        M = _random_csr(8, 0.5, 2)
        M.setdiag(np.arange(1.0, 9.0))

        def body(comm):
            m = tpetra.Map.create_contiguous(8, comm)
            A = tpetra.CrsMatrix.from_scipy(M, m)
            return np.asarray(A.diagonal()), np.asarray(A.row_sums())
        diag, rsum = spmd(2)(body)[0]
        assert np.allclose(diag, np.arange(1.0, 9.0))
        assert np.allclose(rsum, np.abs(M.toarray()).sum(axis=1))

    def test_global_row(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            A = tpetra.CrsMatrix(m)
            for gid in m.my_gids:
                A.insert_global_values(gid, [0, gid], [5.0, 1.0])
            A.fillComplete()
            cols, vals = A.global_row(int(m.my_gids[0]))
            return sorted(zip(cols.tolist(), vals.tolist()))
        got = spmd(2)(body)[1]   # rank 1 owns rows 2..3
        assert got == [(0, 5.0), (2, 1.0)]


class TestScaling:
    def test_left_right_scale(self):
        M = _random_csr(8, 0.4, 13)

        def body(comm):
            m = tpetra.Map.create_contiguous(8, comm)
            A = tpetra.CrsMatrix.from_scipy(M, m)
            d = tpetra.Vector(m)
            d.local_view[...] = m.my_gids + 1.0
            A.left_scale(d)
            A.right_scale(d)
            return A.to_scipy_global(root=None).toarray()
        got = spmd(2)(body)[0]
        D = np.diag(np.arange(1.0, 9.0))
        assert np.allclose(got, D @ M.toarray() @ D)

    def test_scale_scalar(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            A = tpetra.CrsMatrix.from_scipy(sp.identity(4).tocsr(), m)
            A.scale(7.0)
            return np.asarray(A.diagonal())
        assert np.allclose(spmd(2)(body)[0], 7.0)


class TestCrsGraph:
    def test_pattern_and_matrix_with_values(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(6, comm)
            g = tpetra.CrsGraph(m)
            for gid in m.my_gids:
                g.insert_global_indices(gid, [gid])
                if gid > 0:
                    g.insert_global_indices(gid, [gid - 1])
            g.fillComplete()
            A = g.matrix_with_values()
            return g.num_global_entries(), A.num_global_nonzeros(), \
                float(A.norm_frobenius())
        entries, nnz, fro = spmd(3)(body)[0]
        assert entries == 11 and nnz == 11 and fro == 0.0


class TestMatrixAdd:
    def test_add_matches_scipy(self):
        A_ref = _random_csr(10, 0.3, 21)
        B_ref = _random_csr(10, 0.3, 22)

        def body(comm):
            m = tpetra.Map.create_contiguous(10, comm)
            A = tpetra.CrsMatrix.from_scipy(A_ref, m)
            B = tpetra.CrsMatrix.from_scipy(B_ref, m)
            C = A.add(B, 2.0, -0.5)
            return C.to_scipy_global(root=None).toarray()
        got = spmd(3)(body)[0]
        assert np.allclose(got, (2 * A_ref - 0.5 * B_ref).toarray())

    def test_operator_sugar(self):
        M = _random_csr(8, 0.4, 23)

        def body(comm):
            m = tpetra.Map.create_contiguous(8, comm)
            A = tpetra.CrsMatrix.from_scipy(M, m)
            Z = (A + A) - A
            return (Z.to_scipy_global(root=None) - M).nnz
        assert spmd(2)(body)[0] == 0

    def test_mismatched_row_maps_rejected(self):
        def body(comm):
            a = tpetra.CrsMatrix.from_scipy(
                sp.identity(6).tocsr(), tpetra.Map.create_contiguous(6, comm))
            b = tpetra.CrsMatrix.from_scipy(
                sp.identity(6).tocsr(), tpetra.Map.create_cyclic(6, comm))
            a.add(b)
        with pytest.raises(ValueError):
            spmd(2)(body)
