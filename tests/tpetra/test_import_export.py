"""Import/Export redistribution plan tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tpetra
from repro.tpetra import CombineMode
from tests.conftest import spmd


def _filled_vector(m, base=0.0):
    v = tpetra.Vector(m)
    v.local_view[...] = m.my_gids.astype(float) + base
    return v


class TestImport:
    def test_block_to_cyclic(self):
        def body(comm):
            n = 12
            src = tpetra.Map.create_contiguous(n, comm)
            tgt = tpetra.Map.create_cyclic(n, comm)
            imp = tpetra.Import(src, tgt)
            x = _filled_vector(src)
            y = tpetra.Vector(tgt)
            y.import_from(x, imp)
            return bool(np.array_equal(y.local_view,
                                       tgt.my_gids.astype(float)))
        assert all(spmd(3)(body))

    def test_identity_import_no_messages(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(9, comm)
            imp = tpetra.Import(m, m)
            return imp.plan.num_messages, imp.num_remote
        assert spmd(3)(body) == [(0, 0)] * 3

    def test_overlapping_target(self):
        """Import onto a one-deep halo (ghosted) map."""
        def body(comm):
            n = 4 * comm.size
            src = tpetra.Map.create_contiguous(n, comm)
            lo, hi = src.min_my_gid, src.max_my_gid
            ghosted = list(range(lo, hi + 1))
            if lo > 0:
                ghosted.append(lo - 1)
            if hi < n - 1:
                ghosted.append(hi + 1)
            tgt = tpetra.Map(n, np.array(ghosted), comm, kind="arbitrary")
            imp = tpetra.Import(src, tgt)
            x = _filled_vector(src)
            y = tpetra.Vector(tgt)
            y.import_from(x, imp)
            return bool(np.array_equal(
                y.local_view, np.array(ghosted, dtype=float)))
        assert all(spmd(4)(body))

    def test_reverse_import_adds(self):
        """Reverse of a ghost import sums ghost contributions to owners."""
        def body(comm):
            n = 3 * comm.size
            src = tpetra.Map.create_contiguous(n, comm)
            lo, hi = src.min_my_gid, src.max_my_gid
            ghosted = list(range(lo, hi + 1))
            if hi < n - 1:
                ghosted.append(hi + 1)
            tgt = tpetra.Map(n, np.array(ghosted), comm, kind="arbitrary")
            imp = tpetra.Import(src, tgt)
            ghost_vals = np.ones((len(ghosted), 1))
            own = tpetra.Vector(src)
            imp.apply_reverse(ghost_vals, own.local, CombineMode.ADD)
            return own.local_view.tolist()
        results = spmd(3)(body)
        flat = [v for r in results for v in r]
        # every owned entry got 1 from itself; first entries of ranks > 0
        # also got 1 from the left neighbor's ghost
        n = len(flat)
        expected = [1.0] * n
        for r in range(1, 3):
            expected[r * 3] = 2.0
        assert flat == expected


class TestExport:
    def test_export_add_assembles(self):
        """Overlapping source contributions sum at the owners."""
        def body(comm):
            n = comm.size + 1
            # every rank contributes to gids r and r+1 (overlapping, so
            # built with the raw Map constructor: not one-to-one)
            src = tpetra.Map(n, np.array([comm.rank, comm.rank + 1]),
                             comm, kind="arbitrary")
            tgt = tpetra.Map.create_contiguous(n, comm)
            exp = tpetra.Export(src, tgt)
            contrib = np.ones((2, 1))
            out = tpetra.Vector(tgt)
            exp.apply(contrib, out.local, CombineMode.ADD)
            return out.local_view.tolist()
        results = spmd(3)(body)
        flat = [v for r in results for v in r]
        # gid 0 and gid n-1 get one contribution, interior gids two
        assert flat == [1.0, 2.0, 2.0, 1.0]

    def test_combine_modes(self):
        def body(comm):
            n = 2 * comm.size
            src = tpetra.Map.create_contiguous(n, comm)
            tgt = tpetra.Map.create_cyclic(n, comm)
            imp = tpetra.Import(src, tgt)
            x = _filled_vector(src)
            y = tpetra.Vector(tgt)
            y.putScalar(100.0)
            y.import_from(x, imp, mode=CombineMode.ADD)
            added = y.local_view.copy()
            y.putScalar(-1000.0)
            y.import_from(x, imp, mode=CombineMode.ABSMAX)
            absmax = y.local_view.copy()
            return added.tolist(), absmax.tolist()
        added, absmax = spmd(2)(body)[0]
        # ADD on top of 100
        assert added == [100.0, 102.0]      # rank 0 cyclic owns gids 0, 2
        assert absmax == [-1000.0, -1000.0]  # |..| of -1000 beats values

    def test_import_multivector(self):
        def body(comm):
            n = 8
            src = tpetra.Map.create_contiguous(n, comm)
            tgt = tpetra.Map.create_cyclic(n, comm)
            mv = tpetra.MultiVector(src, 3)
            mv.local[...] = src.my_gids[:, None] * np.array([1, 10, 100])
            out = tpetra.MultiVector(tgt, 3)
            out.import_from(mv, tpetra.Import(src, tgt))
            expected = tgt.my_gids[:, None] * np.array([1, 10, 100])
            return bool(np.array_equal(out.local, expected))
        assert all(spmd(4)(body))


class TestRoundtripProperty:
    @given(n=st.integers(2, 60), p=st.integers(1, 4),
           seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_there_and_back(self, n, p, seed):
        """block -> random arbitrary -> block restores the vector."""
        rng = np.random.default_rng(seed)
        owner = rng.integers(0, p, size=n)

        def body(comm):
            src = tpetra.Map.create_contiguous(n, comm)
            mid_gids = np.nonzero(owner == comm.rank)[0]
            mid = tpetra.Map(n, mid_gids, comm, kind="arbitrary")
            x = _filled_vector(src)
            y = tpetra.Vector(mid)
            y.import_from(x, tpetra.Import(src, mid))
            z = tpetra.Vector(src)
            z.import_from(y, tpetra.Import(mid, src))
            return bool(np.array_equal(z.local_view, x.local_view))
        assert all(spmd(p)(body))
