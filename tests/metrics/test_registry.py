"""Registry semantics: identity, typing, threading, module helpers."""

import threading

import pytest

import repro.metrics as metrics
from repro.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_label_identity():
    reg = MetricsRegistry(enabled=True)
    a = reg.counter("hits", rank=0)
    b = reg.counter("hits", rank=1)
    c = reg.counter("hits", rank=0)
    assert a is c and a is not b
    a.inc()
    a.inc(5)
    assert a.value == 6 and b.value == 0


def test_label_order_irrelevant():
    reg = MetricsRegistry(enabled=True)
    a = reg.counter("x", rank=0, op="put")
    b = reg.counter("x", op="put", rank=0)
    assert a is b


def test_type_mismatch_raises():
    reg = MetricsRegistry(enabled=True)
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("g")
    g.set(10.0)
    g.inc(2.5)
    g.dec(0.5)
    assert g.value == pytest.approx(12.0)


def test_shortcut_emission():
    reg = MetricsRegistry(enabled=True)
    reg.inc("n", 3, rank=1)
    reg.set_gauge("q", 7.0)
    reg.observe("lat", 0.25)
    assert reg.get("n", rank=1).value == 3
    assert reg.get("q").value == 7.0
    assert isinstance(reg.get("lat"), Histogram)
    assert reg.get("missing") is None
    assert len(reg) == 3


def test_metrics_sorted_snapshot():
    reg = MetricsRegistry(enabled=True)
    reg.inc("b")
    reg.inc("a", rank=1)
    reg.inc("a", rank=0)
    names = [(m.name, dict(m.labels)) for m in reg.metrics()]
    assert names == [("a", {"rank": 0}), ("a", {"rank": 1}), ("b", {})]


def test_clear_keeps_enabled_flag():
    reg = MetricsRegistry(enabled=True)
    reg.inc("x")
    reg.clear()
    assert len(reg) == 0 and reg.enabled


def test_module_helpers_guard_on_enabled(registry):
    metrics.inc("mod.count", 2)
    assert registry.get("mod.count").value == 2
    metrics.disable()
    metrics.inc("mod.count", 100)
    assert registry.get("mod.count").value == 2  # disabled: no-op
    metrics.enable()
    assert metrics.enabled()


def test_concurrent_increments_do_not_lose_updates():
    reg = MetricsRegistry(enabled=True)

    def body():
        for _ in range(1000):
            reg.inc("races", rank=0)

    threads = [threading.Thread(target=body) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.get("races", rank=0).value == 8000
