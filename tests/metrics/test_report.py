"""Exposition formats: text report, JSON round-trip, Prometheus text."""

import json

import repro.metrics as metrics
from repro.metrics import MetricsRegistry, exposition, report, to_json
from repro.teuchos.timer import TimeMonitor


def _sample_registry():
    reg = MetricsRegistry(enabled=True)
    reg.inc("seamless.jit.cache_hits", 3, kernel="saxpy")
    reg.inc("seamless.jit.cache_misses", 1, kernel="saxpy")
    reg.set_gauge("solver.residual", 1.5e-9, method="cg")
    for v in (0.001, 0.002, 0.3):
        reg.observe("odin.worker.op_seconds", v, op="ufunc")
    return reg


def test_report_mentions_every_metric():
    text = report(_sample_registry())
    assert "seamless.jit.cache_hits{kernel=saxpy}" in text
    assert "counter" in text and "gauge" in text and "histogram" in text
    assert "count=3" in text  # histogram detail row


def test_report_empty():
    assert "no metrics" in report(MetricsRegistry(enabled=True))


def test_to_json_round_trips():
    doc = json.loads(to_json(_sample_registry()))
    assert doc["producer"] == "repro.metrics"
    by_name = {(m["name"], tuple(sorted(m["labels"].items()))): m
               for m in doc["metrics"]}
    hits = by_name[("seamless.jit.cache_hits", (("kernel", "saxpy"),))]
    assert hits["type"] == "counter" and hits["value"] == 3
    hist = by_name[("odin.worker.op_seconds", (("op", "ufunc"),))]
    assert hist["type"] == "histogram" and hist["count"] == 3
    assert sum(b["count"] for b in hist["buckets"]) == 3


def test_to_json_embeds_time_monitor():
    TimeMonitor.clear()
    try:
        with TimeMonitor("Assembly"):
            pass
        doc = json.loads(to_json(_sample_registry(), include_timers=True))
        assert "Assembly" in doc["time_monitor"]
        assert doc["time_monitor"]["Assembly"]["calls"] == 1
        bare = json.loads(to_json(_sample_registry(),
                                  include_timers=False))
        assert "time_monitor" not in bare
    finally:
        TimeMonitor.clear()


def test_timemonitor_to_dict_matches_summarize_numbers():
    TimeMonitor.clear()
    try:
        with TimeMonitor("Phase"):
            pass
        with TimeMonitor("Phase"):
            pass
        d = TimeMonitor.to_dict()
        assert d["Phase"]["calls"] == 2
        assert d["Phase"]["mean"] * 2 == d["Phase"]["total"]
    finally:
        TimeMonitor.clear()


def test_exposition_prometheus_shape():
    text = exposition(_sample_registry())
    assert "# TYPE seamless_jit_cache_hits counter" in text
    assert 'seamless_jit_cache_hits{kernel="saxpy"} 3' in text
    assert "# TYPE solver_residual gauge" in text
    assert "# TYPE odin_worker_op_seconds histogram" in text
    # cumulative buckets end at the +Inf bucket == count
    assert 'odin_worker_op_seconds_bucket{le="+Inf",op="ufunc"} 3' in text
    assert 'odin_worker_op_seconds_count{op="ufunc"} 3' in text
    # bucket series are cumulative (nondecreasing)
    counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
              if line.startswith("odin_worker_op_seconds_bucket")]
    assert counts == sorted(counts)


def test_module_singleton_to_json(registry):
    metrics.inc("x.count")
    doc = json.loads(metrics.to_json())
    assert any(m["name"] == "x.count" for m in doc["metrics"])
