"""The instrumented layers feed the registry when metrics are enabled."""

import numpy as np

from repro.metrics import Histogram
from tests.conftest import spmd


def test_collectives_count_calls_and_bytes(registry):
    def body(comm):
        comm.bcast(b"z" * 128, root=0)
        comm.allreduce(1)
        comm.barrier()

    spmd(3)(body)
    calls = {(dict(m.labels)["op"]) for m in registry.metrics()
             if m.name == "mpi.coll.calls"}
    assert {"bcast", "allreduce", "barrier"} <= calls
    sent = [m for m in registry.metrics()
            if m.name == "mpi.coll.bytes_sent"
            and dict(m.labels)["op"] == "bcast"]
    assert sent and sum(m.value for m in sent) > 0


def test_rma_bytes_by_op(registry):
    def body(comm):
        buf = np.zeros(8)
        win = __import__("repro.mpi.rma", fromlist=["Win"]).Win.Create(
            buf, comm)
        win.Fence()
        if comm.rank == 0:
            win.Put(np.ones(4), 1)
        win.Fence()
        win.Free()

    spmd(2)(body)
    put = registry.get("mpi.rma.bytes", op="Put")
    assert put is not None and put.value == 32


def test_solver_iterations_without_tracing(registry):
    from repro import galeri, solvers, tpetra

    def body(comm):
        A = galeri.create_matrix("Laplace1D", comm, n=64)
        b = tpetra.Vector(A.range_map())
        b.putScalar(1.0)
        res = solvers.cg(A, b, tol=1e-10)
        return res.converged, res.iterations

    results = spmd(2)(body)
    assert all(conv for conv, _its in results)
    its = registry.get("solver.iterations", method="cg")
    # every rank increments once per iteration
    assert its is not None and its.value == sum(k for _c, k in results)
    resid = registry.get("solver.residual", method="cg")
    assert resid is not None and resid.value <= 1e-10


def test_tpetra_plan_metrics(registry):
    from repro import tpetra
    from repro.tpetra.import_export import Import

    def body(comm):
        n = 32
        src = tpetra.Map.create_contiguous(n, comm)
        # overlapping target: everyone also wants neighbor elements
        lo = src.min_my_gid
        hi = src.max_my_gid
        gids = np.unique(np.clip(np.arange(lo - 1, hi + 2), 0, n - 1))
        tgt = tpetra.Map(n, gids, comm, kind="arbitrary")
        imp = Import(src, tgt)
        x = np.arange(src.num_my_elements, dtype=np.float64)
        y = np.zeros(tgt.num_my_elements)
        imp.apply(x, y)

    spmd(2)(body)
    names = {m.name for m in registry.metrics()}
    assert "tpetra.plan.builds" in names
    assert "tpetra.plan.remote_lids_resolved" in names
    assert "tpetra.plan.pack_bytes" in names
    assert "tpetra.plan.executions" in names


def test_odin_worker_latency_histograms(registry):
    from repro import odin
    from repro.odin.context import OdinContext

    with OdinContext(2) as ctx:
        x = odin.arange(64, ctx=ctx)
        y = x * 2.0 + 1.0
        assert float(y.sum()) > 0
    hists = [m for m in registry.metrics()
             if m.name == "odin.worker.op_seconds"]
    assert hists and all(isinstance(m, Histogram) for m in hists)
    assert sum(m.count for m in hists) > 0


def test_jit_cache_hit_miss(registry, has_cc):
    from repro.seamless import jit

    @jit
    def poly(x: float) -> float:
        return x * x + 1.0

    for _ in range(4):
        poly(2.0)
    calls = registry.get("seamless.jit.calls", kernel="poly")
    assert calls is not None and calls.value == 4
    if has_cc:
        miss = registry.get("seamless.jit.cache_misses", kernel="poly")
        hit = registry.get("seamless.jit.cache_hits", kernel="poly")
        assert miss.value == 1 and hit.value == 3
        compile_h = registry.get("seamless.jit.compile_seconds",
                                 kernel="poly")
        assert compile_h.count == 1
    else:
        fb = registry.get("seamless.jit.fallbacks", kernel="poly")
        assert fb is not None and fb.value == 4


def test_disabled_registry_records_nothing():
    from repro.metrics import REGISTRY

    assert not REGISTRY.enabled  # conftest leaves it off
    before = len(REGISTRY)

    def body(comm):
        comm.allreduce(1)

    spmd(2)(body)
    assert len(REGISTRY) == before
