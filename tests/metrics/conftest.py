"""Fixtures for the metrics tests.

Like the tracer, the registry is a process-wide singleton; tests that
enable it must leave it disabled and empty so the rest of the suite
keeps the zero-overhead path.
"""

import pytest

from repro.metrics import REGISTRY


@pytest.fixture
def registry():
    REGISTRY.clear()
    REGISTRY.enable()
    yield REGISTRY
    REGISTRY.disable()
    REGISTRY.clear()
