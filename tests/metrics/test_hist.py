"""Histogram bucket geometry, statistics, and exact merging."""

import math

import pytest

from repro.metrics import Histogram


def test_bucket_boundaries_base2():
    h = Histogram("t", base=2.0)
    # exact powers stay in their own bucket: (base**(i-1), base**i]
    assert h.bucket_index(1.0) == 0
    assert h.bucket_index(2.0) == 1
    assert h.bucket_index(2.0 + 1e-9) == 2
    assert h.bucket_index(4.0) == 2
    assert h.bucket_index(3.0) == 2
    assert h.bucket_index(0.5) == -1
    assert h.bucket_index(0.75) == 0
    # zero and negatives land in the dedicated underflow bucket
    assert h.bucket_index(0.0) is None
    assert h.bucket_index(-3.0) is None
    assert h.bucket_upper(None) == 0.0
    assert h.bucket_upper(3) == 8.0


def test_bucket_boundaries_base10():
    h = Histogram("t", base=10.0)
    assert h.bucket_index(1.0) == 0
    assert h.bucket_index(10.0) == 1
    assert h.bucket_index(11.0) == 2
    assert h.bucket_index(1e-3) == -3
    assert h.bucket_upper(h.bucket_index(5.0)) == 10.0


def test_base_must_exceed_one():
    with pytest.raises(ValueError):
        Histogram("t", base=1.0)
    with pytest.raises(ValueError):
        Histogram("t", base=0.5)


def test_observe_tracks_exact_stats():
    h = Histogram("t")
    for v in (0.5, 3.0, 7.0, 0.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(10.5)
    assert h.min == 0.0
    assert h.max == 7.0
    assert h.mean == pytest.approx(10.5 / 4)
    # 0.5 -> idx -1, 3.0 -> idx 2, 7.0 -> idx 3, 0.0 -> underflow
    assert h.buckets == {-1: 1, 2: 1, 3: 1, None: 1}


def test_quantiles():
    h = Histogram("t")
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    assert h.quantile(0.0) == 1.0
    assert h.quantile(1.0) == 100.0
    # p50 of 1..100: the bucket holding the 50th sample is (32, 64]
    assert h.quantile(0.5) == 64.0
    # the approximation never exceeds the observed max
    assert h.quantile(0.99) <= 100.0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_empty_quantile_is_zero():
    assert Histogram("t").quantile(0.5) == 0.0


def test_merge_is_exact():
    a = Histogram("t")
    b = Histogram("t")
    va = [0.1, 2.0, 50.0]
    vb = [0.0, 2.0, 1e6]
    for v in va:
        a.observe(v)
    for v in vb:
        b.observe(v)
    ref = Histogram("t")
    for v in va + vb:
        ref.observe(v)
    a.merge(b)
    assert a.count == ref.count
    assert a.sum == pytest.approx(ref.sum)
    assert a.min == ref.min
    assert a.max == ref.max
    assert a.buckets == ref.buckets


def test_merge_base_mismatch_rejected():
    with pytest.raises(ValueError):
        Histogram("t", base=2.0).merge(Histogram("t", base=10.0))


def test_to_dict_buckets_sorted_ascending():
    h = Histogram("t")
    for v in (8.0, 0.0, 0.25, 1.5):
        h.observe(v)
    d = h.to_dict()
    uppers = [b["le"] for b in d["buckets"]]
    assert uppers == sorted(uppers)
    assert uppers[0] == 0.0  # underflow bucket leads
    assert sum(b["count"] for b in d["buckets"]) == h.count


def test_quantile_est_interpolates_within_bucket():
    h = Histogram("t")
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    # 1..100 is uniform in value within (32, 64], so linear interpolation
    # in the holding bucket recovers the exact median: target 50 lands at
    # 32 + 32 * (50 - 32) / 32 = 50.0 (vs quantile()'s 64.0 upper bound)
    assert h.quantile_est(0.5) == pytest.approx(50.0)
    assert h.quantile(0.5) == 64.0
    # tighter than or equal to the bucket bound at every q, never above
    # the observed max, exact at the endpoints
    for q in (0.25, 0.5, 0.9, 0.95, 0.99):
        assert h.quantile_est(q) <= h.quantile(q)
        assert h.min <= h.quantile_est(q) <= h.max
    assert h.quantile_est(0.0) == 1.0
    assert h.quantile_est(1.0) == 100.0
    with pytest.raises(ValueError):
        h.quantile_est(-0.1)


def test_quantile_est_empty_and_underflow():
    assert Histogram("t").quantile_est(0.5) == 0.0
    h = Histogram("t")
    for v in (-2.0, -1.0, 0.0):
        h.observe(v)
    # all samples in the <=0 bucket: estimates stay within [min, max]
    assert h.min <= h.quantile_est(0.5) <= h.max


def test_to_dict_carries_interpolated_quantiles():
    h = Histogram("t")
    for v in range(1, 101):
        h.observe(float(v))
    d = h.to_dict()
    assert d["quantiles"]["p50"] == pytest.approx(50.0)
    assert d["quantiles"]["p50"] <= d["quantiles"]["p95"] \
        <= d["quantiles"]["p99"] <= h.max
