"""Causal op tracing: driver, worker and wire must agree on op_id.

The audit the tentpole promises: for any control op, the driver span,
every worker span and the collective counters tagged on both sides all
carry the same op_id -- including batched epochs (fire-and-forget ops)
and post-shrink recovery replays.
"""

import numpy as np
import pytest

from repro import odin
from repro.mpi.errors import InjectedFault
from repro.obs import causal
from repro.odin import opcodes
from repro.odin.context import OdinContext


def _spans(tracer, cat, name=None):
    return [ev for ev in tracer.events()
            if ev[0] == "X" and ev[1] == cat
            and (name is None or ev[2] == name)]


class TestCausalTLS:
    def test_identity_roundtrip(self):
        causal.clear_current()
        assert causal.current() == (None, None)
        causal.set_current(5, 2)
        assert causal.current() == (5, 2)
        assert causal.current_op_id() == 5
        causal.clear_current()
        assert causal.current_op_id() is None

    def test_rank_thread_registry(self):
        import threading
        causal.note_rank_thread("rank 7")
        try:
            assert causal.rank_threads()[
                threading.get_ident()] == "rank 7"
        finally:
            causal.forget_rank_thread()
        assert threading.get_ident() not in causal.rank_threads()


class TestDriverWorkerAgreement:
    def test_sync_op_ids_agree_end_to_end(self, tracer):
        """Driver span op_id == every worker span op_id == the op_id the
        tagged gather collectives were counted under, on both sides of
        the wire."""
        with OdinContext(3) as ctx:
            x = odin.array(np.arange(30.0), ctx=ctx)
            ctx.flush()          # drain the batched CREATE epoch
            tracer.clear()
            _ = np.asarray(x)    # GATHER: synchronizing round trip
            driver = _spans(tracer, "odin.control", str(opcodes.GATHER))
            assert len(driver) == 1
            oid = driver[0][6]["op_id"]
            assert isinstance(oid, int)
            workers = _spans(tracer, "odin.worker", str(opcodes.GATHER))
            assert len(workers) == 3
            assert {ev[6]["op_id"] for ev in workers} == {oid}
            # wire agreement: every rank's counters saw gather traffic
            # attributed to this op_id (driver = rank 0, workers 1..3)
            for rank in range(4):
                snap = ctx.world.counters[rank].snapshot()
                assert "gather" in snap.by_causal.get(oid, {}), \
                    f"rank {rank} missing causal gather for op {oid}"

    def test_batched_epoch_distinct_ids_one_epoch(self, tracer):
        """Fire-and-forget ops within one epoch carry distinct increasing
        op_ids but one shared epoch_id; the epoch advances at the flush."""
        with OdinContext(2) as ctx:
            ctx.flush()
            epoch0 = ctx.status()["epoch_id"]
            tracer.clear()
            a = odin.array(np.arange(8.0), ctx=ctx)
            b = a * 2.0
            c = b + 1.0
            c = c - 0.5
            asyncs = _spans(tracer, "odin.control")
            ids = [ev[6]["op_id"] for ev in asyncs
                   if ev[2].endswith(".async")]
            assert len(ids) >= 3
            assert ids == sorted(ids) and len(set(ids)) == len(ids)
            epochs = {ev[6]["epoch_id"] for ev in asyncs
                      if ev[2].endswith(".async")}
            assert epochs == {epoch0}
            ctx.flush()
            assert ctx.status()["epoch_id"] == epoch0 + 1
            # worker spans for the batched ops carry the same ids
            worker_ids = {ev[6]["op_id"]
                          for ev in _spans(tracer, "odin.worker")}
            assert set(ids) <= worker_ids
            del b, c

    def test_deferred_error_note_names_originating_op_id(self):
        """A failing fire-and-forget op surfaces at the next sync op,
        annotated with the op_id it was issued under."""
        with OdinContext(2) as ctx:
            ctx.flush()
            issued_before = ctx.status()["op_id"]
            with pytest.raises(KeyError) as ei:
                # a batched ufunc on a nonexistent array id fails on the
                # workers; the error defers to the flush
                ctx.run(opcodes.UFUNC, "negative", (("array", 424242),),
                        ctx.new_array_id())
                ctx.flush()
            notes = getattr(ei.value, "__notes__", [])
            assert any("op_id" in n for n in notes)
            # the noted op_id is the UFUNC broadcast (issued_before + 1),
            # not the flush that delivered it
            assert any(f"op_id {issued_before + 1}" in n for n in notes)

    def test_recovery_replay_ids_stay_consistent(self, tracer):
        """After a crash + shrink + replay, the retried op's spans agree
        under the *fresh* broadcast id (replays re-broadcast through
        _bcast, so driver and survivors stay in lockstep)."""
        ctx = odin.init(3, recover=True)
        try:
            src = np.arange(30.0)
            z = odin.array(src) * 2.0 + 1.0
            killed = []

            @odin.local
            def boom(a):
                if not killed and odin.worker_index() == 1:
                    killed.append(1)
                    raise InjectedFault(2, 0, "causal-audit crash")
                return a * 1.0

            tracer.clear()
            pre_op = ctx.status()["op_id"]
            w = boom(z)
            assert ctx.nworkers == 2
            assert np.array_equal(np.asarray(w), src * 2.0 + 1.0)
            # the driver's CALL_LOCAL span records the id of the *last*
            # (successful, post-shrink) broadcast of the retried op --
            # later than the crashed attempt's id, never a reuse
            driver = _spans(tracer, "odin.control",
                            str(opcodes.CALL_LOCAL))
            assert len(driver) == 1
            retry_id = driver[0][6]["op_id"]
            assert retry_id > pre_op + 1  # replay consumed fresh ids
            # both surviving workers executed the retry under that id
            worker_ids = [ev[6]["op_id"]
                          for ev in _spans(tracer, "odin.worker",
                                           str(opcodes.CALL_LOCAL))]
            assert worker_ids.count(retry_id) == 2
            # and the wire agrees: survivor counters attribute gather
            # traffic to the retry id (survivor world ranks come from
            # the shrunk comm -- the dead rank's counters froze)
            for rank in ctx.comm._world_ranks[1:]:
                snap = ctx.world.counters[rank].snapshot()
                assert "gather" in snap.by_causal.get(retry_id, {})
            # the op clock only moved forward
            assert ctx.status()["op_id"] >= retry_id
        finally:
            odin.shutdown()

    def test_rank_failure_carries_op_id(self):
        """Without recovery, the RankFailure surfacing on the driver names
        the control op_id that was in flight."""
        ctx = odin.init(2, recover=True)
        try:
            z = odin.array(np.arange(8.0))
            killed = []

            @odin.local
            def die_both(a):
                raise InjectedFault(odin.worker_index() + 1, 0, "all die")

            with pytest.raises(Exception) as ei:
                die_both(z)
            exc = ei.value
            # every worker died -> unrecoverable RuntimeError chained from
            # a RankFailure that carries the causal op_id
            cause = exc
            while cause is not None and not hasattr(cause, "op_id"):
                cause = cause.__cause__
            assert cause is not None
            assert isinstance(cause.op_id, int)
        finally:
            odin.shutdown()
