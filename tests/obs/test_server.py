"""Status endpoint: routes, JSON schemas, concurrent-mutation safety,
and the ``python -m repro.obs`` CLI."""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro import odin
from repro.obs import __main__ as obs_cli
from repro.obs import serve, serve_shutdown
from repro.obs import status as obs_status
from repro.odin.context import OdinContext


@pytest.fixture
def server():
    srv = serve(port=0)
    yield srv
    serve_shutdown()


def _get(srv, path):
    with urllib.request.urlopen(f"{srv.url}{path}", timeout=10) as resp:
        return resp.status, resp.read().decode()


class TestEndpoints:
    def test_index_lists_routes(self, server):
        code, body = _get(server, "/")
        assert code == 200
        for route in ("/metrics", "/status", "/flight", "/profile"):
            assert route in body

    def test_unknown_route_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as ei:
            _get(server, "/nope")
        assert ei.value.code == 404

    def test_metrics_is_prometheus_text(self, server, registry):
        registry.inc("obs.test.counter", 3)
        code, body = _get(server, "/metrics")
        assert code == 200
        assert "obs_test_counter 3" in body

    def test_status_reports_live_context(self, server):
        with OdinContext(2) as ctx:
            x = odin.array(np.arange(8.0), ctx=ctx)
            ctx.flush()
            ctx.plan_cache_stats()
            code, body = _get(server, "/status")
            doc = json.loads(body)
            assert code == 200
            mine = [c for c in doc["contexts"]
                    if c.get("kind") == "odin.context" and c.get("alive")]
            assert mine, doc
            st = mine[-1]
            assert st["nworkers"] == 2
            assert st["op_id"] >= 1 and st["epoch_id"] >= 1
            assert st["plan_cache"]["hits"] >= 0
            # per-rank table: driver + 2 workers, heartbeat ages present
            assert len(st["ranks"]) == 3
            assert all("heartbeat_age_s" in r for r in st["ranks"])
            del x

    def test_flight_route_is_chrome_trace(self, server, flight):
        flight.instant("obs.test", "marker", rank=0)
        code, body = _get(server, "/flight")
        doc = json.loads(body)
        assert code == 200
        names = [e.get("name") for e in doc["traceEvents"]
                 if e.get("ph") == "i"]
        assert "marker" in names
        assert "last_fault" in doc["otherData"]

    def test_profile_route_returns_folded_stacks(self, server):
        stop = threading.Event()

        def spin():
            while not stop.is_set():
                sum(range(1000))

        t = threading.Thread(target=spin, name="obs-test-spin",
                             daemon=True)
        t.start()
        try:
            code, body = _get(server, "/profile?seconds=0.2")
        finally:
            stop.set()
            t.join()
        assert code == 200
        # folded format: "label;frame;frame count" lines
        lines = [ln for ln in body.splitlines() if ln]
        assert lines
        assert all(ln.rsplit(" ", 1)[1].isdigit() for ln in lines)

    def test_status_under_concurrent_mutation(self, server):
        """Hammer /status from several threads while a context issues
        ops, shuts down and is replaced: every response is 200 + valid
        JSON (stale values are fine, errors are not)."""
        failures = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    code, body = _get(server, "/status")
                    assert code == 200
                    json.loads(body)
                except Exception as exc:  # noqa: BLE001 - collect
                    failures.append(exc)
                    return

        readers = [threading.Thread(target=hammer, daemon=True)
                   for _ in range(4)]
        for t in readers:
            t.start()
        try:
            for _ in range(3):
                with OdinContext(2) as ctx:
                    a = odin.array(np.arange(64.0), ctx=ctx)
                    b = odin.sqrt(a * a + 1.0)
                    np.asarray(b)
                    del a, b
        finally:
            stop.set()
            for t in readers:
                t.join(timeout=10)
        assert not failures

    def test_serve_is_idempotent(self, server):
        assert serve(port=0) is server


class TestAutoserve:
    def test_env_port_autoserves_on_context(self, monkeypatch):
        serve_shutdown()
        obs_status._autoserve_checked = False
        monkeypatch.setenv("REPRO_OBS_PORT", "0")
        with OdinContext(2):
            from repro.obs import server as obs_server
            assert obs_server._server is not None
            port = obs_server._server.port
            code, _body = _get(obs_server._server, "/status")
            assert code == 200 and port > 0
        serve_shutdown()
        obs_status._autoserve_checked = False


class TestCLI:
    def test_cli_status_renders(self, server, capsys):
        with OdinContext(2) as ctx:
            ctx.flush()
            rc = obs_cli.main(["status", "--port", str(server.port)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "odin.context" in out
        assert "rank 0" in out

    def test_cli_flight_summarizes(self, server, flight, capsys):
        flight.instant("obs.test", "marker", rank=0)
        rc = obs_cli.main(["flight", "--port", str(server.port)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flight recorder" in out
        assert "obs.test" in out

    def test_cli_out_writes_raw_response(self, server, flight, tmp_path,
                                         capsys):
        flight.instant("obs.test", "marker", rank=0)
        out_file = tmp_path / "flight.json"
        rc = obs_cli.main(["flight", "--port", str(server.port),
                           "--out", str(out_file)])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert "traceEvents" in doc
        capsys.readouterr()

    def test_cli_unreachable_port_errors(self, capsys):
        rc = obs_cli.main(["status", "--port", "1"])  # nothing listens
        assert rc == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_cli_requires_port(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_PORT", raising=False)
        with pytest.raises(SystemExit):
            obs_cli.main(["status"])
