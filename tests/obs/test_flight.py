"""Flight recorder: ring wraparound, dumps, fault notification."""

import json

import pytest

from repro.obs.flight import FlightRecorder
from repro.trace.analyze import load_chrome_trace


def test_ring_wraparound_keeps_newest_in_order():
    rec = FlightRecorder(capacity=8)
    for i in range(20):
        t0 = rec.now()
        rec.complete("cat", f"ev{i}", 0, t0, i=i)
    events = rec.events()
    assert len(events) == 8
    # exactly the last 8 events survive, in ascending timestamp order
    assert [ev[6]["i"] for ev in events] == list(range(12, 20))
    assert all(a[4] <= b[4] for a, b in zip(events, events[1:]))


def test_partial_ring_has_no_none_slots():
    rec = FlightRecorder(capacity=64)
    for i in range(5):
        rec.instant("cat", f"ev{i}", rank=0)
    assert len(rec.events()) == 5


def test_disabled_recorder_records_nothing():
    rec = FlightRecorder(capacity=0)
    assert not rec.enabled
    rec.complete("cat", "ev", 0, 0.0)
    rec.instant("cat", "ev", rank=0)
    assert rec.events() == []
    assert rec.notify_fault("AbortError", "boom") is None


def test_clear_resets_rings_and_fault():
    rec = FlightRecorder(capacity=8)
    rec.instant("cat", "ev", rank=0)
    rec.last_fault = {"kind": "AbortError"}
    rec.clear()
    assert rec.events() == []
    assert rec.last_fault is None


def test_dump_is_analyzer_loadable(tmp_path):
    rec = FlightRecorder(capacity=32)
    t0 = rec.now()
    rec.complete("odin.control", "ufunc", "driver", t0, op_id=7)
    rec.instant("obs.fault", "AbortError", rank=1)
    path = str(tmp_path / "flight.json")
    assert rec.dump(path) == path
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["otherData"]["producer"] == "repro.trace"
    events = load_chrome_trace(path)
    assert len(events) == 2
    spans = [ev for ev in events if ev[0] == "X"]
    assert spans[0][1:4] == ("odin.control", "ufunc", "driver")
    assert spans[0][6]["op_id"] == 7
    instants = [ev for ev in events if ev[0] == "i"]
    assert instants[0][3] == 1  # "rank 1" label rebuilt as int rank


def test_notify_fault_records_and_rate_limits(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_OBS_DUMP", str(tmp_path / "crash.json"))
    rec = FlightRecorder(capacity=32)
    path = rec.notify_fault("DeadlockError", "recv timed out",
                            ranks=[{"rank": 0, "pending": "recv"}])
    assert path == str(tmp_path / "crash.json")
    assert rec.last_fault["kind"] == "DeadlockError"
    assert rec.last_fault["ranks"][0]["pending"] == "recv"
    # a second fault within the rate-limit window reuses the first dump
    assert rec.notify_fault("AbortError") == path
    assert rec.last_fault["kind"] == "AbortError"
    # the fault itself landed in the ring as an instant
    kinds = [ev[2] for ev in rec.events() if ev[1] == "obs.fault"]
    assert kinds == ["DeadlockError", "AbortError"]


def test_dump_env_off_suppresses_auto_dump(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_DUMP", "off")
    rec = FlightRecorder(capacity=8)
    assert rec.default_dump_path() is None
    assert rec.notify_fault("AbortError") is None
    assert rec.last_fault["kind"] == "AbortError"  # still recorded


def test_capacity_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_FLIGHT", "16")
    assert FlightRecorder().capacity == 16
    monkeypatch.setenv("REPRO_OBS_FLIGHT", "0")
    assert not FlightRecorder().enabled


def test_deadlock_error_names_flight_dump(tmp_path, monkeypatch):
    """The DeadlockError message carries the dump path and the dump is
    loadable -- the crash-evidence contract end to end."""
    monkeypatch.setenv("REPRO_OBS_DUMP", str(tmp_path / "dl.json"))
    from repro import mpi
    from repro.mpi.errors import DeadlockError

    def body(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=9)  # never sent

    with pytest.raises(DeadlockError) as ei:
        mpi.run_spmd(body, 2, timeout=0.5)
    cause = ei.value
    assert "flight recorder dump" in str(cause)
    events = load_chrome_trace(str(tmp_path / "dl.json"))
    assert any(ev[1] == "obs.fault" for ev in events)
