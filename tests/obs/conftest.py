"""Fixtures for the observability tests.

The flight recorder and tracer are process-wide singletons; tests that
record through them must leave them empty (the recorder stays *enabled*
-- that is its contract -- but its rings are cleared).
"""

import pytest

from repro.metrics import REGISTRY
from repro.obs.flight import FLIGHT
from repro.trace import TRACER


@pytest.fixture
def flight():
    FLIGHT.clear()
    yield FLIGHT
    FLIGHT.clear()


@pytest.fixture
def registry():
    REGISTRY.clear()
    REGISTRY.enable()
    yield REGISTRY
    REGISTRY.disable()
    REGISTRY.clear()


@pytest.fixture
def tracer():
    TRACER.clear()
    TRACER.enable()
    yield TRACER
    TRACER.disable()
    TRACER.clear()
