"""Resilient solvers: iterate checkpoints + shrink-and-restart."""

import numpy as np
import pytest

from repro import galeri, mpi, solvers
from repro.mpi.errors import InjectedFault
from repro.solvers.resilient import IterateCheckpoint
from repro.tpetra import Operator, Vector

NX = NY = 10
N = NX * NY


def _make_system(comm):
    A = galeri.laplace_2d(NX, NY, comm)
    b = Vector(A.row_map)
    b.local_view = np.sin(np.asarray(A.row_map.my_gids, dtype=float))
    return A, b


class _KillerOp(Operator):
    """Wraps an operator; raises InjectedFault on chosen ranks after a
    number of applies (counted per victim across restarts)."""

    def __init__(self, inner, comm, kills, counts):
        self.inner = inner
        self.comm = comm
        self.kills = kills      # {victim_rank_at_start: after_n_applies}
        self.counts = counts    # shared dict: victim -> applies so far

    def domain_map(self):
        return self.inner.domain_map()

    def range_map(self):
        return self.inner.range_map()

    def apply(self, x, y, trans=False):
        me = self.comm.context.rank   # world rank: stable across shrinks
        if me in self.kills:
            k = self.counts.get(me, 0) + 1
            self.counts[me] = k
            if k > self.kills[me]:
                raise InjectedFault(me, k, "scripted solver kill")
        return self.inner.apply(x, y, trans=trans)


def _oracle():
    def body(comm):
        A, b = _make_system(comm)
        r = solvers.cg(A, b, tol=1e-10, maxiter=500)
        assert r.converged
        return (np.asarray(A.domain_map().my_gids),
                np.array(r.x.local_view))
    g, v = mpi.run_spmd(body, 1)[0]
    xg = np.zeros(N)
    xg[g] = v
    return xg


def _resilient(nranks, kills, **kw):
    counts = {}

    def body(comm):
        def make(c):
            A, b = _make_system(c)
            return _KillerOp(A, c, kills, counts), b

        res = solvers.resilient_solve(comm, make, method="cg",
                                      tol=1e-10, maxiter=500,
                                      ckpt_every=10, **kw)
        return (res.converged, res.restarts, res.ranks_lost,
                np.asarray(res.x.map.my_gids), np.array(res.x.local_view))

    return mpi.run_spmd(body, nranks, timeout=30.0, fault_mode="failstop")


class TestResilientSolve:
    def test_mid_solve_kill_matches_fault_free_answer(self):
        xg = _oracle()
        out = _resilient(3, kills={2: 25})
        live = [o for o in out if not isinstance(o, InjectedFault)]
        assert len(live) == 2
        got = np.zeros(N)
        for conv, restarts, lost, g, v in live:
            assert conv and restarts >= 1 and lost == 1
            got[g] = v
        err = np.linalg.norm(got - xg) / np.linalg.norm(xg)
        assert err < 1e-7

    def test_two_kills_two_restarts(self):
        xg = _oracle()
        out = _resilient(4, kills={1: 15, 3: 40})
        live = [o for o in out if not isinstance(o, InjectedFault)]
        assert len(live) == 2
        got = np.zeros(N)
        for conv, restarts, lost, g, v in live:
            assert conv and restarts >= 2 and lost == 2
            got[g] = v
        err = np.linalg.norm(got - xg) / np.linalg.norm(xg)
        assert err < 1e-7

    def test_fault_free_run_has_no_restarts(self):
        out = _resilient(2, kills={})
        for conv, restarts, lost, _g, _v in out:
            assert conv and restarts == 0 and lost == 0

    def test_unknown_method_rejected(self):
        def body(comm):
            with pytest.raises(ValueError, match="unknown method"):
                solvers.resilient_solve(comm, _make_system,
                                        method="nope")
        mpi.run_spmd(body, 1)


class TestIterateCheckpoint:
    def test_keeps_two_versions(self):
        def body(comm):
            A, b = _make_system(comm)
            x = Vector(A.row_map)
            ckpt = IterateCheckpoint()
            for _ in range(4):
                ckpt.save(comm, x)
            return sorted(ckpt.own), sorted(ckpt.held)

        own, held = mpi.run_spmd(body, 2)[0]
        assert own == [3, 4] and held == [3, 4]

    def test_partner_pieces_cover_dead_rank(self):
        """After rank 1 'dies', rank 2 contributes the mirrored copy of
        rank 1's slice: the union of survivor pieces covers everything."""
        def body(comm):
            A, b = _make_system(comm)
            x = Vector(A.row_map)
            x.local_view = np.asarray(A.row_map.my_gids, dtype=float)
            ckpt = IterateCheckpoint()
            ckpt.save(comm, x)
            pieces = ckpt.pieces_for(dead=[1])
            covered = np.zeros(N, dtype=bool)
            for _v, gids, _vals in pieces:
                covered[gids] = True
            return comm.rank, int(covered.sum())

        out = mpi.run_spmd(body, 3)
        cover = {r: c for r, c in out}
        # rank 2 holds its own slice plus dead rank 1's copy
        assert cover[2] > cover[0]


class TestResilientNewton:
    def test_newton_recovers_from_kill(self):
        """JFNK on a mildly nonlinear diagonal problem survives a kill.

        F(x) = x + 0.1 x^3 - c has a unique solution per component."""
        from repro.tpetra import Map

        counts = {}

        def body(comm):
            def make_problem(c):
                m = Map.create_contiguous(40, c)
                x0 = Vector(m)
                target = Vector(m)
                target.local_view = 0.5 * np.sin(
                    np.asarray(m.my_gids, dtype=float))

                def residual(x):
                    out = Vector(m)
                    me = c.context.rank
                    if me == 1:
                        k = counts.get(me, 0) + 1
                        counts[me] = k
                        if k > 12:
                            raise InjectedFault(me, k, "newton kill")
                    out.local_view = (x.local_view
                                      + 0.1 * x.local_view ** 3
                                      - target.local_view)
                    return out

                return residual, x0

            res = solvers.resilient_newton(comm, make_problem, tol=1e-10,
                                           maxiter=50, ckpt_every=3)
            return res.converged, res.residual_norm

        out = mpi.run_spmd(body, 3, timeout=30.0, fault_mode="failstop")
        live = [o for o in out if not isinstance(o, InjectedFault)]
        assert len(live) == 2
        for conv, rnorm in live:
            assert conv and rnorm < 1e-9
