"""Krylov solver tests on gallery problems."""

import numpy as np
import pytest

from repro import galeri, solvers, tpetra
from repro.teuchos import ParameterList
from tests.conftest import spmd


def _problem(comm, nx=12, ny=12, symmetric=True, seed=0):
    if symmetric:
        A = galeri.laplace_2d(nx, ny, comm)
    else:
        A = galeri.convection_diffusion_2d(nx, ny, comm)
    x_true = tpetra.Vector(A.row_map)
    x_true.randomize(seed=seed)
    b = A @ x_true
    return A, b, x_true


class TestCG:
    def test_converges_on_spd(self):
        def body(comm):
            A, b, x_true = _problem(comm)
            r = solvers.cg(A, b, tol=1e-10, maxiter=1000)
            return r.converged, (r.x - x_true).norm2() / x_true.norm2()
        for conv, err in spmd(3)(body):
            assert conv and err < 1e-7

    def test_zero_rhs_converges_immediately(self):
        def body(comm):
            A, _b, _x = _problem(comm)
            zero = tpetra.Vector(A.row_map)
            r = solvers.cg(A, zero, tol=1e-10)
            return r.iterations, r.x.norm2()
        its, norm = spmd(2)(body)[0]
        assert its == 0 and norm == 0.0

    def test_history_monotone_tail(self):
        def body(comm):
            A, b, _x = _problem(comm)
            r = solvers.cg(A, b, tol=1e-12, maxiter=500)
            return r.history
        hist = spmd(2)(body)[0]
        assert hist[-1] < hist[0] * 1e-10

    def test_initial_guess_respected(self):
        def body(comm):
            A, b, x_true = _problem(comm)
            x0 = x_true.copy()
            r = solvers.cg(A, b, x=x0, tol=1e-10)
            return r.iterations
        assert spmd(2)(body)[0] == 0

    def test_maxiter_reported_not_converged(self):
        def body(comm):
            A, b, _x = _problem(comm, nx=20, ny=20)
            r = solvers.cg(A, b, tol=1e-14, maxiter=3)
            return r.converged, r.iterations, r.message
        conv, its, msg = spmd(2)(body)[0]
        assert not conv and its == 3 and "maximum" in msg


class TestGMRES:
    def test_nonsymmetric(self):
        def body(comm):
            A, b, x_true = _problem(comm, symmetric=False)
            r = solvers.gmres(A, b, tol=1e-10, maxiter=2000, restart=40)
            return r.converged, (r.x - x_true).norm2() / x_true.norm2()
        for conv, err in spmd(3)(body):
            assert conv and err < 1e-6

    def test_restart_effect(self):
        """Small restart converges but needs more iterations."""
        def body(comm):
            A, b, _x = _problem(comm, nx=14, ny=14)
            short = solvers.gmres(A, b, tol=1e-8, restart=5, maxiter=5000)
            full = solvers.gmres(A, b, tol=1e-8, restart=200, maxiter=5000)
            return short.converged, full.converged, \
                short.iterations >= full.iterations
        conv_s, conv_f, more = spmd(2)(body)[0]
        assert conv_s and conv_f and more

    def test_flexible_with_iterative_preconditioner(self):
        """FGMRES tolerates a nonlinear (iterative) preconditioner."""
        def body(comm):
            A, b, x_true = _problem(comm)
            inner = solvers.SymmetricGaussSeidel(A, sweeps=2)
            r = solvers.gmres(A, b, prec=inner, tol=1e-10, flexible=True,
                              maxiter=500)
            return r.converged, (r.x - x_true).norm2() / x_true.norm2()
        conv, err = spmd(2)(body)[0]
        assert conv and err < 1e-7

    def test_right_preconditioning_true_residual(self):
        def body(comm):
            A, b, _x = _problem(comm)
            r = solvers.gmres(A, b, prec=solvers.Jacobi(A), tol=1e-9)
            resid = tpetra.Vector(b.map)
            A.apply(r.x, resid)
            resid.update(1.0, b, -1.0)
            return resid.norm2() / b.norm2() <= 1e-8
        assert all(spmd(2)(body))


class TestBiCGStab:
    def test_nonsymmetric(self):
        def body(comm):
            A, b, x_true = _problem(comm, symmetric=False)
            r = solvers.bicgstab(A, b, prec=solvers.ILU0(A), tol=1e-10,
                                 maxiter=2000)
            return r.converged, (r.x - x_true).norm2() / x_true.norm2()
        for conv, err in spmd(2)(body):
            assert conv and err < 1e-6


class TestMINRES:
    def test_indefinite_symmetric(self):
        """MINRES handles a shifted (indefinite) Laplacian."""
        def body(comm):
            n = 12
            A0 = galeri.laplace_1d(n, comm)
            # shift by -1.0: some eigenvalues become negative
            A = tpetra.CrsMatrix(A0.row_map)
            for gid in A0.row_map.my_gids:
                cols, vals = A0.global_row(int(gid))
                A.insert_global_values(int(gid), cols, vals)
                A.insert_global_values(int(gid), [int(gid)], [-1.0])
            A.fillComplete()
            x_true = tpetra.Vector(A.row_map)
            x_true.randomize(seed=4)
            b = A @ x_true
            r = solvers.minres(A, b, tol=1e-10, maxiter=500)
            return r.converged, (r.x - x_true).norm2() / x_true.norm2()
        conv, err = spmd(2)(body)[0]
        assert conv and err < 1e-6


class TestTFQMR:
    def test_nonsymmetric(self):
        def body(comm):
            A, b, x_true = _problem(comm, symmetric=False, seed=3)
            r = solvers.tfqmr(A, b, tol=1e-10, maxiter=3000)
            return r.converged, (r.x - x_true).norm2() / x_true.norm2()
        conv, err = spmd(2)(body)[0]
        assert conv and err < 1e-5

    def test_preconditioned(self):
        def body(comm):
            A, b, x_true = _problem(comm, symmetric=False, seed=3)
            r = solvers.tfqmr(A, b, prec=solvers.ILU0(A), tol=1e-10,
                              maxiter=3000)
            return r.converged, (r.x - x_true).norm2() / x_true.norm2()
        conv, err = spmd(2)(body)[0]
        assert conv and err < 1e-5


class TestAztecOO:
    def test_parameter_driven(self):
        def body(comm):
            A, b, x_true = _problem(comm)
            params = ParameterList("AztecOO")
            params.set("Solver", "CG")
            params.set("Tolerance", 1e-10)
            params.set("Max Iterations", 500)
            mgr = solvers.AztecOO(A, prec=solvers.Jacobi(A), params=params)
            r = mgr.iterate(b)
            return r.converged
        assert all(spmd(2)(body))

    def test_unknown_solver_name(self):
        def body(comm):
            A, b, _x = _problem(comm, nx=4, ny=4)
            params = ParameterList().set("Solver", "WARPDRIVE")
            solvers.AztecOO(A, params=params).iterate(b)
        with pytest.raises(ValueError):
            spmd(1)(body)

    @pytest.mark.parametrize("name", ["CG", "GMRES", "BICGSTAB", "TFQMR",
                                      "MINRES"])
    def test_every_method_available(self, name):
        def body(comm):
            A, b, _x = _problem(comm, nx=8, ny=8)
            params = ParameterList().set("Solver", name) \
                .set("Tolerance", 1e-8).set("Max Iterations", 3000)
            return solvers.AztecOO(A, params=params).iterate(b).converged
        assert all(spmd(2)(body))
