"""Eigensolver tests against analytic spectra."""

import numpy as np
import pytest

from repro import galeri, solvers, tpetra
from tests.conftest import spmd


def _laplace_1d_eigs(n):
    """Exact eigenvalues of the [-1, 2, -1] stencil."""
    return np.array([2 - 2 * np.cos(np.pi * k / (n + 1))
                     for k in range(1, n + 1)])


class TestPowerMethod:
    def test_dominant_eigenvalue(self):
        n = 30
        exact = _laplace_1d_eigs(n).max()

        def body(comm):
            A = galeri.laplace_1d(n, comm)
            r = solvers.power_method(A, tol=1e-12, maxiter=8000)
            return r.converged, float(r.eigenvalues[0])
        conv, lam = spmd(3)(body)[0]
        assert conv and lam == pytest.approx(exact, rel=1e-4)

    def test_eigenvector_residual(self):
        def body(comm):
            A = galeri.laplace_1d(20, comm)
            r = solvers.power_method(A, tol=1e-12, maxiter=8000)
            v = r.eigenvectors[0]
            av = tpetra.Vector(A.row_map)
            A.apply(v, av)
            av.update(-float(r.eigenvalues[0]), v, 1.0)
            return av.norm2()
        assert spmd(2)(body)[0] < 1e-4


class TestInverseIteration:
    def test_smallest_eigenvalue(self):
        n = 25
        exact = _laplace_1d_eigs(n).min()

        def body(comm):
            A = galeri.laplace_1d(n, comm)
            r = solvers.inverse_iteration(A, shift=0.0, tol=1e-12)
            return r.converged, float(r.eigenvalues[0])
        conv, lam = spmd(2)(body)[0]
        assert conv and lam == pytest.approx(exact, rel=1e-8)

    def test_interior_eigenvalue_with_shift(self):
        n = 20
        eigs = _laplace_1d_eigs(n)
        target = eigs[len(eigs) // 2]

        def body(comm):
            A = galeri.laplace_1d(n, comm)
            r = solvers.inverse_iteration(A, shift=float(target) + 1e-3,
                                          tol=1e-12)
            return float(r.eigenvalues[0])
        lam = spmd(2)(body)[0]
        assert lam == pytest.approx(target, rel=1e-6)


class TestLanczos:
    def test_extreme_eigenvalues_1d(self):
        """1-D Laplacian spectrum is simple: Lanczos nails both ends."""
        n = 40
        eigs = _laplace_1d_eigs(n)

        def body(comm):
            A = galeri.laplace_1d(n, comm)
            lo = solvers.lanczos(A, nev=3, which="SM", tol=1e-9,
                                 max_krylov=n)
            hi = solvers.lanczos(A, nev=2, which="LM", tol=1e-9,
                                 max_krylov=n)
            return lo.eigenvalues, hi.eigenvalues
        low, high = spmd(3)(body)[0]
        assert np.allclose(low, np.sort(eigs)[:3], rtol=1e-6)
        assert np.allclose(np.sort(high), np.sort(eigs)[-2:], rtol=1e-6)

    def test_ritz_vector_residuals(self):
        def body(comm):
            A = galeri.laplace_1d(30, comm)
            r = solvers.lanczos(A, nev=2, which="SM", tol=1e-10,
                                max_krylov=30)
            out = []
            for lam, v in zip(r.eigenvalues, r.eigenvectors):
                av = tpetra.Vector(A.row_map)
                A.apply(v, av)
                av.update(-float(lam), v, 1.0)
                out.append(av.norm2())
            return max(out)
        assert spmd(2)(body)[0] < 1e-7


class TestLOBPCG:
    def test_smallest_with_preconditioner(self):
        nx = ny = 10
        exact = sorted(4 - 2 * np.cos(np.pi * i / (nx + 1))
                       - 2 * np.cos(np.pi * j / (ny + 1))
                       for i in range(1, nx + 1)
                       for j in range(1, ny + 1))[:3]

        def body(comm):
            A = galeri.laplace_2d(nx, ny, comm)
            r = solvers.lobpcg(A, nev=3, prec=solvers.ILU0(A), tol=1e-7,
                               maxiter=300)
            return r.converged, r.eigenvalues
        conv, lams = spmd(2)(body)[0]
        assert conv
        assert np.allclose(lams, exact, rtol=1e-4)

    def test_handles_degenerate_pairs(self):
        """The 2-D square Laplacian has multiplicity-2 eigenvalues; block
        methods must resolve both copies (single-vector Lanczos cannot)."""
        def body(comm):
            A = galeri.laplace_2d(8, 8, comm)
            r = solvers.lobpcg(A, nev=3, prec=solvers.ILU0(A), tol=1e-6,
                               maxiter=400)
            return r.eigenvalues
        lams = spmd(2)(body)[0]
        # eigenvalues 2 and 3 are a degenerate pair
        assert lams[1] == pytest.approx(lams[2], rel=1e-4)

    def test_unpreconditioned(self):
        def body(comm):
            A = galeri.laplace_1d(16, comm)
            r = solvers.lobpcg(A, nev=2, tol=1e-6, maxiter=500)
            return r.converged, r.eigenvalues
        conv, lams = spmd(2)(body)[0]
        exact = np.sort(_laplace_1d_eigs(16))[:2]
        assert conv and np.allclose(lams, exact, rtol=1e-4)
