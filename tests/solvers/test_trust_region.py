"""Trust-region (dogleg) nonlinear solver tests."""

import numpy as np
import pytest

from repro import solvers, tpetra
from repro.teuchos import ParameterList
from tests.conftest import spmd


def _atan_problem(comm, n=8, x0_val=3.0):
    m = tpetra.Map.create_contiguous(n, comm)

    def residual(x):
        r = tpetra.Vector(m)
        r.local_view[...] = np.arctan(x.local_view)
        return r

    def jacobian(x):
        J = tpetra.CrsMatrix(m)
        for lid, gid in enumerate(m.my_gids):
            # divergent full-step iterates overflow float64 when squared;
            # clipping keeps J'(x) = 1/(1+x^2) well defined (it is ~0
            # there anyway) without tripping overflow warnings in the
            # rank threads, where the caller's np.errstate cannot reach
            xi = float(np.clip(x.local_view[lid], -1e150, 1e150))
            J.insert_global_values(int(gid), [int(gid)],
                                   [1.0 / (1.0 + xi * xi)])
        J.fillComplete()
        return J

    x0 = tpetra.Vector(m).putScalar(x0_val)
    return residual, jacobian, x0


class TestTrustRegion:
    def test_converges_where_full_newton_diverges(self):
        def body(comm):
            residual, jacobian, x0 = _atan_problem(comm)
            full = solvers.NewtonSolver(
                residual, jacobian=jacobian,
                params=ParameterList().set("Line Search", "Full Step")
                .set("Max Nonlinear Iterations", 15)).solve(x0)
            tr = solvers.NewtonSolver(
                residual, jacobian=jacobian,
                params=ParameterList().set("Strategy",
                                           "Trust Region")).solve(x0)
            return full.converged, tr.converged, tr.residual_norm
        full_conv, tr_conv, tr_res = spmd(2)(body)[0]
        assert not full_conv
        assert tr_conv and tr_res < 1e-8

    def test_easy_problem_fast(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(6, comm)

            def residual(x):
                r = tpetra.Vector(m)
                r.local_view[...] = x.local_view ** 2 - 9.0
                return r

            def jacobian(x):
                J = tpetra.CrsMatrix(m)
                for lid, gid in enumerate(m.my_gids):
                    J.insert_global_values(int(gid), [int(gid)],
                                           [2.0 * x.local_view[lid]])
                J.fillComplete()
                return J

            tr = solvers.NewtonSolver(
                residual, jacobian=jacobian,
                params=ParameterList().set("Strategy", "Trust Region")
            ).solve(tpetra.Vector(m).putScalar(5.0))
            return tr.converged, tr.iterations, \
                float(np.abs(tr.x.local_view - 3.0).max())
        conv, its, err = spmd(2)(body)[0]
        assert conv and its < 15 and err < 1e-6

    def test_requires_analytic_jacobian(self):
        def body(comm):
            residual, _jac, x0 = _atan_problem(comm)
            solvers.NewtonSolver(
                residual,
                params=ParameterList().set("Strategy", "Trust Region")
            ).solve(x0)
        with pytest.raises(ValueError, match="jacobian"):
            spmd(1)(body)

    def test_history_monotone(self):
        def body(comm):
            residual, jacobian, x0 = _atan_problem(comm, x0_val=2.0)
            tr = solvers.NewtonSolver(
                residual, jacobian=jacobian,
                params=ParameterList().set("Strategy",
                                           "Trust Region")).solve(x0)
            return tr.history
        hist = spmd(1)(body)[0]
        # accepted steps only: ||F|| never increases
        assert all(b <= a * (1 + 1e-12) for a, b in zip(hist, hist[1:]))
