"""Pseudo-block CG (multi-RHS) tests."""

import numpy as np
import pytest

from repro import galeri, solvers, tpetra
from tests.conftest import spmd


def _problem(comm, nvec=3, nx=10, ny=10, seed=1):
    A = galeri.laplace_2d(nx, ny, comm)
    Xt = tpetra.MultiVector(A.row_map, nvec)
    Xt.randomize(seed=seed)
    return A, A @ Xt, Xt


class TestBlockCG:
    def test_all_columns_converge(self):
        def body(comm):
            A, B, Xt = _problem(comm, nvec=4)
            r = solvers.block_cg(A, B, tol=1e-10, maxiter=1000)
            err = np.abs(r.x.gather_all() - Xt.gather_all()).max()
            return bool(r.converged.all()), r.iterations, float(err)
        for conv, _its, err in spmd(3)(body):
            assert conv and err < 1e-7

    def test_matches_column_by_column_cg(self):
        """The pseudo-block recurrences equal independent CG runs."""
        def body(comm):
            A, B, _Xt = _problem(comm, nvec=2, seed=5)
            blk = solvers.block_cg(A, B, tol=1e-9, maxiter=500)
            singles = []
            for j in range(2):
                b_j = B.vector(j).copy()
                singles.append(solvers.cg(A, b_j, tol=1e-9, maxiter=500))
            diffs = [np.abs(np.asarray(blk.x.vector(j).copy()) -
                            np.asarray(singles[j].x)).max()
                     for j in range(2)]
            return max(diffs)
        assert spmd(2)(body)[0] < 1e-6

    def test_preconditioned(self):
        def body(comm):
            A, B, _Xt = _problem(comm, nvec=3)
            plain = solvers.block_cg(A, B, tol=1e-10, maxiter=1000)
            prec = solvers.block_cg(A, B, prec=solvers.MLPreconditioner(A),
                                    tol=1e-10, maxiter=1000)
            return plain.iterations, prec.iterations, \
                bool(prec.converged.all())
        plain_its, prec_its, conv = spmd(2)(body)[0]
        assert conv and prec_its < plain_its

    def test_heterogeneous_difficulty_freezes_converged_columns(self):
        """An already-solved column must not destabilize the others."""
        def body(comm):
            A, B, Xt = _problem(comm, nvec=3)
            # make column 0 trivially solved: B[:,0] = 0
            B.local[:, 0] = 0.0
            r = solvers.block_cg(A, B, tol=1e-10, maxiter=1000)
            x0_norm = float(r.x.vector(0).copy().norm2())
            err = np.abs(r.x.gather_all()[:, 1:]
                         - Xt.gather_all()[:, 1:]).max()
            return bool(r.converged.all()), x0_norm, float(err)
        conv, x0, err = spmd(2)(body)[0]
        assert conv and x0 == 0.0 and err < 1e-7

    def test_maxiter_reports_per_column(self):
        def body(comm):
            A, B, _Xt = _problem(comm, nvec=2)
            r = solvers.block_cg(A, B, tol=1e-14, maxiter=2)
            return r.converged.tolist(), r.residual_norms.shape
        conv, shape = spmd(2)(body)[0]
        assert conv == [False, False] and shape == (2,)

    def test_zero_rhs_block(self):
        def body(comm):
            A = galeri.laplace_1d(12, comm)
            B = tpetra.MultiVector(A.row_map, 2)
            r = solvers.block_cg(A, B, tol=1e-10)
            return bool(r.converged.all()), float(np.abs(
                r.x.gather_all()).max())
        conv, xmax = spmd(2)(body)[0]
        assert conv and xmax == 0.0
