"""Nonlinear solver (NOX) and complex-system (Komplex) tests."""

import numpy as np
import pytest

from repro import galeri, solvers, tpetra
from repro.teuchos import ParameterList
from tests.conftest import spmd


def _scalarized(n, comm):
    """Map + helper for an n-dim nonlinear system."""
    return tpetra.Map.create_contiguous(n, comm)


class TestNewton:
    def test_quadratic_system_jfnk(self):
        """Solve x_i^2 = i + 1 by Jacobian-free Newton-Krylov."""
        def body(comm):
            m = _scalarized(8, comm)
            targets = m.my_gids + 1.0

            def residual(x):
                r = tpetra.Vector(m)
                r.local_view[...] = x.local_view ** 2 - targets
                return r

            x0 = tpetra.Vector(m).putScalar(2.0)
            result = solvers.NewtonSolver(residual).solve(x0)
            return result.converged, \
                np.abs(result.x.local_view -
                       np.sqrt(targets)).max()
        for conv, err in spmd(3)(body):
            assert conv and err < 1e-7

    def test_analytic_jacobian_path(self):
        def body(comm):
            m = _scalarized(6, comm)

            def residual(x):
                r = tpetra.Vector(m)
                r.local_view[...] = x.local_view ** 3 - 8.0
                return r

            def jacobian(x):
                J = tpetra.CrsMatrix(m)
                for lid, gid in enumerate(m.my_gids):
                    J.insert_global_values(
                        int(gid), [int(gid)],
                        [3.0 * x.local_view[lid] ** 2])
                J.fillComplete()
                return J

            x0 = tpetra.Vector(m).putScalar(1.0)
            result = solvers.NewtonSolver(residual,
                                          jacobian=jacobian).solve(x0)
            return result.converged, \
                np.abs(result.x.local_view - 2.0).max()
        conv, err = spmd(2)(body)[0]
        assert conv and err < 1e-8

    def test_quadratic_convergence_rate(self):
        """Newton's history should contract superlinearly near the root."""
        def body(comm):
            m = _scalarized(4, comm)

            def residual(x):
                r = tpetra.Vector(m)
                r.local_view[...] = x.local_view ** 2 - 4.0
                return r

            params = ParameterList().set("Line Search", "Full Step") \
                .set("Nonlinear Tolerance", 1e-13) \
                .set("Forcing Term", "Constant") \
                .set("Linear Tolerance", 1e-12)
            x0 = tpetra.Vector(m).putScalar(3.0)
            result = solvers.NewtonSolver(residual, params=params) \
                .solve(x0)
            return result.history
        hist = spmd(1)(body)[0]
        # ratio of successive residuals shrinks (superlinear)
        ratios = [hist[i + 1] / hist[i] for i in range(len(hist) - 2)]
        assert ratios == sorted(ratios, reverse=True)

    @pytest.mark.parametrize("ls", ["Full Step", "Backtrack", "Quadratic"])
    def test_line_searches(self, ls):
        def body(comm):
            m = _scalarized(5, comm)

            def residual(x):
                r = tpetra.Vector(m)
                r.local_view[...] = np.tanh(x.local_view) - 0.5
                return r

            params = ParameterList().set("Line Search", ls)
            result = solvers.NewtonSolver(residual, params=params).solve(
                tpetra.Vector(m))
            return result.converged
        assert all(spmd(2)(body))

    def test_bratu_1d(self):
        """The classic Bratu problem via the galeri Laplacian."""
        def body(comm):
            n = 32
            A = galeri.laplace_1d(n, comm)
            h = 1.0 / (n + 1)
            lam = 1.0

            def residual(u):
                r = A @ u
                r.local_view[...] -= h ** 2 * lam * np.exp(u.local_view)
                return r

            result = solvers.NewtonSolver(residual).solve(
                tpetra.Vector(A.row_map))
            # Bratu solution is positive, symmetric, maximal at center
            xs = result.x.gather_all()[:, 0]
            return result.converged, float(xs.min()), \
                bool(np.allclose(xs, xs[::-1], atol=1e-6))
        conv, min_u, symmetric = spmd(2)(body)[0]
        assert conv and min_u > 0 and symmetric

    def test_nonconvergence_reported(self):
        def body(comm):
            m = _scalarized(3, comm)

            def residual(x):
                r = tpetra.Vector(m)
                r.local_view[...] = x.local_view ** 2 + 1.0  # no real root
                return r

            params = ParameterList().set("Max Nonlinear Iterations", 5)
            result = solvers.NewtonSolver(residual, params=params).solve(
                tpetra.Vector(m))
            return result.converged
        assert spmd(1)(body) == [False]


class TestJacobianFreeOperator:
    def test_matches_analytic_jacobian(self):
        def body(comm):
            m = _scalarized(10, comm)
            x = tpetra.Vector(m)
            x.local_view[...] = m.my_gids * 0.1

            def residual(u):
                r = tpetra.Vector(m)
                r.local_view[...] = u.local_view ** 2
                return r

            J = solvers.JacobianFreeOperator(residual, x, residual(x))
            v = tpetra.Vector(m).putScalar(1.0)
            jv = tpetra.Vector(m)
            J.apply(v, jv)
            analytic = 2.0 * x.local_view
            return np.abs(jv.local_view - analytic).max()
        assert spmd(2)(body)[0] < 1e-5

    def test_zero_direction(self):
        def body(comm):
            m = _scalarized(4, comm)
            x = tpetra.Vector(m).putScalar(1.0)

            def residual(u):
                return u.copy()

            J = solvers.JacobianFreeOperator(residual, x, residual(x))
            z = tpetra.Vector(m)
            out = tpetra.Vector(m).putScalar(9.0)
            J.apply(z, out)
            return out.norm2()
        assert spmd(1)(body)[0] == 0.0


class TestKomplex:
    @pytest.mark.parametrize("interleaved", [False, True])
    def test_complex_solve_roundtrip(self, interleaved):
        def body(comm):
            n = 20
            m = tpetra.Map.create_contiguous(n, comm)
            Ac = tpetra.CrsMatrix(m, dtype=np.complex128)
            for gid in m.my_gids:
                Ac.insert_global_values(gid, [gid], [5.0 + 1.0j])
                if gid > 0:
                    Ac.insert_global_values(gid, [gid - 1], [-1.0 + 0.3j])
                if gid < n - 1:
                    Ac.insert_global_values(gid, [gid + 1], [-1.0 - 0.3j])
            Ac.fillComplete()
            x_true = tpetra.Vector(m, dtype=np.complex128)
            x_true.local_view[...] = np.exp(1j * m.my_gids.astype(float))
            b = Ac @ x_true
            K, rhs = solvers.komplex_system(Ac, b,
                                            interleaved=interleaved)
            lin = solvers.gmres(K, rhs, tol=1e-12, maxiter=4000,
                                restart=80)
            x = solvers.split_komplex_solution(lin.x, m,
                                               interleaved=interleaved)
            return lin.converged, (x - x_true).norm2()
        conv, err = spmd(3)(body)[0]
        assert conv and err < 1e-8

    def test_real_matrix_rejected(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            A = tpetra.CrsMatrix(m)
            for gid in m.my_gids:
                A.insert_global_values(gid, [gid], [1.0])
            A.fillComplete()
            solvers.komplex_system(A, tpetra.Vector(m))
        with pytest.raises(TypeError):
            spmd(1)(body)

    def test_equivalent_system_structure(self):
        """K1 form doubles the dimension and keeps realness."""
        def body(comm):
            m = tpetra.Map.create_contiguous(6, comm)
            Ac = tpetra.CrsMatrix(m, dtype=np.complex128)
            for gid in m.my_gids:
                Ac.insert_global_values(gid, [gid], [2.0 + 1.0j])
            Ac.fillComplete()
            b = tpetra.Vector(m, dtype=np.complex128).putScalar(1 + 0j)
            K, rhs = solvers.komplex_system(Ac, b)
            return K.num_global_rows, K.dtype.kind, rhs.global_length
        rows, kind, blen = spmd(2)(body)[0]
        assert rows == 12 and kind == "f" and blen == 12
