"""Direct solver (Amesos) and AMG (ML) tests."""

import numpy as np
import pytest

from repro import galeri, solvers, tpetra
from repro.teuchos import ParameterList
from tests.conftest import spmd


class TestDirect:
    @pytest.mark.parametrize("name", ["KLU", "SuperLU", "UMFPACK",
                                      "LAPACK"])
    def test_exact_solve(self, name):
        def body(comm):
            A = galeri.laplace_2d(8, 8, comm)
            x_true = tpetra.Vector(A.row_map)
            x_true.randomize(seed=5)
            b = A @ x_true
            solver = solvers.create_solver(name, A)
            x = solver.solve(b)
            return (x - x_true).norm2() / x_true.norm2()
        for err in spmd(3)(body):
            assert err < 1e-12

    def test_factor_once_solve_many(self):
        def body(comm):
            A = galeri.laplace_1d(20, comm)
            solver = solvers.SparseLU(A).numeric_factorization()
            errs = []
            for seed in (1, 2, 3):
                xt = tpetra.Vector(A.row_map)
                xt.randomize(seed=seed)
                b = A @ xt
                errs.append((solver.solve(b) - xt).norm2())
            return max(errs)
        assert spmd(2)(body)[0] < 1e-12

    def test_unknown_name(self):
        def body(comm):
            A = galeri.laplace_1d(4, comm)
            solvers.create_solver("PARDISO", A)
        with pytest.raises(ValueError):
            spmd(1)(body)

    def test_nonsquare_rejected(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            dom = tpetra.Map.create_contiguous(6, comm)
            A = tpetra.CrsMatrix(m)
            for gid in m.my_gids:
                A.insert_global_values(gid, [gid], [1.0])
            A.fillComplete(domain_map=dom)
            solvers.SparseLU(A)
        with pytest.raises(ValueError):
            spmd(1)(body)

    def test_usable_as_operator(self):
        """A direct solver is an exact preconditioner: CG in 1 iteration."""
        def body(comm):
            A = galeri.laplace_2d(6, 6, comm)
            b = tpetra.Vector(A.row_map).putScalar(1.0)
            prec = solvers.SparseLU(A).numeric_factorization()
            r = solvers.cg(A, b, prec=prec, tol=1e-12, maxiter=10)
            return r.converged, r.iterations
        conv, its = spmd(2)(body)[0]
        assert conv and its <= 2


class TestML:
    def test_hierarchy_structure(self):
        def body(comm):
            A = galeri.laplace_2d(24, 24, comm)
            ml = solvers.MLPreconditioner(A)
            sizes = [lvl.A.num_global_rows for lvl in ml.levels]
            return ml.num_levels, sizes, ml.operator_complexity()
        levels, sizes, complexity = spmd(3)(body)[0]
        assert levels >= 2
        assert sizes == sorted(sizes, reverse=True)  # strictly coarsening
        assert sizes[-1] <= 50
        assert 1.0 < complexity < 3.0

    def test_amg_preconditioned_cg_iteration_count(self):
        """AMG-CG should converge in O(10) iterations, grid-independent-ish."""
        def body(comm):
            counts = []
            for n in (12, 24):
                A = galeri.laplace_2d(n, n, comm)
                b = tpetra.Vector(A.row_map).putScalar(1.0)
                ml = solvers.MLPreconditioner(A)
                r = solvers.cg(A, b, prec=ml, tol=1e-10, maxiter=100)
                counts.append((r.converged, r.iterations))
            return counts
        counts = spmd(2)(body)[0]
        assert all(conv for conv, _ in counts)
        assert all(its <= 25 for _conv, its in counts)
        # near grid-independence: iteration growth is mild
        assert counts[1][1] <= counts[0][1] + 10

    def test_standalone_solver(self):
        def body(comm):
            A = galeri.laplace_2d(16, 16, comm)
            x_true = tpetra.Vector(A.row_map)
            x_true.randomize(seed=9)
            b = A @ x_true
            ml = solvers.MLPreconditioner(A)
            r = ml.solve(b, tol=1e-9, maxiter=60)
            return r.converged, (r.x - x_true).norm2() / x_true.norm2()
        conv, err = spmd(2)(body)[0]
        assert conv and err < 1e-6

    def test_jacobi_smoother_option(self):
        def body(comm):
            A = galeri.laplace_2d(12, 12, comm)
            params = ParameterList("ML").set("smoother: type", "jacobi") \
                                        .set("smoother: sweeps", 2)
            ml = solvers.MLPreconditioner(A, params)
            b = tpetra.Vector(A.row_map).putScalar(1.0)
            r = solvers.cg(A, b, prec=ml, tol=1e-9, maxiter=100)
            return r.converged
        assert all(spmd(2)(body))

    def test_unsmoothed_aggregation(self):
        def body(comm):
            A = galeri.laplace_2d(12, 12, comm)
            params = ParameterList("ML").set("prolongator: smooth", False)
            ml = solvers.MLPreconditioner(A, params)
            b = tpetra.Vector(A.row_map).putScalar(1.0)
            r = solvers.cg(A, b, prec=ml, tol=1e-9, maxiter=200)
            return r.converged
        assert all(spmd(2)(body))

    def test_1d_problem(self):
        def body(comm):
            A = galeri.laplace_1d(200, comm)
            ml = solvers.MLPreconditioner(A)
            b = tpetra.Vector(A.row_map).putScalar(1.0)
            r = solvers.cg(A, b, prec=ml, tol=1e-10, maxiter=60)
            return r.converged, r.iterations, ml.num_levels
        conv, its, levels = spmd(2)(body)[0]
        assert conv and its <= 20 and levels >= 2
