"""Preconditioner tests: correctness and effectiveness."""

import numpy as np
import pytest

from repro import galeri, solvers, tpetra
from repro.teuchos import ParameterList
from tests.conftest import spmd


def _poisson(comm, nx=14, ny=14):
    A = galeri.laplace_2d(nx, ny, comm)
    x_true = tpetra.Vector(A.row_map)
    x_true.randomize(seed=1)
    return A, A @ x_true, x_true


def _iters_with(prec_factory, nranks=2):
    def body(comm):
        A, b, _x = _poisson(comm)
        prec = prec_factory(A)
        r = solvers.cg(A, b, prec=prec, tol=1e-10, maxiter=2000)
        return r.converged, r.iterations
    return spmd(nranks)(body)[0]


class TestEffectiveness:
    def test_baseline_unpreconditioned(self):
        conv, base = _iters_with(lambda A: None)
        assert conv
        # every real preconditioner should beat or match this
        assert base > 20

    @pytest.mark.parametrize("factory,name", [
        (lambda A: solvers.SymmetricGaussSeidel(A), "sgs"),
        (lambda A: solvers.ILU0(A), "ilu0"),
        (lambda A: solvers.ILUT(A), "ilut"),
        (lambda A: solvers.AdditiveSchwarz(A, overlap=1), "ras"),
        (lambda A: solvers.Chebyshev(A, degree=3), "cheby"),
    ])
    def test_reduces_iterations(self, factory, name):
        _conv0, base = _iters_with(lambda A: None)
        conv, its = _iters_with(factory)
        assert conv, name
        assert its < base, f"{name}: {its} !< {base}"

    def test_schwarz_overlap_helps_symmetric_variant(self):
        _c0, none_overlap = _iters_with(
            lambda A: solvers.AdditiveSchwarz(A, overlap=0, variant="as"))
        _c1, with_overlap = _iters_with(
            lambda A: solvers.AdditiveSchwarz(A, overlap=2, variant="as"))
        assert with_overlap <= none_overlap

    def test_ras_is_for_nonsymmetric_solvers(self):
        """RAS works fine under GMRES (its natural pairing)."""
        def body(comm):
            A, b, _x = _poisson(comm)
            prec = solvers.AdditiveSchwarz(A, overlap=1, variant="ras")
            r = solvers.gmres(A, b, prec=prec, tol=1e-10, maxiter=500)
            return r.converged, r.iterations
        conv, its = spmd(2)(body)[0]
        assert conv and its < 60

    def test_bad_variant(self):
        def body(comm):
            A, _b, _x = _poisson(comm, nx=4, ny=4)
            solvers.AdditiveSchwarz(A, variant="multiplicative")
        with pytest.raises(ValueError):
            spmd(1)(body)


class TestApplication:
    def test_jacobi_is_diagonal_scaling(self):
        def body(comm):
            A, _b, _x = _poisson(comm, nx=6, ny=6)
            prec = solvers.Jacobi(A)
            r = tpetra.Vector(A.row_map).putScalar(4.0)
            z = tpetra.Vector(A.row_map)
            prec.apply(r, z)
            return np.asarray(z)
        got = spmd(2)(body)[0]
        assert np.allclose(got, 1.0)  # diag of laplace_2d is 4

    def test_jacobi_multiple_sweeps_converge_toward_solve(self):
        def body(comm):
            A, b, x_true = _poisson(comm, nx=5, ny=5)
            one = solvers.Jacobi(A, sweeps=1, damping=0.8)
            many = solvers.Jacobi(A, sweeps=40, damping=0.8)
            z1 = tpetra.Vector(A.row_map)
            zm = tpetra.Vector(A.row_map)
            one.apply(b, z1)
            many.apply(b, zm)
            e1 = (z1 - x_true).norm2()
            em = (zm - x_true).norm2()
            return em < e1
        assert all(spmd(2)(body))

    def test_gauss_seidel_forward_vs_backward(self):
        def body(comm):
            A, b, _x = _poisson(comm, nx=6, ny=6)
            fwd = solvers.GaussSeidel(A)
            bwd = solvers.GaussSeidel(A, backward=True)
            zf = tpetra.Vector(A.row_map)
            zb = tpetra.Vector(A.row_map)
            fwd.apply(b, zf)
            bwd.apply(b, zb)
            # different sweep directions give different (finite) results
            return np.isfinite(zf.local).all(), \
                not np.allclose(zf.local, zb.local)
        finite, different = spmd(1)(body)[0]
        assert finite and different

    def test_sor_omega_validation(self):
        def body(comm):
            A, _b, _x = _poisson(comm, nx=4, ny=4)
            solvers.SOR(A, omega=2.5)
        with pytest.raises(ValueError):
            spmd(1)(body)

    def test_zero_diagonal_rejected(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            A = tpetra.CrsMatrix(m)
            for gid in m.my_gids:
                A.insert_global_values(gid, [(int(gid) + 1) % 4], [1.0])
            A.fillComplete()
            solvers.Jacobi(A)
        with pytest.raises(ZeroDivisionError):
            spmd(1)(body)

    def test_unfilled_matrix_rejected(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            solvers.Jacobi(tpetra.CrsMatrix(m))
        with pytest.raises(ValueError):
            spmd(1)(body)

    def test_ilu0_exact_on_triangular(self):
        """ILU(0) of a lower-triangular matrix is exact."""
        def body(comm):
            m = tpetra.Map.create_contiguous(8, comm)
            A = tpetra.CrsMatrix(m)
            for gid in m.my_gids:
                A.insert_global_values(gid, [gid], [2.0])
                if gid > 0:
                    A.insert_global_values(gid, [gid - 1], [1.0])
            A.fillComplete()
            x_true = tpetra.Vector(m)
            x_true.randomize(seed=2)
            b = A @ x_true
            # serial only: the factorization is processor-local
            prec = solvers.ILU0(A)
            z = tpetra.Vector(m)
            prec.apply(b, z)
            return (z - x_true).norm2()
        assert spmd(1)(body)[0] < 1e-12


class TestFactory:
    @pytest.mark.parametrize("name", ["Jacobi", "Gauss-Seidel", "SGS",
                                      "SOR", "Chebyshev", "ILU", "ILUT",
                                      "Schwarz"])
    def test_create_by_name(self, name):
        def body(comm):
            A, b, _x = _poisson(comm, nx=8, ny=8)
            prec = solvers.create_preconditioner(name, A)
            r = solvers.gmres(A, b, prec=prec, tol=1e-8, maxiter=2000)
            return r.converged
        assert all(spmd(2)(body))

    def test_params_passed_through(self):
        def body(comm):
            A, _b, _x = _poisson(comm, nx=6, ny=6)
            params = ParameterList().set("Sweeps", 3)
            prec = solvers.create_preconditioner("Jacobi", A, params)
            return prec.sweeps
        assert spmd(1)(body)[0] == 3

    def test_unknown_name(self):
        def body(comm):
            A, _b, _x = _poisson(comm, nx=4, ny=4)
            solvers.create_preconditioner("Quantum", A)
        with pytest.raises(ValueError):
            spmd(1)(body)
