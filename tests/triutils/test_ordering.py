"""RCM ordering tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import galeri, solvers, tpetra, triutils
from tests.conftest import spmd


class TestRCM:
    def test_permutation_is_valid(self):
        def body(comm):
            A = galeri.laplace_2d(8, 8, comm)
            perm = triutils.reverse_cuthill_mckee(A)
            return perm
        perm = spmd(2)(body)[0]
        assert sorted(perm.tolist()) == list(range(64))

    def test_bandwidth_reduced_on_scrambled_matrix(self):
        rng = np.random.default_rng(0)
        n = 60
        # a banded matrix, rows scrambled: RCM should recover a low band
        band = sp.diags([np.ones(n - 1), 2 * np.ones(n),
                         np.ones(n - 1)], [-1, 0, 1]).tocsr()
        p = rng.permutation(n)
        scrambled = band[p][:, p].tocsr()

        def body(comm):
            m = tpetra.Map.create_contiguous(n, comm)
            A = tpetra.CrsMatrix.from_scipy(scrambled, m)
            B = triutils.permute_matrix(A)
            return (triutils.bandwidth(A.to_scipy_global(root=None)),
                    triutils.bandwidth(B.to_scipy_global(root=None)))
        before, after = spmd(2)(body)[0]
        assert after < before
        assert after <= 3

    def test_permuted_matrix_same_spectrum(self):
        def body(comm):
            A = galeri.laplace_1d(12, comm)
            B = triutils.permute_matrix(A)
            ea = np.linalg.eigvalsh(A.to_scipy_global(root=None).toarray())
            eb = np.linalg.eigvalsh(B.to_scipy_global(root=None).toarray())
            return np.abs(ea - eb).max()
        assert spmd(2)(body)[0] < 1e-10

    def test_rcm_map_partitions(self):
        def body(comm):
            A = galeri.laplace_2d(6, 6, comm)
            m = triutils.rcm_map(A)
            return m.my_gids
        pieces = spmd(3)(body)
        union = np.sort(np.concatenate(pieces))
        assert np.array_equal(union, np.arange(36))

    def test_rcm_improves_ilu_accuracy_on_scrambled(self):
        """ILU(0) fill pattern follows the ordering; RCM recovers it."""
        rng = np.random.default_rng(1)
        n = 49
        base = galeri_scipy_laplace(7)
        p = rng.permutation(n)
        scrambled = base[p][:, p].tocsr()

        def body(comm):
            m = tpetra.Map.create_contiguous(n, comm)
            A = tpetra.CrsMatrix.from_scipy(scrambled, m)
            B = triutils.permute_matrix(A)
            xs = tpetra.Vector(A.row_map).putScalar(1.0)
            it_a = solvers.cg(A, A @ xs, prec=solvers.ILU0(A),
                              tol=1e-10, maxiter=500).iterations
            xb = tpetra.Vector(B.row_map).putScalar(1.0)
            it_b = solvers.cg(B, B @ xb, prec=solvers.ILU0(B),
                              tol=1e-10, maxiter=500).iterations
            return it_a, it_b
        it_scrambled, it_rcm = spmd(1)(body)[0]
        assert it_rcm <= it_scrambled


def galeri_scipy_laplace(k):
    T = sp.diags([-1, 2, -1], [-1, 0, 1], shape=(k, k))
    eye = sp.identity(k)
    return (sp.kron(eye, T) + sp.kron(T, eye)).tocsr()
