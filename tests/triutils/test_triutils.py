"""TriUtils tests: MatrixMarket I/O, residual checks, coloring."""

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro import galeri, tpetra, triutils
from tests.conftest import spmd


class TestMatrixMarketIO:
    def test_matrix_roundtrip(self, tmp_path):
        path = str(tmp_path / "A.mtx")

        def body(comm):
            A = galeri.laplace_2d(5, 5, comm)
            triutils.write_matrix_market(path, A)
            B = triutils.read_matrix_market(path, comm)
            return (B.to_scipy_global(root=None) -
                    A.to_scipy_global(root=None)).nnz
        assert spmd(3)(body) == [0, 0, 0]

    def test_matrix_read_custom_map(self, tmp_path):
        path = str(tmp_path / "A.mtx")
        sio_ref = sp.random(10, 10, density=0.3, random_state=1).tocsr()

        def body(comm):
            if comm.rank == 0:
                import scipy.io as sio
                sio.mmwrite(path, sio_ref)
            comm.barrier()
            m = tpetra.Map.create_cyclic(10, comm)
            B = triutils.read_matrix_market(path, comm, row_map=m)
            return np.allclose(B.to_scipy_global(root=None).toarray(),
                               sio_ref.toarray())
        assert all(spmd(2)(body))

    def test_vector_roundtrip(self, tmp_path):
        path = str(tmp_path / "v.mtx")

        def body(comm):
            m = tpetra.Map.create_contiguous(12, comm)
            v = tpetra.Vector(m)
            v.local_view[...] = np.sin(m.my_gids.astype(float))
            triutils.write_vector_market(path, v)
            w = triutils.read_vector_market(path, comm)
            return (v - w).norm2()
        assert spmd(3)(body)[0] < 1e-14

    def test_interoperates_with_scipy(self, tmp_path):
        path = str(tmp_path / "C.mtx")

        def body(comm):
            A = galeri.tridiag(6, comm)
            triutils.write_matrix_market(path, A)
            return None
        spmd(2)(body)
        import scipy.io as sio
        M = sp.csr_matrix(sio.mmread(path))
        assert M.shape == (6, 6) and M[0, 0] == 2.0


class TestResidualCheck:
    def test_pass_and_fail(self):
        def body(comm):
            A = galeri.laplace_1d(10, comm)
            x = tpetra.Vector(A.row_map).putScalar(1.0)
            b = A @ x
            good = triutils.residual_check(A, x, b, tol=1e-12)
            x_bad = tpetra.Vector(A.row_map).putScalar(2.0)
            bad = triutils.residual_check(A, x_bad, b, tol=1e-12)
            return good, bad
        assert spmd(2)(body)[0] == (True, False)

    def test_solution_error(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            a = tpetra.Vector(m).putScalar(2.0)
            b = tpetra.Vector(m).putScalar(1.0)
            return triutils.solution_error(a, b, relative=True), \
                triutils.solution_error(a, b, relative=False)
        rel, absolute = spmd(2)(body)[0]
        assert rel == pytest.approx(1.0)
        assert absolute == pytest.approx(2.0)


class TestColoring:
    def test_proper_coloring_tridiag(self):
        def body(comm):
            A = galeri.laplace_1d(12, comm)
            colors = triutils.greedy_coloring(A)
            return np.asarray(colors)
        colors = spmd(3)(body)[0]
        # adjacent rows differ; tridiagonal pattern is 2(ish)-colorable
        # with the diagonal ignored... greedy gives <= 3 colors
        assert colors.max() <= 2
        assert all(colors[i] != colors[i + 1] for i in range(11))

    def test_coloring_valid_on_2d(self):
        def body(comm):
            A = galeri.laplace_2d(5, 5, comm)
            colors = np.asarray(triutils.greedy_coloring(A))
            M = A.to_scipy_global(root=None)
            for v in range(25):
                nbrs = M.indices[M.indptr[v]:M.indptr[v + 1]]
                for u in nbrs:
                    if u != v and colors[u] == colors[v]:
                        return False
            return True
        assert all(spmd(2)(body))
