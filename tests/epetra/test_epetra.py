"""First-generation Epetra facade tests (C++-style spellings, fixed types)."""

import numpy as np
import pytest

from repro import epetra, mpi
from tests.conftest import spmd


class TestComm:
    def test_pid_and_nproc(self):
        def body(comm):
            pc = epetra.PyComm(comm)
            return pc.MyPID(), pc.NumProc()
        assert spmd(3)(body) == [(0, 3), (1, 3), (2, 3)]

    def test_reductions(self):
        def body(comm):
            pc = epetra.PyComm(comm)
            return pc.SumAll(pc.MyPID()), pc.MaxAll(pc.MyPID()), \
                pc.MinAll(pc.MyPID())
        assert spmd(3)(body)[0] == (3, 2, 0)

    def test_broadcast(self):
        def body(comm):
            pc = epetra.PyComm(comm)
            return pc.Broadcast("root data" if pc.MyPID() == 0 else None)
        assert spmd(2)(body) == ["root data"] * 2


class TestMap:
    def test_cpp_style_queries(self):
        def body(comm):
            pc = epetra.PyComm(comm)
            m = epetra.Map(10, 0, pc)
            return (m.NumGlobalElements(), m.NumMyElements(),
                    m.GID(0), m.MyGID(m.GID(0)),
                    m.LID(m.GID(0)))
        results = spmd(2)(body)
        assert results[0] == (10, 5, 0, True, 0)
        assert results[1] == (10, 5, 5, True, 0)

    def test_int32_ordinals(self):
        def body(comm):
            pc = epetra.PyComm(comm)
            m = epetra.Map(8, 0, pc)
            return m.MyGlobalElements().dtype == np.int32
        assert all(spmd(2)(body))

    def test_index_base_one_unsupported(self):
        def body(comm):
            epetra.Map(8, 1, epetra.PyComm(comm))
        with pytest.raises(NotImplementedError):
            spmd(1)(body)


class TestVector:
    def test_norms_and_update(self):
        def body(comm):
            pc = epetra.PyComm(comm)
            m = epetra.Map(6, 0, pc)
            v = epetra.Vector(m)
            v.PutScalar(2.0)
            w = epetra.Vector(m)
            w.PutScalar(1.0)
            w.Update(1.0, v, 1.0)   # w = v + w = 3
            return v.Norm2(), w.NormInf(), v.Dot(w), w.MeanValue()
        n2, ninf, dot, mean = spmd(2)(body)[0]
        assert n2 == pytest.approx(np.sqrt(6 * 4))
        assert ninf == 3.0
        assert dot == pytest.approx(6 * 6.0)
        assert mean == 3.0

    def test_local_bracket_access(self):
        def body(comm):
            pc = epetra.PyComm(comm)
            m = epetra.Map(4, 0, pc)
            v = epetra.Vector(m)
            v[0] = 7.5
            return v[0]
        assert spmd(2)(body) == [7.5, 7.5]


class TestCrsMatrix:
    def test_assemble_and_multiply(self):
        def body(comm):
            pc = epetra.PyComm(comm)
            m = epetra.Map(8, 0, pc)
            A = epetra.CrsMatrix("Copy", m)
            for gid in m.MyGlobalElements():
                cols, vals = [int(gid)], [2.0]
                if gid > 0:
                    cols.append(int(gid) - 1)
                    vals.append(-1.0)
                A.InsertGlobalValues(int(gid), vals, cols)
            assert A.FillComplete() == 0
            x = epetra.Vector(m)
            x.PutScalar(1.0)
            y = epetra.Vector(m)
            A.Multiply(False, x, y)
            return y.tpetra_vector.gather_all()[:, 0].tolist()
        got = spmd(2)(body)[0]
        assert got == [2.0] + [1.0] * 7

    def test_bad_copy_mode(self):
        def body(comm):
            m = epetra.Map(4, 0, epetra.PyComm(comm))
            epetra.CrsMatrix("Magic", m)
        with pytest.raises(ValueError):
            spmd(1)(body)

    def test_diag_and_norms(self):
        def body(comm):
            pc = epetra.PyComm(comm)
            m = epetra.Map(5, 0, pc)
            A = epetra.CrsMatrix("Copy", m)
            for gid in m.MyGlobalElements():
                A.InsertGlobalValues(int(gid), [3.0], [int(gid)])
            A.FillComplete()
            d = epetra.Vector(m)
            A.ExtractDiagonalCopy(d)
            return d.Norm1(), A.NormFrobenius(), A.NumGlobalNonzeros()
        n1, fro, nnz = spmd(2)(body)[0]
        assert n1 == 15.0 and nnz == 5
        assert fro == pytest.approx(np.sqrt(5 * 9.0))
