"""Differential testing: compiled code vs CPython on random programs.

Hypothesis builds small random numeric expressions/programs; each is
executed both by the CPython interpreter and by the Seamless C backend,
and the results must agree to rounding.  This is the strongest correctness
statement available for a compiler: no hand-picked cases, only the
semantics contract.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.seamless import FLOAT64, INT64, compiler_available, infer, \
    source_to_ir
from repro.seamless.backend_c import compile_typed

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler on PATH")

# -- expression generator -------------------------------------------------
# Expressions over variables a, b (float64) and c (int64), closed under
# operations that cannot divide by zero or leave the real domain:
# denominators are (|expr| + 1), sqrt/log arguments are (|expr| + 0.5).

_LEAVES = st.sampled_from(["a", "b", "(a + b)", "float(c)", "1.5", "2.0",
                           "0.25", "3.0"])


def _expr(depth: int):
    if depth == 0:
        return _LEAVES
    sub = _expr(depth - 1)
    return st.one_of(
        _LEAVES,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: f"({t[1]} {t[0]} {t[2]})"),
        st.tuples(sub, sub).map(
            lambda t: f"({t[0]} / (abs({t[1]}) + 1.0))"),
        sub.map(lambda e: f"sqrt(abs({e}) + 0.5)"),
        sub.map(lambda e: f"sin({e})"),
        sub.map(lambda e: f"(-{e})"),
        st.tuples(sub, sub).map(lambda t: f"min({t[0]}, {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"max({t[0]}, {t[1]})"),
        st.tuples(sub, sub, sub).map(
            lambda t: f"({t[0]} if {t[1]} < {t[2]} else {t[0]} * 0.5)"),
    )


_NAMESPACE = {"sqrt": math.sqrt, "sin": math.sin, "abs": abs,
              "min": min, "max": max, "float": float}


def _compile_expr(expr: str):
    src = f"def f(a, b, c):\n    return {expr}\n"
    tf = infer(source_to_ir(src), [FLOAT64, FLOAT64, INT64])
    return compile_typed(tf), src


class TestExpressionEquivalence:
    @given(expr=_expr(3), a=st.floats(-10, 10), b=st.floats(-10, 10),
           c=st.integers(-5, 5))
    @settings(max_examples=60, deadline=None)
    def test_matches_cpython(self, expr, a, b, c):
        kernel, src = _compile_expr(expr)
        py = eval(  # noqa: S307 - test oracle
            compile(expr, "<expr>", "eval"),
            {**_NAMESPACE, "a": a, "b": b, "c": c})
        got = kernel(a, b, c)
        assert got == pytest.approx(py, rel=1e-12, abs=1e-12)


class TestIntegerProgramEquivalence:
    """Random loop programs over int64, compared statement-for-statement."""

    @given(coeffs=st.lists(st.integers(-3, 3), min_size=2, max_size=5),
           n=st.integers(0, 30), m=st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_loop_accumulator(self, coeffs, n, m):
        body_terms = " + ".join(
            f"{k} * (i % {m + j})" for j, k in enumerate(coeffs))
        src = (f"def f(n):\n"
               f"    acc = 0\n"
               f"    for i in range(n):\n"
               f"        acc += {body_terms}\n"
               f"    return acc\n")
        tf = infer(source_to_ir(src), [INT64])
        kernel = compile_typed(tf)
        scope = {}
        exec(src, {}, scope)  # noqa: S102 - test oracle
        assert kernel(n) == scope["f"](n)

    @given(seed=st.integers(0, 2**20), steps=st.integers(1, 60))
    @settings(max_examples=30, deadline=None)
    def test_lcg_state_machine(self, seed, steps):
        """A linear congruential generator: integer wraparound-free path
        (the modulus keeps values bounded), branches, and while loops."""
        src = ("def f(seed, steps):\n"
               "    x = seed % 2147483647\n"
               "    k = 0\n"
               "    while k < steps:\n"
               "        x = (x * 48271 + 11) % 2147483647\n"
               "        if x % 2 == 0:\n"
               "            x = x + 1\n"
               "        k += 1\n"
               "    return x\n")
        tf = infer(source_to_ir(src), [INT64, INT64])
        kernel = compile_typed(tf)
        scope = {}
        exec(src, {}, scope)  # noqa: S102
        assert kernel(seed, steps) == scope["f"](seed, steps)


class TestArrayProgramEquivalence:
    @given(data=st.lists(st.floats(-100, 100), min_size=1, max_size=30),
           threshold=st.floats(-50, 50))
    @settings(max_examples=30, deadline=None)
    def test_conditional_accumulation(self, data, threshold):
        src = ("def f(xs, t):\n"
               "    above = 0.0\n"
               "    below = 0.0\n"
               "    for i in range(len(xs)):\n"
               "        if xs[i] > t:\n"
               "            above += xs[i]\n"
               "        else:\n"
               "            below += xs[i]\n"
               "    return above - below\n")
        from repro.seamless import float64_array
        tf = infer(source_to_ir(src), [float64_array, FLOAT64])
        kernel = compile_typed(tf)
        scope = {}
        exec(src, {}, scope)  # noqa: S102
        arr = np.array(data)
        assert kernel(arr, threshold) == pytest.approx(
            scope["f"](arr, threshold), rel=1e-12, abs=1e-9)

    @given(data=st.lists(st.floats(0.1, 10), min_size=2, max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_inplace_stencil(self, data):
        src = ("def f(xs):\n"
               "    for i in range(1, len(xs) - 1):\n"
               "        xs[i] = 0.5 * (xs[i - 1] + xs[i + 1])\n")
        from repro.seamless import float64_array
        tf = infer(source_to_ir(src), [float64_array])
        kernel = compile_typed(tf)
        scope = {}
        exec(src, {}, scope)  # noqa: S102
        a = np.array(data)
        b = np.array(data)
        kernel(a)
        scope["f"](b)
        assert np.allclose(a, b)
