"""Frontend, type inference, and type-system tests (compiler-independent)."""

import numpy as np
import pytest

from repro.seamless import (ArrayType, BOOL, FLOAT64, INT64,
                            UnsupportedError, discover, float64_array,
                            from_annotation, infer, int64_array, promote,
                            source_to_ir)
from repro.seamless import ir


class TestTypes:
    def test_discover_scalars(self):
        assert discover(True) == BOOL
        assert discover(3) == INT64
        assert discover(2.5) == FLOAT64
        assert discover(np.float32(1.0)) == FLOAT64

    def test_discover_arrays(self):
        assert discover(np.zeros(3)) == float64_array
        assert discover(np.zeros(3, dtype=np.int32)) == int64_array

    def test_discover_lists(self):
        assert discover([1, 2, 3]) == int64_array
        assert discover([1.0, 2]) == float64_array

    def test_discover_2d_and_rejects_3d(self):
        from repro.seamless import float64_array2d
        assert discover(np.zeros((2, 2))) == float64_array2d
        with pytest.raises(TypeError):
            discover(np.zeros((2, 2, 2)))

    def test_discover_rejects_objects(self):
        with pytest.raises(TypeError):
            discover({"a": 1})

    def test_promotion(self):
        assert promote(BOOL, INT64) == INT64
        assert promote(INT64, FLOAT64) == FLOAT64
        with pytest.raises(TypeError):
            promote(float64_array, FLOAT64)

    def test_annotations(self):
        assert from_annotation("float64[]") == float64_array
        assert from_annotation(int) == INT64
        assert from_annotation(np.float64) == FLOAT64
        assert from_annotation(None) is None
        with pytest.raises(TypeError):
            from_annotation("quaternion")

    def test_array_type_identity(self):
        assert ArrayType(FLOAT64) == float64_array
        assert float64_array != FLOAT64


SUM_SRC = '''
def total(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res
'''


class TestFrontend:
    def test_sum_structure(self):
        fir = source_to_ir(SUM_SRC)
        assert fir.name == "total"
        assert fir.arg_names == ["it"]
        kinds = [type(s).__name__ for s in fir.body]
        assert kinds == ["Assign", "For", "Return"]
        loop = fir.body[1]
        assert isinstance(loop.stop, ir.LenOf)

    def test_while_if(self):
        fir = source_to_ir('''
def collatz(n):
    steps = 0
    while n != 1:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps += 1
    return steps
''')
        assert isinstance(fir.body[1], ir.While)
        assert isinstance(fir.body[1].body[0], ir.If)

    def test_chained_comparison_desugars(self):
        fir = source_to_ir("def f(x):\n    return 0 < x < 10\n")
        ret = fir.body[0]
        assert isinstance(ret.value, ir.BoolOp)
        assert len(ret.value.values) == 2

    def test_docstring_dropped(self):
        fir = source_to_ir('def f(x):\n    "doc"\n    return x\n')
        assert isinstance(fir.body[-1], ir.Return)

    def test_math_attribute_calls(self):
        fir = source_to_ir(
            "def f(x):\n    return math.sqrt(x) + np.exp(x)\n")
        ret = fir.body[0].value
        assert ret.left.func == "sqrt" and ret.right.func == "exp"

    @pytest.mark.parametrize("src", [
        "def f(x):\n    y = [1, 2]\n    return 0\n",      # list literal
        "def f(x):\n    return x.mean()\n",                # method call
        "def f(*args):\n    return 0\n",                   # varargs
        "def f(x=1):\n    return x\n",                     # defaults
        "def f(x):\n    import os\n    return 0\n",        # import
        "def f(x):\n    return {'a': x}\n",                # dict
        "def f(x):\n    for i in x:\n        pass\n",      # non-range loop
    ])
    def test_unsupported_constructs(self, src):
        with pytest.raises(UnsupportedError):
            source_to_ir(src)


class TestInference:
    def test_sum_float_accumulator(self):
        tf = infer(source_to_ir(SUM_SRC), [float64_array])
        assert tf.env["res"] == FLOAT64
        assert tf.env["i"] == INT64
        assert tf.return_type == FLOAT64

    def test_int_accumulator_promoted_by_float_elements(self):
        tf = infer(source_to_ir('''
def total(it):
    res = 0
    for i in range(len(it)):
        res += it[i]
    return res
'''), [float64_array])
        assert tf.env["res"] == FLOAT64

    def test_int_stays_int(self):
        tf = infer(source_to_ir('''
def total(it):
    res = 0
    for i in range(len(it)):
        res += it[i]
    return res
'''), [int64_array])
        assert tf.env["res"] == INT64
        assert tf.return_type == INT64

    def test_division_always_float(self):
        tf = infer(source_to_ir("def f(a, b):\n    return a / b\n"),
                   [INT64, INT64])
        assert tf.return_type == FLOAT64

    def test_floordiv_int(self):
        tf = infer(source_to_ir("def f(a, b):\n    return a // b\n"),
                   [INT64, INT64])
        assert tf.return_type == INT64

    def test_comparison_is_bool(self):
        tf = infer(source_to_ir("def f(a):\n    return a > 0\n"),
                   [FLOAT64])
        assert tf.return_type == BOOL

    def test_math_call_is_float(self):
        tf = infer(source_to_ir("def f(a):\n    return sqrt(a)\n"),
                   [INT64])
        assert tf.return_type == FLOAT64

    def test_unknown_name_rejected(self):
        with pytest.raises(UnsupportedError):
            infer(source_to_ir("def f(a):\n    return a + mystery\n"),
                  [INT64])

    def test_whole_array_op_rejected(self):
        with pytest.raises(UnsupportedError):
            infer(source_to_ir("def f(a, b):\n    return a + b\n"),
                  [float64_array, float64_array])

    def test_returning_array_rejected(self):
        with pytest.raises(UnsupportedError):
            infer(source_to_ir("def f(a):\n    return a\n"),
                  [float64_array])

    def test_wrong_arity(self):
        with pytest.raises(TypeError):
            infer(source_to_ir("def f(a):\n    return a\n"),
                  [INT64, INT64])

    def test_void_return(self):
        tf = infer(source_to_ir(
            "def f(a):\n    a[0] = 1.0\n"), [float64_array])
        assert tf.return_type.name == "void"

    def test_subscript_element_type(self):
        tf = infer(source_to_ir("def f(a):\n    return a[0]\n"),
                   [int64_array])
        assert tf.return_type == INT64
