"""2-D array support in compiled kernels (NumPy-centric JIT)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seamless import compiler_available, discover, float64_array2d, \
    from_annotation, jit

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler on PATH")


@jit
def _matvec(A, x, out):
    for i in range(A.shape[0]):
        acc = 0.0
        for j in range(A.shape[1]):
            acc += A[i, j] * x[j]
        out[i] = acc


@jit
def _trace(A):
    t = 0.0
    for i in range(len(A)):        # len(A) == A.shape[0], as in Python
        t += A[i, i]
    return t


@jit
def _jacobi_sweep(u, v):
    for i in range(1, u.shape[0] - 1):
        for j in range(1, u.shape[1] - 1):
            v[i, j] = 0.25 * (u[i - 1, j] + u[i + 1, j]
                              + u[i, j - 1] + u[i, j + 1])


class Test2D:
    def test_matvec(self):
        A = np.random.default_rng(0).normal(size=(30, 17))
        x = np.random.default_rng(1).normal(size=17)
        out = np.zeros(30)
        _matvec(A, x, out)
        assert np.allclose(out, A @ x)
        assert _matvec.signatures, _matvec.last_fallback_reason

    def test_len_is_first_dimension(self):
        S = np.diag(np.arange(1.0, 9.0))
        assert _trace(S) == pytest.approx(np.arange(1.0, 9.0).sum())
        assert _trace.signatures

    def test_2d_write(self):
        u = np.random.default_rng(2).normal(size=(12, 9))
        v = np.zeros_like(u)
        _jacobi_sweep(u, v)
        ref = np.zeros_like(u)
        ref[1:-1, 1:-1] = 0.25 * (u[:-2, 1:-1] + u[2:, 1:-1]
                                  + u[1:-1, :-2] + u[1:-1, 2:])
        assert np.allclose(v, ref)
        assert _jacobi_sweep.signatures

    @given(rows=st.integers(1, 12), cols=st.integers(1, 12),
           seed=st.integers(0, 99))
    @settings(max_examples=20, deadline=None)
    def test_matvec_property(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(rows, cols))
        x = rng.normal(size=cols)
        out = np.zeros(rows)
        _matvec(A, x, out)
        assert np.allclose(out, A @ x)

    def test_discovery_and_annotations(self):
        assert discover(np.zeros((2, 3))) == float64_array2d
        assert from_annotation("float64[,]") == float64_array2d

    def test_int_2d(self):
        @jit
        def sum2d(M):
            s = 0
            for i in range(M.shape[0]):
                for j in range(M.shape[1]):
                    s += M[i, j]
            return s

        M = np.arange(24, dtype=np.int64).reshape(4, 6)
        assert sum2d(M) == 276
        assert sum2d.signatures

    def test_wrong_index_arity_falls_back(self):
        @jit(nopython=True)
        def bad(M):
            return M[0]        # 2-D array with one index

        from repro.seamless import UnsupportedError
        with pytest.raises(UnsupportedError):
            bad(np.zeros((2, 2)))

    def test_3d_rejected(self):
        @jit(nopython=True)
        def threed(M):
            return M[0, 0]

        from repro.seamless import UnsupportedError
        with pytest.raises(UnsupportedError):
            threed(np.zeros((2, 2, 2)))

    def test_noncontiguous_input_copied(self):
        A = np.random.default_rng(3).normal(size=(20, 20))
        view = A[::2, ::2]   # non-contiguous
        assert _trace(view) == pytest.approx(np.trace(view))
