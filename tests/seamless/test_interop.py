"""CModule, static compilation, C++ export, elementwise, and CLI tests."""

import ctypes
import math
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.seamless import (CModule, HeaderParseError, build_module,
                            compile_and_run_cpp, compile_elementwise,
                            compiler_available, elementwise_c_source,
                            export_cpp, parse_header)
from repro.seamless.cheader import ctype_of

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler on PATH")


class TestCHeaderParsing:
    def test_math_h_discovers_common_functions(self):
        decls = parse_header("math.h")
        for name in ("atan2", "sqrt", "pow", "hypot", "floor"):
            assert name in decls, name
        assert decls["atan2"].restype is ctypes.c_double
        assert decls["atan2"].argtypes == [ctypes.c_double,
                                           ctypes.c_double]

    def test_string_h(self):
        decls = parse_header("string.h")
        assert "strlen" in decls

    def test_missing_header(self):
        with pytest.raises(HeaderParseError):
            parse_header("no_such_header_xyz.h")

    def test_ctype_of_spellings(self):
        assert ctype_of("double") is ctypes.c_double
        assert ctype_of("const double") is ctypes.c_double
        assert ctype_of("unsigned long") is ctypes.c_ulong
        assert ctype_of("double *") == ctypes.POINTER(ctypes.c_double)
        assert ctype_of("char *") is ctypes.c_char_p
        assert ctype_of("void *") is ctypes.c_void_p
        assert ctype_of("struct foo") is False
        assert ctype_of("double **") is False


class TestCModule:
    def test_paper_example_verbatim(self):
        class cmath(CModule):
            Header = "math.h"

        libm = cmath("m")
        assert libm.atan2(1.0, 2.0) == pytest.approx(math.atan2(1.0, 2.0))

    def test_many_functions_work(self):
        class cmath(CModule):
            Header = "math.h"

        libm = cmath("m")
        assert libm.hypot(3.0, 4.0) == 5.0
        assert libm.pow(2.0, 8.0) == 256.0
        assert libm.floor(2.7) == 2.0

    def test_function_listing_and_dir(self):
        class cmath(CModule):
            Header = "math.h"

        libm = cmath("m")
        assert len(libm.functions()) > 100
        assert "sqrt" in dir(libm)

    def test_unknown_function(self):
        class cmath(CModule):
            Header = "math.h"

        libm = cmath("m")
        with pytest.raises(AttributeError):
            libm.definitely_not_a_libm_function()

    def test_missing_header_attr(self):
        class bad(CModule):
            pass

        with pytest.raises(TypeError):
            bad("m")

    def test_missing_library(self):
        class cmath(CModule):
            Header = "math.h"

        with pytest.raises(OSError):
            cmath("no_such_library_xyz")

    def test_libc_strlen(self):
        class cstring(CModule):
            Header = "string.h"

        libc = cstring("c")
        assert libc.strlen(b"hello") == 5


KERNELS = '''
def ksum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res


def kdot(x, y):
    s = 0.0
    for i in range(len(x)):
        s += x[i] * y[i]
    return s


def annotated(x: "float64[]"):
    m = 0.0
    for i in range(len(x)):
        m = max(m, x[i])
    return m
'''


class TestStaticCompilation:
    def test_build_module_and_import(self, tmp_path):
        src_path = tmp_path / "kern.py"
        src_path.write_text(KERNELS)
        wrapper = build_module(str(src_path),
                               {"ksum": ["float64[]"],
                                "kdot": ["float64[]", "float64[]"]})
        assert os.path.exists(wrapper)
        sys.path.insert(0, str(tmp_path))
        try:
            import kern_seamless as ks
            a = np.arange(50.0)
            assert ks.ksum(a) == pytest.approx(a.sum())
            assert ks.kdot(a, a) == pytest.approx((a * a).sum())
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("kern_seamless", None)

    def test_annotations_used_when_no_types(self, tmp_path):
        src_path = tmp_path / "ann.py"
        src_path.write_text(KERNELS)
        wrapper = build_module(str(src_path), {"annotated": []})
        sys.path.insert(0, str(tmp_path))
        try:
            import ann_seamless as mod
            assert mod.annotated(np.array([1.0, 9.0, 3.0])) == 9.0
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("ann_seamless", None)

    def test_c_source_artifact_written(self, tmp_path):
        src_path = tmp_path / "k2.py"
        src_path.write_text(KERNELS)
        build_module(str(src_path), {"ksum": ["float64[]"]})
        c_file = tmp_path / "k2_lib.c"
        assert c_file.exists()
        assert "k2_ksum" in c_file.read_text()


class TestCppExport:
    def test_paper_listing_end_to_end(self, tmp_path):
        exports = export_cpp(KERNELS, {"ksum": ["float64[]"]},
                             str(tmp_path), name="seamless_export")
        cpp = r'''
#include <cstdio>
#include "seamless_export.hpp"
int main() {
    int arr[100];
    for (int i = 0; i < 100; ++i) arr[i] = i;
    std::vector<double> darr(100);
    for (int i = 0; i < 100; ++i) darr[i] = 0.5 * i;
    printf("%.1f %.2f\n", seamless::numpy::ksum(arr),
           seamless::numpy::ksum(darr));
    return 0;
}
'''
        out = compile_and_run_cpp(cpp, exports, str(tmp_path / "build"))
        assert out.split() == ["4950.0", "2475.00"]

    def test_custom_namespace(self, tmp_path):
        exports = export_cpp(KERNELS, {"ksum": ["float64[]"]},
                             str(tmp_path), name="algos", namespace="algos")
        header = open(exports["header"]).read()
        assert "namespace algos" in header

    def test_bad_cpp_reports_compiler_error(self, tmp_path):
        exports = export_cpp(KERNELS, {"ksum": ["float64[]"]},
                             str(tmp_path), name="x")
        with pytest.raises(RuntimeError, match="compilation failed"):
            compile_and_run_cpp("int main() { syntax error }", exports,
                                str(tmp_path / "b"))


class TestElementwise:
    def test_source_generation(self):
        src = elementwise_c_source(
            (("load", 0), ("unary", "sqrt")), 1)
        assert "sqrt" in src and "for (int64_t i" in src

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            elementwise_c_source((("unary", "fft"), ("load", 0)), 1)

    def test_kernel_matches_numpy(self):
        prog = (("load", 0), ("const", 2.0), ("binary", "multiply"),
                ("load", 1), ("binary", "add"), ("unary", "tanh"))
        k = compile_elementwise(prog, 2)
        a = np.random.default_rng(3).random(256)
        b = np.random.default_rng(4).random(256)
        out = np.empty(256)
        k(out, a, b)
        assert np.allclose(out, np.tanh(a * 2 + b))

    def test_all_mapped_ops(self):
        from repro.seamless.elementwise import _BINARY_C, _UNARY_C
        rng = np.random.default_rng(5)
        # keep inputs inside every op's domain (asin/acos need |x| <= 1)
        a = rng.uniform(0.1, 0.9, size=64)
        b = rng.uniform(0.1, 0.9, size=64)
        for name in _UNARY_C:
            if name in ("abs",):
                continue
            k = compile_elementwise((("load", 0), ("unary", name)), 1)
            out = np.empty(64)
            k(out, a)
            ref = getattr(np, name if name != "reciprocal" else
                          "reciprocal")(a) if hasattr(np, name) else None
            if ref is not None:
                assert np.allclose(out, ref), name
        for name in _BINARY_C:
            if name == "true_divide":
                continue
            k = compile_elementwise(
                (("load", 0), ("load", 1), ("binary", name)), 2)
            out = np.empty(64)
            k(out, a, b)
            if hasattr(np, name):
                assert np.allclose(out, getattr(np, name)(a, b)), name


class TestCLI:
    def test_inspect_command(self, tmp_path):
        src_path = tmp_path / "k.py"
        src_path.write_text(KERNELS)
        from repro.seamless.cli import main
        import io
        from contextlib import redirect_stdout
        buf = io.StringIO()
        with redirect_stdout(buf):
            rc = main(["inspect", str(src_path), "-f", "ksum:float64[]"])
        assert rc == 0
        assert "double" in buf.getvalue()

    def test_build_command(self, tmp_path):
        src_path = tmp_path / "k.py"
        src_path.write_text(KERNELS)
        from repro.seamless.cli import main
        rc = main(["build", str(src_path), "-f", "ksum:float64[]",
                   "-o", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "k_seamless.py").exists()

    def test_export_cpp_command(self, tmp_path):
        src_path = tmp_path / "k.py"
        src_path.write_text(KERNELS)
        from repro.seamless.cli import main
        rc = main(["export-cpp", str(src_path), "-f", "ksum:float64[]",
                   "-o", str(tmp_path / "out")])
        assert rc == 0
        assert (tmp_path / "out" / "seamless_export.hpp").exists()

    def test_no_functions_errors(self, tmp_path):
        src_path = tmp_path / "k.py"
        src_path.write_text(KERNELS)
        from repro.seamless.cli import main
        with pytest.raises(SystemExit):
            main(["build", str(src_path)])
