"""Tests for the extended Seamless subset: break/continue, ternaries,
named constants, and the @elementwise NumPy-JIT decorator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seamless import (FLOAT64, INT64, compiler_available, elementwise,
                            infer, jit, source_to_ir)
from repro.seamless.backend_c import compile_typed

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler on PATH")


def _kernel(src, arg_types, name=None):
    return compile_typed(infer(source_to_ir(src, name), arg_types))


class TestControlFlow:
    def test_break(self):
        k = _kernel('''
def f(n):
    acc = 0
    for i in range(n):
        if i == 5:
            break
        acc += i
    return acc
''', [INT64])
        assert k(100) == 0 + 1 + 2 + 3 + 4

    def test_continue(self):
        k = _kernel('''
def f(n):
    acc = 0
    for i in range(n):
        if i % 2 == 0:
            continue
        acc += i
    return acc
''', [INT64])
        assert k(10) == 1 + 3 + 5 + 7 + 9

    def test_break_in_while(self):
        k = _kernel('''
def f(n):
    i = 0
    while True:
        i += 1
        if i >= n:
            break
    return i
''', [INT64])
        assert k(42) == 42

    def test_continue_preserves_for_step(self):
        """continue must still advance the loop variable (C for-header)."""
        k = _kernel('''
def f(n):
    count = 0
    for i in range(0, n, 3):
        if i == 6:
            continue
        count += 1
    return count
''', [INT64])
        # range(0, 20, 3) = 0,3,6,9,12,15,18 -> skip 6 -> 6
        assert k(20) == 6


class TestTernary:
    @given(x=st.floats(-100, 100))
    @settings(max_examples=25, deadline=None)
    def test_matches_python(self, x):
        k = _kernel("def f(x):\n    return x if x > 0 else -x\n",
                    [FLOAT64])
        assert k(x) == (x if x > 0 else -x)

    def test_nested_ternary(self):
        k = _kernel(
            "def f(x, lo, hi):\n"
            "    return lo if x < lo else (hi if x > hi else x)\n",
            [FLOAT64, FLOAT64, FLOAT64])
        assert k(-1.0, 0.0, 1.0) == 0.0
        assert k(0.3, 0.0, 1.0) == 0.3
        assert k(9.0, 0.0, 1.0) == 1.0

    def test_mixed_types_promote(self):
        k = _kernel("def f(x):\n    return 1 if x > 0 else 0.5\n",
                    [FLOAT64])
        assert k(2.0) == 1.0 and k(-2.0) == 0.5


class TestNamedConstants:
    def test_math_pi_e_tau(self):
        k = _kernel(
            "def f(r):\n    return math.pi * r + math.e - math.tau / 2\n",
            [FLOAT64])
        assert k(1.0) == pytest.approx(math.pi + math.e - math.tau / 2)

    def test_np_spelling(self):
        k = _kernel("def f(x):\n    return np.pi * x\n", [FLOAT64])
        assert k(2.0) == pytest.approx(2 * math.pi)

    def test_infinity(self):
        k = _kernel(
            "def f(x):\n    return math.inf if x > 0 else x\n", [FLOAT64])
        assert k(1.0) == math.inf


@elementwise
def _damped(x, k):
    return math.exp(-k * x) * math.sin(x)


@elementwise
def _relu(x):
    return x if x > 0 else 0.0


class TestElementwise:
    def test_matches_numpy(self):
        xs = np.linspace(0, 10, 5000)
        got = _damped(xs, 0.25)
        assert np.allclose(got, np.exp(-0.25 * xs) * np.sin(xs))
        assert _damped.compiled

    def test_scalar_broadcast(self):
        xs = np.arange(-3.0, 4.0)
        assert np.allclose(_relu(xs), np.maximum(xs, 0.0))

    def test_2d_arrays(self):
        xs = np.linspace(0, 1, 24).reshape(4, 6)
        got = _damped(xs, 1.0)
        assert got.shape == (4, 6)
        assert np.allclose(got, np.exp(-xs) * np.sin(xs))

    def test_array_array_broadcast(self):
        x = np.linspace(0, 1, 12)
        k = np.full(12, 2.0)
        assert np.allclose(_damped(x, k), np.exp(-2 * x) * np.sin(x))

    def test_all_scalars_pass_through(self):
        assert _relu(-3.0) == 0.0
        assert _relu(5.0) == 5.0

    def test_dtype_coercion(self):
        xs = np.arange(5, dtype=np.int32)
        out = _relu(xs)
        assert out.dtype == np.float64
        assert np.allclose(out, xs)

    @given(data=st.lists(st.floats(-10, 10), min_size=1, max_size=40),
           k=st.floats(0.0, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_property_vs_scalar_python(self, data, k):
        xs = np.array(data)
        got = _damped(xs, k)
        ref = np.array([math.exp(-k * v) * math.sin(v) for v in data])
        assert np.allclose(got, ref)

    def test_wrong_arity(self):
        with pytest.raises(TypeError):
            _damped(np.ones(3))

    def test_unsupported_body_falls_back(self):
        @elementwise
        def weird(x):
            return {"no": x}  # not compilable, not vectorizable

        # scalar call goes straight through to the Python function
        assert weird(1.0) == {"no": 1.0}
