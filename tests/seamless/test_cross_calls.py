"""Cross-function compilation: @jit functions calling other functions."""

import math

import numpy as np
import pytest

from repro.seamless import UnsupportedError, compiler_available, jit

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler on PATH")


def _plain_helper(x, y):
    return math.sqrt(x * x + y * y)


@jit
def _jit_helper(t):
    return 3.0 * t * t - 2.0 * t + 1.0


@jit
def _combined(xs):
    acc = 0.0
    for i in range(len(xs)):
        acc += _plain_helper(xs[i], 2.0) + _jit_helper(xs[i])
    return acc


def _outer(v):
    return _inner(v) + 1.0


def _inner(v):
    return v * 2.0


@jit
def _uses_nested(x):
    return _outer(x) * _outer(x + 1.0)


def _recursive(n):
    return 1 if n <= 1 else n * _recursive(n - 1)


@jit
def _uses_recursive(n):
    return _recursive(n)


class TestCrossCalls:
    def test_plain_and_jit_helpers_compile_into_unit(self):
        data = np.random.default_rng(0).random(5000)
        got = _combined(data)
        ref = float(sum(_plain_helper(v, 2.0) + (3 * v * v - 2 * v + 1)
                        for v in data))
        assert got == pytest.approx(ref, rel=1e-10)
        assert _combined.signatures  # actually compiled, no fallback
        src = _combined.inspect_c_source()
        assert "__u__plain_helper" in src
        assert "__u__jit_helper" in src
        assert src.count("static double __u_") >= 2

    def test_nested_helpers_hoisted(self):
        assert _uses_nested(3.0) == pytest.approx(7.0 * 9.0)
        assert _uses_nested.signatures
        src = _uses_nested.inspect_c_source()
        assert "__u__inner" in src and "__u__outer" in src

    def test_helper_type_specialization(self):
        """The same helper compiles per caller argument types."""
        @jit
        def int_path(n):
            return _jit_helper(float(n))

        assert int_path(2) == pytest.approx(3 * 4 - 4 + 1.0)

    def test_recursion_falls_back_to_python(self):
        assert _uses_recursive(5) == 120
        assert _uses_recursive.last_fallback_reason is not None

    def test_unknown_name_falls_back(self):
        @jit
        def calls_missing(x):
            return totally_undefined_function(x)  # noqa: F821

        with pytest.raises(NameError):
            calls_missing(1.0)  # Python fallback raises the Python error

    def test_helper_changing_result_type(self):
        def as_int(x):
            return int(x)

        @jit
        def floor_sum(a, b):
            return as_int(a) + as_int(b)

        got = floor_sum(2.9, 3.9)
        assert got == 5 and isinstance(got, int)
