"""prange / OpenMP parallel loop tests.

On a single-CPU host the parallel code paths produce identical results to
serial ones; the tests verify correctness of the OpenMP lowering
(reductions, private temporaries) rather than speedup.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seamless import compiler_available, jit, prange

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler on PATH")


@jit
def _psum(xs):
    acc = 0.0
    for i in prange(len(xs)):
        acc += xs[i]
    return acc


@jit
def _pprod_count(xs, t):
    prod = 1.0
    count = 0
    for i in prange(len(xs)):
        prod *= 1.0 + xs[i] * 1e-6
        if xs[i] > t:
            count += 1
    return prod + count


@jit
def _pmap(xs, out, a):
    for i in prange(len(xs)):
        tmp = xs[i] * a
        out[i] = tmp * tmp


class TestPrange:
    def test_sum_reduction(self):
        data = np.random.default_rng(0).random(100_000)
        assert _psum(data) == pytest.approx(float(data.sum()), rel=1e-9)
        assert _psum.signatures
        src = _psum.inspect_c_source()
        assert "#pragma omp parallel for" in src
        assert "reduction(+:acc)" in src

    def test_multiple_reductions(self):
        data = np.random.default_rng(1).random(5_000)
        got = _pprod_count(data, 0.5)
        ref = float(np.prod(1.0 + data * 1e-6) + (data > 0.5).sum())
        assert got == pytest.approx(ref, rel=1e-9)
        src = _pprod_count.inspect_c_source()
        assert "reduction(*:prod)" in src and "reduction(+:count)" in src

    def test_private_temporaries(self):
        data = np.random.default_rng(2).random(10_000)
        out = np.zeros_like(data)
        _pmap(data, out, 3.0)
        assert np.allclose(out, (data * 3.0) ** 2)
        assert "private(tmp)" in _pmap.inspect_c_source()

    def test_nested_serial_inside_parallel(self):
        @jit
        def rowsums(M, out):
            for i in prange(M.shape[0]):
                s = 0.0
                for j in range(M.shape[1]):
                    s += M[i, j]
                out[i] = s

        M = np.random.default_rng(3).random((50, 20))
        out = np.zeros(50)
        rowsums(M, out)
        assert np.allclose(out, M.sum(axis=1))
        src = rowsums.inspect_c_source()
        assert "private(j, s)" in src

    def test_prange_is_range_in_fallback(self):
        # prange must behave as plain range when interpreted
        assert list(prange(4)) == [0, 1, 2, 3]

    @given(data=st.lists(st.floats(-100, 100), min_size=1, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_reduction_matches_serial(self, data):
        arr = np.array(data)
        assert _psum(arr) == pytest.approx(float(arr.sum()), rel=1e-9,
                                           abs=1e-9)

    def test_prange_outside_loop_rejected(self):
        @jit(nopython=True)
        def bad(n):
            return prange(n)

        from repro.seamless import UnsupportedError
        with pytest.raises(UnsupportedError):
            bad(3)
