"""C backend semantics and @jit dispatcher tests.

Kernels are built from source strings (so they work under any pytest
invocation) plus file-level functions for the @jit path.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seamless import (FLOAT64, INT64, UnsupportedError,
                            compile_source, compiler_available,
                            float64_array, infer, int64_array, jit,
                            source_to_ir)
from repro.seamless.backend_c import compile_typed

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler on PATH")


def _kernel(src, arg_types, name=None):
    tf = infer(source_to_ir(src, name), arg_types)
    return compile_typed(tf)


class TestPythonSemantics:
    """Compiled code must match CPython numerics (the documented subset)."""

    @given(a=st.integers(-100, 100), b=st.integers(-100, 100)
           .filter(lambda v: v != 0))
    @settings(max_examples=40, deadline=None)
    def test_floor_division_and_modulo(self, a, b):
        k = _kernel("def f(a, b):\n    return a // b\n", [INT64, INT64])
        m = _kernel("def f(a, b):\n    return a % b\n", [INT64, INT64])
        assert k(a, b) == a // b
        assert m(a, b) == a % b

    @given(a=st.floats(-50, 50), b=st.floats(0.1, 50))
    @settings(max_examples=30, deadline=None)
    def test_float_modulo_sign(self, a, b):
        m = _kernel("def f(a, b):\n    return a % b\n",
                    [FLOAT64, FLOAT64])
        assert m(a, b) == pytest.approx(a % b, abs=1e-12)

    def test_true_division_of_ints_is_float(self):
        k = _kernel("def f(a, b):\n    return a / b\n", [INT64, INT64])
        assert k(7, 2) == 3.5

    def test_power(self):
        k = _kernel("def f(a, b):\n    return a ** b\n",
                    [FLOAT64, FLOAT64])
        assert k(2.0, 10.0) == 1024.0

    @given(x=st.floats(-1e6, 1e6))
    @settings(max_examples=30, deadline=None)
    def test_abs_minmax(self, x):
        k = _kernel("def f(a):\n    return abs(a)\n", [FLOAT64])
        mn = _kernel("def f(a, b):\n    return min(a, b)\n",
                     [FLOAT64, FLOAT64])
        mx = _kernel("def f(a, b):\n    return max(a, b)\n",
                     [FLOAT64, FLOAT64])
        assert k(x) == abs(x)
        assert mn(x, 0.0) == min(x, 0.0)
        assert mx(x, 0.0) == max(x, 0.0)

    def test_int_abs_minmax(self):
        mn = _kernel("def f(a, b):\n    return min(a, b)\n",
                     [INT64, INT64])
        assert mn(-5, 3) == -5
        k = _kernel("def f(a):\n    return abs(a)\n", [INT64])
        assert k(-9) == 9 and isinstance(k(-9), int)

    @given(x=st.floats(0.001, 100.0))
    @settings(max_examples=20, deadline=None)
    def test_libm_calls(self, x):
        k = _kernel(
            "def f(x):\n    return sqrt(x) + log(x) + atan2(x, 2.0)\n",
            [FLOAT64])
        assert k(x) == pytest.approx(
            math.sqrt(x) + math.log(x) + math.atan2(x, 2.0), rel=1e-12)

    def test_casts(self):
        k = _kernel("def f(x):\n    return int(x) + float(3)\n",
                    [FLOAT64])
        assert k(2.9) == 5.0

    def test_bool_return(self):
        k = _kernel("def f(x):\n    return x > 2 and x < 10\n", [INT64])
        assert k(5) is True and k(1) is False

    def test_negative_step_range(self):
        k = _kernel('''
def f(n):
    acc = 0
    for i in range(n, 0, -1):
        acc += i
    return acc
''', [INT64])
        assert k(5) == 15

    def test_nested_loops(self):
        k = _kernel('''
def f(n):
    acc = 0
    for i in range(n):
        for j in range(i):
            acc += 1
    return acc
''', [INT64])
        assert k(6) == 15

    def test_while_collatz(self):
        k = _kernel('''
def f(n):
    steps = 0
    while n != 1:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps += 1
    return steps
''', [INT64])
        assert k(27) == 111

    def test_array_reads(self):
        k = _kernel('''
def f(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i] * it[i]
    return res
''', [float64_array])
        arr = np.arange(10.0)
        assert k(arr) == pytest.approx((arr * arr).sum())

    def test_array_writes_visible(self):
        k = _kernel('''
def f(out, n):
    for i in range(n):
        out[i] = i * 2.0
''', [float64_array, INT64])
        buf = np.zeros(6)
        k(buf, 6)
        assert np.allclose(buf, np.arange(6) * 2.0)

    def test_int_array_input(self):
        k = _kernel('''
def f(it):
    res = 0
    for i in range(len(it)):
        res += it[i]
    return res
''', [int64_array])
        assert k(np.arange(100, dtype=np.int64)) == 4950

    def test_bitwise_ops(self):
        k = _kernel("def f(a, b):\n    return (a & b) | (a ^ b)\n",
                    [INT64, INT64])
        assert k(12, 10) == (12 & 10) | (12 ^ 10)


# file-level functions for the dispatcher tests (inspect.getsource works)
@jit
def _jsum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res


@jit
def _scale_inplace(x, a):
    for i in range(len(x)):
        x[i] = x[i] * a


@jit(nopython=True)
def _strict(x):
    return x * 2


@jit
def _fallback_fn(d):
    return d["key"]


class TestJitDispatcher:
    def test_lazy_specialization(self):
        arr = np.random.default_rng(0).random(1000)
        assert _jsum(arr) == pytest.approx(arr.sum())
        assert len(_jsum.signatures) == 1

    def test_second_signature(self):
        _jsum(np.random.default_rng(0).random(10))
        _jsum([1, 2, 3])
        # int list -> int64[] signature, distinct from float64[]
        assert len(_jsum.signatures) == 2

    def test_list_write_back(self):
        data = [1.0, 2.0, 3.0]
        _scale_inplace(data, 10.0)
        assert data == [10.0, 20.0, 30.0]

    def test_ndarray_write_back_with_dtype_coercion(self):
        data = np.arange(4, dtype=np.float32)
        _scale_inplace(data, 2.0)
        assert np.allclose(data, [0, 2, 4, 6])

    def test_fallback_to_python(self):
        assert _fallback_fn({"key": 42}) == 42
        assert _fallback_fn.last_fallback_reason is not None

    def test_nopython_raises_instead_of_falling_back(self):
        with pytest.raises(UnsupportedError):
            _strict({"not": "numeric"})

    def test_nopython_works_when_compilable(self):
        assert _strict(21) == 42

    def test_inspect_c_source(self):
        _jsum(np.ones(4))
        src = _jsum.inspect_c_source()
        assert "for (" in src and "double" in src

    def test_wrong_argcount(self):
        _jsum(np.ones(3))
        sig = _jsum.signatures[0]
        from repro.seamless.backend_c import CompiledKernel
        kernel = _jsum._specializations[sig]
        with pytest.raises(TypeError):
            kernel(np.ones(3), 2.0)

    def test_correctness_vs_python_property(self):
        @given(data=st.lists(st.floats(-1e3, 1e3), min_size=1,
                             max_size=50))
        @settings(max_examples=25, deadline=None)
        def check(data):
            arr = np.array(data)
            assert _jsum(arr) == pytest.approx(float(arr.sum()),
                                               rel=1e-9, abs=1e-9)
        check()
