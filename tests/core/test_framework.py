"""Framework-glue tests: core.solve and the full pipeline."""

import numpy as np
import pytest

from repro import core, galeri, tpetra
from repro.teuchos import ParameterList
from tests.conftest import spmd


class TestSolve:
    @pytest.mark.parametrize("solver,prec", [
        ("CG", "None"), ("CG", "Jacobi"), ("CG", "ILU"), ("CG", "ML"),
        ("GMRES", "SGS"), ("BICGSTAB", "ILUT"), ("MINRES", "None"),
        ("TFQMR", "None"), ("Direct", "None"), ("AMG", "None"),
    ])
    def test_every_combination_solves_poisson(self, solver, prec):
        def body(comm):
            A = galeri.laplace_2d(10, 10, comm)
            x_true = tpetra.Vector(A.row_map)
            x_true.randomize(seed=2)
            b = A @ x_true
            params = ParameterList("LS").set("Solver", solver) \
                .set("Preconditioner", prec).set("Tolerance", 1e-9) \
                .set("Max Iterations", 3000)
            r = core.solve(A, b, params)
            return r.converged, (r.x - x_true).norm2() / x_true.norm2()
        conv, err = spmd(2)(body)[0]
        assert conv and err < 1e-5, (solver, prec, err)

    def test_defaults(self):
        def body(comm):
            A = galeri.laplace_1d(16, comm)
            b = tpetra.Vector(A.row_map).putScalar(1.0)
            return core.solve(A, b).converged
        assert all(spmd(2)(body))

    def test_direct_requires_matrix(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(4, comm)
            op = tpetra.IdentityOperator(m)
            b = tpetra.Vector(m).putScalar(1.0)
            core.solve(op, b, ParameterList().set("Solver", "Direct"))
        with pytest.raises(TypeError):
            spmd(1)(body)


class TestPipeline:
    def test_pure_python_callback(self):
        def body(comm):
            return core.newton_krylov_pipeline(comm, 64,
                                               compile_callback=False)
        report = spmd(2)(body)[0]
        assert report.converged
        assert not report.callback_compiled
        assert report.callback_time > 0

    def test_compiled_callback_same_answer(self, has_cc):
        if not has_cc:
            pytest.skip("no C compiler")

        def body(comm):
            plain = core.newton_krylov_pipeline(comm, 64,
                                                compile_callback=False)
            fast = core.newton_krylov_pipeline(comm, 64,
                                               compile_callback=True)
            return plain, fast
        plain, fast = spmd(2)(body)[0]
        assert plain.converged and fast.converged
        assert fast.callback_compiled
        assert plain.newton_iterations == fast.newton_iterations
        assert plain.residual_norm == pytest.approx(fast.residual_norm,
                                                    rel=1e-6, abs=1e-12)

    def test_jfnk_mode(self):
        def body(comm):
            return core.newton_krylov_pipeline(comm, 32, jacobian="jfnk")
        report = spmd(2)(body)[0]
        assert report.converged

    def test_custom_kernel(self):
        def linear_kernel(out, u, lam):
            for i in range(len(u)):
                out[i] = lam * u[i]

        def body(comm):
            return core.newton_krylov_pipeline(
                comm, 32, model_kernel=linear_kernel, lam=0.5,
                jacobian="jfnk")
        report = spmd(1)(body)[0]
        # -u'' = 0.5u has only the trivial solution from x0=0
        assert report.converged

    def test_report_repr(self):
        def body(comm):
            return core.newton_krylov_pipeline(comm, 16)
        report = spmd(1)(body)[0]
        assert "Newton its" in repr(report)
