"""Matrix/map gallery tests against serial stencil references."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import galeri, tpetra
from tests.conftest import spmd


def _serial_laplace_2d(nx, ny):
    main = 4 * np.ones(nx * ny)
    Ix = sp.identity(nx)
    Iy = sp.identity(ny)
    Tx = sp.diags([-1, 2, -1], [-1, 0, 1], shape=(nx, nx))
    Ty = sp.diags([-1, 2, -1], [-1, 0, 1], shape=(ny, ny))
    return (sp.kron(Iy, Tx) + sp.kron(Ty, Ix)).tocsr()


class TestStencils:
    def test_laplace_1d(self):
        def body(comm):
            A = galeri.laplace_1d(10, comm)
            return A.to_scipy_global(root=None).toarray()
        got = spmd(3)(body)[0]
        ref = sp.diags([-1, 2, -1], [-1, 0, 1], shape=(10, 10)).toarray()
        assert np.allclose(got, ref)

    def test_laplace_2d(self):
        def body(comm):
            A = galeri.laplace_2d(5, 4, comm)
            return A.to_scipy_global(root=None).toarray()
        got = spmd(2)(body)[0]
        assert np.allclose(got, _serial_laplace_2d(5, 4).toarray())

    def test_laplace_3d_row_sums(self):
        def body(comm):
            A = galeri.laplace_3d(4, 4, 4, comm)
            return A.num_global_nonzeros(), np.asarray(A.row_sums())
        nnz, sums = spmd(2)(body)[0]
        # interior rows: |6| + 6*|-1| = 12
        assert sums.max() == 12.0
        # corner rows: 6 + 3 = 9
        assert sums.min() == 9.0
        assert nnz == 64 + 2 * 3 * (3 * 16)  # diag + 3 axes of +-1 bonds

    def test_tridiag_custom_values(self):
        def body(comm):
            A = galeri.tridiag(6, comm, a=5.0, b=2.0, c=-3.0)
            return A.to_scipy_global(root=None).toarray()
        got = spmd(2)(body)[0]
        ref = sp.diags([-3, 5, 2], [-1, 0, 1], shape=(6, 6)).toarray()
        assert np.allclose(got, ref)

    def test_biharmonic_spd_and_pattern(self):
        def body(comm):
            A = galeri.biharmonic_1d(12, comm)
            M = A.to_scipy_global(root=None).toarray()
            return M
        M = spmd(2)(body)[0]
        assert np.allclose(M, M.T)
        assert np.all(np.linalg.eigvalsh(M) > 0)
        assert M[5, 3] == 1.0 and M[5, 4] == -4.0 and M[5, 5] == 6.0

    def test_convection_diffusion_nonsymmetric(self):
        def body(comm):
            A = galeri.convection_diffusion_2d(6, 6, comm)
            M = A.to_scipy_global(root=None).toarray()
            return M
        M = spmd(2)(body)[0]
        assert not np.allclose(M, M.T)
        # row sums of pure-stencil interior rows are >= 0 (M-matrix-ish)
        assert np.all(np.diag(M) > 0)

    def test_anisotropic_2d(self):
        def body(comm):
            A = galeri.anisotropic_2d(6, 6, comm, epsilon=0.01)
            M = A.to_scipy_global(root=None).toarray()
            return M
        M = spmd(2)(body)[0]
        assert np.allclose(M, M.T)
        assert np.all(np.linalg.eigvalsh(M) > 0)
        # strong x-coupling, weak y-coupling
        assert M[7, 6] == -1.0 and M[7, 7 + 6] == -0.01

    def test_random_spd_is_spd_and_rank_invariant(self):
        def run(p):
            def body(comm):
                A = galeri.random_spd(20, comm, density=0.1, seed=3)
                return A.to_scipy_global(root=None).toarray()
            return spmd(p)(body)[0]
        M1 = run(1)
        M3 = run(3)
        assert np.allclose(M1, M3)  # independent of rank count
        assert np.allclose(M1, M1.T)
        assert np.all(np.linalg.eigvalsh(M1) > 0)


class TestFactory:
    @pytest.mark.parametrize("name,params", [
        ("Tridiag", {"n": 8}),
        ("Laplace1D", {"n": 8}),
        ("Laplace2D", {"nx": 4, "ny": 4}),
        ("Laplace3D", {"nx": 3, "ny": 3, "nz": 3}),
        ("Recirc2D", {"nx": 4, "ny": 4}),
        ("Anisotropic2D", {"nx": 4, "ny": 4}),
        ("Biharmonic1D", {"n": 8}),
        ("RandomSPD", {"n": 8}),
    ])
    def test_create_matrix_names(self, name, params):
        def body(comm):
            A = galeri.create_matrix(name, comm, **params)
            return A.is_fill_complete and A.num_global_rows > 0
        assert all(spmd(2)(body))

    def test_unknown_matrix(self):
        def body(comm):
            galeri.create_matrix("Hilbert", comm, n=4)
        with pytest.raises(ValueError):
            spmd(1)(body)

    def test_custom_map_respected(self):
        def body(comm):
            m = tpetra.Map.create_cyclic(8, comm)
            A = galeri.laplace_1d(8, comm, map_=m)
            return A.row_map.kind
        assert spmd(2)(body)[0] == "cyclic"

    def test_map_size_mismatch(self):
        def body(comm):
            m = tpetra.Map.create_contiguous(5, comm)
            galeri.laplace_1d(8, comm, map_=m)
        with pytest.raises(ValueError):
            spmd(1)(body)


class TestMapGallery:
    @pytest.mark.parametrize("kind,expected_kind", [
        ("Linear", "contiguous"), ("Interlaced", "cyclic"),
        ("Random", "arbitrary")])
    def test_kinds(self, kind, expected_kind):
        def body(comm):
            m = galeri.create_map(kind, 12, comm)
            return m.kind, m.num_my_elements
        results = spmd(3)(body)
        assert results[0][0] == expected_kind
        assert sum(r[1] for r in results) == 12

    def test_unknown_kind(self):
        def body(comm):
            galeri.create_map("Spiral", 8, comm)
        with pytest.raises(ValueError):
            spmd(1)(body)
