"""Fig. 1 reproduction tests: the ODIN process is a control plane only.

Paper claims measured here:
- creation messages are "short message[s], at most tens of bytes" of
  payload (opcode + distribution descriptor);
- "very little to no array data is associated with them";
- workers communicate "directly with each other, bypassing the ODIN
  process" for data movement.
"""

import numpy as np
import pytest

from repro import odin
from repro.odin.context import OdinContext


class TestControlPlane:
    def test_creation_is_control_only(self):
        with OdinContext(4) as ctx:
            ctx.reset_counters()
            _x = odin.random(10 ** 6, ctx=ctx)   # 8 MB of array data
            _msgs, ctl_bytes = ctx.control_traffic()
            assert ctl_bytes < 5_000          # description, not data
            # worker-to-worker traffic is only the relayed broadcast tree
            # (hundreds of bytes), never the 8 MB payload
            _wmsgs, relay_bytes = ctx.worker_traffic()
            assert relay_bytes < 5_000

    def test_control_bytes_independent_of_array_size(self):
        sizes = {}
        for n in (10 ** 3, 10 ** 5):
            with OdinContext(4) as ctx:
                ctx.reset_counters()
                _x = odin.zeros(n, ctx=ctx)
                _m, b = ctx.control_traffic()
                sizes[n] = b
        # descriptor size is O(1) in the array size (pickle encodes the
        # larger integers in a couple more bytes, nothing else changes)
        assert abs(sizes[10 ** 3] - sizes[10 ** 5]) < 64

    def test_redistribution_bypasses_driver(self):
        with OdinContext(4) as ctx:
            x = odin.arange(40_000, ctx=ctx, dtype=np.float64)
            ctx.reset_counters()
            _y = x.redistribute(odin.CyclicDistribution((40_000,), 0, 4))
            ctx.flush()  # batched op: synchronize before reading counters
            _cmsgs, ctl_bytes = ctx.control_traffic()
            _wmsgs, data_bytes = ctx.worker_traffic()
            # the payload went worker-to-worker, dwarfing the control op
            assert data_bytes > 100 * ctl_bytes

    def test_ufunc_on_conformable_arrays_moves_no_data(self):
        with OdinContext(4) as ctx:
            a = odin.random(10_000, ctx=ctx)
            b = odin.random(10_000, ctx=ctx)
            ctx.reset_counters()
            _c = a * b
            _wmsgs, relay_bytes = ctx.worker_traffic()
            # conformable operands: only the broadcast relay, no payload
            assert relay_bytes < 1_000

    def test_driver_relay_ratio_for_fd_stencil(self):
        """The paper's finite-difference expression: control traffic stays
        a tiny fraction of the payload size."""
        n = 100_000
        with OdinContext(4) as ctx:
            x = odin.linspace(0, 1, n, ctx=ctx)
            y = odin.sin(x)
            ctx.reset_counters()
            _dydx = (y[1:] - y[:-1]) / (x[1] - x[0])
            _c, ctl_bytes = ctx.control_traffic()
            payload = 8 * n
            assert ctl_bytes < payload / 50
