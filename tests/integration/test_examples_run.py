"""Smoke tests that the shipped example scripts actually run.

The examples are the public face of the repository; each fast one is
executed as a subprocess (fresh interpreter, like a user would) and must
exit cleanly.  The slowest examples are covered by their corresponding
benchmarks instead.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, os.pardir, "examples")

FAST_EXAMPLES = [
    "seamless_from_cpp.py",
    "odin_local_functions.py",
    "heat_equation.py",
    "mapreduce_wordcount.py",
    "solver_driver.py",
]


def _run(script: str, timeout: int = 240) -> str:
    path = os.path.join(EXAMPLES_DIR, script)
    assert os.path.exists(path), path
    proc = subprocess.run([sys.executable, path], capture_output=True,
                          text=True, timeout=timeout,
                          cwd=os.path.dirname(EXAMPLES_DIR))
    assert proc.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}")
    return proc.stdout


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_cleanly(script):
    out = _run(script)
    assert out.strip()  # produced some report


def test_all_examples_exist_and_are_listed():
    present = sorted(f for f in os.listdir(EXAMPLES_DIR)
                     if f.endswith(".py"))
    expected = {"quickstart.py", "finite_difference.py",
                "odin_local_functions.py", "poisson_solvers.py",
                "mapreduce_wordcount.py", "seamless_jit.py",
                "seamless_from_cpp.py", "framework_pipeline.py",
                "heat_equation.py", "solver_driver.py"}
    assert expected.issubset(set(present))
    # every example is mentioned in the README table
    readme = open(os.path.join(EXAMPLES_DIR, os.pardir,
                               "README.md"), encoding="utf-8").read()
    missing = [f for f in expected if f not in readme]
    assert not missing, f"examples not documented in README: {missing}"
