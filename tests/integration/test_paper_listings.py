"""The paper's code listings, run as close to verbatim as the API allows.

Each test corresponds to a listing indexed in DESIGN.md (L1-L5).
"""

import numpy as np
import pytest

from repro import odin
from repro.seamless import CModule, compiler_available, jit


class TestL1OdinLocalHypot:
    """Section III-C: the @odin.local hypot listing."""

    def test_listing(self, odin4):
        @odin.local
        def hypot(x, y):
            return odin.sqrt(x ** 2 + y ** 2)

        # the paper writes odin.random((10**6, 10**6)); we shrink the shape
        x = odin.random((1000, 100))
        y = odin.random((1000, 100))
        h = hypot(x, y)
        assert isinstance(h, odin.DistArray)
        assert h.shape == (1000, 100)
        assert np.allclose(h.gather(),
                           np.sqrt(x.gather() ** 2 + y.gather() ** 2))


class TestL2FiniteDifference:
    """Section III-G: distributed finite differences by slicing."""

    def test_listing(self, odin4):
        pi = np.pi
        x = odin.linspace(1, 2 * pi, 10 ** 4)   # paper: 10**8
        y = odin.sin(x)

        dx = x[1] - x[0]
        dy = y[1:] - y[:-1]
        dydx = dy / dx

        assert isinstance(dx, float)           # "dx is a Python scalar"
        assert isinstance(dydx, odin.DistArray)
        xs = np.linspace(1, 2 * pi, 10 ** 4)
        ref = np.diff(np.sin(xs)) / (xs[1] - xs[0])
        assert np.allclose(dydx.gather(), ref)


class TestL3SeamlessJit:
    """Section IV-A: the @jit sum listing."""

    def test_listing(self):
        @jit
        def sum(it):  # noqa: A001 - paper spelling
            res = 0.0
            for i in range(len(it)):
                res += it[i]
            return res

        data = np.random.default_rng(0).random(10_000)
        assert sum(data) == pytest.approx(float(data.sum()))
        if compiler_available():
            assert len(sum.signatures) == 1   # actually compiled


class TestL4CModule:
    """Section IV-C: the cmath/CModule listing."""

    @pytest.mark.skipif(not compiler_available(), reason="needs cc -E")
    def test_listing(self):
        import math

        class cmath(CModule):
            Header = "math.h"

        libm = cmath("m")
        assert libm.atan2(1.0, 2.0) == pytest.approx(math.atan2(1.0, 2.0))


class TestL5CppConsumption:
    """Section IV-D: seamless::numpy::sum from C++."""

    @pytest.mark.skipif(not compiler_available(), reason="needs cc/g++")
    def test_listing(self, tmp_path):
        from repro.seamless import compile_and_run_cpp, export_cpp
        algorithm = (
            "def sum(it):\n"
            "    res = 0.0\n"
            "    for i in range(len(it)):\n"
            "        res += it[i]\n"
            "    return res\n")
        exports = export_cpp(algorithm, {"sum": ["float64[]"]},
                             str(tmp_path), name="seamless_export")
        cpp = r'''
#include <cstdio>
#include <vector>
#include "seamless_export.hpp"
int main() {
    int arr[100];
    for (int i = 0; i < 100; ++i) arr[i] = 1;
    std::vector<double> darr(100);
    for (int i = 0; i < 100; ++i) darr[i] = 0.5;
    printf("%.0f %.0f\n", seamless::numpy::sum(arr),
           seamless::numpy::sum(darr));
    return 0;
}
'''
        out = compile_and_run_cpp(cpp, exports, str(tmp_path / "b"))
        assert out.split() == ["100", "50"]
