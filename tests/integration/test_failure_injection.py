"""Failure-injection tests: the runtime must fail loudly, not hang."""

import numpy as np
import pytest

from repro import mpi, tpetra
from repro import odin
from repro.odin.context import OdinContext


class TestMpiFailures:
    def test_mismatched_collective_roots_detected(self):
        """A rank waiting in a bcast nobody roots times out loudly."""
        def body(comm):
            if comm.rank == 0:
                comm.bcast(None, root=1)   # rank 1 never broadcasts
        with pytest.raises((mpi.DeadlockError, mpi.AbortError)):
            mpi.run_spmd(body, 2, timeout=0.6)

    def test_partial_collective_participation(self):
        def body(comm):
            if comm.rank != 1:
                comm.allreduce(1)
        with pytest.raises(mpi.DeadlockError):
            mpi.run_spmd(body, 3, timeout=0.6)

    def test_exception_during_collective_frees_peers_quickly(self):
        import time

        def body(comm):
            if comm.rank == 0:
                raise RuntimeError("injected")
            comm.barrier()
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="injected"):
            mpi.run_spmd(body, 4, timeout=60)
        # peers were woken by the abort, not by the 60 s timeout
        assert time.monotonic() - start < 10

    def test_send_to_self_works(self):
        def body(comm):
            comm.send("me", comm.rank)
            return comm.recv(source=comm.rank)
        assert mpi.run_spmd(body, 2) == ["me", "me"]


class TestOdinFailures:
    def test_unknown_array_id(self):
        with OdinContext(2) as ctx:
            with pytest.raises(KeyError):
                ctx.gather(99999)

    def test_worker_exception_surfaces_with_original_type(self):
        with OdinContext(2) as ctx:
            x = odin.ones(4, ctx=ctx)

            @odin.local
            def div_by_zero(block):
                return block / np.zeros(0)[0]  # IndexError

            with pytest.raises(IndexError):
                div_by_zero(x)
            # context survives
            assert odin.ones(4, ctx=ctx).sum() == 4.0

    def test_bad_load_shape(self, tmp_path):
        with OdinContext(2) as ctx:
            for w in range(2):
                np.save(tmp_path / f"block_{w}.npy", np.zeros(3))
            with pytest.raises(ValueError):
                odin.load(str(tmp_path / "block_{rank}.npy"), 100,
                          ctx=ctx)

    def test_setitem_array_value_rejected(self):
        with OdinContext(2) as ctx:
            x = odin.zeros(8, ctx=ctx)
            with pytest.raises(NotImplementedError):
                x[2:4] = np.array([1.0, 2.0])


class TestTpetraFailures:
    def test_import_between_different_sizes(self):
        def body(comm):
            a = tpetra.Map.create_contiguous(8, comm)
            b = tpetra.Map.create_contiguous(12, comm)
            x = tpetra.Vector(a)
            y = tpetra.Vector(b)
            imp = tpetra.Import(a, b)   # gids 8..11 unresolvable
            y.import_from(x, imp)
        with pytest.raises(Exception):
            mpi.run_spmd(body, 2, timeout=5)

    def test_vector_wrong_map_operand(self):
        def body(comm):
            a = tpetra.Vector(tpetra.Map.create_contiguous(6, comm))
            b = tpetra.Vector(tpetra.Map.create_cyclic(6, comm))
            return a + b
        with pytest.raises(ValueError):
            mpi.run_spmd(body, 3)
