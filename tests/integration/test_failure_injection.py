"""Failure-injection tests: the runtime must fail loudly, not hang.

Fault scenarios are scripted through :mod:`repro.chaos` fault plans
(deterministic, seeded) rather than ad-hoc ``raise`` statements inside
rank bodies; the deadlock-shape tests keep their hand-written bodies
because a *missing* operation is the fault being tested.
"""

import time

import numpy as np
import pytest

from repro import chaos, mpi, tpetra
from repro import odin
from repro.chaos import FaultPlan
from repro.odin.context import OdinContext


@pytest.fixture
def fault_plan():
    """Install a FaultPlan for one test, always uninstalling after."""
    def _install(plan):
        chaos.install(plan)
        return plan
    yield _install
    chaos.uninstall()


class TestMpiFailures:
    def test_mismatched_collective_roots_detected(self):
        """A rank waiting in a bcast nobody roots times out loudly."""
        def body(comm):
            if comm.rank == 0:
                comm.bcast(None, root=1)   # rank 1 never broadcasts
        with pytest.raises((mpi.DeadlockError, mpi.AbortError)):
            mpi.run_spmd(body, 2, timeout=0.6)

    def test_partial_collective_participation(self):
        def body(comm):
            if comm.rank != 1:
                comm.allreduce(1)
        with pytest.raises(mpi.DeadlockError):
            mpi.run_spmd(body, 3, timeout=0.6)

    def test_injected_crash_frees_peers_quickly(self, fault_plan):
        """A scripted rank crash aborts the world: peers are woken by the
        abort (AbortError), not by the 60 s deadlock timeout."""
        fault_plan(FaultPlan(seed=7).crash(rank=0, after=0))

        def body(comm):
            comm.barrier()
        start = time.monotonic()
        with pytest.raises((mpi.InjectedFault, mpi.AbortError)):
            mpi.run_spmd(body, 4, timeout=60)
        assert time.monotonic() - start < 10

    def test_injected_truncation_is_typed_not_wrong(self, fault_plan):
        """Payload corruption surfaces as TruncationError (or an abort
        triggered by a peer's TruncationError) -- never a silent wrong
        answer and never a hang."""
        fault_plan(FaultPlan(seed=11).truncate(keep=0.5, prob=1.0))

        def body(comm):
            out = np.zeros(8)
            comm.Allreduce(np.ones(8), out)
            return out
        with pytest.raises((mpi.TruncationError, mpi.AbortError)):
            mpi.run_spmd(body, 2, timeout=5)

    def test_injected_delay_preserves_results(self, fault_plan):
        """Benign faults (delay + reorder) are semantics-preserving: the
        program still computes the exact same answers."""
        fault_plan(FaultPlan(seed=5)
                   .delay(seconds=0.002, prob=0.5)
                   .reorder(depth=2, prob=0.5))

        def body(comm):
            return comm.allreduce(comm.rank + 1)
        assert mpi.run_spmd(body, 4, timeout=10) == [10, 10, 10, 10]
        assert chaos.ENGINE.injected(), "plan with prob=0.5 never fired"

    def test_send_to_self_works(self):
        def body(comm):
            comm.send("me", comm.rank)
            return comm.recv(source=comm.rank)
        assert mpi.run_spmd(body, 2) == ["me", "me"]


class TestOdinFailures:
    def test_unknown_array_id(self):
        with OdinContext(2) as ctx:
            with pytest.raises(KeyError):
                ctx.gather(99999)

    def test_worker_exception_surfaces_with_original_type(self):
        with OdinContext(2) as ctx:
            x = odin.ones(4, ctx=ctx)

            @odin.local
            def div_by_zero(block):
                return block / np.zeros(0)[0]  # IndexError

            with pytest.raises(IndexError):
                div_by_zero(x)
            # context survives
            assert odin.ones(4, ctx=ctx).sum() == 4.0

    def test_injected_worker_crash_aborts_driver(self, fault_plan):
        """A scripted crash on a worker rank kills the whole context
        fast: the driver's next op raises AbortError wrapping the
        InjectedFault instead of waiting out the deadlock timeout."""
        ctx = OdinContext(2, timeout=60)
        # installed after startup so the crash hits a steady-state op
        fault_plan(FaultPlan(seed=3).crash(rank=1, after=2))
        start = time.monotonic()
        try:
            with pytest.raises(mpi.AbortError):
                for _ in range(50):
                    odin.ones(16, ctx=ctx).sum()
        finally:
            chaos.uninstall()
            try:
                ctx.shutdown()
            except Exception:
                pass  # abort-poisoned world
        assert time.monotonic() - start < 10

    def test_bad_load_shape(self, tmp_path):
        with OdinContext(2) as ctx:
            for w in range(2):
                np.save(tmp_path / f"block_{w}.npy", np.zeros(3))
            with pytest.raises(ValueError):
                odin.load(str(tmp_path / "block_{rank}.npy"), 100,
                          ctx=ctx)

    def test_setitem_array_value_rejected(self):
        with OdinContext(2) as ctx:
            x = odin.zeros(8, ctx=ctx)
            with pytest.raises(NotImplementedError):
                x[2:4] = np.array([1.0, 2.0])


class TestTpetraFailures:
    def test_import_between_different_sizes(self):
        def body(comm):
            a = tpetra.Map.create_contiguous(8, comm)
            b = tpetra.Map.create_contiguous(12, comm)
            x = tpetra.Vector(a)
            y = tpetra.Vector(b)
            imp = tpetra.Import(a, b)   # gids 8..11 unresolvable
            y.import_from(x, imp)
        with pytest.raises(Exception):
            mpi.run_spmd(body, 2, timeout=5)

    def test_vector_wrong_map_operand(self):
        def body(comm):
            a = tpetra.Vector(tpetra.Map.create_contiguous(6, comm))
            b = tpetra.Vector(tpetra.Map.create_cyclic(6, comm))
            return a + b
        with pytest.raises(ValueError):
            mpi.run_spmd(body, 3)
