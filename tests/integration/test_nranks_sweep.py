"""Cross-rank-count correctness sweeps (paper: the prototype is "tested on
systems and clusters with small to mid-range number of nodes")."""

import numpy as np
import pytest

from repro import galeri, mpi, solvers, tpetra
from repro.odin.context import OdinContext
from repro import odin

SWEEP = [1, 2, 3, 4, 8]


class TestTpetraSweep:
    @pytest.mark.parametrize("p", SWEEP)
    def test_spmv_rank_invariant(self, p):
        def body(comm):
            A = galeri.laplace_2d(8, 8, comm)
            x = tpetra.Vector(A.row_map)
            x.local_view[...] = np.sin(A.row_map.my_gids.astype(float))
            return np.asarray(A @ x)
        got = mpi.run_spmd(body, p)[0]
        ref = mpi.run_spmd(body, 1)[0]
        assert np.allclose(got, ref)

    @pytest.mark.parametrize("p", SWEEP)
    def test_cg_iterations_rank_invariant(self, p):
        """Unpreconditioned CG does identical arithmetic at any p."""
        def body(comm):
            A = galeri.laplace_2d(8, 8, comm)
            b = tpetra.Vector(A.row_map).putScalar(1.0)
            r = solvers.cg(A, b, tol=1e-10, maxiter=500)
            return r.converged, r.iterations
        conv, its = mpi.run_spmd(body, p)[0]
        _c1, its1 = mpi.run_spmd(body, 1)[0]
        assert conv and its == its1

    @pytest.mark.parametrize("p", SWEEP)
    def test_transpose_rank_invariant(self, p):
        def body(comm):
            A = galeri.convection_diffusion_2d(5, 5, comm)
            return A.transpose().to_scipy_global(root=None).toarray()
        assert np.allclose(mpi.run_spmd(body, p)[0],
                           mpi.run_spmd(body, 1)[0])


class TestOdinSweep:
    @pytest.mark.parametrize("w", SWEEP)
    def test_expression_worker_invariant(self, w):
        with OdinContext(w) as ctx:
            x = odin.linspace(0, 1, 101, ctx=ctx)
            y = odin.sin(x) * 2 + x ** 2
            got = y.gather()
        xs = np.linspace(0, 1, 101)
        assert np.allclose(got, np.sin(xs) * 2 + xs ** 2)

    @pytest.mark.parametrize("w", SWEEP)
    def test_slicing_worker_invariant(self, w):
        with OdinContext(w) as ctx:
            x = odin.arange(83, ctx=ctx, dtype=np.float64)
            got = (x[1:] - x[:-1]).gather()
        assert np.allclose(got, 1.0)

    @pytest.mark.parametrize("w", [1, 2, 4])
    def test_reduction_worker_invariant(self, w):
        data = np.random.default_rng(3).normal(size=137)
        with OdinContext(w) as ctx:
            s = odin.array(data, ctx=ctx).sum()
        assert s == pytest.approx(data.sum())
