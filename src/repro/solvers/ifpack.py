"""Algebraic preconditioners (the Ifpack package equivalent).

Like Ifpack, all preconditioners here are *processor-local* algorithms
applied to each rank's diagonal block (plus optional overlap for Additive
Schwarz): Jacobi, Gauss-Seidel, symmetric GS, SOR, Chebyshev, ILU(0), ILUT
and overlapping Additive Schwarz with an exact subdomain solve.

Every preconditioner is a :class:`~repro.tpetra.operator.Operator`, so it
drops directly into the Krylov solvers' ``prec=`` argument.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..teuchos import ParameterList
from ..tpetra import CrsMatrix, Map, Operator, Vector
from ..tpetra.import_export import CombineMode, Import

__all__ = ["Preconditioner", "Jacobi", "GaussSeidel", "SymmetricGaussSeidel",
           "SOR", "Chebyshev", "ILU0", "ILUT", "AdditiveSchwarz",
           "create_preconditioner"]


def _local_diag_block(A: CrsMatrix) -> sp.csr_matrix:
    """This rank's square diagonal block, in local row/col numbering.

    Valid when the domain map equals the row map (the usual square case):
    the first ``num_my_rows`` columns of the local matrix are exactly the
    owned columns.
    """
    n = A.num_my_rows
    return A.local_matrix[:, :n].tocsr()


class Preconditioner(Operator):
    """Base class binding a preconditioner to its matrix's maps."""

    def __init__(self, A: CrsMatrix):
        if not A.is_fill_complete:
            raise ValueError("matrix must be fill-complete")
        self.A = A

    def domain_map(self) -> Map:
        return self.A.domain_map()

    def range_map(self) -> Map:
        return self.A.range_map()

    def compute(self) -> "Preconditioner":
        """Numeric setup; subclasses override. Returns self."""
        return self


class Jacobi(Preconditioner):
    """Point Jacobi: z = D^-1 r, optionally damped and iterated."""

    def __init__(self, A: CrsMatrix, sweeps: int = 1, damping: float = 1.0):
        super().__init__(A)
        self.sweeps = sweeps
        self.damping = damping
        self._inv_diag: Optional[np.ndarray] = None
        self.compute()

    def compute(self) -> "Jacobi":
        d = self.A.diagonal().local_view.copy()
        if np.any(d == 0):
            raise ZeroDivisionError("Jacobi preconditioner: zero diagonal")
        self._inv_diag = 1.0 / d
        return self

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        if self.sweeps == 1:
            y.local_view[...] = self.damping * self._inv_diag * x.local_view
            return
        y.putScalar(0.0)
        r = Vector(x.map, dtype=x.dtype)
        for _ in range(self.sweeps):
            self.A.apply(y, r)
            r.update(1.0, x, -1.0)  # r = x - A y
            y.local_view += self.damping * self._inv_diag * r.local_view


class GaussSeidel(Preconditioner):
    """Processor-local Gauss-Seidel sweeps (block-Jacobi across ranks)."""

    def __init__(self, A: CrsMatrix, sweeps: int = 1, damping: float = 1.0,
                 backward: bool = False):
        super().__init__(A)
        self.sweeps = sweeps
        self.damping = damping
        self.backward = backward
        block = _local_diag_block(A)
        n = block.shape[0]
        lower = sp.tril(block, k=0).tocsr()
        upper = sp.triu(block, k=0).tocsr()
        self._tri = upper if backward else lower
        self._block = block

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        y.putScalar(0.0)
        n = self._block.shape[0]
        if n == 0:
            return
        yl = y.local_view
        for _ in range(self.sweeps):
            r = x.local_view - self._block @ yl
            dy = spla.spsolve_triangular(self._tri.tocsr(), r,
                                         lower=not self.backward,
                                         unit_diagonal=False)
            yl += self.damping * dy


class SymmetricGaussSeidel(Preconditioner):
    """Forward sweep followed by backward sweep, processor-local."""

    def __init__(self, A: CrsMatrix, sweeps: int = 1, damping: float = 1.0):
        super().__init__(A)
        self._fwd = GaussSeidel(A, sweeps=1, damping=damping)
        self._bwd = GaussSeidel(A, sweeps=1, damping=damping, backward=True)
        self.sweeps = sweeps
        self._block = self._fwd._block

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        y.putScalar(0.0)
        if self._block.shape[0] == 0:
            return
        tmp = Vector(x.map, dtype=x.dtype)
        r = Vector(x.map, dtype=x.dtype)
        for _ in range(self.sweeps):
            r.local_view[...] = x.local_view - self._block @ y.local_view
            self._fwd.apply(r, tmp)
            y.local_view += tmp.local_view
            r.local_view[...] = x.local_view - self._block @ y.local_view
            self._bwd.apply(r, tmp)
            y.local_view += tmp.local_view


class SOR(Preconditioner):
    """Successive over-relaxation, processor-local."""

    def __init__(self, A: CrsMatrix, omega: float = 1.2, sweeps: int = 1):
        super().__init__(A)
        if not 0 < omega < 2:
            raise ValueError("SOR requires 0 < omega < 2")
        self.omega = omega
        self.sweeps = sweeps
        block = _local_diag_block(A)
        self._block = block
        d = block.diagonal()
        if np.any(d == 0):
            raise ZeroDivisionError("SOR preconditioner: zero diagonal")
        # M = (D/omega + L); solve M dy = r each sweep
        self._m = (sp.diags(d / omega) + sp.tril(block, k=-1)).tocsr()

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        y.putScalar(0.0)
        if self._block.shape[0] == 0:
            return
        yl = y.local_view
        for _ in range(self.sweeps):
            r = x.local_view - self._block @ yl
            yl += spla.spsolve_triangular(self._m, r, lower=True)


class Chebyshev(Preconditioner):
    """Chebyshev polynomial preconditioner/smoother.

    Targets the upper part of the spectrum of D^-1 A, with the maximum
    eigenvalue estimated by a few power iterations -- the Ifpack recipe.
    """

    def __init__(self, A: CrsMatrix, degree: int = 3,
                 eig_ratio: float = 30.0, power_iterations: int = 10,
                 lambda_max: Optional[float] = None):
        super().__init__(A)
        self.degree = degree
        self.eig_ratio = eig_ratio
        d = A.diagonal().local_view.copy()
        if np.any(d == 0):
            raise ZeroDivisionError("Chebyshev preconditioner: zero diagonal")
        self._inv_diag = 1.0 / d
        if lambda_max is None:
            lambda_max = self._estimate_lambda_max(power_iterations)
        self.lambda_max = 1.1 * lambda_max  # Ifpack boost factor
        self.lambda_min = self.lambda_max / eig_ratio

    def _estimate_lambda_max(self, iterations: int) -> float:
        v = Vector(self.A.domain_map())
        v.randomize(seed=42)
        nrm = v.norm2()
        if nrm == 0:
            return 1.0
        v.scale(1.0 / nrm)
        w = Vector(self.A.range_map())
        lam = 1.0
        for _ in range(iterations):
            self.A.apply(v, w)
            w.local_view *= self._inv_diag
            lam = w.norm2()
            if lam == 0:
                return 1.0
            v = w * (1.0 / lam)
        return float(lam)

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        # Three-term Chebyshev recurrence on D^-1 A (the hypre/ML form).
        theta = 0.5 * (self.lambda_max + self.lambda_min)
        delta = 0.5 * (self.lambda_max - self.lambda_min)
        sigma = theta / delta
        rho_old = 1.0 / sigma
        y.putScalar(0.0)
        d = Vector(x.map, dtype=x.dtype)
        d.local_view[...] = self._inv_diag * x.local_view / theta
        y.update(1.0, d, 1.0)
        ay = Vector(x.map, dtype=x.dtype)
        for _k in range(1, self.degree):
            rho = 1.0 / (2.0 * sigma - rho_old)
            self.A.apply(y, ay)
            resid = x.local_view - ay.local_view
            d.local_view[...] = rho * rho_old * d.local_view \
                + (2.0 * rho / delta) * self._inv_diag * resid
            y.update(1.0, d, 1.0)
            rho_old = rho


class ILU0(Preconditioner):
    """Zero-fill incomplete LU on the processor-local diagonal block."""

    def __init__(self, A: CrsMatrix):
        super().__init__(A)
        self._lu = None
        self.compute()

    def compute(self) -> "ILU0":
        block = _local_diag_block(self.A).tocsr()
        self._lu = _ilu0_factor(block)
        return self

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        if self.A.num_my_rows == 0:
            return
        lower, upper = self._lu
        t = spla.spsolve_triangular(lower, x.local_view, lower=True,
                                    unit_diagonal=True)
        y.local_view[...] = spla.spsolve_triangular(upper, t, lower=False)


def _ilu0_factor(block: sp.csr_matrix):
    """IKJ-variant ILU(0) keeping the original sparsity pattern."""
    n = block.shape[0]
    lu = block.copy().tolil()
    rows = [dict(zip(lu.rows[i], lu.data[i])) for i in range(n)]
    for i in range(n):
        row_i = rows[i]
        for k in sorted(c for c in row_i if c < i):
            piv = rows[k].get(k, 0.0)
            if piv == 0:
                continue
            factor = row_i[k] / piv
            row_i[k] = factor
            for j, akj in rows[k].items():
                if j > k and j in row_i:
                    row_i[j] -= factor * akj
    data, indices, indptr = [], [], [0]
    for i in range(n):
        cols = sorted(rows[i])
        indices.extend(cols)
        data.extend(rows[i][c] for c in cols)
        indptr.append(len(indices))
    csr = sp.csr_matrix((np.asarray(data), np.asarray(indices),
                         np.asarray(indptr)), shape=(n, n))
    lower = sp.tril(csr, k=-1).tocsr()
    lower.setdiag(1.0)
    upper = sp.triu(csr, k=0).tocsr()
    return lower.tocsr(), upper


class ILUT(Preconditioner):
    """Thresholded ILU on the local block (via SuperLU's approximate ILU)."""

    def __init__(self, A: CrsMatrix, drop_tol: float = 1e-4,
                 fill_factor: float = 10.0):
        super().__init__(A)
        self.drop_tol = drop_tol
        self.fill_factor = fill_factor
        self._ilu = None
        self.compute()

    def compute(self) -> "ILUT":
        block = _local_diag_block(self.A).tocsc()
        if block.shape[0]:
            self._ilu = spla.spilu(block, drop_tol=self.drop_tol,
                                   fill_factor=self.fill_factor)
        return self

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        if self._ilu is not None:
            y.local_view[...] = self._ilu.solve(x.local_view)


class AdditiveSchwarz(Preconditioner):
    """Overlapping additive Schwarz with an exact subdomain solve.

    With ``overlap=0`` this is block Jacobi with a direct block solve.
    Each extra level of overlap extends the subdomain by the rows reachable
    through one more layer of the matrix graph (rows are fetched from their
    owners at setup time).

    ``variant`` selects how overlapped solutions combine:

    - ``"ras"`` (restricted, Ifpack's default): each rank keeps only its
      owned part -- one less communication, but the operator is
      *nonsymmetric*, so pair it with GMRES/BiCGStab;
    - ``"as"`` (classic): overlapping contributions are summed back to
      their owners -- symmetric for symmetric A, the right choice for CG.
    """

    def __init__(self, A: CrsMatrix, overlap: int = 1,
                 variant: str = "ras"):
        super().__init__(A)
        if variant not in ("ras", "as"):
            raise ValueError("variant must be 'ras' or 'as'")
        self.overlap = overlap
        self.variant = variant
        self._setup()

    def _setup(self) -> None:
        A = self.A
        comm = A.row_map.comm
        my = set(int(g) for g in A.row_map.my_gids)
        region = list(A.row_map.my_gids)
        region_set = set(region)
        # rows of A we already have locally, in global col numbering
        rows = {}
        coo = A.local_matrix.tocoo()
        for i, j, v in zip(coo.row, coo.col, coo.data):
            rows.setdefault(int(A.row_map.gid(int(i))), []).append(
                (int(A.col_map_gids[int(j)]), float(v)))
        frontier = set()
        for grow in region:
            frontier.update(c for c, _v in rows.get(grow, ()))
        frontier -= region_set
        for _level in range(self.overlap):
            # fetch rows in the frontier from their owners (collective)
            want = np.array(sorted(frontier), dtype=np.int64)
            owners = A.row_map.owner_rank(want)
            asks = [want[owners == r] for r in range(comm.size)]
            asked = comm.alltoall(asks)
            replies = []
            for gids in asked:
                batch = []
                for g in np.asarray(gids, dtype=np.int64):
                    cols, vals = A.global_row(int(g))
                    batch.append((int(g), cols, vals))
                replies.append(batch)
            got = comm.alltoall(replies)
            new_rows = {}
            for batch in got:
                for g, cols, vals in batch:
                    new_rows[int(g)] = list(zip(
                        (int(c) for c in cols), (float(v) for v in vals)))
            rows.update(new_rows)
            region.extend(sorted(frontier))
            region_set |= frontier
            next_frontier = set()
            for g in new_rows:
                next_frontier.update(c for c, _v in new_rows[g])
            frontier = next_frontier - region_set
        # build the overlapped local submatrix
        pos = {g: i for i, g in enumerate(region)}
        ridx, cidx, vals = [], [], []
        for g in region:
            for c, v in rows.get(g, ()):
                if c in pos:
                    ridx.append(pos[g])
                    cidx.append(pos[c])
                    vals.append(v)
        n = len(region)
        sub = sp.coo_matrix((vals, (ridx, cidx)), shape=(n, n)).tocsc()
        self._region = np.array(region, dtype=np.int64)
        self._n_owned = A.row_map.num_my_elements
        self._lu = spla.splu(sub) if n else None
        # importer to pull the overlapped region of the residual
        overlap_map = Map(A.domain_map().num_global, self._region, comm,
                          kind="arbitrary")
        self._importer = Import(A.domain_map(), overlap_map)

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        n = len(self._region)
        xo = np.zeros((n, 1), dtype=x.dtype)
        self._importer.apply(x.local, xo, CombineMode.INSERT)
        if self._lu is not None:
            sol = self._lu.solve(xo[:, 0])
        else:
            sol = np.zeros(0)
        if self.variant == "ras":
            # restricted AS: keep only the owned part -- no second
            # communication, at the price of a nonsymmetric operator
            y.local_view[...] = sol[:self._n_owned]
        else:
            # classic AS: sum every subdomain's contribution at the owner
            # (reverse import = export with ADD); symmetric for SPD A
            y.putScalar(0.0)
            self._importer.apply_reverse(
                np.ascontiguousarray(sol.reshape(-1, 1)), y.local,
                CombineMode.ADD)


def create_preconditioner(name: str, A: CrsMatrix,
                          params: Optional[ParameterList] = None
                          ) -> Preconditioner:
    """Ifpack-style factory: create a preconditioner by name.

    Names (case-insensitive): ``Jacobi``, ``Gauss-Seidel``, ``SGS``,
    ``SOR``, ``Chebyshev``, ``ILU``, ``ILUT``, ``Schwarz``, ``None``.
    """
    params = params if params is not None else ParameterList("Ifpack")
    key = name.strip().lower().replace("_", "-")
    if key in ("none", "identity"):
        from ..tpetra import IdentityOperator
        return IdentityOperator(A.domain_map())  # type: ignore[return-value]
    if key == "jacobi":
        return Jacobi(A, sweeps=int(params.get("Sweeps", 1)),
                      damping=float(params.get("Damping", 1.0)))
    if key in ("gauss-seidel", "gs"):
        return GaussSeidel(A, sweeps=int(params.get("Sweeps", 1)),
                           damping=float(params.get("Damping", 1.0)))
    if key in ("sgs", "symmetric-gauss-seidel"):
        return SymmetricGaussSeidel(A, sweeps=int(params.get("Sweeps", 1)))
    if key == "sor":
        return SOR(A, omega=float(params.get("Omega", 1.2)),
                   sweeps=int(params.get("Sweeps", 1)))
    if key == "chebyshev":
        return Chebyshev(A, degree=int(params.get("Degree", 3)),
                         eig_ratio=float(params.get("Eig Ratio", 30.0)))
    if key in ("ilu", "ilu0", "ilu(0)"):
        return ILU0(A)
    if key == "ilut":
        return ILUT(A, drop_tol=float(params.get("Drop Tolerance", 1e-4)),
                    fill_factor=float(params.get("Fill Factor", 10.0)))
    if key in ("schwarz", "additive-schwarz", "ras"):
        return AdditiveSchwarz(A, overlap=int(params.get("Overlap", 1)),
                               variant=str(params.get("Variant", "ras")))
    raise ValueError(f"unknown preconditioner {name!r}")
