"""Multi-level (algebraic multigrid) preconditioning -- the ML equivalent.

Smoothed aggregation AMG, following ML's default recipe:

1. strength-of-connection filtering of the level matrix,
2. *uncoupled* (processor-local) greedy aggregation -- ML's default
   aggregation scheme, which never lets aggregates cross rank boundaries,
3. tentative prolongator from the constant near-nullspace, normalized per
   aggregate,
4. prolongator smoothing P = (I - omega D^-1 A) P_tent with
   omega = 4/3 / lambda_max(D^-1 A),
5. Galerkin coarse operator A_c = P^T A P (distributed transpose + matmat),
6. V-cycle with damped-Jacobi or symmetric Gauss-Seidel smoothers and a
   direct coarse solve.

The result is an :class:`~repro.tpetra.operator.Operator`, used either as a
preconditioner for CG/GMRES or as a standalone solver via :meth:`solve`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ..teuchos import ParameterList
from ..tpetra import CrsMatrix, Map, Operator, Vector
from .direct import SparseLU
from .ifpack import Jacobi, SymmetricGaussSeidel, _local_diag_block

__all__ = ["MLPreconditioner", "smoothed_aggregation_hierarchy", "Level"]


@dataclass
class Level:
    """One level of the AMG hierarchy."""

    A: CrsMatrix
    P: Optional[CrsMatrix] = None       # prolongator to THIS level's fine
    R: Optional[CrsMatrix] = None       # restriction (P^T)
    presmoother: Optional[Operator] = None
    postsmoother: Optional[Operator] = None


def _strength_graph(block: sp.csr_matrix, theta: float) -> sp.csr_matrix:
    """Symmetric strength-of-connection filter on the local block.

    Connection (i, j) is strong when |a_ij| >= theta * sqrt(|a_ii a_jj|).
    """
    coo = block.tocoo()
    d = np.abs(block.diagonal())
    scale = np.sqrt(d[coo.row] * d[coo.col])
    keep = (np.abs(coo.data) >= theta * scale) & (coo.row != coo.col)
    return sp.csr_matrix(
        (np.ones(keep.sum()), (coo.row[keep], coo.col[keep])),
        shape=block.shape)


def _aggregate_uncoupled(strength: sp.csr_matrix) -> np.ndarray:
    """Greedy root-point aggregation; returns aggregate id per local row
    (-1 never occurs: leftovers join a neighboring aggregate or form
    singletons)."""
    n = strength.shape[0]
    agg = np.full(n, -1, dtype=np.int64)
    next_agg = 0
    # phase 1: roots whose whole neighborhood is unaggregated
    for i in range(n):
        if agg[i] != -1:
            continue
        nbrs = strength.indices[strength.indptr[i]:strength.indptr[i + 1]]
        if np.all(agg[nbrs] == -1):
            agg[i] = next_agg
            agg[nbrs] = next_agg
            next_agg += 1
    # phase 2: attach leftovers to an adjacent aggregate
    for i in range(n):
        if agg[i] != -1:
            continue
        nbrs = strength.indices[strength.indptr[i]:strength.indptr[i + 1]]
        hit = nbrs[agg[nbrs] != -1]
        if len(hit):
            agg[i] = agg[hit[0]]
    # phase 3: whatever is left becomes singleton aggregates
    for i in range(n):
        if agg[i] == -1:
            agg[i] = next_agg
            next_agg += 1
    return agg


def _estimate_rho_dinv_a(A: CrsMatrix, iterations: int = 10) -> float:
    """Power-iteration estimate of lambda_max(D^-1 A)."""
    d = A.diagonal().local_view.copy()
    d[d == 0] = 1.0
    inv_d = 1.0 / d
    v = Vector(A.domain_map())
    v.randomize(seed=7)
    nrm = v.norm2() or 1.0
    v.scale(1.0 / nrm)
    w = Vector(A.range_map())
    lam = 1.0
    for _ in range(iterations):
        A.apply(v, w)
        w.local_view *= inv_d
        lam = w.norm2()
        if lam == 0:
            return 1.0
        v = w * (1.0 / lam)
    return float(lam)


def _build_prolongator(A: CrsMatrix, theta: float, omega_scale: float,
                       smooth: bool) -> CrsMatrix:
    """Tentative (optionally smoothed) prolongator for one level."""
    comm = A.row_map.comm
    block = _local_diag_block(A)
    strength = _strength_graph(block, theta)
    agg = _aggregate_uncoupled(strength)
    n_agg = int(agg.max()) + 1 if len(agg) else 0
    # global coarse ids: contiguous, offset by the aggregates on lower ranks
    offset = comm.exscan(n_agg)
    offset = 0 if offset is None else int(offset)
    coarse_map = Map.create_from_local_counts(n_agg, comm)
    # P_tent: column agg(i) of row i gets 1/sqrt(|aggregate|)
    counts = np.bincount(agg, minlength=n_agg).astype(float) if n_agg else \
        np.zeros(0)
    ptent = CrsMatrix(A.row_map)
    for lrow in range(A.num_my_rows):
        gcol = offset + int(agg[lrow])
        ptent.insert_global_values(
            int(A.row_map.gid(lrow)), [gcol],
            [1.0 / np.sqrt(counts[agg[lrow]])])
    ptent.fillComplete(domain_map=coarse_map, range_map=A.range_map())
    if not smooth:
        return ptent
    # P = (I - omega D^-1 A) P_tent
    rho = _estimate_rho_dinv_a(A)
    omega = omega_scale / rho
    d = A.diagonal().local_view.copy()
    d[d == 0] = 1.0
    ap = A.matmat(ptent)
    # smoothed = ptent - (omega * D^-1) @ ap  (row scaling is local)
    scaled = ap
    scaled.local_matrix = sp.diags(omega / d) @ scaled.local_matrix
    # subtract: same row map; merge entries through global assembly
    out = CrsMatrix(A.row_map)
    for m, sign in ((ptent, 1.0), (scaled, -1.0)):
        coo = m.local_matrix.tocoo()
        for i, j, v in zip(coo.row, coo.col, coo.data):
            out.insert_global_values(
                int(A.row_map.gid(int(i))),
                [int(m.col_map_gids[int(j)])], [sign * v])
    out.fillComplete(domain_map=coarse_map, range_map=A.range_map())
    return out


def smoothed_aggregation_hierarchy(
        A: CrsMatrix, max_levels: int = 10, coarse_size: int = 50,
        theta: float = 0.02, omega_scale: float = 4.0 / 3.0,
        smoother: str = "sgs", smooth_prolongator: bool = True,
        sweeps: int = 1) -> List[Level]:
    """Build the AMG level hierarchy (collective)."""
    levels = [Level(A=A)]
    while (levels[-1].A.num_global_rows > coarse_size
           and len(levels) < max_levels):
        fine = levels[-1].A
        P = _build_prolongator(fine, theta, omega_scale, smooth_prolongator)
        if P.num_global_cols >= fine.num_global_rows:
            break  # aggregation stalled; stop coarsening
        R = P.transpose()
        Ac = R.matmat(fine.matmat(P))
        levels[-1].P = P
        levels[-1].R = R
        levels.append(Level(A=Ac))
    # attach smoothers (all but coarsest)
    for level in levels[:-1]:
        if smoother == "jacobi":
            level.presmoother = Jacobi(level.A, sweeps=sweeps, damping=2/3)
            level.postsmoother = Jacobi(level.A, sweeps=sweeps, damping=2/3)
        else:
            level.presmoother = SymmetricGaussSeidel(level.A, sweeps=sweeps)
            level.postsmoother = SymmetricGaussSeidel(level.A, sweeps=sweeps)
    return levels


class MLPreconditioner(Operator):
    """Smoothed-aggregation AMG V-cycle as an Operator.

    Parameters follow ML's naming where sensible::

        ParameterList("ML").set("max levels", 10) \\
                           .set("coarse: max size", 50) \\
                           .set("aggregation: threshold", 0.02) \\
                           .set("smoother: type", "sgs") \\
                           .set("smoother: sweeps", 1)
    """

    def __init__(self, A: CrsMatrix,
                 params: Optional[ParameterList] = None):
        params = params if params is not None else ParameterList("ML")
        self.levels = smoothed_aggregation_hierarchy(
            A,
            max_levels=int(params.get("max levels", 10)),
            coarse_size=int(params.get("coarse: max size", 50)),
            theta=float(params.get("aggregation: threshold", 0.02)),
            smoother=str(params.get("smoother: type", "sgs")),
            sweeps=int(params.get("smoother: sweeps", 1)),
            smooth_prolongator=bool(params.get("prolongator: smooth", True)),
        )
        self._coarse = SparseLU(self.levels[-1].A).numeric_factorization()

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def domain_map(self) -> Map:
        return self.levels[0].A.domain_map()

    def range_map(self) -> Map:
        return self.levels[0].A.range_map()

    def operator_complexity(self) -> float:
        """sum(nnz over levels) / nnz(fine): the standard AMG cost metric."""
        nnz = [lvl.A.num_global_nonzeros() for lvl in self.levels]
        return sum(nnz) / nnz[0]

    def _vcycle(self, k: int, b: Vector, x: Vector) -> None:
        level = self.levels[k]
        if k == len(self.levels) - 1:
            self._coarse.solve(b, x)
            return
        # presmooth (x assumed 0 on entry below the top)
        level.presmoother.apply(b, x)
        r = Vector(b.map, dtype=b.dtype)
        level.A.apply(x, r)
        r.update(1.0, b, -1.0)
        # restrict and recurse
        bc = level.R @ r
        xc = Vector(level.R.range_map(), dtype=b.dtype)
        self._vcycle(k + 1, bc, xc)
        # prolong correction
        corr = level.P @ xc
        x.update(1.0, corr, 1.0)
        # postsmooth on the residual equation
        level.A.apply(x, r)
        r.update(1.0, b, -1.0)
        dx = Vector(b.map, dtype=b.dtype)
        level.postsmoother.apply(r, dx)
        x.update(1.0, dx, 1.0)

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        """One V-cycle applied to x (the residual), result in y."""
        y.putScalar(0.0)
        self._vcycle(0, x, y)

    def solve(self, b: Vector, x: Optional[Vector] = None,
              tol: float = 1e-8, maxiter: int = 100):
        """Standalone AMG iteration: repeat V-cycles until the residual
        drops below tol.  Returns a SolverResult."""
        from .krylov import SolverResult
        x = Vector(self.domain_map(), dtype=b.dtype) if x is None else x
        A = self.levels[0].A
        bnorm = b.norm2() or 1.0
        r = Vector(b.map, dtype=b.dtype)
        history = []
        for k in range(maxiter + 1):
            A.apply(x, r)
            r.update(1.0, b, -1.0)
            rel = r.norm2() / bnorm
            history.append(rel)
            if rel <= tol:
                return SolverResult(x, True, k, rel, history)
            if k == maxiter:
                break
            dx = Vector(b.map, dtype=b.dtype)
            self.apply(r, dx)
            x.update(1.0, dx, 1.0)
        return SolverResult(x, False, maxiter, history[-1], history,
                            "maximum iterations reached")
