"""Krylov-space iterative linear solvers (AztecOO / Belos equivalent).

All solvers operate on the abstract :class:`~repro.tpetra.operator.Operator`
protocol and distributed :class:`~repro.tpetra.multivector.Vector`, so the
only communication they perform is what the operator's SpMV and the global
dot products require -- exactly the structure of their Trilinos
counterparts.

Provided methods: CG, GMRES(m) with optional flexible variant, BiCGStab,
MINRES and TFQMR, each with optional preconditioning and a recorded
convergence history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..metrics import REGISTRY as _MX
from ..mpi import SUM
from ..teuchos import ParameterList
from ..tpetra import Operator, Vector
from ..trace import TRACER as _TR

__all__ = ["SolverResult", "cg", "gmres", "bicgstab", "minres", "tfqmr",
           "block_cg", "BlockSolverResult", "AztecOO"]


def _iter_done(name: str, t0: float, k: int, rel: float) -> None:
    """Record one solver iteration: a span carrying its residual norm
    (trace) and an iteration count / latest-residual gauge (metrics)."""
    if _TR.enabled:
        _TR.complete("solver.krylov", name, t0, k=int(k), resid=float(rel))
    if _MX.enabled:
        method = name.split(".", 1)[0]
        _MX.inc("solver.iterations", method=method)
        _MX.set_gauge("solver.residual", float(rel), method=method)


@dataclass
class SolverResult:
    """Outcome of an iterative solve."""

    x: Vector
    converged: bool
    iterations: int
    residual_norm: float
    history: List[float] = field(default_factory=list)
    message: str = ""

    def __repr__(self):
        state = "converged" if self.converged else "NOT converged"
        return (f"SolverResult({state} in {self.iterations} its, "
                f"||r||={self.residual_norm:.3e})")


def _apply_prec(prec: Optional[Operator], r: Vector) -> Vector:
    if prec is None:
        return r.copy()
    z = Vector(r.map, dtype=r.dtype)
    prec.apply(r, z)
    return z


def _residual(op: Operator, x: Vector, b: Vector) -> Vector:
    r = Vector(b.map, dtype=b.dtype)
    op.apply(x, r)
    r.update(1.0, b, -1.0)  # r = b - Ax
    return r


def _verified(op: Operator, x: Vector, b: Vector, bnorm: float, k: int,
              history: List[float], tol: float) -> SolverResult:
    """Trust-but-verify: recompute the true residual before declaring
    convergence.  The recursive residual the iteration monitors can part
    ways with reality -- through rounding drift, or through corrupted
    reduction payloads -- and a solver must report non-convergence rather
    than certify a wrong answer."""
    rel_true = _residual(op, x, b).norm2() / bnorm
    history[-1] = rel_true
    if rel_true <= 10 * tol:
        return SolverResult(x, True, k, rel_true, history)
    return SolverResult(x, False, k, rel_true, history,
                        f"recurrence converged but true residual is "
                        f"{rel_true:.3e}: possible data corruption")


def cg(op: Operator, b: Vector, x: Optional[Vector] = None,
       prec: Optional[Operator] = None, tol: float = 1e-8,
       maxiter: int = 1000) -> SolverResult:
    """Preconditioned conjugate gradients for SPD operators."""
    x = Vector(op.domain_map(), dtype=b.dtype) if x is None else x
    r = _residual(op, x, b)
    z = _apply_prec(prec, r)
    p = z.copy()
    rz = r.dot(z)
    bnorm = b.norm2() or 1.0
    history = [r.norm2() / bnorm]
    if history[-1] <= tol:
        return SolverResult(x, True, 0, history[-1], history)
    ap = Vector(op.range_map(), dtype=b.dtype)
    for k in range(1, maxiter + 1):
        t0 = _TR.now() if _TR.enabled else 0.0
        op.apply(p, ap)
        pap = p.dot(ap)
        if pap == 0:
            return SolverResult(x, False, k, history[-1], history,
                                "breakdown: p'Ap = 0")
        alpha = rz / pap
        x.update(alpha, p, 1.0)
        r.update(-alpha, ap, 1.0)
        rel = r.norm2() / bnorm
        history.append(rel)
        if _TR.enabled or _MX.enabled:
            _iter_done("cg.iter", t0, k, rel)
        if rel <= tol:
            return _verified(op, x, b, bnorm, k, history, tol)
        z = _apply_prec(prec, r)
        rz_new = r.dot(z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return SolverResult(x, False, maxiter, history[-1], history,
                        "maximum iterations reached")


def gmres(op: Operator, b: Vector, x: Optional[Vector] = None,
          prec: Optional[Operator] = None, tol: float = 1e-8,
          maxiter: int = 1000, restart: int = 30,
          flexible: bool = False) -> SolverResult:
    """Restarted GMRES(m) with right preconditioning.

    Right preconditioning keeps the monitored residual equal to the true
    residual.  With ``flexible=True`` the preconditioner may change between
    iterations (FGMRES), as required when the preconditioner is itself an
    iterative method.

    Orthogonalization is iterated classical Gram-Schmidt (Belos' ICGS):
    each Arnoldi step projects against the whole basis with ONE batched
    length-(j+1) Allreduce and reorthogonalizes once, instead of modified
    Gram-Schmidt's j+1 scalar Allreduces.  "Twice is enough" keeps the
    basis orthogonal to working precision while the collective count per
    step drops from O(j) to 3.
    """
    x = Vector(op.domain_map(), dtype=b.dtype) if x is None else x
    bnorm = b.norm2() or 1.0
    history: List[float] = []
    total_iters = 0
    while True:
        r = _residual(op, x, b)
        beta = r.norm2()
        rel = beta / bnorm
        if not history:
            history.append(rel)
        if rel <= tol:
            return SolverResult(x, True, total_iters, rel, history)
        if total_iters >= maxiter:
            return SolverResult(x, False, total_iters, rel, history,
                                "maximum iterations reached")
        m = min(restart, maxiter - total_iters)
        # Arnoldi with iterated classical Gram-Schmidt (batched dots)
        V: List[Vector] = [r * (1.0 / beta)]
        Z: List[Vector] = []      # preconditioned directions (flexible)
        comm = b.comm
        # column-major local basis: Vloc[:, i] mirrors V[i]'s local block,
        # so all j+1 projection dots collapse into one GEMV + Allreduce
        Vloc = np.zeros((b.local_length, m + 1), dtype=b.local.dtype)
        Vloc[:, 0] = V[0].local_view
        H = np.zeros((m + 1, m))
        g = np.zeros(m + 1)
        g[0] = beta
        cs = np.zeros(m)
        sn = np.zeros(m)
        k_done = 0
        for j in range(m):
            t0 = _TR.now() if _TR.enabled else 0.0
            z = _apply_prec(prec, V[j])
            if flexible:
                Z.append(z.copy())
            w = Vector(op.range_map(), dtype=b.dtype)
            op.apply(z, w)
            basis = Vloc[:, :j + 1]
            wloc = w.local_view
            hj = np.zeros(j + 1)
            for _pass in range(2):   # CGS2: "twice is enough"
                local = basis.T @ wloc
                corr = np.zeros_like(local)
                comm.Allreduce(local, corr, op=SUM)
                wloc = wloc - basis @ corr
                hj += corr
            H[:j + 1, j] = hj
            w.local_view = wloc
            H[j + 1, j] = w.norm2()
            breakdown = not H[j + 1, j] > 1e-14 * beta
            if not breakdown:
                V.append(w * (1.0 / H[j + 1, j]))
                Vloc[:, j + 1] = V[j + 1].local_view
            # Givens rotations to maintain the QR of H
            for i in range(j):
                t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = t
            denom = np.hypot(H[j, j], H[j + 1, j])
            if denom == 0:
                cs[j], sn[j] = 1.0, 0.0
            else:
                cs[j], sn[j] = H[j, j] / denom, H[j + 1, j] / denom
            H[j, j] = denom
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            total_iters += 1
            k_done = j + 1
            rel = abs(g[j + 1]) / bnorm
            history.append(rel)
            if _TR.enabled or _MX.enabled:
                _iter_done("gmres.iter", t0, total_iters, rel)
            if rel <= tol or breakdown or H[j, j] == 0:
                break
        # solve the small triangular system and update x
        y = np.zeros(k_done)
        for i in range(k_done - 1, -1, -1):
            if H[i, i] == 0:
                y[i] = 0.0  # breakdown column contributes nothing
                continue
            y[i] = (g[i] - H[i, i + 1:k_done] @ y[i + 1:k_done]) / H[i, i]
        if flexible:
            for i in range(k_done):
                x.update(y[i], Z[i], 1.0)
        else:
            # x += M^-1 (V_k y)
            vy = Vector(b.map, dtype=b.dtype)
            for i in range(k_done):
                vy.update(y[i], V[i], 1.0)
            x.update(1.0, _apply_prec(prec, vy), 1.0)
        if rel <= tol:
            r = _residual(op, x, b)
            rel_true = r.norm2() / bnorm
            history[-1] = rel_true
            if rel_true <= 10 * tol:
                return SolverResult(x, True, total_iters, rel_true, history)


def bicgstab(op: Operator, b: Vector, x: Optional[Vector] = None,
             prec: Optional[Operator] = None, tol: float = 1e-8,
             maxiter: int = 1000) -> SolverResult:
    """BiCGStab with right preconditioning (nonsymmetric systems)."""
    x = Vector(op.domain_map(), dtype=b.dtype) if x is None else x
    r = _residual(op, x, b)
    r0 = r.copy()
    rho = alpha = omega = 1.0
    v = Vector(b.map, dtype=b.dtype)
    p = Vector(b.map, dtype=b.dtype)
    bnorm = b.norm2() or 1.0
    history = [r.norm2() / bnorm]
    if history[-1] <= tol:
        return SolverResult(x, True, 0, history[-1], history)
    for k in range(1, maxiter + 1):
        t0 = _TR.now() if _TR.enabled else 0.0
        rho_new = r0.dot(r)
        if rho_new == 0:
            return SolverResult(x, False, k, history[-1], history,
                                "breakdown: rho = 0")
        beta = (rho_new / rho) * (alpha / omega) if k > 1 else 0.0
        rho = rho_new
        if k == 1:
            p = r.copy()
        else:
            p.update(-omega, v, 1.0)
            p.scale(beta)
            p.update(1.0, r, 1.0)
        phat = _apply_prec(prec, p)
        op.apply(phat, v)
        alpha = rho / r0.dot(v)
        s = r.copy()
        s.update(-alpha, v, 1.0)
        if s.norm2() / bnorm <= tol:
            x.update(alpha, phat, 1.0)
            history.append(s.norm2() / bnorm)
            if _TR.enabled or _MX.enabled:
                _iter_done("bicgstab.iter", t0, k, history[-1])
            return _verified(op, x, b, bnorm, k, history, tol)
        shat = _apply_prec(prec, s)
        t = Vector(b.map, dtype=b.dtype)
        op.apply(shat, t)
        tt = t.dot(t)
        omega = t.dot(s) / tt if tt != 0 else 0.0
        x.update(alpha, phat, 1.0)
        x.update(omega, shat, 1.0)
        r = s.copy()
        r.update(-omega, t, 1.0)
        rel = r.norm2() / bnorm
        history.append(rel)
        if _TR.enabled or _MX.enabled:
            _iter_done("bicgstab.iter", t0, k, rel)
        if rel <= tol:
            return _verified(op, x, b, bnorm, k, history, tol)
        if omega == 0:
            return SolverResult(x, False, k, rel, history,
                                "breakdown: omega = 0")
    return SolverResult(x, False, maxiter, history[-1], history,
                        "maximum iterations reached")


def minres(op: Operator, b: Vector, x: Optional[Vector] = None,
           tol: float = 1e-8, maxiter: int = 1000) -> SolverResult:
    """MINRES for symmetric (possibly indefinite) operators, unpreconditioned."""
    x = Vector(op.domain_map(), dtype=b.dtype) if x is None else x
    r = _residual(op, x, b)
    bnorm = b.norm2() or 1.0
    beta = r.norm2()
    history = [beta / bnorm]
    if history[-1] <= tol:
        return SolverResult(x, True, 0, history[-1], history)
    v_prev = Vector(b.map, dtype=b.dtype)
    v = r * (1.0 / beta)
    d_prev = Vector(b.map, dtype=b.dtype)
    d_prev2 = Vector(b.map, dtype=b.dtype)
    eta = beta
    gamma, gamma_prev = 1.0, 1.0
    sigma, sigma_prev = 0.0, 0.0
    beta_prev = 0.0
    for k in range(1, maxiter + 1):
        t0 = _TR.now() if _TR.enabled else 0.0
        av = Vector(b.map, dtype=b.dtype)
        op.apply(v, av)
        alpha = v.dot(av)
        av.update(-alpha, v, 1.0)
        av.update(-beta, v_prev, 1.0)
        beta_new = av.norm2()
        # previous rotations
        delta = gamma * alpha - gamma_prev * sigma * beta
        rho1 = np.hypot(delta, beta_new)
        rho2 = sigma * alpha + gamma_prev * gamma * beta
        rho3 = sigma_prev * beta
        gamma_prev, gamma = gamma, delta / rho1 if rho1 else 1.0
        sigma_prev, sigma = sigma, beta_new / rho1 if rho1 else 0.0
        d = v.copy()
        d.update(-rho2, d_prev, 1.0)
        d.update(-rho3, d_prev2, 1.0)
        d.scale(1.0 / rho1)
        x.update(gamma * eta, d, 1.0)
        eta = -sigma * eta
        d_prev2, d_prev = d_prev, d
        v_prev = v
        if beta_new <= 1e-300:
            history.append(abs(eta) / bnorm)
            if _TR.enabled or _MX.enabled:
                _iter_done("minres.iter", t0, k, history[-1])
            return SolverResult(x, True, k, history[-1], history)
        v = av * (1.0 / beta_new)
        beta_prev, beta = beta, beta_new
        rel = abs(eta) / bnorm
        history.append(rel)
        if _TR.enabled or _MX.enabled:
            _iter_done("minres.iter", t0, k, rel)
        if rel <= tol:
            return SolverResult(x, True, k, rel, history)
    return SolverResult(x, False, maxiter, history[-1], history,
                        "maximum iterations reached")


def tfqmr(op: Operator, b: Vector, x: Optional[Vector] = None,
          prec: Optional[Operator] = None, tol: float = 1e-8,
          maxiter: int = 1000) -> SolverResult:
    """Transpose-free QMR (Freund '93; Saad Alg. 7.7).

    Right preconditioning is handled by composition: we iterate on
    ``A M^-1`` (whose residual equals the true residual) and map the
    iterate back through the preconditioner at the end.
    """
    if prec is not None:
        from ..tpetra import ComposedOperator
        composed = ComposedOperator(op, prec)
        inner = tfqmr(composed, b, x=None, prec=None, tol=tol,
                      maxiter=maxiter)
        xprec = _apply_prec(prec, inner.x)
        if x is not None:
            x.local[...] = xprec.local
            xprec = x
        return SolverResult(xprec, inner.converged, inner.iterations,
                            inner.residual_norm, inner.history,
                            inner.message)
    x = Vector(op.domain_map(), dtype=b.dtype) if x is None else x
    r = _residual(op, x, b)
    bnorm = b.norm2() or 1.0
    history = [r.norm2() / bnorm]
    if history[-1] <= tol:
        return SolverResult(x, True, 0, history[-1], history)
    r0 = r.copy()
    w = r.copy()
    u = r.copy()
    v = Vector(b.map, dtype=b.dtype)
    op.apply(u, v)
    au = v.copy()
    d = Vector(b.map, dtype=b.dtype)
    tau = r.norm2()
    theta, eta = 0.0, 0.0
    rho = r0.dot(r)
    alpha = 0.0
    for m in range(2 * maxiter):
        t0 = _TR.now() if _TR.enabled else 0.0
        even = (m % 2 == 0)
        if even:
            sigma = r0.dot(v)
            if sigma == 0:
                return SolverResult(x, False, (m + 1) // 2, history[-1],
                                    history, "breakdown: sigma = 0")
            alpha = rho / sigma
            u_next = u.copy()
            u_next.update(-alpha, v, 1.0)
        w.update(-alpha, au, 1.0)
        if alpha == 0:
            return SolverResult(x, False, (m + 1) // 2, history[-1],
                                history, "breakdown: alpha = 0")
        d.scale(theta ** 2 * eta / alpha)
        d.update(1.0, u, 1.0)
        theta = w.norm2() / tau
        c = 1.0 / np.sqrt(1.0 + theta ** 2)
        tau = tau * theta * c
        eta = c ** 2 * alpha
        x.update(eta, d, 1.0)
        rel = tau * np.sqrt(m + 2.0) / bnorm
        history.append(rel)
        if _TR.enabled or _MX.enabled:
            _iter_done("tfqmr.iter", t0, (m + 2) // 2, rel)
        if rel <= tol:
            rtrue = _residual(op, x, b).norm2() / bnorm
            history[-1] = rtrue
            if rtrue <= 10 * tol:
                return SolverResult(x, True, (m + 2) // 2, rtrue, history)
        if even:
            u = u_next
            op.apply(u, au)
        else:
            rho_new = r0.dot(w)
            if rho == 0:
                return SolverResult(x, False, (m + 1) // 2, history[-1],
                                    history, "breakdown: rho = 0")
            beta = rho_new / rho
            rho = rho_new
            u = w + beta * u
            au_new = Vector(b.map, dtype=b.dtype)
            op.apply(u, au_new)
            # v = A u_new + beta (A u_old + beta v_old)
            v.scale(beta ** 2)
            v.update(beta, au, 1.0)
            v.update(1.0, au_new, 1.0)
            au = au_new
    return SolverResult(x, False, maxiter, history[-1], history,
                        "maximum iterations reached")


@dataclass
class BlockSolverResult:
    """Outcome of a multi-RHS solve (Belos pseudo-block style)."""

    x: "MultiVector"
    converged: np.ndarray          # per-column flags
    iterations: int                # outer iterations run
    residual_norms: np.ndarray     # per-column final relative residuals

    def __repr__(self):
        return (f"BlockSolverResult({int(self.converged.sum())}/"
                f"{len(self.converged)} converged in {self.iterations} "
                f"its)")


def block_cg(op: Operator, B: "MultiVector", X: Optional["MultiVector"] = None,
             prec: Optional[Operator] = None, tol: float = 1e-8,
             maxiter: int = 1000) -> BlockSolverResult:
    """Pseudo-block CG: all right-hand sides iterated together.

    The Belos trick: each column runs its own CG recurrence, but the
    operator and preconditioner apply to the whole block at once, so the
    expensive distributed kernels amortize across systems and every global
    reduction carries ``numvectors`` scalars instead of one.  Columns that
    converge are frozen (their step size is zeroed) while the rest keep
    iterating.
    """
    from ..tpetra import MultiVector

    nvec = B.num_vectors
    X = MultiVector(op.domain_map(), nvec, dtype=B.dtype) if X is None \
        else X

    def apply_block(target_op, src: "MultiVector") -> "MultiVector":
        out = MultiVector(src.map, nvec, dtype=src.dtype)
        for j in range(nvec):
            target_op.apply(src.vector(j), out.vector(j))
        return out

    R = MultiVector(B.map, nvec, dtype=B.dtype)
    AX = apply_block(op, X)
    R.local[...] = B.local - AX.local
    Z = apply_block(prec, R) if prec is not None else R.copy()
    P = Z.copy()
    rz = R.dot(Z).real
    bnorm = B.norm2()
    bnorm = np.where(bnorm == 0, 1.0, bnorm)
    resid = R.norm2() / bnorm
    active = resid > tol
    history_its = 0
    for k in range(1, maxiter + 1):
        if not active.any():
            break
        t0 = _TR.now() if _TR.enabled else 0.0
        AP = apply_block(op, P)
        pap = np.einsum("ij,ij->j", np.conj(P.local), AP.local).real
        out = np.zeros_like(pap)
        B.comm.Allreduce(pap, out)
        pap = out
        safe_pap = np.where(pap == 0, 1.0, pap)
        alpha = np.where(active & (pap != 0), rz / safe_pap, 0.0)
        X.local += alpha * P.local
        R.local -= alpha * AP.local
        resid = R.norm2() / bnorm
        newly_done = active & (resid <= tol)
        active = active & ~newly_done
        history_its = k
        if _TR.enabled or _MX.enabled:
            _iter_done("block_cg.iter", t0, k, float(resid.max()))
        if not active.any():
            break
        Z = apply_block(prec, R) if prec is not None else R.copy()
        rz_new = R.dot(Z).real
        safe_rz = np.where(rz == 0, 1.0, rz)
        beta = np.where(active, rz_new / safe_rz, 0.0)
        rz = rz_new
        P.local[...] = Z.local + beta * P.local
    return BlockSolverResult(X, resid <= tol, history_its, resid)


class AztecOO:
    """Trilinos-style solver manager driven by a ParameterList.

    ::

        solver = AztecOO(A, params=ParameterList(
            "AztecOO").set("Solver", "GMRES").set("Tolerance", 1e-10))
        result = solver.iterate(b)
    """

    _METHODS = {"CG": cg, "GMRES": gmres, "BICGSTAB": bicgstab,
                "MINRES": minres, "TFQMR": tfqmr}

    def __init__(self, op: Operator, prec: Optional[Operator] = None,
                 params: Optional[ParameterList] = None):
        self.op = op
        self.prec = prec
        self.params = params if params is not None else \
            ParameterList("AztecOO")

    def iterate(self, b: Vector, x: Optional[Vector] = None) -> SolverResult:
        name = str(self.params.get("Solver", "GMRES")).upper()
        tol = float(self.params.get("Tolerance", 1e-8))
        maxiter = int(self.params.get("Max Iterations", 1000))
        try:
            method = self._METHODS[name]
        except KeyError:
            raise ValueError(f"unknown solver {name!r}; choose from "
                             f"{sorted(self._METHODS)}") from None
        kwargs = {}
        if name == "GMRES":
            kwargs["restart"] = int(self.params.get("Restart", 30))
            kwargs["flexible"] = bool(self.params.get("Flexible", False))
        if name != "MINRES":
            kwargs["prec"] = self.prec
        if _TR.enabled:
            with _TR.span("solver.krylov", "aztecoo.iterate",
                          method=name, tol=tol):
                return method(self.op, b, x=x, tol=tol, maxiter=maxiter,
                              **kwargs)
        return method(self.op, b, x=x, tol=tol, maxiter=maxiter, **kwargs)
