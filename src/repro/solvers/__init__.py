"""repro.solvers -- the Trilinos solver stack equivalents.

- :mod:`repro.solvers.krylov`  -- AztecOO: CG, GMRES, BiCGStab, MINRES, TFQMR
- :mod:`repro.solvers.ifpack`  -- algebraic preconditioners
- :mod:`repro.solvers.direct`  -- Amesos: uniform direct-solver interface
- :mod:`repro.solvers.ml`      -- smoothed-aggregation algebraic multigrid
- :mod:`repro.solvers.anasazi` -- eigensolvers
- :mod:`repro.solvers.nox`     -- nonlinear (Newton / JFNK) solvers
- :mod:`repro.solvers.komplex` -- complex systems via real equivalents
- :mod:`repro.solvers.resilient` -- shrink-and-restart fault recovery
"""

from .anasazi import (EigenResult, inverse_iteration, lanczos, lobpcg,
                      power_method)
from .direct import (SOLVER_NAMES, DenseLAPACK, DirectSolver, SparseLU,
                     create_solver)
from .ifpack import (SOR, AdditiveSchwarz, Chebyshev, GaussSeidel, ILU0,
                     ILUT, Jacobi, Preconditioner, SymmetricGaussSeidel,
                     create_preconditioner)
from .komplex import (complex_to_real_maps, komplex_system,
                      split_komplex_solution)
from .krylov import (AztecOO, BlockSolverResult, SolverResult, bicgstab,
                     block_cg, cg, gmres, minres, tfqmr)
from .ml import Level, MLPreconditioner, smoothed_aggregation_hierarchy
from .nox import JacobianFreeOperator, NewtonSolver, NonlinearResult
from .resilient import (IterateCheckpoint, ResilientResult,
                        resilient_newton, resilient_solve)

__all__ = [
    "cg", "gmres", "bicgstab", "minres", "tfqmr", "block_cg",
    "BlockSolverResult", "AztecOO", "SolverResult",
    "Jacobi", "GaussSeidel", "SymmetricGaussSeidel", "SOR", "Chebyshev",
    "ILU0", "ILUT", "AdditiveSchwarz", "Preconditioner",
    "create_preconditioner",
    "DirectSolver", "SparseLU", "DenseLAPACK", "create_solver",
    "SOLVER_NAMES",
    "MLPreconditioner", "smoothed_aggregation_hierarchy", "Level",
    "power_method", "inverse_iteration", "lanczos", "lobpcg", "EigenResult",
    "NewtonSolver", "NonlinearResult", "JacobianFreeOperator",
    "komplex_system", "split_komplex_solution", "complex_to_real_maps",
    "resilient_solve", "resilient_newton", "ResilientResult",
    "IterateCheckpoint",
]
