"""Nonlinear solvers (the NOX package equivalent).

Newton's method over distributed vectors, with

- an explicit-Jacobian path (the user supplies a CrsMatrix-valued
  ``jacobian(x)``),
- a Jacobian-free Newton-Krylov path (directional finite differences wrap
  the residual as a matrix-free Operator),
- line searches: full step, backtracking (Armijo), quadratic interpolation,
- inexact forcing terms (Eisenstat-Walker choice 2),

mirroring the NOX status-test/solver split: :class:`NewtonSolver` is
configured with a ParameterList and reports a structured result.

This is also the paper's flagship pipeline component: in the Discussion
use case, a PyTrilinos nonlinear solver "calls back to Python to evaluate
a model" -- the ``residual`` callable here -- which Seamless can then
compile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..teuchos import ParameterList
from ..tpetra import LinearOperator, Operator, Vector
from ..trace import TRACER as _TR
from .krylov import gmres

# trial residual norms at or above this are rejected before they are
# squared (model merit functions use ||F||^2; sqrt(float64 max) ~ 1.3e154)
_HUGE_FNORM = 1e150

__all__ = ["NonlinearResult", "JacobianFreeOperator", "NewtonSolver"]

ResidualFn = Callable[[Vector], Vector]


@dataclass
class NonlinearResult:
    x: Vector
    converged: bool
    iterations: int
    residual_norm: float
    history: List[float] = field(default_factory=list)
    linear_iterations: int = 0
    message: str = ""

    def __repr__(self):
        state = "converged" if self.converged else "NOT converged"
        return (f"NonlinearResult({state} in {self.iterations} Newton its, "
                f"||F||={self.residual_norm:.3e}, "
                f"{self.linear_iterations} linear its)")


class JacobianFreeOperator(Operator):
    """Matrix-free J(x) v by directional finite differences:

        J(x) v ~= (F(x + eps v) - F(x)) / eps,
        eps = sqrt(machine_eps) * (1 + ||x||) / ||v||
    """

    def __init__(self, residual: ResidualFn, x: Vector, fx: Vector):
        self.residual = residual
        self.x = x
        self.fx = fx
        self._sqrt_eps = float(np.sqrt(np.finfo(np.float64).eps))

    def domain_map(self):
        return self.x.map

    def range_map(self):
        return self.fx.map

    def apply(self, v: Vector, y: Vector, trans: bool = False) -> None:
        if trans:
            raise NotImplementedError("JFNK operator has no transpose")
        vnorm = v.norm2()
        if vnorm == 0:
            y.putScalar(0.0)
            return
        eps = self._sqrt_eps * (1.0 + self.x.norm2()) / vnorm
        xp = self.x.copy()
        xp.update(eps, v, 1.0)
        fp = self.residual(xp)
        y.local[...] = (fp.local - self.fx.local) / eps


class NewtonSolver:
    """Newton / Newton-Krylov driver.

    Parameters (ParameterList):

    - ``"Nonlinear Tolerance"`` (1e-8): stop when ||F|| / ||F0|| or ||F||
      falls below it
    - ``"Max Nonlinear Iterations"`` (50)
    - ``"Line Search"``: ``"Full Step"``, ``"Backtrack"``, ``"Quadratic"``
    - ``"Forcing Term"``: ``"Constant"`` or ``"Eisenstat-Walker"``
    - ``"Linear Tolerance"`` (1e-4): (starting) forcing term
    - ``"Max Linear Iterations"`` (200)
    """

    def __init__(self, residual: ResidualFn,
                 jacobian: Optional[Callable[[Vector], Operator]] = None,
                 prec_factory: Optional[Callable[[Vector], Operator]] = None,
                 params: Optional[ParameterList] = None):
        self.residual = residual
        self.jacobian = jacobian
        self.prec_factory = prec_factory
        self.params = params if params is not None else ParameterList("NOX")

    def solve(self, x0: Vector) -> NonlinearResult:
        strategy = str(self.params.get("Strategy", "Line Search"))
        if strategy.strip().lower().startswith("trust"):
            return self._solve_trust_region(x0)
        tol = float(self.params.get("Nonlinear Tolerance", 1e-8))
        maxiter = int(self.params.get("Max Nonlinear Iterations", 50))
        line_search = str(self.params.get("Line Search", "Backtrack"))
        forcing = str(self.params.get("Forcing Term", "Eisenstat-Walker"))
        eta = float(self.params.get("Linear Tolerance", 1e-4))
        lin_maxiter = int(self.params.get("Max Linear Iterations", 200))

        x = x0.copy()
        fx = self.residual(x)
        fnorm = fx.norm2()
        if not np.isfinite(fnorm):
            return NonlinearResult(x, False, 0, fnorm, [fnorm], 0,
                                   "non-finite initial residual")
        f0 = fnorm or 1.0
        history = [fnorm]
        lin_total = 0
        fnorm_old = fnorm
        eta_old = eta
        for k in range(1, maxiter + 1):
            t0 = _TR.now() if _TR.enabled else 0.0
            if fnorm <= tol * f0 or fnorm <= tol:
                return NonlinearResult(x, True, k - 1, fnorm, history,
                                       lin_total)
            # linear model: J dx = -F
            if self.jacobian is not None:
                J = self.jacobian(x)
            else:
                J = JacobianFreeOperator(self.residual, x, fx)
            prec = self.prec_factory(x) if self.prec_factory else None
            rhs = -fx
            if forcing.lower().startswith("eisenstat") and k > 1:
                # Eisenstat-Walker choice 2
                gamma, alpha = 0.9, 2.0
                eta_new = gamma * (fnorm / fnorm_old) ** alpha
                safeguard = gamma * eta_old ** alpha
                if safeguard > 0.1:
                    eta_new = max(eta_new, safeguard)
                eta = min(max(eta_new, 1e-8), 0.9)
            lin = gmres(J, rhs, prec=prec, tol=eta, maxiter=lin_maxiter,
                        restart=min(50, lin_maxiter))
            lin_total += lin.iterations
            dx = lin.x
            # line search
            lam, fx_new, fnorm_new = self._line_search(
                line_search, x, dx, fx, fnorm)
            if lam == 0.0:
                return NonlinearResult(x, False, k, fnorm, history,
                                       lin_total, "line search failed")
            if not np.isfinite(fnorm_new):
                return NonlinearResult(x, False, k, fnorm, history,
                                       lin_total, "non-finite residual")
            x.update(lam, dx, 1.0)
            fx = fx_new
            fnorm_old, fnorm = fnorm, fnorm_new
            eta_old = eta
            history.append(fnorm)
            if _TR.enabled:
                _TR.complete("solver.nox", "newton.iter", t0, k=k,
                             fnorm=float(fnorm), lam=float(lam))
        converged = fnorm <= tol * f0 or fnorm <= tol
        return NonlinearResult(x, converged, maxiter, fnorm, history,
                               lin_total,
                               "" if converged else "max iterations reached")

    def _solve_trust_region(self, x0: Vector) -> NonlinearResult:
        """Dogleg trust region (NOX's TrustRegionBased solver).

        Needs the analytic Jacobian (the Cauchy step uses J^T F, which the
        matrix-free operator cannot provide).  The step interpolates
        between the steepest-descent (Cauchy) point and the Newton point,
        clipped to the trust radius; the radius adapts to the ratio of
        actual to predicted reduction.
        """
        if self.jacobian is None:
            raise ValueError("the trust-region strategy needs an explicit "
                             "jacobian(x) callable")
        tol = float(self.params.get("Nonlinear Tolerance", 1e-8))
        maxiter = int(self.params.get("Max Nonlinear Iterations", 50))
        lin_maxiter = int(self.params.get("Max Linear Iterations", 200))
        delta = float(self.params.get("Initial Radius", 1.0))
        max_delta = float(self.params.get("Max Radius", 1.0e6))
        eta = 0.1    # acceptance threshold on the reduction ratio

        x = x0.copy()
        fx = self.residual(x)
        fnorm = fx.norm2()
        f0 = fnorm or 1.0
        history = [fnorm]
        lin_total = 0
        for k in range(1, maxiter + 1):
            t0 = _TR.now() if _TR.enabled else 0.0
            if fnorm <= tol * f0 or fnorm <= tol:
                return NonlinearResult(x, True, k - 1, fnorm, history,
                                       lin_total)
            J = self.jacobian(x)
            # gradient of (1/2)||F||^2: g = J^T F
            g = Vector(x.map, dtype=x.dtype)
            J.apply(fx, g, trans=True)
            # Newton step
            rhs = -fx
            lin = gmres(J, rhs, tol=1e-6, maxiter=lin_maxiter,
                        restart=min(50, lin_maxiter))
            lin_total += lin.iterations
            s_newton = lin.x
            # Cauchy step: -(g'g / (Jg)'(Jg)) g
            jg = Vector(fx.map, dtype=x.dtype)
            J.apply(g, jg)
            gg = g.dot(g)
            jg2 = jg.dot(jg)
            accepted = False
            for _shrink in range(30):
                s = self._dogleg_step(s_newton, g, gg, jg2, delta)
                xt = x.copy()
                xt.update(1.0, s, 1.0)
                ft = self.residual(xt)
                fn = ft.norm2()
                if not np.isfinite(fn) or fn >= _HUGE_FNORM:
                    # trial step left the basin (overflow/NaN residual):
                    # reject without squaring it and shrink the radius
                    delta *= 0.5
                    if delta < 1e-14:
                        break
                    continue
                # predicted reduction from the linear model
                js = Vector(fx.map, dtype=x.dtype)
                J.apply(s, js)
                lin_res = fx.copy()
                lin_res.update(1.0, js, 1.0)
                pred = fnorm ** 2 - lin_res.norm2() ** 2
                actual = fnorm ** 2 - fn ** 2
                rho = actual / pred if pred > 0 else -1.0
                if rho >= eta:
                    accepted = True
                    if rho > 0.75 and abs(s.norm2() - delta) < 1e-12:
                        delta = min(2.0 * delta, max_delta)
                    elif rho < 0.25:
                        delta *= 0.5
                    break
                delta *= 0.5
                if delta < 1e-14:
                    break
            if not accepted:
                return NonlinearResult(x, False, k, fnorm, history,
                                       lin_total,
                                       "trust region collapsed")
            x = xt
            fx = ft
            fnorm = fn
            history.append(fnorm)
            if _TR.enabled:
                _TR.complete("solver.nox", "newton.iter", t0, k=k,
                             fnorm=float(fnorm), strategy="trust-region")
        converged = fnorm <= tol * f0 or fnorm <= tol
        return NonlinearResult(x, converged, maxiter, fnorm, history,
                               lin_total,
                               "" if converged else "max iterations reached")

    @staticmethod
    def _dogleg_step(s_newton: Vector, g: Vector, gg: float, jg2: float,
                     delta: float) -> Vector:
        """The dogleg path clipped to radius *delta*."""
        sn_norm = s_newton.norm2()
        if sn_norm <= delta:
            return s_newton.copy()
        # Cauchy point along -g
        if jg2 <= 0:
            s = g.copy()
            s.scale(-delta / (g.norm2() or 1.0))
            return s
        tau_c = gg / jg2
        s_cauchy = g.copy()
        s_cauchy.scale(-tau_c)
        sc_norm = s_cauchy.norm2()
        if sc_norm >= delta:
            s = g.copy()
            s.scale(-delta / (g.norm2() or 1.0))
            return s
        # walk from the Cauchy point toward the Newton point to the radius
        d = s_newton.copy()
        d.update(-1.0, s_cauchy, 1.0)
        a = d.dot(d)
        b = 2.0 * s_cauchy.dot(d)
        c = sc_norm ** 2 - delta ** 2
        disc = max(b * b - 4 * a * c, 0.0)
        tau = (-b + np.sqrt(disc)) / (2 * a) if a > 0 else 0.0
        s = s_cauchy.copy()
        s.update(tau, d, 1.0)
        return s

    def _line_search(self, kind: str, x: Vector, dx: Vector, fx: Vector,
                     fnorm: float):
        kind = kind.strip().lower()
        if kind in ("full step", "full", "none"):
            xt = x.copy()
            xt.update(1.0, dx, 1.0)
            ft = self.residual(xt)
            return 1.0, ft, ft.norm2()
        alpha = 1e-4
        lam = 1.0
        for _try in range(12):
            xt = x.copy()
            xt.update(lam, dx, 1.0)
            ft = self.residual(xt)
            fn = ft.norm2()
            if not np.isfinite(fn) or fn >= _HUGE_FNORM:
                # non-finite (or about-to-overflow) trial residual: the
                # step is far too long; halve and retry
                lam *= 0.5
                continue
            if fn <= (1.0 - alpha * lam) * fnorm:
                return lam, ft, fn
            if kind.startswith("quad"):
                # quadratic interpolation of phi(l) = ||F(x + l dx)||^2
                phi0 = fnorm ** 2
                phil = fn ** 2
                denom = phil - phi0
                lam_new = (phi0 * lam ** 2) / denom if denom > 0 else lam / 2
                lam = float(np.clip(lam_new, 0.1 * lam, 0.5 * lam))
            else:
                lam *= 0.5
        return 0.0, fx, fnorm
