"""Fault-resilient solver drivers: shrink-and-restart with iterate
checkpoints (the solver leg of the ``repro.recover`` subsystem).

The Krylov and Newton solvers themselves are fault-oblivious -- a dead
rank surfaces inside a dot product or SpMV halo exchange as a typed
:class:`~repro.mpi.errors.RankFailure` (or, once some survivor has
revoked the communicator, :class:`~repro.mpi.errors.CommRevokedError`).
This module supplies the recovery loop around them:

1. Iterate in *chunks* of ``ckpt_every`` iterations; after each chunk
   every rank checkpoints its slice of the iterate in memory and mirrors
   it onto its ring neighbour (SCR's "partner" scheme -- rank ``r``'s
   copy lives on ``(r + 1) % size``).
2. On a fault, every survivor revokes the communicator, joins the
   ULFM-style :meth:`~repro.mpi.comm.Comm.shrink` agreement, and the
   group reassembles the newest globally consistent iterate from
   surviving own/partner pieces (two checkpoint versions are retained so
   a crash *during* the checkpoint exchange still leaves a complete
   older version).
3. The caller's ``make_system(comm)`` factory rebuilds the operator and
   right-hand side on the shrunk communicator, the restored iterate is
   scattered onto the new row map, and iteration resumes.

Only when a rank *and* its ring partner die between two checkpoints is
state genuinely lost; that raises ``RuntimeError("unrecoverable: ...")``.

The restart is a warm restart, not a bit-for-bit continuation: restarted
CG rebuilds its Krylov space from the restored iterate, so iteration
counts may grow slightly compared to a fault-free run while the final
answer still meets the requested tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..metrics import REGISTRY as _MX
from ..mpi import Intracomm
from ..mpi.errors import CommRevokedError, RankFailure
from ..teuchos import ParameterList
from ..tpetra import Operator, Vector
from ..trace import TRACER as _TR
from .krylov import SolverResult, bicgstab, cg, gmres, minres
from .nox import NewtonSolver, NonlinearResult

__all__ = ["ResilientResult", "IterateCheckpoint", "resilient_solve",
           "resilient_newton"]

# reserved tag for the ring-partner checkpoint exchange; solver dots and
# halo exchanges use collective contexts, so plain p2p on this tag is
# never confused with solver traffic
_CKPT_TAG = 7770

_METHODS = {"cg": cg, "gmres": gmres, "bicgstab": bicgstab,
            "minres": minres}

MakeSystem = Callable[[Intracomm], Tuple[Operator, Vector]]


@dataclass
class ResilientResult:
    """Outcome of a resilient solve: a :class:`SolverResult` plus the
    recovery trail."""

    x: Vector
    converged: bool
    iterations: int
    residual_norm: float
    restarts: int = 0
    ranks_lost: int = 0
    history: List[float] = field(default_factory=list)
    message: str = ""

    def __repr__(self):
        state = "converged" if self.converged else "NOT converged"
        return (f"ResilientResult({state} in {self.iterations} its, "
                f"||r||={self.residual_norm:.3e}, "
                f"{self.restarts} restart(s), "
                f"{self.ranks_lost} rank(s) lost)")


class IterateCheckpoint:
    """In-memory ring-partner checkpoints of a distributed iterate.

    Keeps the last two versions of this rank's own piece and of the left
    neighbour's mirrored piece.  Version numbers advance globally (every
    rank checkpoints the same chunk boundaries), so after a crash the
    survivors can agree on the newest version with full coverage.
    """

    KEEP = 2

    def __init__(self) -> None:
        self.version = 0
        # version -> (gids, values) for this rank's slice
        self.own: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        # version -> (source_rank, gids, values) mirrored from the left
        # ring neighbour; source_rank is in the *current* comm numbering
        self.held: Dict[int, Tuple[int, np.ndarray, np.ndarray]] = {}

    def save(self, comm: Intracomm, x: Vector) -> None:
        """Checkpoint ``x``: stash the local slice, mirror it rightward."""
        self.version += 1
        gids = np.array(x.map.my_gids, dtype=np.int64, copy=True)
        vals = np.array(x.local_view, copy=True)
        self.own[self.version] = (gids, vals)
        if comm.size > 1:
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            # eager buffered send: posting first cannot deadlock the ring
            comm.send((self.version, gids, vals), dest=right, tag=_CKPT_TAG)
            ver, lgids, lvals = comm.recv(source=left, tag=_CKPT_TAG)
            self.held[ver] = (left, lgids, lvals)
        if _MX.enabled:
            _MX.inc("recover.iterate_ckpts")
            _MX.inc("recover.iterate_ckpt_bytes",
                    int(gids.nbytes + vals.nbytes))
        self._prune()

    def _prune(self) -> None:
        for store in (self.own, self.held):
            for v in sorted(store)[:-self.KEEP]:
                del store[v]

    def pieces_for(self, dead: List[int]):
        """The (version, gids, values) pieces this survivor contributes:
        its own slices, plus mirrored slices whose owner died."""
        out = [(v, g, vals) for v, (g, vals) in self.own.items()]
        out.extend((v, g, vals) for v, (src, g, vals) in self.held.items()
                   if src in dead)
        return out


def _restore_global(new_comm: Intracomm, ckpt: IterateCheckpoint,
                    dead: List[int], n: int) -> np.ndarray:
    """Reassemble the newest globally complete iterate after a shrink.

    Every survivor contributes its pieces; the newest version whose
    pieces cover all ``n`` entries wins.  Raises ``RuntimeError`` when no
    version is complete (a rank and its partner both died)."""
    gathered = new_comm.allgather(ckpt.pieces_for(dead))
    flat = [p for plist in gathered for p in plist]
    versions = sorted({v for v, _g, _x in flat}, reverse=True)
    for ver in versions:
        covered = np.zeros(n, dtype=bool)
        xg: Optional[np.ndarray] = None
        for v, gids, vals in flat:
            if v != ver:
                continue
            if xg is None:
                xg = np.zeros(n, dtype=vals.dtype)
            xg[gids] = vals
            covered[gids] = True
        if xg is not None and covered.all():
            return xg
    raise RuntimeError(
        "unrecoverable: an iterate block and its ring-partner copy were "
        "both lost between checkpoints")


def _shrink_and_restore(comm: Intracomm, ckpt: Optional[IterateCheckpoint],
                        n: Optional[int]):
    """Common fault path: revoke, shrink, reassemble the iterate.

    Returns ``(new_comm, ranks_lost, x_global_or_None)``."""
    if _MX.enabled:
        _MX.inc("recover.solver_detections")
    t0 = _TR.now() if _TR.enabled else 0.0
    old_members = list(comm._world_ranks)
    comm.revoke()
    new_comm = comm.shrink()
    survivors = set(new_comm._world_ranks)
    dead = [r for r, wr in enumerate(old_members) if wr not in survivors]
    x_global = None
    if ckpt is not None and n is not None:
        x_global = _restore_global(new_comm, ckpt, dead, n)
    if _MX.enabled:
        _MX.inc("recover.solver_restarts")
    if _TR.enabled:
        _TR.complete("recover", "solver.shrink+restore", t0,
                     lost=len(dead), survivors=new_comm.size)
    return new_comm, len(dead), x_global


def resilient_solve(comm: Intracomm, make_system: MakeSystem,
                    method: str = "cg", tol: float = 1e-8,
                    maxiter: int = 1000, ckpt_every: int = 10,
                    prec_factory: Optional[Callable[[Operator],
                                                    Operator]] = None,
                    **solver_kw) -> ResilientResult:
    """Solve ``A x = b`` surviving rank failures (run under SPMD).

    ``make_system(comm)`` must build ``(op, b)`` for *any* communicator
    it is handed -- it is called again on the shrunk communicator after
    every recovery.  ``method`` is one of ``cg``, ``gmres``, ``bicgstab``
    or ``minres``; extra keyword arguments (``restart=``, ...) pass
    through to it.  ``prec_factory(op)``, when given, rebuilds the
    preconditioner alongside the system.

    Collective: every (surviving) rank must call with the same arguments.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; "
                         f"choose from {sorted(_METHODS)}")
    solver = _METHODS[method]
    restarts = 0
    ranks_lost = 0
    total_iters = 0
    history: List[float] = []
    x_global: Optional[np.ndarray] = None
    ckpt: Optional[IterateCheckpoint] = None
    n: Optional[int] = None
    while True:
        try:
            op, b = make_system(comm)
            n = op.domain_map().num_global
            x = Vector(op.domain_map(), dtype=b.dtype)
            if x_global is not None:
                x.local_view = x_global[x.map.my_gids]
            prec = prec_factory(op) if prec_factory is not None else None
            ckpt = IterateCheckpoint()
            ckpt.save(comm, x)
            while True:
                budget = maxiter - total_iters
                if budget <= 0:
                    last = history[-1] if history else float("inf")
                    return ResilientResult(x, False, total_iters, last,
                                           restarts, ranks_lost, history,
                                           "maximum iterations reached")
                res: SolverResult = solver(op, b, x=x, prec=prec, tol=tol,
                                           maxiter=min(ckpt_every, budget),
                                           **solver_kw)
                x = res.x
                total_iters += res.iterations
                # chunk histories overlap by one entry (the warm start's
                # residual closes one chunk and opens the next)
                history.extend(res.history[1:] if history else res.history)
                if res.converged:
                    return ResilientResult(x, True, total_iters,
                                           res.residual_norm, restarts,
                                           ranks_lost, history, res.message)
                if res.message and "maximum iterations" not in res.message:
                    # breakdown etc.: restarting will not help
                    return ResilientResult(x, False, total_iters,
                                           res.residual_norm, restarts,
                                           ranks_lost, history, res.message)
                ckpt.save(comm, x)
        except (RankFailure, CommRevokedError):
            comm, lost, x_global = _shrink_and_restore(comm, ckpt, n)
            ranks_lost += lost
            restarts += 1


def resilient_newton(comm: Intracomm,
                     make_problem: Callable[[Intracomm],
                                            Tuple[Callable, Vector]],
                     tol: float = 1e-8, maxiter: int = 50,
                     ckpt_every: int = 5,
                     params: Optional[ParameterList] = None
                     ) -> NonlinearResult:
    """Newton / JFNK with the same shrink-and-restart recovery loop.

    ``make_problem(comm)`` builds ``(residual_fn, x0)`` on any
    communicator.  The Newton iteration runs in chunks of ``ckpt_every``
    steps; convergence is judged against the *initial* residual norm of
    the very first chunk, so restarts do not move the goalposts.
    """
    restarts = 0
    total_iters = 0
    lin_total = 0
    history: List[float] = []
    x_global: Optional[np.ndarray] = None
    abs_tol: Optional[float] = None
    ckpt: Optional[IterateCheckpoint] = None
    n: Optional[int] = None
    while True:
        try:
            residual, x = make_problem(comm)
            n = x.map.num_global
            if x_global is not None:
                x = x.copy()
                x.local_view = x_global[x.map.my_gids]
            ckpt = IterateCheckpoint()
            ckpt.save(comm, x)
            while True:
                p = ParameterList("resilient-newton")
                if params is not None:
                    for key in params.keys():
                        p.set(key, params.get(key))
                budget = maxiter - total_iters
                p.set("Max Nonlinear Iterations",
                      max(1, min(ckpt_every, budget)))
                if abs_tol is not None:
                    # absolute target carried across warm restarts
                    p.set("Nonlinear Tolerance", abs_tol)
                else:
                    p.set("Nonlinear Tolerance", tol)
                nox = NewtonSolver(residual, params=p)
                res = nox.solve(x)
                x = res.x
                total_iters += res.iterations
                lin_total += res.linear_iterations
                history.extend(res.history[1:] if history else res.history)
                if abs_tol is None and res.history:
                    abs_tol = tol * (res.history[0] or 1.0)
                if res.converged:
                    return NonlinearResult(x, True, total_iters,
                                           res.residual_norm, history,
                                           lin_total, res.message)
                if budget - res.iterations <= 0:
                    return NonlinearResult(x, False, total_iters,
                                           res.residual_norm, history,
                                           lin_total,
                                           "max iterations reached")
                if res.message and "max iterations" not in res.message:
                    return NonlinearResult(x, False, total_iters,
                                           res.residual_norm, history,
                                           lin_total, res.message)
                ckpt.save(comm, x)
        except (RankFailure, CommRevokedError):
            comm, _lost, x_global = _shrink_and_restore(comm, ckpt, n)
            restarts += 1
