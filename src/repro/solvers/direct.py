"""Direct sparse solvers behind a uniform interface (Amesos equivalent).

Amesos gives Trilinos "a uniform interface to third-party direct linear
solvers" (paper Table I).  The third parties here are SciPy's SuperLU
(sparse LU), UMFPACK-style sparse LU via the same engine with different
options, and dense LAPACK -- selected by name through :func:`create_solver`
exactly like ``Amesos::Factory``.

The distributed strategy is gather-solve-scatter: the matrix and right-hand
side are gathered to the root rank, factored and solved there, and the
solution scattered back.  That is precisely what Amesos does for serial
third-party solvers (KLU, LAPACK) applied to distributed Epetra matrices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg as sla
import scipy.sparse.linalg as spla

from ..teuchos import ParameterList
from ..tpetra import CrsMatrix, Operator, Vector

__all__ = ["DirectSolver", "SparseLU", "DenseLAPACK", "create_solver",
           "SOLVER_NAMES"]

SOLVER_NAMES = ("KLU", "SuperLU", "UMFPACK", "LAPACK")


class DirectSolver(Operator):
    """Base: factor once (symbolic+numeric), solve many.

    Also usable as an :class:`Operator` (``apply`` = solve), so an exact
    coarse-grid solve can serve as a preconditioner.
    """

    def __init__(self, A: CrsMatrix):
        if not A.is_fill_complete:
            raise ValueError("matrix must be fill-complete")
        if A.num_global_rows != A.num_global_cols:
            raise ValueError("direct solvers need a square matrix")
        self.A = A
        self._factored = False

    def domain_map(self):
        return self.A.range_map()

    def range_map(self):
        return self.A.domain_map()

    def symbolic_factorization(self) -> "DirectSolver":
        """Structure-only phase (kept for interface fidelity)."""
        return self

    def numeric_factorization(self) -> "DirectSolver":
        raise NotImplementedError

    def _solve_root(self, rhs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def solve(self, b: Vector, x: Optional[Vector] = None) -> Vector:
        """Solve A x = b (collective: gather, root solve, scatter)."""
        if not self._factored:
            self.numeric_factorization()
        comm = self.A.row_map.comm
        b_global = b.gather(root=0)
        if comm.rank == 0:
            x_global = self._solve_root(b_global[:, 0])
        else:
            x_global = None
        # every rank knows the global solve size, so the broadcast can
        # pick the large-message algorithm when the vector warrants it
        x_global = comm.bcast(x_global, root=0,
                              size_hint=8 * self.A.domain_map().num_global)
        if x is None:
            x = Vector(self.A.domain_map(), dtype=b.dtype)
        x.local_view[...] = x_global[x.map.my_gids]
        return x

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        if trans:
            raise NotImplementedError("transpose solve not supported")
        self.solve(x, y)


class SparseLU(DirectSolver):
    """Sparse LU via SuperLU (the stand-in for KLU/UMFPACK)."""

    def __init__(self, A: CrsMatrix, options: Optional[dict] = None):
        super().__init__(A)
        self.options = options or {}
        self._lu = None

    def numeric_factorization(self) -> "SparseLU":
        A_global = self.A.to_scipy_global(root=0)
        if self.A.row_map.comm.rank == 0:
            self._lu = spla.splu(A_global.tocsc(), **self.options)
        self._factored = True
        return self

    def _solve_root(self, rhs: np.ndarray) -> np.ndarray:
        return self._lu.solve(rhs)


class DenseLAPACK(DirectSolver):
    """Dense LU via LAPACK getrf/getrs, for small or nearly-dense systems."""

    def __init__(self, A: CrsMatrix):
        super().__init__(A)
        self._lu = None
        self._piv = None

    def numeric_factorization(self) -> "DenseLAPACK":
        A_global = self.A.to_scipy_global(root=0)
        if self.A.row_map.comm.rank == 0:
            self._lu, self._piv = sla.lu_factor(A_global.toarray())
        self._factored = True
        return self

    def _solve_root(self, rhs: np.ndarray) -> np.ndarray:
        return sla.lu_solve((self._lu, self._piv), rhs)


def create_solver(name: str, A: CrsMatrix,
                  params: Optional[ParameterList] = None) -> DirectSolver:
    """Amesos::Factory equivalent: pick a direct solver by name.

    ``KLU``, ``SuperLU`` and ``UMFPACK`` all map onto sparse LU (with
    UMFPACK requesting its fill-reducing column ordering); ``LAPACK`` is
    the dense path.
    """
    key = name.strip().upper()
    if key in ("KLU", "SUPERLU"):
        return SparseLU(A)
    if key == "UMFPACK":
        return SparseLU(A, options={"permc_spec": "COLAMD"})
    if key == "LAPACK":
        return DenseLAPACK(A)
    raise ValueError(f"unknown direct solver {name!r}; choose from "
                     f"{SOLVER_NAMES}")
