"""Complex linear systems via real equivalent forms (Komplex equivalent).

Trilinos' Komplex solves (A + iB)(x + iy) = (b + ic) by assembling the
2x2-block real system

    [ A  -B ] [x]   [b]
    [ B   A ] [y] = [c]

("K1" formulation) so that all-real solvers and preconditioners apply.
The interleaved variant (real/imag per unknown adjacent) is also provided
because it preserves bandedness for banded A, B.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tpetra import CrsMatrix, Map, Vector

__all__ = ["komplex_system", "split_komplex_solution", "complex_to_real_maps"]


def complex_to_real_maps(map_: Map, interleaved: bool = False) -> Map:
    """The doubled map hosting the real equivalent system."""
    if interleaved:
        gids = np.empty(2 * map_.num_my_elements, dtype=np.int64)
        gids[0::2] = 2 * map_.my_gids
        gids[1::2] = 2 * map_.my_gids + 1
        return Map(2 * map_.num_global, gids, map_.comm, kind="arbitrary")
    gids = np.concatenate([map_.my_gids,
                           map_.my_gids + map_.num_global])
    return Map(2 * map_.num_global, gids, map_.comm, kind="arbitrary")


def komplex_system(A_complex: CrsMatrix, b_complex: Vector,
                   interleaved: bool = False
                   ) -> Tuple[CrsMatrix, Vector]:
    """Build the real equivalent (matrix, rhs) of a complex system.

    ``A_complex`` must be a fill-complete CrsMatrix with complex dtype;
    ``b_complex`` a complex Vector on its row map.
    """
    if not np.issubdtype(A_complex.dtype, np.complexfloating):
        raise TypeError("komplex_system expects a complex matrix")
    map_ = A_complex.row_map
    n = map_.num_global
    rmap = complex_to_real_maps(map_, interleaved)
    K = CrsMatrix(rmap, dtype=np.float64)
    coo = A_complex.local_matrix.tocoo()
    for i, j, v in zip(coo.row, coo.col, coo.data):
        gr = int(map_.my_gids[int(i)])
        gc = int(A_complex.col_map_gids[int(j)])
        a, b = float(v.real), float(v.imag)
        if interleaved:
            r_re, r_im = 2 * gr, 2 * gr + 1
            c_re, c_im = 2 * gc, 2 * gc + 1
        else:
            r_re, r_im = gr, gr + n
            c_re, c_im = gc, gc + n
        # [a -b; b a] block
        if a != 0.0:
            K.insert_global_values(r_re, [c_re], [a])
            K.insert_global_values(r_im, [c_im], [a])
        if b != 0.0:
            K.insert_global_values(r_re, [c_im], [-b])
            K.insert_global_values(r_im, [c_re], [b])
    K.fillComplete()
    rhs = Vector(rmap, dtype=np.float64)
    nloc = map_.num_my_elements
    if interleaved:
        rhs.local_view[0::2] = b_complex.local_view.real
        rhs.local_view[1::2] = b_complex.local_view.imag
    else:
        rhs.local_view[:nloc] = b_complex.local_view.real
        rhs.local_view[nloc:] = b_complex.local_view.imag
    return K, rhs


def split_komplex_solution(x_real: Vector, map_: Map,
                           interleaved: bool = False) -> Vector:
    """Recover the complex solution from the real equivalent solution."""
    out = Vector(map_, dtype=np.complex128)
    nloc = map_.num_my_elements
    if interleaved:
        out.local_view[...] = x_real.local_view[0::2] + \
            1j * x_real.local_view[1::2]
    else:
        out.local_view[...] = x_real.local_view[:nloc] + \
            1j * x_real.local_view[nloc:]
    return out
