"""Eigensolvers for distributed operators (the Anasazi package equivalent).

Power iteration, (shift-and-)inverse iteration, Lanczos with full
reorthogonalization for symmetric operators, and LOBPCG with optional
preconditioning -- the block methods Anasazi is known for, operating purely
through the Operator/Vector protocol so matrices and matrix-free operators
both work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..tpetra import CrsMatrix, MultiVector, Operator, Vector

__all__ = ["EigenResult", "power_method", "inverse_iteration", "lanczos",
           "lobpcg"]


@dataclass
class EigenResult:
    """Eigenvalues (ascending unless noted) and their vectors."""

    eigenvalues: np.ndarray
    eigenvectors: List[Vector]
    iterations: int
    converged: bool
    history: List[float] = field(default_factory=list)


def power_method(op: Operator, tol: float = 1e-8, maxiter: int = 1000,
                 seed: int = 3) -> EigenResult:
    """Dominant eigenpair by power iteration."""
    v = Vector(op.domain_map())
    v.randomize(seed=seed)
    v.scale(1.0 / v.norm2())
    w = Vector(op.range_map())
    lam_old = 0.0
    history = []
    for k in range(1, maxiter + 1):
        op.apply(v, w)
        lam = v.dot(w)  # Rayleigh quotient
        nrm = w.norm2()
        if nrm == 0:
            return EigenResult(np.array([0.0]), [v], k, True, history)
        w.scale(1.0 / nrm)
        v, w = w, v
        history.append(abs(lam - lam_old))
        if abs(lam - lam_old) <= tol * max(1.0, abs(lam)):
            return EigenResult(np.array([lam]), [v], k, True, history)
        lam_old = lam
    return EigenResult(np.array([lam_old]), [v], maxiter, False, history)


def inverse_iteration(A: CrsMatrix, shift: float = 0.0, tol: float = 1e-8,
                      maxiter: int = 200, seed: int = 5) -> EigenResult:
    """Eigenpair nearest *shift* via inverse iteration with a direct solve."""
    from .direct import SparseLU

    shifted = _shifted_matrix(A, -shift)
    lu = SparseLU(shifted).numeric_factorization()
    v = Vector(A.domain_map())
    v.randomize(seed=seed)
    v.scale(1.0 / v.norm2())
    w = Vector(A.domain_map())
    lam_old = None
    history = []
    for k in range(1, maxiter + 1):
        lu.solve(v, w)
        nrm = w.norm2()
        w.scale(1.0 / nrm)
        av = Vector(A.range_map())
        A.apply(w, av)
        lam = w.dot(av)
        history.append(abs(lam - lam_old) if lam_old is not None else np.inf)
        if lam_old is not None and \
                abs(lam - lam_old) <= tol * max(1.0, abs(lam)):
            return EigenResult(np.array([lam]), [w], k, True, history)
        lam_old = lam
        v.local[...] = w.local
    return EigenResult(np.array([lam_old]), [w], maxiter, False, history)


def _shifted_matrix(A: CrsMatrix, sigma: float) -> CrsMatrix:
    """A + sigma I as a new fill-complete matrix."""
    out = CrsMatrix(A.row_map, dtype=A.dtype)
    coo = A.local_matrix.tocoo()
    for i, j, v in zip(coo.row, coo.col, coo.data):
        out.insert_global_values(int(A.row_map.gid(int(i))),
                                 [int(A.col_map_gids[int(j)])], [v])
    for gid in A.row_map.my_gids:
        out.insert_global_values(int(gid), [int(gid)], [sigma])
    out.fillComplete(domain_map=A.domain_map(), range_map=A.range_map())
    return out


def lanczos(op: Operator, nev: int = 4, tol: float = 1e-8,
            max_krylov: int = 0, which: str = "SM",
            seed: int = 11) -> EigenResult:
    """Symmetric Lanczos with full reorthogonalization.

    ``which``: ``"SM"`` smallest eigenvalues, ``"LM"`` largest.  The Krylov
    dimension grows until the wanted Ritz values converge (residual bound
    ``beta * |last row of eigvec|``).
    """
    n = op.domain_map().num_global
    if max_krylov <= 0:
        max_krylov = min(n, max(4 * nev + 20, 40))
    q = Vector(op.domain_map())
    q.randomize(seed=seed)
    q.scale(1.0 / q.norm2())
    basis: List[Vector] = [q]
    alphas: List[float] = []
    betas: List[float] = []
    history = []
    w = Vector(op.range_map())
    for j in range(max_krylov):
        op.apply(basis[j], w)
        alpha = basis[j].dot(w)
        alphas.append(alpha)
        w.update(-alpha, basis[j], 1.0)
        if j > 0:
            w.update(-betas[-1], basis[j - 1], 1.0)
        # full reorthogonalization (twice is enough)
        for _pass in range(2):
            for v in basis:
                w.update(-v.dot(w), v, 1.0)
        beta = w.norm2()
        k = j + 1
        if k >= nev:
            T = np.diag(alphas) + np.diag(betas, 1) + np.diag(betas, -1)
            evals, evecs = np.linalg.eigh(T)
            idx = np.argsort(evals)
            if which.upper() == "LM":
                idx = idx[::-1]
            res = np.abs(beta * evecs[-1, idx[:nev]])
            history.append(float(res.max()))
            if np.all(res <= tol * np.maximum(1.0, np.abs(evals[idx[:nev]]))) \
                    or beta <= 1e-14 or k == n:
                vecs = _ritz_vectors(basis, evecs[:, idx[:nev]])
                order = np.argsort(evals[idx[:nev]])
                return EigenResult(np.sort(evals[idx[:nev]]),
                                   [vecs[i] for i in order], k, True,
                                   history)
        if beta <= 1e-14:
            break
        betas.append(beta)
        basis.append(w * (1.0 / beta))
        w = Vector(op.range_map())
    T = np.diag(alphas) + np.diag(betas[:len(alphas) - 1], 1) + \
        np.diag(betas[:len(alphas) - 1], -1)
    evals, evecs = np.linalg.eigh(T)
    idx = np.argsort(evals)
    if which.upper() == "LM":
        idx = idx[::-1]
    sel = idx[:nev]
    vecs = _ritz_vectors(basis, evecs[:, sel])
    order = np.argsort(evals[sel])
    return EigenResult(np.sort(evals[sel]), [vecs[i] for i in order],
                       len(alphas), False, history)


def _ritz_vectors(basis: List[Vector], coeffs: np.ndarray) -> List[Vector]:
    out = []
    for col in range(coeffs.shape[1]):
        v = Vector(basis[0].map, dtype=basis[0].dtype)
        for i in range(min(len(basis), coeffs.shape[0])):
            v.update(float(coeffs[i, col]), basis[i], 1.0)
        out.append(v)
    return out


def lobpcg(A: Operator, nev: int = 4, prec: Optional[Operator] = None,
           tol: float = 1e-6, maxiter: int = 200,
           seed: int = 13) -> EigenResult:
    """Locally optimal block preconditioned CG for the smallest eigenpairs
    of a symmetric positive definite operator."""
    map_ = A.domain_map()
    X = MultiVector(map_, nev)
    X.randomize(seed=seed)
    _orthonormalize(X)
    P: Optional[MultiVector] = None
    history = []
    lam = np.zeros(nev)
    for k in range(1, maxiter + 1):
        AX = _apply_block(A, X)
        lam = np.einsum("ij,ij->j", X.local, AX.local)
        lam = _allreduce_cols(X, lam)
        # residuals R = AX - X diag(lam)
        R = MultiVector(map_, nev)
        R.local[...] = AX.local - X.local * lam
        resnorm = np.sqrt(_allreduce_cols(
            X, np.einsum("ij,ij->j", R.local, R.local)))
        scale = np.maximum(1.0, np.abs(lam))
        history.append(float((resnorm / scale).max()))
        if history[-1] <= tol:
            return _lobpcg_result(X, lam, k, True, history)
        W = R if prec is None else _apply_block(prec, R)
        # Rayleigh-Ritz on span[X, W, P]
        blocks = [X, W] + ([P] if P is not None else [])
        S = _concat(blocks)
        _orthonormalize(S)
        AS = _apply_block(A, S)
        G = _block_inner(S, AS)
        evals, evecs = np.linalg.eigh(G)
        C = evecs[:, :nev]
        Xnew = _block_combine(S, C)
        # implicit P: the part of the new X outside the old X block
        P = _block_combine(S, _zero_top(C, nev))
        X = Xnew
        _orthonormalize(X)
    return _lobpcg_result(X, lam, maxiter, False, history)


def _apply_block(op: Operator, X: MultiVector) -> MultiVector:
    out = MultiVector(X.map, X.num_vectors, dtype=X.dtype)
    for j in range(X.num_vectors):
        xj = X.vector(j)
        yj = out.vector(j)
        op.apply(xj, yj)
    return out


def _allreduce_cols(mv: MultiVector, local: np.ndarray) -> np.ndarray:
    out = np.zeros_like(local)
    mv.comm.Allreduce(np.ascontiguousarray(local), out)
    return out


def _block_inner(A: MultiVector, B: MultiVector) -> np.ndarray:
    local = A.local.T @ B.local
    out = np.zeros_like(local)
    A.comm.Allreduce(np.ascontiguousarray(local), out)
    return out


def _orthonormalize(X: MultiVector) -> None:
    """In-place distributed Gram-Schmidt (two passes)."""
    for _pass in range(2):
        gram = _block_inner(X, X)
        # Cholesky-based orthonormalization
        try:
            L = np.linalg.cholesky(gram)
            X.local[...] = np.linalg.solve(L, X.local.T).T
        except np.linalg.LinAlgError:
            # fall back to column-by-column MGS
            for j in range(X.num_vectors):
                vj = X.vector(j)
                for i in range(j):
                    vi = X.vector(i)
                    vj.update(-vi.dot(vj), vi, 1.0)
                nrm = vj.norm2()
                if nrm > 0:
                    vj.scale(1.0 / nrm)


def _concat(blocks: List[MultiVector]) -> MultiVector:
    total = sum(b.num_vectors for b in blocks)
    out = MultiVector(blocks[0].map, total, dtype=blocks[0].dtype)
    col = 0
    for b in blocks:
        out.local[:, col:col + b.num_vectors] = b.local
        col += b.num_vectors
    return out


def _block_combine(S: MultiVector, C: np.ndarray) -> MultiVector:
    out = MultiVector(S.map, C.shape[1], dtype=S.dtype)
    out.local[...] = S.local @ C
    return out


def _zero_top(C: np.ndarray, nev: int) -> np.ndarray:
    out = C.copy()
    out[:nev, :] = 0.0
    return out


def _lobpcg_result(X: MultiVector, lam: np.ndarray, iters: int,
                   converged: bool, history: List[float]) -> EigenResult:
    order = np.argsort(lam)
    vecs = [X.vector(int(j)).copy() for j in order]
    return EigenResult(np.sort(lam), vecs, iters, converged, history)
