"""Distributed ufunc application and the communication-strategy chooser.

Paper section III-D: unary ufuncs parallelize trivially; binary ufuncs
parallelize trivially *when the argument arrays are conformable* (same
distribution).  Otherwise "a number of different options present
themselves, and ODIN will choose a strategy that will minimize
communication, while allowing the knowledgeable user to modify its behavior
via Python context managers".

Strategies considered for ``f(a, b)`` with non-conformable operands:

- ``"left"``   -- redistribute a onto b's distribution,
- ``"right"``  -- redistribute b onto a's distribution,
- ``"block"``  -- redistribute both onto a fresh balanced block layout.

The chooser prices each plan in *bytes actually moved* (computed exactly
from the distribution descriptors: an element moves iff its source and
destination worker differ) and picks the cheapest; :func:`strategy` pins a
choice for a ``with`` block.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Optional, Union

import numpy as np

from . import opcodes
from .array import DistArray
from .distribution import BlockDistribution, Distribution
from .worker import BINARY_UFUNCS, TERNARY_UFUNCS, UNARY_UFUNCS

__all__ = ["unary_ufunc", "binary_ufunc", "nary_ufunc", "strategy",
           "current_strategy", "redistribution_cost", "choose_strategy",
           "UNARY_NAMES", "BINARY_NAMES", "TERNARY_NAMES"]

UNARY_NAMES = sorted(UNARY_UFUNCS)
BINARY_NAMES = sorted(BINARY_UFUNCS)
TERNARY_NAMES = sorted(TERNARY_UFUNCS)

_strategy_tls = threading.local()


@contextmanager
def strategy(name: str):
    """Pin the redistribution strategy: "left", "right", "block" or "auto".

    ::

        with odin.strategy("right"):
            c = a * b        # b is moved onto a's distribution
    """
    if name not in ("left", "right", "block", "auto"):
        raise ValueError(f"unknown strategy {name!r}")
    prev = getattr(_strategy_tls, "name", "auto")
    _strategy_tls.name = name
    try:
        yield
    finally:
        _strategy_tls.name = prev


def current_strategy() -> str:
    return getattr(_strategy_tls, "name", "auto")


def redistribution_cost(src: Distribution, dst: Distribution) -> int:
    """Exact element count moved on the wire for src -> dst.

    An element travels iff its owner changes.  Ownership is separable per
    axis (every distribution here splits whole axes), so the elements
    worker w keeps form a rectangular tile: the per-axis intersection of
    w's source and destination holdings.  Computed on the driver from
    metadata only -- this is what lets the ODIN process plan without
    touching data.
    """
    if src.same_as(dst):
        return 0
    total = 1
    for s in src.global_shape:
        total *= s
    stay = 0
    for w in range(src.nworkers):
        cnt = 1
        for ax in range(src.ndim):
            mine = src.axis_indices(w, ax)
            theirs = dst.axis_indices(w, ax)
            if mine is None and theirs is None:
                cnt *= src.global_shape[ax]
            elif mine is None:
                cnt *= len(theirs)
            elif theirs is None:
                cnt *= len(mine)
            else:
                cnt *= len(np.intersect1d(mine, theirs,
                                          assume_unique=True))
            if cnt == 0:
                break
        stay += cnt
    return total - stay


def choose_strategy(da: Distribution, db: Distribution):
    """Return (name, dist_a_target, dist_b_target) minimizing bytes moved."""
    pinned = current_strategy()
    block = BlockDistribution(da.global_shape, da.axis, da.nworkers)
    plans = {
        "left": (db, db, redistribution_cost(da, db)),
        "right": (da, da, redistribution_cost(db, da)),
        "block": (block, block,
                  redistribution_cost(da, block) +
                  redistribution_cost(db, block)),
    }
    if pinned != "auto":
        target_a, target_b, _cost = plans[pinned]
        return pinned, target_a, target_b
    name = min(plans, key=lambda k: (plans[k][2], k))
    target_a, target_b, _cost = plans[name]
    return name, target_a, target_b


def _coerce_conformable(a: DistArray, b: DistArray):
    """Make two operands conformable, redistributing as cheaply as allowed."""
    if a.dist.same_as(b.dist):
        return a, b
    if a.shape != b.shape:
        raise ValueError(f"operands have different global shapes "
                         f"{a.shape} vs {b.shape} (broadcasting between "
                         f"distributed arrays is limited to scalars)")
    name, ta, tb = choose_strategy(a.dist, b.dist)
    if not a.dist.same_as(ta):
        a = a.redistribute(ta)
    if not b.dist.same_as(tb):
        b = b.redistribute(tb)
    return a, b


def unary_ufunc(name: str, a: DistArray) -> DistArray:
    """Apply a unary ufunc: one control message, zero data movement."""
    if name not in UNARY_UFUNCS:
        raise ValueError(f"unknown unary ufunc {name!r}")
    out_id = a.ctx.new_array_id()
    a.ctx.run(opcodes.UFUNC, name, (("array", a.array_id),), out_id)
    out_dtype = _result_dtype(UNARY_UFUNCS[name], a.dtype)
    return DistArray(a.ctx, out_id, a.dist, out_dtype)


def binary_ufunc(name: str,
                 a: Union[DistArray, float],
                 b: Union[DistArray, float]) -> DistArray:
    """Apply a binary ufunc, redistributing non-conformable operands."""
    if name not in BINARY_UFUNCS:
        raise ValueError(f"unknown binary ufunc {name!r}")
    if isinstance(a, DistArray) and isinstance(b, DistArray):
        if a.ctx is not b.ctx:
            raise ValueError("operands belong to different ODIN contexts")
        a, b = _coerce_conformable(a, b)
        specs = (("array", a.array_id), ("array", b.array_id))
        ctx, dist = a.ctx, a.dist
        dt_a, dt_b = a.dtype, b.dtype
    elif isinstance(a, DistArray):
        if isinstance(b, DistArray):  # pragma: no cover
            raise AssertionError
        specs = (("array", a.array_id), ("scalar", b))
        ctx, dist = a.ctx, a.dist
        dt_a, dt_b = a.dtype, np.asarray(b).dtype
    elif isinstance(b, DistArray):
        specs = (("scalar", a), ("array", b.array_id))
        ctx, dist = b.ctx, b.dist
        dt_a, dt_b = np.asarray(a).dtype, b.dtype
    else:
        raise TypeError("at least one operand must be a DistArray")
    out_id = ctx.new_array_id()
    ctx.run(opcodes.UFUNC, name, specs, out_id)
    out_dtype = _result_dtype(BINARY_UFUNCS[name], dt_a, dt_b)
    return DistArray(ctx, out_id, dist, out_dtype)


def nary_ufunc(name: str, operands) -> DistArray:
    """Apply an n-ary elementwise operation (where, clip, ...).

    All DistArray operands are made conformable with the first; scalars
    pass through.  At least one operand must be distributed.
    """
    if name not in TERNARY_UFUNCS:
        raise ValueError(f"unknown n-ary ufunc {name!r}")
    arrays = [op for op in operands if isinstance(op, DistArray)]
    if not arrays:
        raise TypeError("at least one operand must be a DistArray")
    ctx = arrays[0].ctx
    anchor = arrays[0]
    conformed = []
    keepalive = []  # hold redistributed temporaries until the op has run
    for op in operands:
        if isinstance(op, DistArray):
            if op.shape != anchor.shape:
                raise ValueError("distributed operands must share a shape")
            if not op.dist.same_as(anchor.dist):
                op = op.redistribute(anchor.dist)
                keepalive.append(op)
            conformed.append(("array", op.array_id))
        else:
            conformed.append(("scalar", op))
    out_id = ctx.new_array_id()
    ctx.run(opcodes.UFUNC, name, tuple(conformed), out_id)
    del keepalive
    dtypes = [op.dtype if isinstance(op, DistArray)
              else np.asarray(op).dtype for op in operands]
    # result dtype: where -> promote value operands; clip -> first operand
    if name == "where":
        out_dtype = np.result_type(*dtypes[1:])
    else:
        out_dtype = np.result_type(*dtypes)
    return DistArray(ctx, out_id, anchor.dist, out_dtype)


def _result_dtype(ufunc, *dtypes):
    try:
        return ufunc(*[np.ones(1, dtype=dt) for dt in dtypes]).dtype
    except Exception:
        return np.result_type(*dtypes)


def _make_module_ufuncs(namespace: dict) -> None:
    """Install odin.sqrt, odin.add, ... into the package namespace."""
    def make_unary(name):
        def fn(a):
            from .expr import LazyExpr, is_lazy
            if isinstance(a, LazyExpr) or \
                    (isinstance(a, DistArray) and is_lazy()):
                return LazyExpr(name, "unary", [LazyExpr.wrap(a)])
            if isinstance(a, DistArray):
                return unary_ufunc(name, a)
            return UNARY_UFUNCS[name](a)
        fn.__name__ = name
        fn.__doc__ = f"Distributed elementwise {name} (NumPy-compatible)."
        return fn

    def make_binary(name):
        def fn(a, b):
            from .expr import LazyExpr, is_lazy
            distributed = isinstance(a, (DistArray, LazyExpr)) or \
                isinstance(b, (DistArray, LazyExpr))
            if distributed and (is_lazy() or isinstance(a, LazyExpr)
                                or isinstance(b, LazyExpr)):
                return LazyExpr(name, "binary",
                                [LazyExpr.wrap(a), LazyExpr.wrap(b)])
            if distributed:
                return binary_ufunc(name, a, b)
            return BINARY_UFUNCS[name](a, b)
        fn.__name__ = name
        fn.__doc__ = f"Distributed elementwise {name} (NumPy-compatible)."
        return fn

    def make_ternary(name):
        def fn(a, b, c):
            if any(isinstance(v, DistArray) for v in (a, b, c)):
                return nary_ufunc(name, (a, b, c))
            return TERNARY_UFUNCS[name](a, b, c)
        fn.__name__ = name
        fn.__doc__ = f"Distributed elementwise {name} (NumPy-compatible)."
        return fn

    for name in UNARY_UFUNCS:
        namespace[name] = make_unary(name)
    for name in BINARY_UFUNCS:
        namespace[name] = make_binary(name)
    for name in TERNARY_UFUNCS:
        namespace[name] = make_ternary(name)
