"""The DistArray: the global mode of interaction (paper section III-B).

"ODIN arrays feel very much like regular NumPy arrays, even though
computations are carried out in a distributed fashion."  DistArray is the
driver-side handle: shape/dtype/distribution metadata plus an array id;
all element data lives on the workers.  Methods broadcast small control
ops and (only when the user asks for values) gather data back.

Binary operations between arrays with different distributions trigger the
redistribution strategy chooser in :mod:`repro.odin.ufuncs` -- "ODIN will
choose a strategy that will minimize communication, while allowing the
knowledgeable user to modify its behavior via Python context managers".
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from . import opcodes
from .context import OdinContext, get_context
from .distribution import Distribution

__all__ = ["DistArray"]

Scalar = Union[int, float, complex, bool, np.number]


class DistArray:
    """Handle to a distributed N-D array."""

    def __init__(self, ctx: OdinContext, array_id: int,
                 dist: Distribution, dtype):
        self.ctx = ctx
        self.array_id = array_id
        self.dist = dist
        self.dtype = np.dtype(dtype)
        # recovery re-points .dist after a shrink+replay (weak ref, so
        # handles still die -- and enqueue their delete -- normally)
        ctx._register_handle(self)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.dist.global_shape

    @property
    def ndim(self) -> int:
        return self.dist.ndim

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self):
        return (f"DistArray(shape={self.shape}, dtype={self.dtype}, "
                f"dist={self.dist.kind}@axis{self.dist.axis}, "
                f"id={self.array_id})")

    def __del__(self):
        try:
            self.ctx.delete(self.array_id)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def gather(self) -> np.ndarray:
        """Assemble the whole array on the driver.  Data-plane."""
        return self.ctx.gather(self.array_id)

    def __array__(self, dtype=None, copy=None):
        out = self.gather()
        return out.astype(dtype) if dtype is not None else out

    def local_arrays(self):
        """Per-worker (indices, block) pairs gathered to the driver.

        For computing *on* local segments without gathering, use
        ``@odin.local`` functions instead.
        """
        pieces = self.ctx.run(opcodes.GATHER, self.array_id)
        return [(self.dist.indices_for(w), block)
                for w, (_dist, block) in enumerate(pieces)]

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _normalize_key(self, key):
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) > self.ndim:
            raise IndexError(f"too many indices for {self.ndim}-D array")
        key = key + (slice(None),) * (self.ndim - len(key))
        return key

    def __getitem__(self, key):
        key = self._normalize_key(key)
        # all-integer key: fetch one element
        if all(isinstance(k, (int, np.integer)) for k in key):
            idx = tuple(int(k) % self.shape[ax] if int(k) >= -self.shape[ax]
                        else _raise_oob(k, ax)
                        for ax, k in enumerate(key))
            results = self.ctx.run(opcodes.FETCH, self.array_id, idx)
            for val in results:
                if val is not None:
                    return self.dtype.type(val)
            raise IndexError(f"index {idx} out of range")
        # otherwise: basic slicing
        if len(self.dist.dist_axes) > 1:
            raise NotImplementedError(
                "slicing a grid-distributed array: redistribute to a "
                "single-axis distribution first")
        slices = []
        for ax, k in enumerate(key):
            if isinstance(k, slice):
                slices.append(k)
            elif isinstance(k, (int, np.integer)):
                if ax == self.dist.axis:
                    raise NotImplementedError(
                        "integer indexing on the distributed axis of an "
                        "N-D array; slice with [k:k+1] instead")
                kk = int(k) % self.shape[ax]
                slices.append(slice(kk, kk + 1))
            else:
                raise NotImplementedError(
                    "only basic slicing is supported in global mode")
        new_shape = tuple(
            len(range(*sl.indices(self.shape[ax])))
            for ax, sl in enumerate(slices))
        new_dist = _block_like(self.dist, new_shape)
        out_id = self.ctx.new_array_id()
        self.ctx.run(opcodes.SLICE, self.array_id, out_id,
                     tuple(slices), new_dist)
        out = DistArray(self.ctx, out_id, new_dist, self.dtype)
        # squeeze axes where the user gave an integer
        squeeze_axes = tuple(ax for ax, k in enumerate(key)
                             if isinstance(k, (int, np.integer)))
        if squeeze_axes:
            out = out._squeeze_local(squeeze_axes)
        return out

    def _squeeze_local(self, axes) -> "DistArray":
        """Remove length-1 non-distributed axes (metadata + local op)."""
        from .local import _call_builtin_local
        new_shape = tuple(s for ax, s in enumerate(self.shape)
                          if ax not in axes)
        new_axis = self.dist.axis - sum(1 for ax in axes
                                        if ax < self.dist.axis)
        lists = [self.dist.indices_for(w)
                 for w in range(self.dist.nworkers)]
        from .distribution import ArbitraryDistribution
        new_dist = ArbitraryDistribution(new_shape, new_axis, lists)
        return _call_builtin_local(
            self.ctx, "__squeeze__", [self], {"axes": axes},
            out_dist=new_dist, dtype=self.dtype)

    def __setitem__(self, key, value) -> None:
        key = self._normalize_key(key)
        if len(self.dist.dist_axes) > 1:
            raise NotImplementedError(
                "assigning into a grid-distributed array: redistribute to "
                "a single-axis distribution first")
        if not np.isscalar(value):
            raise NotImplementedError(
                "global-mode assignment accepts scalars; use @odin.local "
                "for array-valued updates")
        slices = []
        for ax, k in enumerate(key):
            if isinstance(k, slice):
                slices.append(k)
            elif isinstance(k, (int, np.integer)):
                kk = int(k) % self.shape[ax]
                slices.append(slice(kk, kk + 1))
            else:
                raise NotImplementedError("only basic indexing in setitem")
        self.ctx.run(opcodes.SETITEM, self.array_id, tuple(slices),
                     ("scalar", value))

    # ------------------------------------------------------------------
    # arithmetic -> ufuncs module (import cycle broken at call time)
    # ------------------------------------------------------------------
    def _binary(self, other, name, reflected=False):
        from .expr import LazyExpr, is_lazy
        if is_lazy() or isinstance(other, LazyExpr):
            a, b = (LazyExpr.wrap(other), LazyExpr.wrap(self)) if reflected \
                else (LazyExpr.wrap(self), LazyExpr.wrap(other))
            return LazyExpr(name, "binary", [a, b])
        from .ufuncs import binary_ufunc
        a, b = (other, self) if reflected else (self, other)
        return binary_ufunc(name, a, b)

    def __add__(self, other):
        return self._binary(other, "add")

    def __radd__(self, other):
        return self._binary(other, "add", reflected=True)

    def __sub__(self, other):
        return self._binary(other, "subtract")

    def __rsub__(self, other):
        return self._binary(other, "subtract", reflected=True)

    def __mul__(self, other):
        return self._binary(other, "multiply")

    def __rmul__(self, other):
        return self._binary(other, "multiply", reflected=True)

    def __truediv__(self, other):
        return self._binary(other, "divide")

    def __rtruediv__(self, other):
        return self._binary(other, "divide", reflected=True)

    def __pow__(self, other):
        return self._binary(other, "power")

    def __mod__(self, other):
        return self._binary(other, "mod")

    def __neg__(self):
        from .expr import LazyExpr, is_lazy
        if is_lazy():
            return LazyExpr("negative", "unary", [LazyExpr.wrap(self)])
        from .ufuncs import unary_ufunc
        return unary_ufunc("negative", self)

    def __abs__(self):
        from .expr import LazyExpr, is_lazy
        if is_lazy():
            return LazyExpr("absolute", "unary", [LazyExpr.wrap(self)])
        from .ufuncs import unary_ufunc
        return unary_ufunc("absolute", self)

    # comparisons produce boolean DistArrays
    def __lt__(self, other):
        return self._binary(other, "less")

    def __le__(self, other):
        return self._binary(other, "less_equal")

    def __gt__(self, other):
        return self._binary(other, "greater")

    def __ge__(self, other):
        return self._binary(other, "greater_equal")

    # NB: __eq__/__ne__ stay identity-based so DistArrays remain hashable
    # handles; use odin.equal(a, b) for elementwise comparison.

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def _reduce(self, op_name: str, axis: Optional[int]):
        from .reductions import reduce_array
        return reduce_array(self, op_name, axis)

    def sum(self, axis: Optional[int] = None):
        return self._reduce("sum", axis)

    def prod(self, axis: Optional[int] = None):
        return self._reduce("prod", axis)

    def min(self, axis: Optional[int] = None):
        return self._reduce("min", axis)

    def max(self, axis: Optional[int] = None):
        return self._reduce("max", axis)

    def any(self, axis: Optional[int] = None):
        return self._reduce("any", axis)

    def all(self, axis: Optional[int] = None):
        return self._reduce("all", axis)

    def mean(self, axis: Optional[int] = None):
        total = self.sum(axis=axis)
        count = self.size if axis is None else self.shape[axis]
        if isinstance(total, DistArray):
            return total * (1.0 / count)
        return total / count

    def std(self, axis: Optional[int] = None):
        mu = self.mean(axis=None)
        if axis is not None:
            raise NotImplementedError("std with axis; use axis=None")
        sq = (self - mu) ** 2
        return float(np.sqrt(sq.mean(axis=None)))

    # ------------------------------------------------------------------
    # redistribution
    # ------------------------------------------------------------------
    def transpose(self, axes: Optional[Tuple[int, ...]] = None
                  ) -> "DistArray":
        """Permute axes.  Zero communication: the distribution's axes are
        permuted along with the data, so every element stays put."""
        if axes is None:
            axes = tuple(range(self.ndim))[::-1]
        axes = tuple(int(a) % self.ndim for a in axes)
        if sorted(axes) != list(range(self.ndim)):
            raise ValueError(f"invalid axis permutation {axes}")
        new_shape = tuple(self.shape[a] for a in axes)
        new_dist = _permuted_distribution(self.dist, axes, new_shape)
        out_id = self.ctx.new_array_id()
        self.ctx.run(opcodes.TRANSPOSE, self.array_id, out_id, axes,
                     new_dist)
        return DistArray(self.ctx, out_id, new_dist, self.dtype)

    @property
    def T(self) -> "DistArray":  # noqa: N802 - NumPy spelling
        return self.transpose()

    def redistribute(self, new_dist: Distribution) -> "DistArray":
        """Move to a new distribution (worker-to-worker traffic only)."""
        if new_dist.global_shape != self.shape:
            raise ValueError("new distribution must keep the global shape")
        out_id = self.ctx.new_array_id()
        self.ctx.run(opcodes.REDIST, self.array_id, out_id, new_dist)
        return DistArray(self.ctx, out_id, new_dist, self.dtype)

    def copy(self) -> "DistArray":
        return self.redistribute(self.dist)


def _block_like(dist: Distribution, new_shape) -> Distribution:
    """A balanced block distribution over the same workers/axis."""
    from .distribution import BlockDistribution
    return BlockDistribution(new_shape, dist.axis, dist.nworkers)


def _permuted_distribution(dist: Distribution, axes, new_shape):
    """The distribution after np.transpose(data, axes): distributed axis k
    (old numbering) becomes axis axes.index(k)."""
    from .distribution import (ArbitraryDistribution, BlockCyclicDistribution,
                               BlockDistribution, CyclicDistribution,
                               GridDistribution)
    if isinstance(dist, GridDistribution):
        new_axes = tuple(axes.index(a) for a in dist.axes)
        return GridDistribution(new_shape, new_axes, dist.grid)
    new_axis = axes.index(dist.axis)
    if isinstance(dist, BlockDistribution):
        return BlockDistribution(new_shape, new_axis, dist.nworkers,
                                 counts=dist.counts())
    if isinstance(dist, CyclicDistribution):
        return CyclicDistribution(new_shape, new_axis, dist.nworkers)
    if isinstance(dist, BlockCyclicDistribution):
        return BlockCyclicDistribution(new_shape, new_axis, dist.nworkers,
                                       block_size=dist.block_size)
    lists = [dist.indices_for(w) for w in range(dist.nworkers)]
    return ArbitraryDistribution(new_shape, new_axis, lists,
                                 validate=False)


def _raise_oob(k, ax):
    raise IndexError(f"index {k} out of range on axis {ax}")
