"""Global reductions over distributed arrays.

Full reductions (axis=None) and reductions along the distributed axis
return driver-side values: each worker reduces its block locally and ships
one partial (scalar or one reduced block) in the status gather -- the
classic two-phase distributed reduction.  Reductions along any other axis
are purely local and the result stays distributed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from . import opcodes
from .array import DistArray
from .worker import REDUCERS

__all__ = ["reduce_array", "sum", "prod", "amin", "amax", "mean", "std",
           "histogram", "bincount", "argmin", "argmax"]


def reduce_array(a: DistArray, op_name: str,
                 axis: Optional[int]) -> Union[DistArray, np.ndarray, float]:
    if op_name not in REDUCERS:
        raise ValueError(f"unknown reduction {op_name!r}")
    if axis is not None:
        axis = int(axis) % a.ndim
    if axis is not None and len(a.dist.dist_axes) > 1:
        return _reduce_grid(a, op_name, axis)
    if axis is None or axis == a.dist.axis:
        partials = a.ctx.run(opcodes.REDUCE, a.array_id, op_name, axis)
        reducer = REDUCERS[op_name]
        acc = None
        for tag, part in partials:
            if tag != "partial":
                raise AssertionError("inconsistent reduction paths")
            if part is None:
                continue
            acc = part if acc is None else reducer(acc, part)
        if acc is None:
            raise ValueError("reduction of an empty array without identity")
        if axis is None:
            return acc.item() if isinstance(acc, np.generic) or \
                (isinstance(acc, np.ndarray) and acc.ndim == 0) else acc
        return np.asarray(acc)
    # local-axis reduction: stays distributed
    out_id = a.ctx.new_array_id()
    results = a.ctx.run(opcodes.REDUCE, a.array_id, op_name, axis, out_id)
    tag, new_dist = results[0]
    if tag != "stored":
        raise AssertionError("inconsistent reduction paths")
    return DistArray(a.ctx, out_id, new_dist, a.dtype)


def _reduce_grid(a: DistArray, op_name: str, axis: int) -> np.ndarray:
    """Axis reduction of a grid-distributed array: tiles are combined on
    the driver (tiles sharing remaining-axes coordinates reduce together).
    Returns a NumPy array of the reduced shape."""
    reducer = REDUCERS[op_name]
    tiles = a.ctx.run(opcodes.REDUCE, a.array_id, op_name, axis)
    out_shape = tuple(s for i, s in enumerate(a.shape) if i != axis)
    out = np.empty(out_shape, dtype=a.dtype)
    filled = np.zeros(out_shape, dtype=bool)
    for tag, coords, part in tiles:
        if tag != "tile":
            raise AssertionError("inconsistent grid reduction path")
        if part is None:
            continue
        per_axis = [np.arange(out_shape[i], dtype=np.int64)
                    if ids is None else np.asarray(ids)
                    for i, ids in enumerate(coords)]
        sel = np.ix_(*per_axis) if per_axis else ()
        existing = filled[sel] if per_axis else filled
        merged = np.where(existing, reducer(out[sel], part), part) \
            if per_axis else (reducer(out, part) if existing else part)
        out[sel] = merged
        filled[sel] = True
    if not filled.all():
        raise AssertionError("grid reduction left uncovered entries")
    return out


def histogram(a: DistArray, bins: int = 10, range=None):  # noqa: A002
    """Distributed ``numpy.histogram``: each worker bins its local block,
    the per-worker counts sum on the driver.  Returns (counts, edges)."""
    if range is None:
        lo = float(a.min())
        hi = float(a.max())
    else:
        lo, hi = float(range[0]), float(range[1])
    from .context import local_registry

    def fn(block):
        counts, _edges = np.histogram(block, bins=bins, range=(lo, hi))
        return counts

    fname = f"__histogram_{id(fn)}__"
    local_registry[fname] = fn
    try:
        results = a.ctx.call_local(fname, (("array", a.array_id),), {},
                                   out_id=None)
    finally:
        local_registry.pop(fname, None)
    counts = np.sum([payload for _tag, payload in results], axis=0)
    return counts, np.linspace(lo, hi, bins + 1)


def bincount(a: DistArray, minlength: int = 0) -> np.ndarray:
    """Distributed ``numpy.bincount`` for nonnegative integer arrays."""
    if not np.issubdtype(a.dtype, np.integer):
        raise TypeError("bincount needs an integer array")
    length = max(int(a.max()) + 1, minlength)
    from .context import local_registry

    def fn(block):
        return np.bincount(block.reshape(-1), minlength=length)

    fname = f"__bincount_{id(fn)}__"
    local_registry[fname] = fn
    try:
        results = a.ctx.call_local(fname, (("array", a.array_id),), {},
                                   out_id=None)
    finally:
        local_registry.pop(fname, None)
    return np.sum([payload for _tag, payload in results], axis=0)


def _argextreme(a: DistArray, mode: str) -> int:
    """Global argmin/argmax of a 1-D array (ties -> lowest global index)."""
    if a.ndim != 1:
        raise ValueError(f"arg{mode} supports 1-D arrays")
    from .context import local_registry

    def fn(block):
        if block.size == 0:
            return None
        local = int(np.argmin(block) if mode == "min" else
                    np.argmax(block))
        return float(block[local]), local

    fname = f"__arg{mode}_{id(fn)}__"
    local_registry[fname] = fn
    try:
        results = a.ctx.call_local(fname, (("array", a.array_id),), {},
                                   out_id=None)
    finally:
        local_registry.pop(fname, None)
    best_gid = None
    best_val = None
    for w, (_tag, payload) in enumerate(results):
        if payload is None:
            continue
        val, local = payload
        gid = int(a.dist.indices_for(w)[local])
        better = (best_val is None
                  or (val < best_val if mode == "min" else val > best_val)
                  or (val == best_val and gid < best_gid))
        if better:
            best_val, best_gid = val, gid
    if best_gid is None:
        raise ValueError(f"arg{mode} of an empty array")
    return best_gid


def argmin(a: DistArray) -> int:
    """Global index of the minimum (NumPy-compatible for 1-D arrays)."""
    return _argextreme(a, "min")


def argmax(a: DistArray) -> int:
    """Global index of the maximum (NumPy-compatible for 1-D arrays)."""
    return _argextreme(a, "max")


def sum(a: DistArray, axis: Optional[int] = None):  # noqa: A001
    """Distributed sum (NumPy-compatible signature)."""
    return a.sum(axis=axis)


def prod(a: DistArray, axis: Optional[int] = None):
    return a.prod(axis=axis)


def amin(a: DistArray, axis: Optional[int] = None):
    return a.min(axis=axis)


def amax(a: DistArray, axis: Optional[int] = None):
    return a.max(axis=axis)


def mean(a: DistArray, axis: Optional[int] = None):
    return a.mean(axis=axis)


def std(a: DistArray, axis: Optional[int] = None):
    return a.std(axis=axis)
