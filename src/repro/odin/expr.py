"""Lazy expressions and loop fusion (paper section III: "With the power
and expressiveness of NumPy array slicing, ODIN can optimize distributed
array expressions. These optimizations include: loop fusion, array
expression analysis to select the appropriate communication strategy").

Inside ``with odin.lazy():`` arithmetic on DistArrays builds an expression
graph instead of executing.  :func:`evaluate` then

1. collects the distinct leaf arrays,
2. makes them conformable with ONE redistribution plan chosen over the
   whole expression (not per-op),
3. compiles the tree to a postfix program and ships it to the workers in a
   single control message, where it runs as one fused pass -- through a
   Seamless-compiled native kernel when available, else a NumPy stack
   machine that still eliminates per-op control round-trips.

With control-plane batching (the default), the conforming
redistributions and the fused program are all fire-and-forget: the whole
lazy chain lands on the workers as one batched epoch with zero driver
round trips until a result is actually gathered.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import List, Optional, Union

import numpy as np

from . import opcodes
from .array import DistArray
from .ufuncs import BINARY_UFUNCS, UNARY_UFUNCS, choose_strategy

__all__ = ["LazyExpr", "lazy", "evaluate", "is_lazy"]

_lazy_tls = threading.local()


def is_lazy() -> bool:
    return getattr(_lazy_tls, "on", False)


@contextmanager
def lazy():
    """Record DistArray arithmetic as a fusable expression graph."""
    prev = is_lazy()
    _lazy_tls.on = True
    try:
        yield
    finally:
        _lazy_tls.on = prev


class LazyExpr:
    """A node of the deferred expression tree."""

    def __init__(self, op: str, kind: str, children):
        self.op = op          # ufunc name, or "" for leaves
        self.kind = kind      # "leaf", "const", "unary", "binary"
        self.children = children

    # -- construction helpers -------------------------------------------
    @staticmethod
    def wrap(value) -> "LazyExpr":
        if isinstance(value, LazyExpr):
            return value
        if isinstance(value, DistArray):
            return LazyExpr("", "leaf", [value])
        if np.isscalar(value):
            return LazyExpr("", "const", [value])
        raise TypeError(f"cannot use {type(value).__name__} in a lazy "
                        f"expression")

    def _bin(self, other, name, reflected=False):
        a, b = (LazyExpr.wrap(other), self) if reflected else \
            (self, LazyExpr.wrap(other))
        return LazyExpr(name, "binary", [a, b])

    def __add__(self, other):
        return self._bin(other, "add")

    def __radd__(self, other):
        return self._bin(other, "add", reflected=True)

    def __sub__(self, other):
        return self._bin(other, "subtract")

    def __rsub__(self, other):
        return self._bin(other, "subtract", reflected=True)

    def __mul__(self, other):
        return self._bin(other, "multiply")

    def __rmul__(self, other):
        return self._bin(other, "multiply", reflected=True)

    def __truediv__(self, other):
        return self._bin(other, "divide")

    def __rtruediv__(self, other):
        return self._bin(other, "divide", reflected=True)

    def __pow__(self, other):
        return self._bin(other, "power")

    def __neg__(self):
        return LazyExpr("negative", "unary", [self])

    def __abs__(self):
        return LazyExpr("absolute", "unary", [self])

    # -- analysis ---------------------------------------------------------
    def leaves(self) -> List[DistArray]:
        out: List[DistArray] = []

        def visit(node: LazyExpr):
            if node.kind == "leaf":
                arr = node.children[0]
                if all(arr is not seen for seen in out):
                    out.append(arr)
            elif node.kind in ("unary", "binary"):
                for child in node.children:
                    visit(child)

        visit(self)
        return out

    def program(self, leaf_index) -> List[tuple]:
        """Postfix program with leaf loads resolved via *leaf_index*."""
        prog: List[tuple] = []

        def emit(node: LazyExpr):
            if node.kind == "leaf":
                prog.append(("load", leaf_index(node.children[0])))
            elif node.kind == "const":
                prog.append(("const", node.children[0]))
            elif node.kind == "unary":
                emit(node.children[0])
                prog.append(("unary", node.op))
            else:
                emit(node.children[0])
                emit(node.children[1])
                prog.append(("binary", node.op))

        emit(self)
        return prog

    def num_ops(self) -> int:
        if self.kind in ("leaf", "const"):
            return 0
        return 1 + sum(c.num_ops() for c in self.children
                       if isinstance(c, LazyExpr))

    def __repr__(self):
        if self.kind == "leaf":
            return f"leaf[{self.children[0].array_id}]"
        if self.kind == "const":
            return repr(self.children[0])
        if self.kind == "unary":
            return f"{self.op}({self.children[0]!r})"
        return f"{self.op}({self.children[0]!r}, {self.children[1]!r})"


def evaluate(expr: Union[LazyExpr, DistArray],
             use_seamless: bool = True) -> DistArray:
    """Fuse and execute a lazy expression in one worker pass."""
    if isinstance(expr, DistArray):
        return expr
    if not isinstance(expr, LazyExpr):
        raise TypeError("evaluate() expects a LazyExpr or DistArray")
    leaves = expr.leaves()
    if not leaves:
        raise ValueError("expression has no distributed leaves")
    ctx = leaves[0].ctx
    # one conformability decision for the whole expression
    target = leaves[0].dist
    for leaf in leaves[1:]:
        if leaf.shape != leaves[0].shape:
            raise ValueError("all leaves of a fused expression must share "
                             "a global shape")
        if not leaf.dist.same_as(target):
            _name, target, _tb = choose_strategy(leaf.dist, target)
            break
    conformed = [leaf if leaf.dist.same_as(target)
                 else leaf.redistribute(target) for leaf in leaves]

    def leaf_index(arr: DistArray) -> int:
        for i, leaf in enumerate(leaves):
            if arr is leaf:
                return i
        raise KeyError("leaf not found")

    program = expr.program(leaf_index)
    out_id = ctx.new_array_id()
    ctx.run(opcodes.FUSED, tuple(program), tuple(a.array_id
                                                 for a in conformed),
            out_id, bool(use_seamless))
    dtype = _infer_dtype(program, conformed)
    return DistArray(ctx, out_id, conformed[0].dist, dtype)


def _infer_dtype(program, leaves) -> np.dtype:
    """Dry-run the program on 1-element dummies to get the result dtype."""
    stack = []
    for inst in program:
        if inst[0] == "load":
            stack.append(np.ones(1, dtype=leaves[inst[1]].dtype))
        elif inst[0] == "const":
            stack.append(inst[1])
        elif inst[0] == "unary":
            stack.append(UNARY_UFUNCS[inst[1]](stack.pop()))
        else:
            b = stack.pop()
            a = stack.pop()
            stack.append(BINARY_UFUNCS[inst[1]](a, b))
    return np.asarray(stack[-1]).dtype
