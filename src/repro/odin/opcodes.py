"""Opcodes of the driver->worker control protocol.

Control messages are tuples ``(opcode, *args)``; args are index metadata
(array ids, distribution descriptors, op names) -- never bulk array data.
The two data-plane exceptions are SCATTER (driver ships real blocks) and
GATHER (workers ship blocks back), which exist precisely so everything
else can stay small.
"""

CREATE = "create"            # (id, dist, dtype_str, fill_spec)
SCATTER = "scatter"          # (id, dist, dtype_str) + buffer scatter
DELETE_MANY = "delete_many"  # (ids,)
DELETE = "delete"            # (id,)
GATHER = "gather"            # (id,) -> per-worker (dist, block)
FETCH = "fetch"              # (id, axis_indices) -> values at global idx
UFUNC = "ufunc"              # (name, in_specs, out_id)
FUSED = "fused"              # (program, in_ids, out_id, use_seamless)
REDIST = "redistribute"      # (src_id, dst_id, new_dist)
TRANSPOSE = "transpose"      # (src_id, dst_id, axes_perm, new_dist)
SLICE = "slice"              # (src_id, dst_id, slices, new_dist)
SETITEM = "setitem"          # (id, slices, value_spec)
REDUCE = "reduce"            # (id, op_name, axis) -> partials
MATMUL = "matmul"            # reserved
CALL_LOCAL = "call_local"    # (fname, arg_specs, kwarg_specs)
LOAD = "load"                # (id, dist, dtype_str, path_pattern)
SAVE = "save"                # (id, path_pattern)
GROUPBY = "groupby"          # tabular shuffle-reduce
TRANSFORM = "transform"      # (src_id, dst_id, fname) -> new local length
SET_DIST = "set_dist"        # (id, dist) fix metadata after a transform
PLAN_STATS = "plan_stats"    # () -> (hits, misses, cached_plans)
SHUTDOWN = "shutdown"

# Fault recovery (repro.recover).  CKPT snapshots every live array and
# mirrors the snapshot on the ring partner ``(w + 1) % P``.  RESTORE,
# issued on the *shrunk* communicator after a failure, rebuilds each
# array at a checkpoint version from own + partner-held blocks and
# redistributes to the remapped survivor distribution.  DIST_SYNC reports
# worker 0's authoritative ``{array_id: dist}`` so driver handles can be
# re-pointed after replay.
CKPT = "ckpt"                # (version,) -> bytes checkpointed
RESTORE = "restore"          # (version, old_indices, dead, old_n, dists)
DIST_SYNC = "dist_sync"      # (ids,) -> {id: dist} (worker 0 only)

# Control-plane batching (PR 4).  ``(ASYNC, inner_op)`` is broadcast with
# *no* matching gather: the worker executes ``inner_op``, records any
# exception instead of raising, and keeps listening.  The deferred errors
# ride back on the third slot of the next synchronizing gather.  ``FLUSH``
# is an explicit barrier op that does nothing but synchronize.
ASYNC = "async"              # (inner_op,) fire-and-forget within an epoch
FLUSH = "flush"              # () -> synchronize, deliver deferred errors

# Process-backend control (PR 8).  With thread workers these three are
# unnecessary: @odin.local functions live in a registry the workers
# share by reference, and the chaos engine is process-wide.  With
# process workers each rank is its own interpreter, so the driver must
# ship these explicitly.  REGISTER_LOCAL carries a marshalled code
# object (functions defined after the fork cannot pickle by reference);
# CHAOS_INSTALL carries a FaultPlan.to_dict().  All three synchronize
# (never batched), so ordering against subsequent ops is guaranteed by
# the serve loop's in-order execution.
REGISTER_LOCAL = "register_local"    # (name, shipped_fn_spec)
CHAOS_INSTALL = "chaos_install"      # (fault_plan_dict,)
CHAOS_UNINSTALL = "chaos_uninstall"  # ()

# Causal identity (repro.obs).  Every driver broadcast is wrapped as
# ``(TAGGED, op_id, epoch_id, inner_op)``: op_id is the broadcast
# sequence number (so driver and workers agree on it by construction,
# recovery replays included) and epoch_id names the batching window.
# Workers unwrap the envelope, publish the ids thread-locally
# (repro.obs.causal) and execute inner_op, which may itself be an
# ``(ASYNC, op)`` pair.  The envelope adds ~20 bytes per control
# message -- constant, preserving the "tens of bytes" economics.
TAGGED = "tagged"            # (op_id, epoch_id, inner_op) causal envelope
