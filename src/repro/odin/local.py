"""The local mode of interaction: ``@odin.local`` (paper section III-C).

The decorator's two tasks, straight from the paper: (1) broadcast the
function to all workers and inject it into their namespace, so it can be
called from the global level; (2) create a global version so that calling
it broadcasts a message to all workers to call their local copy, with
distributed-array arguments replaced by the local segment.

Inside a local function the worker may communicate directly with its peers
through :func:`repro.odin.context.worker_comm` -- "for performance critical
routines, users are encouraged to create local functions that communicate
directly with other worker nodes so as to ensure that the ODIN process does
not become a performance bottleneck".
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

import numpy as np

from .array import DistArray
from .context import OdinContext, get_context, local_registry
from .distribution import Distribution

__all__ = ["local", "LocalFunction"]


class LocalFunction:
    """The global-level proxy of a worker-side function."""

    def __init__(self, fn: Callable, name: Optional[str] = None):
        self.fn = fn
        self.name = name or f"{fn.__module__}.{fn.__qualname__}"
        # inject into the worker namespace (the registry broadcast).
        # Thread workers see the shared registry directly; live
        # process-backend contexts get a REGISTER_LOCAL control op, since
        # their forked workers cannot observe post-fork registry writes.
        local_registry[self.name] = fn
        OdinContext.broadcast_local(self.name, fn)
        functools.update_wrapper(self, fn)

    def __call__(self, *args, **kwargs):
        ctx = None
        arg_specs = []
        for a in args:
            if isinstance(a, DistArray):
                ctx = a.ctx
                arg_specs.append(("array", a.array_id))
            else:
                arg_specs.append(("value", a))
        kwarg_specs = {}
        for k, v in kwargs.items():
            if isinstance(v, DistArray):
                ctx = v.ctx
                kwarg_specs[k] = ("array", v.array_id)
            else:
                kwarg_specs[k] = ("value", v)
        ctx = ctx if ctx is not None else get_context()
        out_id = ctx.new_array_id()
        results = ctx.call_local(self.name, tuple(arg_specs), kwarg_specs,
                                 out_id=out_id)
        tags = {tag for tag, _p in results}
        if tags == {"stored"}:
            # every worker produced a conforming local block: the result is
            # a new distributed array (the paper's hypot example)
            dist = results[0][1]
            dtype = self._probe_dtype(ctx, out_id)
            return DistArray(ctx, out_id, dist, dtype)
        return [payload for _tag, payload in results]

    @staticmethod
    def _probe_dtype(ctx: OdinContext, array_id: int):
        from . import opcodes
        pieces = ctx.run(opcodes.GATHER, array_id)
        for _dist, block in pieces:
            if block.size:
                return block.dtype
        return pieces[0][1].dtype

    def local_call(self, *args, **kwargs):
        """Run the underlying function directly (driver-side, serial)."""
        return self.fn(*args, **kwargs)

    def __repr__(self):
        return f"LocalFunction({self.name})"


def local(fn: Callable = None, *, name: Optional[str] = None):
    """Decorator registering *fn* as an ODIN local function.

    ::

        @odin.local
        def hypot(x, y):
            return odin.sqrt(x**2 + y**2)

        h = hypot(x, y)      # x, y DistArrays -> h is a DistArray
    """
    if fn is None:
        return lambda f: LocalFunction(f, name=name)
    return LocalFunction(fn, name=name)


# -- built-in local helpers used by the array layer ------------------------
def _builtin_squeeze(block, axes=()):
    return np.squeeze(block, axis=tuple(axes))


local_registry["__squeeze__"] = _builtin_squeeze


def _call_builtin_local(ctx: OdinContext, name: str, arrays, kwargs,
                        out_dist: Distribution, dtype) -> DistArray:
    """Invoke a builtin worker helper whose result has a known dist."""
    arg_specs = tuple(("array", a.array_id) for a in arrays)
    kwarg_specs = {k: ("value", v) for k, v in kwargs.items()}
    out_id = ctx.new_array_id()
    results = ctx.call_local(name, arg_specs, kwarg_specs, out_id=out_id)
    # builtin helpers may return blocks whose shape no longer matches the
    # input distribution; workers stored nothing, so scatter the dist in a
    # second op
    tags = {tag for tag, _p in results}
    if tags == {"stored"}:
        return DistArray(ctx, out_id, results[0][1], dtype)
    # the helper returned reshaped blocks: reassemble and scatter under the
    # target distribution (driver-mediated, used only for tiny metadata ops
    # like squeeze)
    blocks = [payload for _tag, payload in results]
    full = np.empty(out_dist.global_shape, dtype=dtype)
    for w, block in enumerate(blocks):
        idx = out_dist.indices_for(w)
        sl = [slice(None)] * out_dist.ndim
        sl[out_dist.axis] = idx
        full[tuple(sl)] = block
    ctx.scatter(out_id, out_dist, full)
    return DistArray(ctx, out_id, out_dist, dtype)
