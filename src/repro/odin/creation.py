"""Distributed array creation routines (paper section III-A).

"All NumPy array creation routines are supported by ODIN, and the
resulting arrays are distributed. Routines that create a new array take
optional arguments to control the distribution."

Every routine here (except :func:`array`, which ships user data) sends a
single short control message; workers allocate and initialize from their
own index ranges, matching the paper's description of ``odin.rand``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .array import DistArray
from .context import OdinContext, get_context, local_registry
from .distribution import Distribution, make_distribution

__all__ = ["zeros", "ones", "empty", "full", "arange", "linspace",
           "random", "rand", "randn", "array", "fromfunction",
           "zeros_like", "ones_like", "empty_like", "load"]

Shape = Union[int, Sequence[int]]


def _resolve(shape: Shape, ctx: Optional[OdinContext], dist, axis,
             **dist_kwargs):
    ctx = ctx if ctx is not None else get_context()
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
    else:
        shape = tuple(int(s) for s in shape)
    if isinstance(dist, Distribution):
        if dist.global_shape != shape:
            raise ValueError(f"distribution shape {dist.global_shape} "
                             f"does not match array shape {shape}")
        distribution = dist
    else:
        distribution = make_distribution(shape, ctx.nworkers, dist=dist,
                                         axis=axis, **dist_kwargs)
    return ctx, shape, distribution


def _create(ctx, distribution, dtype, fill_spec) -> DistArray:
    array_id = ctx.new_array_id()
    ctx.create(array_id, distribution, dtype, fill_spec)
    return DistArray(ctx, array_id, distribution, dtype)


def zeros(shape: Shape, dtype=np.float64, dist="block", axis=0,
          ctx: Optional[OdinContext] = None, **dist_kwargs) -> DistArray:
    """Distributed zeros."""
    ctx, shape, d = _resolve(shape, ctx, dist, axis, **dist_kwargs)
    return _create(ctx, d, dtype, ("zeros",))


def ones(shape: Shape, dtype=np.float64, dist="block", axis=0,
         ctx: Optional[OdinContext] = None, **dist_kwargs) -> DistArray:
    """Distributed ones."""
    ctx, shape, d = _resolve(shape, ctx, dist, axis, **dist_kwargs)
    return _create(ctx, d, dtype, ("ones",))


def empty(shape: Shape, dtype=np.float64, dist="block", axis=0,
          ctx: Optional[OdinContext] = None, **dist_kwargs) -> DistArray:
    """Distributed uninitialized array."""
    ctx, shape, d = _resolve(shape, ctx, dist, axis, **dist_kwargs)
    return _create(ctx, d, dtype, ("empty",))


def full(shape: Shape, fill_value, dtype=None, dist="block", axis=0,
         ctx: Optional[OdinContext] = None, **dist_kwargs) -> DistArray:
    """Distributed constant array."""
    if dtype is None:
        dtype = np.asarray(fill_value).dtype
    ctx, shape, d = _resolve(shape, ctx, dist, axis, **dist_kwargs)
    return _create(ctx, d, dtype, ("full", fill_value))


def arange(start, stop=None, step=1, dtype=None, dist="block",
           ctx: Optional[OdinContext] = None, **dist_kwargs) -> DistArray:
    """Distributed ``numpy.arange`` (1-D)."""
    if stop is None:
        start, stop = 0, start
    n = max(0, int(np.ceil((stop - start) / step)))
    if dtype is None:
        dtype = np.asarray(start + step).dtype
    ctx, shape, d = _resolve(n, ctx, dist, 0, **dist_kwargs)
    return _create(ctx, d, dtype, ("arange", start, step))


def linspace(start: float, stop: float, num: int = 50, endpoint: bool = True,
             dtype=np.float64, dist="block",
             ctx: Optional[OdinContext] = None,
             **dist_kwargs) -> DistArray:
    """Distributed ``numpy.linspace`` (1-D) -- as in the paper's
    finite-difference example ``x = odin.linspace(1, 2*pi, 10**8)``."""
    ctx, shape, d = _resolve(int(num), ctx, dist, 0, **dist_kwargs)
    return _create(ctx, d, dtype,
                   ("linspace", float(start), float(stop), int(num),
                    bool(endpoint)))


def random(shape: Shape, seed: Optional[int] = 12345, dtype=np.float64,
           dist="block", axis=0, ctx: Optional[OdinContext] = None,
           **dist_kwargs) -> DistArray:
    """Distributed uniform [0, 1) -- "a message is sent to all
    participating nodes to create a local section ... with a specified
    random seed, different for each node"."""
    ctx, shape, d = _resolve(shape, ctx, dist, axis, **dist_kwargs)
    return _create(ctx, d, dtype, ("random", seed))


rand = random


def randn(shape: Shape, seed: Optional[int] = 12345, dtype=np.float64,
          dist="block", axis=0, ctx: Optional[OdinContext] = None,
          **dist_kwargs) -> DistArray:
    """Distributed standard normal."""
    ctx, shape, d = _resolve(shape, ctx, dist, axis, **dist_kwargs)
    return _create(ctx, d, dtype, ("normal", seed))


def array(data, dtype=None, dist="block", axis=0,
          ctx: Optional[OdinContext] = None, **dist_kwargs) -> DistArray:
    """Distribute an existing array-like (ships data: data-plane)."""
    data = np.asarray(data, dtype=dtype)
    ctx, shape, d = _resolve(data.shape, ctx, dist, axis, **dist_kwargs)
    array_id = ctx.new_array_id()
    ctx.scatter(array_id, d, data)
    return DistArray(ctx, array_id, d, data.dtype)


def fromfunction(fn, shape: Shape, dtype=np.float64, dist="block", axis=0,
                 ctx: Optional[OdinContext] = None,
                 **dist_kwargs) -> DistArray:
    """Distributed ``numpy.fromfunction``: *fn* receives global index
    grids, evaluated worker-locally."""
    ctx, shape, d = _resolve(shape, ctx, dist, axis, **dist_kwargs)
    fname = f"__fromfunction_{id(fn)}__"
    local_registry[fname] = fn
    try:
        return _create(ctx, d, dtype, ("fromfunction", fname))
    finally:
        # the CREATE may be batched (fire-and-forget): synchronize before
        # removing the function the workers need to run it
        ctx.flush()
        local_registry.pop(fname, None)


def zeros_like(a: DistArray) -> DistArray:
    return _create(a.ctx, a.dist, a.dtype, ("zeros",))


def ones_like(a: DistArray) -> DistArray:
    return _create(a.ctx, a.dist, a.dtype, ("ones",))


def empty_like(a: DistArray) -> DistArray:
    return _create(a.ctx, a.dist, a.dtype, ("empty",))


def load(path_pattern: str, shape: Shape, dtype=np.float64, dist="block",
         axis=0, ctx: Optional[OdinContext] = None,
         **dist_kwargs) -> DistArray:
    """Load per-worker ``.npy`` blocks written by ``odin.save``.

    *path_pattern* must contain ``{rank}`` (paper section III-H: node-level
    I/O gives "full control to read or write any arbitrary distributed
    file format").
    """
    from . import opcodes
    ctx, shape, d = _resolve(shape, ctx, dist, axis, **dist_kwargs)
    array_id = ctx.new_array_id()
    ctx.run(opcodes.LOAD, array_id, d, np.dtype(dtype).str, path_pattern)
    return DistArray(ctx, array_id, d, dtype)
