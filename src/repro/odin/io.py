"""Distributed I/O (paper section III-H).

Each worker reads/writes its own block (``.npy`` per worker plus a JSON
manifest), the offline analogue of MPI-IO's per-rank file views; "access
to node-level computations allows full control to read or write any
arbitrary distributed file format."
"""

from __future__ import annotations

import json
import os
from typing import Optional

import numpy as np

from . import opcodes
from .array import DistArray
from .context import OdinContext, get_context
from .creation import load as _load_blocks
from .distribution import make_distribution

__all__ = ["save", "load", "save_shared", "load_shared"]

_MANIFEST = "manifest.json"


def save(a: DistArray, directory: str) -> None:
    """Write one ``block_{rank}.npy`` per worker plus a manifest."""
    os.makedirs(directory, exist_ok=True)
    pattern = os.path.join(directory, "block_{rank}.npy")
    a.ctx.run(opcodes.SAVE, a.array_id, pattern)
    manifest = {
        "global_shape": list(a.shape),
        "dtype": a.dtype.str,
        "dist_kind": a.dist.kind,
        "axis": a.dist.axis,
        "nworkers": a.dist.nworkers,
        "counts": [int(c) for c in a.dist.counts()],
    }
    with open(os.path.join(directory, _MANIFEST), "w",
              encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1)


def load(directory: str, ctx: Optional[OdinContext] = None) -> DistArray:
    """Load an array previously written by :func:`save`.

    The worker count must match the manifest (each worker loads its own
    block); to change worker counts, load then
    :meth:`~repro.odin.array.DistArray.redistribute`.
    """
    with open(os.path.join(directory, _MANIFEST), encoding="utf-8") as fh:
        manifest = json.load(fh)
    ctx = ctx if ctx is not None else get_context()
    if ctx.nworkers != manifest["nworkers"]:
        raise ValueError(
            f"dataset was saved from {manifest['nworkers']} workers but the "
            f"context has {ctx.nworkers}")
    shape = tuple(manifest["global_shape"])
    kind = manifest["dist_kind"]
    if kind == "block":
        dist = make_distribution(shape, ctx.nworkers, dist="block",
                                 axis=manifest["axis"],
                                 counts=manifest["counts"])
    elif kind in ("cyclic", "block-cyclic"):
        dist = make_distribution(shape, ctx.nworkers, dist=kind,
                                 axis=manifest["axis"])
    else:
        raise ValueError(f"cannot reload distribution kind {kind!r}; "
                         f"save with a block/cyclic layout")
    pattern = os.path.join(directory, "block_{rank}.npy")
    return _load_blocks(pattern, shape, dtype=np.dtype(manifest["dtype"]),
                        dist=dist, ctx=ctx)


# ----------------------------------------------------------------------
# single shared file via MPI-IO (paper: "ODIN, being compatible with MPI,
# can make use of MPI's distributed IO routines")
# ----------------------------------------------------------------------
def _shared_write_kernel(block, path, dist):
    from ..mpi import MODE_CREATE, MODE_RDWR, File
    from .context import worker_comm, worker_index

    comm = worker_comm()
    w = worker_index()
    fh = File.Open(comm, path, MODE_RDWR | MODE_CREATE)
    fh.Set_view(0, block.dtype)
    # contiguous row-major layout: offset = flattened position of this
    # worker's first element (single-axis axis-0 block layouts only)
    row_len = int(np.prod(dist.global_shape[1:])) \
        if len(dist.global_shape) > 1 else 1
    offset = int(dist.indices_for(w)[0]) * row_len if block.size else 0
    fh.Write_at_all(offset, np.ascontiguousarray(block))
    fh.Close()
    return block.nbytes


def _shared_read_kernel(path, dist, dtype_str):
    from ..mpi import MODE_RDONLY, File
    from .context import worker_comm, worker_index

    comm = worker_comm()
    w = worker_index()
    dtype = np.dtype(dtype_str)
    fh = File.Open(comm, path, MODE_RDONLY)
    fh.Set_view(0, dtype)
    block = np.empty(dist.local_shape(w), dtype=dtype)
    row_len = int(np.prod(dist.global_shape[1:])) \
        if len(dist.global_shape) > 1 else 1
    offset = int(dist.indices_for(w)[0]) * row_len if block.size else 0
    fh.Read_at_all(offset, block)
    fh.Close()
    return block


def _require_axis0_block(a: DistArray, what: str) -> None:
    from .distribution import BlockDistribution
    if not isinstance(a.dist, BlockDistribution) or a.dist.axis != 0:
        raise ValueError(f"{what} requires an axis-0 block distribution; "
                         f"redistribute first")


def save_shared(a: DistArray, path: str) -> None:
    """Write the array into ONE shared binary file (row-major), every
    worker writing its block at its own offset through the MPI-IO layer.

    The file is a plain C-order dump readable with ``np.fromfile``.
    """
    _require_axis0_block(a, "save_shared")
    from .context import local_registry
    local_registry["__odin_shared_write__"] = _shared_write_kernel
    a.ctx.call_local("__odin_shared_write__",
                     (("array", a.array_id), ("value", path),
                      ("value", a.dist)), {}, out_id=None)


def load_shared(path: str, shape, dtype=np.float64,
                ctx: Optional[OdinContext] = None) -> DistArray:
    """Load a C-order binary file written by :func:`save_shared` (or
    ``ndarray.tofile``) as an axis-0 block-distributed array."""
    from .context import local_registry
    from .distribution import BlockDistribution

    ctx = ctx if ctx is not None else get_context()
    shape = (int(shape),) if np.isscalar(shape) else tuple(shape)
    dist = BlockDistribution(shape, 0, ctx.nworkers)
    local_registry["__odin_shared_read__"] = _shared_read_kernel
    out_id = ctx.new_array_id()
    results = ctx.call_local(
        "__odin_shared_read__",
        (("value", path), ("value", dist),
         ("value", np.dtype(dtype).str)), {}, out_id=out_id,
        out_dist=dist)
    if {tag for tag, _p in results} != {"stored"}:
        raise AssertionError("shared read failed to store blocks")
    return DistArray(ctx, out_id, dist, np.dtype(dtype))
