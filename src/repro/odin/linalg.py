"""Distributed dense linear algebra on DistArrays: dot / matmul.

Row-distributed GEMV/GEMM with a replicated right operand: each worker
allgathers the (narrow) right-hand operand over the worker communicator --
the standard tall-skinny pattern -- then multiplies its local row block.
The result inherits the left operand's row decomposition, so chains like
``odin.matmul(A, odin.matmul(B, x))`` stay distributed end to end.
"""

from __future__ import annotations

import numpy as np

from .array import DistArray
from .context import local_registry, worker_comm
from .distribution import (ArbitraryDistribution, BlockDistribution,
                           ConcatDistribution)

__all__ = ["dot", "matmul", "concatenate", "sort"]


def _matmul_kernel(a_block, b_block, b_dist):
    """Worker side: allgather B, multiply the local row block."""
    comm = worker_comm()
    blocks = comm.allgather(b_block)
    bg = np.empty(b_dist.global_shape, dtype=b_block.dtype)
    for w, blk in enumerate(blocks):
        bg[b_dist.global_selector(w)] = blk
    return np.ascontiguousarray(a_block @ bg)


local_registry["__odin_matmul__"] = _matmul_kernel


def _rows_dist_of(a: DistArray):
    """a's axis-0 decomposition (redistributing if a is split elsewhere)."""
    if a.dist.dist_axes != (0,):
        a = a.redistribute(BlockDistribution(a.shape, 0, a.dist.nworkers))
    return a


def matmul(a: DistArray, b: DistArray) -> DistArray:
    """a @ b for 2-D x 1-D (matvec) and 2-D x 2-D (matmat).

    *a* is (re)distributed by rows; *b* is allgathered per worker, so this
    targets the tall-skinny regime (b much smaller than a).
    """
    if not isinstance(a, DistArray) or not isinstance(b, DistArray):
        raise TypeError("matmul operands must be DistArrays")
    if a.ndim != 2 or b.ndim not in (1, 2):
        raise ValueError(f"unsupported shapes {a.shape} @ {b.shape}")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    a = _rows_dist_of(a)
    out_shape = (a.shape[0],) if b.ndim == 1 else (a.shape[0], b.shape[1])
    lists = [a.dist.indices_for(w) for w in range(a.dist.nworkers)]
    out_dist = ArbitraryDistribution(out_shape, 0, lists, validate=False)
    out_id = a.ctx.new_array_id()
    results = a.ctx.call_local(
        "__odin_matmul__",
        (("array", a.array_id), ("array", b.array_id),
         ("value", b.dist)), {}, out_id=out_id, out_dist=out_dist)
    if {tag for tag, _p in results} != {"stored"}:
        raise AssertionError("matmul workers failed to store result blocks")
    dtype = np.result_type(a.dtype, b.dtype)
    return DistArray(a.ctx, out_id, out_dist, dtype)


def _concat_kernel(*block_ids_and_axis):
    from .context import worker_state
    *ids, axis = block_ids_and_axis
    state = worker_state()
    blocks = [state.get(i)[0] for i in ids]
    return np.concatenate(blocks, axis=axis)


local_registry["__odin_concat__"] = _concat_kernel


def concatenate(arrays, axis: int = 0) -> DistArray:
    """Concatenate distributed arrays along their distributed axis.

    When every operand is block-distributed along *axis*, each worker just
    concatenates its local blocks -- zero communication; other layouts are
    redistributed first.
    """
    arrays = list(arrays)
    if not arrays:
        raise ValueError("need at least one array")
    if any(not isinstance(a, DistArray) for a in arrays):
        raise TypeError("concatenate operands must be DistArrays")
    ndim = arrays[0].ndim
    axis = int(axis) % ndim
    for a in arrays[1:]:
        if a.ndim != ndim:
            raise ValueError("operands must share dimensionality")
        if tuple(s for i, s in enumerate(a.shape) if i != axis) != \
                tuple(s for i, s in enumerate(arrays[0].shape)
                      if i != axis):
            raise ValueError("non-concatenated extents must match")
    ctx = arrays[0].ctx
    # normalize: everything block-distributed along the concat axis
    keepalive = []
    normalized = []
    for a in arrays:
        if not (isinstance(a.dist, BlockDistribution)
                and a.dist.axis == axis):
            a = a.redistribute(BlockDistribution(a.shape, axis,
                                                 ctx.nworkers))
            keepalive.append(a)
        normalized.append(a)
    # a compact descriptor built from the (small) part distributions:
    # worker w holds [a's w-block, b's w-block, ...] locally
    out_dist = ConcatDistribution([a.dist for a in normalized], axis)
    out_id = ctx.new_array_id()
    specs = tuple(("value", a.array_id) for a in normalized) + \
        (("value", axis),)
    results = ctx.call_local("__odin_concat__", specs, {},
                             out_id=out_id, out_dist=out_dist)
    if {tag for tag, _p in results} != {"stored"}:
        raise AssertionError("concatenate failed to store result blocks")
    dtype = np.result_type(*(a.dtype for a in arrays))
    del keepalive
    return DistArray(ctx, out_id, out_dist, dtype)


def dot(a: DistArray, b: DistArray):
    """NumPy-style dot: inner product for 1-D operands, matmul otherwise."""
    if a.ndim == 1 and b.ndim == 1:
        if a.shape != b.shape:
            raise ValueError(f"shape mismatch: {a.shape} . {b.shape}")
        return (a * b).sum()
    return matmul(a, b)


# ----------------------------------------------------------------------
# distributed sorting (parallel sample sort)
# ----------------------------------------------------------------------
def _sample_sort_kernel(block, nsamples):
    """Worker side of sample sort.

    1. sort locally;
    2. contribute regular samples; allgather them and pick P-1 splitters;
    3. partition the local data by splitter and alltoall the buckets;
    4. merge received runs; report the new local count.
    """
    comm = worker_comm()
    P = comm.size
    local = np.sort(np.asarray(block).reshape(-1))
    if len(local):
        idx = np.linspace(0, len(local) - 1, nsamples).astype(np.int64)
        samples = local[idx]
    else:
        samples = local
    all_samples = np.sort(np.concatenate(comm.allgather(samples)))
    if P > 1 and len(all_samples):
        # exactly P-1 splitters, indices clamped into range
        idx = (np.arange(1, P) * len(all_samples)) // P
        splitters = all_samples[np.clip(idx, 0, len(all_samples) - 1)]
        bounds = np.searchsorted(local, splitters, side="right")
        pieces = np.split(local, bounds)
    else:
        # degenerate: a single worker, or nothing anywhere
        pieces = [local] + [local[:0]] * (P - 1)
    received = comm.alltoall(pieces)
    mine = [r for r in received if len(r)]
    if mine:
        merged = np.sort(np.concatenate(mine))
    else:
        merged = local[:0]
    return merged


def _sample_sort_store(block, nsamples, out_id):
    """Sort, keep the merged run in this worker's table, report its size
    (only the count crosses back to the driver)."""
    from .context import worker_state
    merged = _sample_sort_kernel(block, nsamples)
    worker_state().arrays[out_id] = (np.ascontiguousarray(merged), None)
    return int(len(merged))


local_registry["__odin_sample_sort__"] = _sample_sort_store


def sort(a: DistArray, oversample: int = 32) -> DistArray:
    """Globally sort a 1-D distributed array (parallel sample sort).

    Workers sort locally, agree on splitters from a regular sample,
    exchange buckets worker-to-worker, and merge.  The result is block
    distributed with data-dependent (approximately balanced) counts; the
    driver sees only the per-worker counts.
    """
    if a.ndim != 1:
        raise ValueError("sort supports 1-D arrays")
    ctx = a.ctx
    nsamples = max(2, min(oversample, max(2, a.shape[0] // ctx.nworkers)))
    out_id = ctx.new_array_id()
    results = ctx.call_local(
        "__odin_sample_sort__",
        (("array", a.array_id), ("value", nsamples),
         ("value", out_id)), {}, out_id=None)
    counts = [int(payload) for _tag, payload in results]
    from . import opcodes
    dist = BlockDistribution((sum(counts),), 0, ctx.nworkers,
                             counts=counts)
    ctx.run(opcodes.SET_DIST, out_id, dist)
    return DistArray(ctx, out_id, dist, a.dtype)
