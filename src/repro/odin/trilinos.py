"""ODIN <-> PyTrilinos interoperability (paper section III-E).

"ODIN arrays are designed to be optionally compatible with Trilinos
distributed Vectors and MultiVectors and their associated global-to-local
mapping class."

The bridge is zero-copy in spirit: an ODIN distribution along axis 0 *is*
a Tpetra map (same global-to-local assignment), so conversion runs inside
an ``@odin.local``-style worker op -- each worker wraps its block as the
local segment of a Tpetra vector on the worker communicator.  On top of
that, :func:`solve` lets a driver-side user hand ODIN arrays directly to
the Krylov/AMG stack of :mod:`repro.solvers`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import tpetra
from ..teuchos import ParameterList
from .array import DistArray
from .context import local_registry, worker_comm, worker_index
from .creation import zeros as _odin_zeros
from .distribution import BlockDistribution, Distribution

__all__ = ["dist_to_map", "map_to_dist", "solve", "matvec"]


def dist_to_map(dist: Distribution, comm) -> tpetra.Map:
    """The Tpetra map equivalent to an axis-0 ODIN distribution.

    Called on a worker with the worker communicator.
    """
    if dist.ndim != 1:
        raise ValueError("only 1-D arrays map onto Tpetra vectors")
    my_gids = dist.indices_for(comm.rank)
    return tpetra.Map(dist.axis_length, my_gids, comm, kind=dist.kind
                      if dist.kind in ("contiguous",) else "arbitrary")


def map_to_dist(map_: tpetra.Map, nworkers: int) -> Distribution:
    """An ODIN distribution equivalent to a Tpetra map (driver side).

    Requires the map's gid lists, so it is built from per-worker lists
    gathered by the caller.
    """
    raise NotImplementedError(
        "construct distributions directly; maps are worker-side objects")


# ----------------------------------------------------------------------
# worker-side kernels registered in the ODIN namespace
# ----------------------------------------------------------------------
def _solve_kernel(b_block, x0_block, matrix_name, matrix_params,
                  solver_params, dist):
    """Runs on every worker: assemble the operator on the worker comm,
    solve collectively, return the local solution block."""
    from .. import galeri, solvers

    comm = worker_comm()
    m = dist_to_map(dist, comm)
    A = galeri.create_matrix(matrix_name, comm, map_=m, **matrix_params)
    b = tpetra.Vector(m)
    b.local_view[...] = b_block
    x = tpetra.Vector(m)
    x.local_view[...] = x0_block
    prec_name = solver_params.pop("Preconditioner", "None")
    prec = solvers.create_preconditioner(prec_name, A) \
        if prec_name not in (None, "None", "none") else None
    plist = ParameterList("AztecOO")
    for key, value in solver_params.items():
        plist.set(key, value)
    result = solvers.AztecOO(A, prec=prec, params=plist).iterate(b, x=x)
    info = {"converged": result.converged,
            "iterations": result.iterations,
            "residual": result.residual_norm}
    return result.x.local_view.copy(), info


local_registry["__odin_trilinos_solve__"] = _solve_kernel


def _matvec_kernel(x_block, matrix_name, matrix_params, dist):
    from .. import galeri

    comm = worker_comm()
    m = dist_to_map(dist, comm)
    A = galeri.create_matrix(matrix_name, comm, map_=m, **matrix_params)
    x = tpetra.Vector(m)
    x.local_view[...] = x_block
    return (A @ x).local_view.copy()


local_registry["__odin_trilinos_matvec__"] = _matvec_kernel


# ----------------------------------------------------------------------
# driver-side API
# ----------------------------------------------------------------------
def solve(matrix_name: str, b: DistArray,
          x0: Optional[DistArray] = None,
          matrix_params: Optional[dict] = None,
          solver: str = "CG", preconditioner: str = "None",
          tol: float = 1e-8, maxiter: int = 1000):
    """Solve ``A x = b`` where A is a Galeri operator and b an ODIN array.

    This is the paper's headline integration: "easily initialize a problem
    with NumPy-like ODIN distributed arrays and then pass those arrays to
    a PyTrilinos solution algorithm, leveraging Trilinos optimizations and
    scalability."  Returns ``(x, info)`` with x an ODIN DistArray.
    """
    if b.ndim != 1:
        raise ValueError("b must be 1-D")
    x0 = x0 if x0 is not None else _odin_zeros(
        b.shape, dtype=b.dtype, ctx=b.ctx)
    if not x0.dist.same_as(b.dist):
        x0 = x0.redistribute(b.dist)
    solver_params = {"Solver": solver, "Tolerance": tol,
                     "Max Iterations": maxiter,
                     "Preconditioner": preconditioner}
    out_id = b.ctx.new_array_id()
    results = b.ctx.call_local(
        "__odin_trilinos_solve__",
        (("array", b.array_id), ("array", x0.array_id),
         ("value", matrix_name), ("value", matrix_params or {}),
         ("value", solver_params), ("value", b.dist)),
        {}, out_id=out_id)
    blocks_info = [payload for _tag, payload in results]
    info = blocks_info[0][1]
    # assemble the solution as a new DistArray via scatterless storage:
    # each worker returned (block, info); re-store the block under out_id
    x = _store_blocks(b, [bi[0] for bi in blocks_info])
    return x, info


def matvec(matrix_name: str, x: DistArray,
           matrix_params: Optional[dict] = None) -> DistArray:
    """y = A x with A a distributed Galeri operator and x an ODIN array."""
    results = x.ctx.call_local(
        "__odin_trilinos_matvec__",
        (("array", x.array_id), ("value", matrix_name),
         ("value", matrix_params or {}), ("value", x.dist)),
        {}, out_id=None)
    blocks = [payload for _tag, payload in results]
    return _store_blocks(x, blocks)


def _store_blocks(like: DistArray, blocks) -> DistArray:
    """Create a DistArray from per-worker blocks conforming to *like*."""
    full = np.empty(like.shape, dtype=blocks[0].dtype)
    for w, block in enumerate(blocks):
        full[like.dist.indices_for(w)] = block
    out_id = like.ctx.new_array_id()
    like.ctx.scatter(out_id, like.dist, full)
    return DistArray(like.ctx, out_id, like.dist, full.dtype)
