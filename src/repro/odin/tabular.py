"""Distributed tabular data and Map-Reduce (paper section III-I).

"ODIN supports distributed structured or tabular data sets, building on
the powerful dtype features of NumPy. In combination with ODIN's
distributed function interface, distributed structured arrays provide the
fundamental components for parallel Map-Reduce style computations."

A table is simply a 1-D DistArray with a structured dtype; this module
adds the record-wise map / filter / group-by-aggregate operators on top.
Shuffles run worker-to-worker (hash partitioning over the worker comm);
only row *counts* travel through the ODIN process.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from . import opcodes
from .array import DistArray
from .context import OdinContext, get_context, local_registry
from .creation import array as _dist_array
from .distribution import BlockDistribution

__all__ = ["from_records", "map_records", "filter_records",
           "group_aggregate", "compress"]


def from_records(records, dtype=None,
                 ctx: Optional[OdinContext] = None) -> DistArray:
    """Distribute a structured array (or list of tuples + dtype)."""
    rec = np.asarray(records, dtype=dtype)
    if rec.dtype.names is None:
        raise TypeError("from_records expects a structured dtype")
    return _dist_array(rec, ctx=ctx)


def _transform(a: DistArray, fn: Callable, fname_prefix: str) -> DistArray:
    """Run a block-wise transform whose output length may differ."""
    fname = f"__{fname_prefix}_{id(fn)}__"
    local_registry[fname] = fn
    try:
        out_id = a.ctx.new_array_id()
        results = a.ctx.run(opcodes.TRANSFORM, a.array_id, out_id, fname)
    finally:
        # under recovery the op-log may replay this TRANSFORM later, so
        # the function must stay resolvable by name
        if not getattr(a.ctx, "_recover", False):
            local_registry.pop(fname, None)
    counts = [c for c, _dt in results]
    dtype = np.dtype(results[0][1])
    total = int(sum(counts))
    dist = BlockDistribution((total,), 0, a.dist.nworkers,
                             counts=[int(c) for c in counts])
    a.ctx.run(opcodes.SET_DIST, out_id, dist)
    return DistArray(a.ctx, out_id, dist, dtype)


def map_records(fn: Callable[[np.ndarray], np.ndarray],
                a: DistArray) -> DistArray:
    """Map: apply *fn* to each worker's record block (the "map" phase).

    *fn* receives a structured block and returns an equal-or-different
    length block; rows never move between workers.
    """
    return _transform(a, fn, "map")


def filter_records(predicate: Callable[[np.ndarray], np.ndarray],
                   a: DistArray) -> DistArray:
    """Keep the rows where *predicate(block)* is True (vectorized)."""
    def fn(block):
        return block[np.asarray(predicate(block), dtype=bool)]
    return _transform(a, fn, "filter")


def compress(mask: DistArray, a: DistArray) -> DistArray:
    """Boolean-mask selection ``a[mask]`` for 1-D distributed arrays.

    Worker-local compaction followed by the counts-change protocol the
    tabular layer uses; no row ever crosses the wire.
    """
    if a.ndim != 1 or mask.ndim != 1:
        raise ValueError("compress works on 1-D arrays")
    if mask.shape != a.shape:
        raise ValueError("mask and array shapes differ")
    if not mask.dist.same_as(a.dist):
        mask = mask.redistribute(a.dist)
    mask_id = mask.array_id

    def fn(block):
        from .context import worker_state
        mask_block, _d = worker_state().get(mask_id)
        return block[np.asarray(mask_block, dtype=bool)]

    keepalive = mask  # the mask must outlive the transform op
    out = _transform(a, fn, "compress")
    del keepalive
    return out


def group_aggregate(a: DistArray, key_field: str, value_field: str,
                    op: str = "sum") -> DistArray:
    """The "reduce" phase: shuffle rows by key hash, aggregate per key.

    Returns a distributed table with fields ``key`` and ``value``; *op* is
    one of ``sum``, ``count``, ``mean``, ``min``, ``max``.
    """
    if a.dtype.names is None or key_field not in a.dtype.names:
        raise ValueError(f"array has no field {key_field!r}")
    if op != "count" and value_field not in a.dtype.names:
        raise ValueError(f"array has no field {value_field!r}")
    out_id = a.ctx.new_array_id()
    results = a.ctx.run(opcodes.GROUPBY, a.array_id, out_id, key_field,
                        value_field if op != "count" else key_field, op)
    counts = [c for c, _dt in results]
    dtype = np.dtype(results[0][1])
    total = int(sum(counts))
    dist = BlockDistribution((total,), 0, a.dist.nworkers,
                             counts=[int(c) for c in counts])
    a.ctx.run(opcodes.SET_DIST, out_id, dist)
    return DistArray(a.ctx, out_id, dist, dtype)
