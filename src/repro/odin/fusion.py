"""Seamless-backed loop fusion kernels (the Fig. 2 ODIN->Seamless edge).

A fused postfix program is compiled once into a single native elementwise
loop via :func:`repro.seamless.compile_elementwise`, then applied to each
worker's local blocks -- true loop fusion with no intermediate temporaries,
which is the paper's promise for ODIN expression optimization.

When no C compiler is available the caller falls back to the NumPy stack
machine in :mod:`repro.odin.worker`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["compiled_kernel"]

_cache: Dict[Tuple, Optional[Callable]] = {}
_lock = threading.Lock()


def compiled_kernel(program: Tuple[tuple, ...],
                    n_inputs: int) -> Optional[Callable]:
    """A callable ``kernel(blocks) -> ndarray`` for a fused program,
    or None when native compilation is unavailable."""
    key = (program, n_inputs)
    with _lock:
        if key in _cache:
            return _cache[key]
        kernel = _build(program, n_inputs)
        _cache[key] = kernel
        return kernel


def _build(program, n_inputs: int) -> Optional[Callable]:
    try:
        from ..seamless import compile_elementwise
    except Exception:
        return None
    try:
        fn = compile_elementwise(program, n_inputs)
    except Exception:
        return None
    if fn is None:
        return None

    def kernel(blocks: List[np.ndarray]) -> np.ndarray:
        flats = [np.ascontiguousarray(b, dtype=np.float64).reshape(-1)
                 for b in blocks]
        n = flats[0].size
        out = np.empty(n, dtype=np.float64)
        fn(out, *flats)
        return out.reshape(blocks[0].shape)

    return kernel
