"""repro.odin -- Optimized Distributed NumPy.

The paper's ODIN: a distributed array data structure with two modes of
interaction --

**Global mode** (section III-B): DistArrays behave like NumPy arrays while
computation happens on worker nodes::

    from repro import odin
    odin.init(nworkers=4)

    x = odin.linspace(1, 2 * 3.14159, 10**6)
    y = odin.sin(x)
    dy = y[1:] - y[:-1]          # distributed slicing + halo traffic
    dydx = dy / (x[1] - x[0])

**Local mode** (section III-C): ``@odin.local`` functions run per-worker on
the local segment::

    @odin.local
    def hypot(x, y):
        return odin.sqrt(x**2 + y**2)

    h = hypot(x, y)

Plus: distribution control (block/cyclic/block-cyclic/arbitrary, any axis,
nonuniform), lazy expressions with loop fusion (``odin.lazy``), automatic
communication-minimizing redistribution with a ``strategy`` override,
distributed I/O, tabular Map-Reduce, and Trilinos interop
(:mod:`repro.odin.trilinos`).
"""

from . import tabular, trilinos
from .array import DistArray
from .context import (OdinContext, get_context, init, local_registry,
                      shutdown, worker_comm, worker_index, worker_state)
from .creation import (arange, array, empty, empty_like, fromfunction, full,
                       linspace, load, ones, ones_like, rand, randn, random,
                       zeros, zeros_like)
from .distribution import (ArbitraryDistribution, BlockCyclicDistribution,
                           BlockDistribution, CyclicDistribution,
                           Distribution, GridDistribution,
                           make_distribution)
from .expr import LazyExpr, evaluate, is_lazy, lazy
from .linalg import concatenate, dot, matmul, sort
from .tabular import compress
from .io import load as load_dataset
from .io import load_shared, save, save_shared
from .local import LocalFunction, local
from .reductions import (amax, amin, argmax, argmin,  # noqa: A004
                         bincount, histogram, mean, prod, std, sum)
from .ufuncs import (BINARY_NAMES, TERNARY_NAMES, UNARY_NAMES,
                     binary_ufunc, choose_strategy, current_strategy,
                     nary_ufunc, redistribution_cost, strategy,
                     unary_ufunc, _make_module_ufuncs)

# install odin.sqrt, odin.sin, odin.add, ... at package level
_make_module_ufuncs(globals())

__all__ = [
    # lifecycle
    "init", "shutdown", "get_context", "OdinContext",
    "worker_comm", "worker_index", "worker_state", "local_registry",
    # array + creation
    "DistArray", "zeros", "ones", "empty", "full", "arange", "linspace",
    "random", "rand", "randn", "array", "fromfunction", "zeros_like",
    "ones_like", "empty_like", "load",
    # distributions
    "Distribution", "BlockDistribution", "CyclicDistribution",
    "BlockCyclicDistribution", "ArbitraryDistribution", "GridDistribution",
    "make_distribution",
    # local mode
    "local", "LocalFunction",
    # lazy / fusion
    "lazy", "evaluate", "LazyExpr", "is_lazy",
    # strategies
    "strategy", "current_strategy", "choose_strategy",
    "redistribution_cost", "unary_ufunc", "binary_ufunc",
    "UNARY_NAMES", "BINARY_NAMES", "TERNARY_NAMES", "nary_ufunc",
    # reductions / linalg
    "sum", "prod", "amin", "amax", "mean", "std", "dot", "matmul",
    "histogram", "bincount", "concatenate", "argmin", "argmax", "sort",
    # io / tabular / trilinos
    "save", "load_dataset", "save_shared", "load_shared", "tabular",
    "trilinos", "compress",
] + UNARY_NAMES + BINARY_NAMES + TERNARY_NAMES
