"""The ODIN process / worker-node runtime (Fig. 1 of the paper).

The end user interacts with the *ODIN process* (the calling thread, rank 0
of an internal world).  Worker nodes (ranks 1..N) sit in a service loop
receiving small control messages -- an opcode plus index metadata, "at most
tens of bytes" of payload for creation ops -- and perform all array
allocation, computation and data movement themselves.  Workers own a
private sub-communicator so they "can communicate directly with each other,
bypassing the ODIN process", which is how redistribution and halo exchange
avoid making the driver a bottleneck.

Synchronizing ops (GATHER, reductions, anything whose result the driver
needs) round-trip a tiny status gather.  Ops with no meaningful per-worker
result (CREATE, stores, deletes, SCATTER acks) are *batched*: they are
broadcast fire-and-forget within an epoch, and any worker exception is
recorded and delivered -- with the originating op named -- at the next
synchronizing op or explicit :meth:`OdinContext.flush`.  A sequence of N
store ops therefore costs N broadcasts plus one gather instead of N of
each.  Set ``REPRO_ODIN_BATCH=0`` (or ``batch=False``) for the classic
op-per-round-trip behavior.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import weakref
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..metrics import REGISTRY as _MX
from ..mpi.comm import Intracomm
from ..mpi.errors import (AbortError, CommRevokedError, DeadlockError,
                          InjectedFault, RankFailure)
from ..mpi.runtime import RankContext, World
from ..mpi.transport import resolve_backend
from ..obs import causal as _CZ
from ..obs import status as _OBS
from ..obs.flight import FLIGHT as _FL
from ..recover import OpLog, remap_op_dists
from ..trace import TRACER as _TR
from .distribution import BlockDistribution, Distribution
from . import opcodes
from .worker import WorkerState, execute_op, _ship_function

__all__ = ["OdinContext", "init", "shutdown", "get_context",
           "worker_comm", "worker_index", "local_registry"]

# Registry of @odin.local functions.  The decorator "broadcasts the
# resulting function object to all worker nodes and injects it into their
# namespace" -- with thread workers, the namespace is a shared registry and
# the broadcast ships the (tiny) name, preserving the control-message
# economics of the paper's design.
local_registry: Dict[str, Callable] = {}

# Live process-backend contexts: @odin.local registration must reach
# their already-forked workers via REGISTER_LOCAL (thread contexts share
# local_registry by reference and need no broadcast).
_live_process_contexts: "weakref.WeakSet[OdinContext]" = weakref.WeakSet()

_worker_tls = threading.local()

# Opcodes whose per-worker result is always None: safe to fire-and-forget
# within a batched epoch.  SAVE and LOAD are deliberately absent (external
# file side effects should fail at the call site); result-bearing ops
# synchronize.
ASYNC_OPCODES = frozenset({
    opcodes.CREATE, opcodes.DELETE, opcodes.DELETE_MANY, opcodes.UFUNC,
    opcodes.FUSED, opcodes.REDIST, opcodes.TRANSPOSE, opcodes.SLICE,
    opcodes.SETITEM, opcodes.SET_DIST,
})

# an epoch auto-flushes after this many fire-and-forget ops so error
# delivery latency (and the workers' deferred lists) stay bounded
_EPOCH_CAP = 512


def _batching_default() -> bool:
    return os.environ.get("REPRO_ODIN_BATCH", "1") != "0"


def _recover_default() -> bool:
    return os.environ.get("REPRO_ODIN_RECOVER", "0") == "1"


def _ckpt_every_default() -> int:
    """Auto-checkpoint period in logged ops (0 = only explicit ckpts)."""
    try:
        return int(os.environ.get("REPRO_ODIN_CKPT", "0"))
    except ValueError:
        return 0


# Mutating opcodes recorded in the recovery op-log.  Read-only ops
# (GATHER, FETCH, PLAN_STATS) and external side effects (SAVE) replay as
# no-ops for state reconstruction, so they are skipped.  REDUCE is logged
# because its local-axis variant stores a result array.
_LOGGED_OPCODES = frozenset({
    opcodes.CREATE, opcodes.DELETE, opcodes.DELETE_MANY, opcodes.UFUNC,
    opcodes.FUSED, opcodes.REDIST, opcodes.TRANSPOSE, opcodes.SLICE,
    opcodes.SETITEM, opcodes.SET_DIST, opcodes.REDUCE, opcodes.CALL_LOCAL,
    opcodes.TRANSFORM, opcodes.GROUPBY, opcodes.LOAD,
})


def worker_comm() -> Intracomm:
    """The workers-only communicator; valid inside worker execution
    (e.g. within an ``@odin.local`` function)."""
    comm = getattr(_worker_tls, "comm", None)
    if comm is None:
        raise RuntimeError("worker_comm() is only available on ODIN workers "
                           "(inside @odin.local functions)")
    return comm


def worker_index() -> int:
    """This worker's index in 0..nworkers-1 (inside worker execution)."""
    idx = getattr(_worker_tls, "index", None)
    if idx is None:
        raise RuntimeError("worker_index() is only available on ODIN workers")
    return idx


def worker_state():
    """This worker's :class:`~repro.odin.worker.WorkerState` (inside
    worker execution); gives local functions access to other arrays'
    local blocks by id."""
    state = getattr(_worker_tls, "state", None)
    if state is None:
        raise RuntimeError("worker_state() is only available on ODIN "
                           "workers")
    return state


# ----------------------------------------------------------------------
# worker side (shared by the thread and process backends)
# ----------------------------------------------------------------------
def _worker_loop(ctx: RankContext, nranks: int, recover: bool,
                 is_closing: Callable[[], bool]) -> None:
    """One worker's life: serve ops until SHUTDOWN, recovering across
    communicator generations when *recover* is set.

    Free function on purpose: thread workers call it with the driver's
    ``self``-derived closure, process workers from a forked interpreter
    where no ``OdinContext`` exists at all.
    """
    world = ctx.world
    windex = ctx.rank - 1
    comm: Optional[Intracomm] = None
    state: Optional[WorkerState] = None
    while True:  # one iteration per communicator generation
        try:
            if comm is None:
                # setup is inside the try: a chaos-scripted crash can
                # fire in the startup split's collectives just as well
                # as mid-loop
                comm = Intracomm(ctx, list(range(nranks)))
                wcomm = comm.split(0, windex)
                state = WorkerState(index=windex, comm=wcomm,
                                    registry=local_registry,
                                    full_comm=comm)
                _worker_tls.comm = wcomm
                _worker_tls.index = windex
                _worker_tls.state = state
            _worker_serve(comm, state)
            return  # clean SHUTDOWN
        except InjectedFault as exc:
            if recover:
                # fail-stop: this rank dies, survivors see typed
                # RankFailure and negotiate a shrink
                world.mark_failed(ctx.rank, exc)
                return
            # chaos-scripted rank crash without recovery: die loudly so
            # the driver and the surviving workers fail fast with
            # AbortError instead of waiting out the deadlock timeout
            world.abort(ctx.rank, exc)
            return
        except (RankFailure, CommRevokedError):
            if not recover or is_closing():
                return  # teardown, or nobody will coordinate
            # survivor: poison both comms so every other survivor
            # unblocks (the driver only revokes the full comm; a peer
            # blocked in a worker-comm collective needs this revoke),
            # then rendezvous on the shrunk group
            if state is not None:
                state.comm.revoke()
            if comm is not None:
                comm.revoke()
                try:
                    new_full = comm.shrink()
                except DeadlockError:
                    # process backend, driver shutting down: nobody will
                    # complete the shrink agreement -- exit, the parent
                    # reaps us
                    return
                new_wcomm = new_full.split(0, new_full.rank)
                new_index = new_full.rank - 1
                if state is None:
                    state = WorkerState(index=new_index,
                                        comm=new_wcomm,
                                        registry=local_registry,
                                        full_comm=new_full)
                else:
                    state.index = new_index
                    state.comm = new_wcomm
                    state.full_comm = new_full
                    state.plan_cache.clear()
                comm = new_full
                _worker_tls.comm = new_wcomm
                _worker_tls.index = new_index
                _worker_tls.state = state
                continue
            return


def _shutdown_stats(comm: Intracomm):
    """Per-worker observability payload shipped in the SHUTDOWN gather.

    With thread workers the driver already shares counters and trace
    buffers, so this is None.  A process worker's counters and trace
    events live in its own interpreter and would die with it -- ship
    snapshots back for the driver-side merge (``CommCounters.absorb`` /
    ``Tracer.absorb``).
    """
    world = comm.context.world
    if not getattr(world, "is_process_backend", False):
        return None
    snap = world.counters[comm.context.rank].snapshot()
    events = _TR.events() if _TR.enabled else None
    return ("proc-stats", snap, events)


def _worker_serve(comm: Intracomm, state: WorkerState) -> None:
    """The worker service loop; returns on SHUTDOWN, raises on faults.

    Deferred errors from fire-and-forget ops in the current epoch are
    (op_id, op name, exception) triples.  The op_id comes off the
    TAGGED wire envelope, so it matches the driver's _op_seq clock by
    construction -- across batching and across recovery replays,
    which re-broadcast under fresh ids.

    The causal identity stays published until the next envelope
    arrives: the blocking wait for op N+1 is attributed to op N (a
    deliberate smear -- that wait is idle time op N's epoch left
    behind) and the result gather for op N is correctly tagged N.
    """
    deferred: List[Tuple[int, str, Exception]] = []
    oid = None
    while True:
        op = comm.bcast(None, root=0)
        if op[0] == opcodes.TAGGED:
            _code, oid, eid, op = op
            _CZ.set_current(oid, eid)
        fire_and_forget = op[0] == opcodes.ASYNC
        if fire_and_forget:
            op = op[1]
        if op[0] == opcodes.SHUTDOWN:
            comm.gather(("ok", _shutdown_stats(comm), deferred), root=0)
            return
        if op[0] == opcodes.FLUSH:
            comm.gather(("ok", None, deferred), root=0)
            deferred = []
            continue
        try:
            result = execute_op(state, op)
            status = ("ok", result)
        except InjectedFault:
            # scripted chaos crash: the rank dies, it does not
            # report a recoverable op error
            raise
        except (RankFailure, CommRevokedError):
            # a peer died mid-op: enter recovery, do not report this
            # as an op error
            raise
        except Exception as exc:  # noqa: BLE001 - report to driver
            if fire_and_forget:
                deferred.append((oid, str(op[0]), exc))
                continue
            status = ("err", exc)
        if fire_and_forget:
            continue
        comm.gather(status + (deferred,), root=0)
        deferred = []


def _process_worker_main(mesh, windex: int, nworkers: int, recover: bool,
                         timeout: Optional[float]) -> None:
    """Entry point of one forked ODIN worker process."""
    from ..mpi.transport.process_backend import ProcessWorld

    rank = windex + 1
    socks = mesh.activate(rank)
    world = ProcessWorld(nworkers + 1, rank, mesh.session_id, socks,
                         timeout=timeout)
    if _TR.enabled:
        _TR.clear()  # drop fork-inherited events; ship only our own
    ctx = RankContext(world, rank)
    ctx.bind()
    try:
        _worker_loop(ctx, nworkers + 1, recover, is_closing=lambda: False)
    except Exception:  # noqa: BLE001 - world aborted; driver already knows
        pass
    finally:
        ctx.unbind()
        world.close()


class OdinContext:
    """One driver plus *nworkers* persistent workers.

    ``backend="thread"`` (default) runs workers as daemon threads in the
    calling process -- zero-copy mailboxes, shared registries, no real
    parallelism for pure-Python op streams (the GIL).  ``backend="process"``
    forks one OS process per worker over the multiprocess transport
    (:mod:`repro.mpi.transport`): true parallelism, shared-memory bulk
    frames, and *real* fail-stop -- a SIGKILLed worker surfaces as the
    same typed :class:`RankFailure` the thread backend injects.
    """

    def __init__(self, nworkers: int, timeout: Optional[float] = None,
                 batch: Optional[bool] = None,
                 recover: Optional[bool] = None,
                 ckpt_every: Optional[int] = None,
                 backend: Optional[str] = None):
        if nworkers < 1:
            raise ValueError("need at least one worker")
        self.nworkers = nworkers
        self._backend = resolve_backend(backend)
        # the recover flag is needed before the workers start (process
        # workers take it across the fork as an argument)
        self._recover = _recover_default() if recover is None \
            else bool(recover)
        self._threads: List[threading.Thread] = []
        self._procs: List[Any] = []
        if self._backend == "process":
            self.world = self._start_process_workers(nworkers, timeout)
        else:
            self.world = World(nworkers + 1, timeout=timeout)
        self._driver_ctx = RankContext(self.world, 0)
        self.comm = Intracomm(self._driver_ctx,
                              list(range(nworkers + 1)))
        self._next_array_id = 0
        self._alive = True
        self._pending_deletes: List[int] = []
        self._batch = _batching_default() if batch is None else bool(batch)
        self._op_seq = 0       # control ops broadcast so far; doubles as
        #                        the causal op_id of the latest broadcast
        self._epoch_id = 0     # synchronizing gathers completed so far
        self._epoch_len = 0    # fire-and-forget ops since the last sync
        self._last_plan_stats: Optional[Dict[str, Any]] = None
        self._lock = threading.RLock()
        # -- fault recovery (repro.recover) --
        self._ckpt_every = _ckpt_every_default() if ckpt_every is None \
            else int(ckpt_every)
        self._oplog: Optional[OpLog] = OpLog() if self._recover else None
        self._ckpt_version = 0   # 0 = empty baseline (replay the full log)
        # checkpoint-generation bookkeeping: blocks in a checkpoint are
        # laid out for the worker count at checkpoint time.  _ckpt_map[j]
        # is current worker j's index in that generation, _ckpt_dead the
        # generation indices whose owner has since died; both compose
        # across repeated shrinks until a new checkpoint re-anchors them.
        self._ckpt_map: List[int] = list(range(nworkers))
        self._ckpt_dead: set = set()
        self._ckpt_n = nworkers
        self._recovering = False
        self._closing = False
        # live DistArray handles, re-pointed after a recovery replay
        self._handles: "weakref.WeakValueDictionary[int, Any]" = \
            weakref.WeakValueDictionary()
        # live observability: the creating thread is the "driver" lane
        # for the sampling profiler, and the context is visible on the
        # /status endpoint (started here iff REPRO_OBS_PORT is set)
        _CZ.note_rank_thread("driver")
        _OBS.register_context(self)
        if self._backend == "process":
            _live_process_contexts.add(self)
        else:
            self._threads = [
                threading.Thread(target=self._worker_main, args=(w,),
                                 name=f"odin-worker-{w}", daemon=True)
                for w in range(nworkers)
            ]
            for t in self._threads:
                t.start()
            if self._recover:
                # lease registration: a worker thread that dies without
                # reporting (any death mode, not just InjectedFault) is
                # detected as a failed rank by blocked peers
                for w, t in enumerate(self._threads):
                    self.world.register_rank_thread(w + 1, t)
        # Workers split off their own comm; the driver passes a negative
        # color so it is excluded (split over the full comm, collective).
        # A chaos crash can land inside this startup collective; recovery
        # shrinks around it exactly as it would mid-program.
        try:
            self.comm.split(-1, 0)
        except (RankFailure, CommRevokedError) as exc:
            if not self._recover:
                raise
            self._recover_and_replay(exc)

    def _start_process_workers(self, nworkers: int,
                               timeout: Optional[float]):
        """Fork the worker processes and claim rank 0 of the mesh.

        Order matters: the mesh is created (all socketpairs open), every
        worker forks with the full fd set, and only then does the parent
        activate rank 0 -- activating first would hand the children
        already-closed fds.  The atexit sweep is registered after the
        forks so exiting children never sweep the live session.
        """
        from ..mpi.transport.process_backend import (ProcessMesh,
                                                     ProcessWorld)
        from ..mpi.transport.shm import register_atexit_sweep

        mesh = ProcessMesh(nworkers + 1)
        mp = multiprocessing.get_context("fork")
        try:
            self._procs = [
                mp.Process(target=_process_worker_main,
                           args=(mesh, w, nworkers, self._recover,
                                 timeout),
                           name=f"odin-worker-{w}", daemon=True)
                for w in range(nworkers)
            ]
            for p in self._procs:
                p.start()
        except BaseException:
            mesh.close_all()
            raise
        socks = mesh.activate(0)
        register_atexit_sweep(mesh.session_id)
        world = ProcessWorld(nworkers + 1, 0, mesh.session_id, socks,
                             timeout=timeout)
        # process leases: a worker that dies without reporting (SIGKILL,
        # fatal signal) is detected by blocked waiters on their next
        # 0.25 s mailbox wake -- real fail-stop, not simulated
        for w, p in enumerate(self._procs):
            world.register_rank_process(w + 1, p)
        return world

    # ------------------------------------------------------------------
    # worker side (thread backend entry; the loop itself is module-level)
    # ------------------------------------------------------------------
    def _worker_main(self, windex: int) -> None:
        ctx = RankContext(self.world, windex + 1)
        ctx.bind()
        try:
            _worker_loop(ctx, len(self._threads) + 1, self._recover,
                         is_closing=lambda: self._closing)
        except Exception:
            # runtime failure (e.g. world aborted): leave quietly, the
            # driver will see the abort on its own next operation.
            return
        finally:
            ctx.unbind()

    # ------------------------------------------------------------------
    # driver side
    # ------------------------------------------------------------------
    def _bcast(self, op) -> None:
        """Broadcast one wire op, advancing the epoch clock (lock held).

        Every op ships inside a TAGGED envelope carrying its causal
        (op_id, epoch_id); op_id is the broadcast sequence number, so
        both ends agree on it by construction -- recovery replays, which
        re-broadcast through this same path, get fresh ids.  The identity
        is published thread-locally *before* the broadcast so the
        broadcast's own collective traffic (and everything else this op
        triggers on the driver thread) is attributed to it.
        """
        self._op_seq += 1
        oid = self._op_seq
        _CZ.set_current(oid, self._epoch_id)
        if _FL.enabled:
            inner = op[1] if op[0] == opcodes.ASYNC else op
            _FL.instant("odin.control", f"bcast:{inner[0]}", rank="driver",
                        op_id=oid, epoch_id=self._epoch_id)
        self.comm.bcast((opcodes.TAGGED, oid, self._epoch_id, op), root=0)

    def _check_alive(self) -> None:
        if not self._alive:
            raise RuntimeError("ODIN context has been shut down")

    def _process_statuses(self, statuses, opname: str) -> List[Any]:
        """Unpack per-worker (tag, payload, deferred) gather statuses.

        Deferred errors from earlier fire-and-forget ops take precedence
        over a failure of the current op (they happened first); among all
        collected errors the one with the smallest op_id is raised,
        annotated with the op (and causal op_id) it came from.
        """
        results = []
        errs: List[Tuple[int, str, Exception]] = []
        for status in statuses[1:]:
            tag, payload, deferred = status
            errs.extend(deferred)
            if tag == "err":
                errs.append((self._op_seq, opname, payload))
                results.append(None)
            else:
                results.append(payload)
        if errs:
            seq, err_op, exc = min(errs, key=lambda e: e[0])
            if seq < self._op_seq and hasattr(exc, "add_note"):
                exc.add_note(
                    f"deferred from batched op {err_op!r} (op_id {seq}); "
                    f"delivered at the next synchronizing op ({opname!r})")
            raise exc
        return results

    def _issue(self, *op) -> List[Any]:
        """Dispatch one op: fire-and-forget when batching allows it,
        otherwise broadcast + collect per-worker results (driver)."""
        if self._batch and op[0] in ASYNC_OPCODES:
            return self._issue_async(op)
        if _TR.enabled or _FL.enabled:
            t0 = _TR.now()
            try:
                out = self._with_recovery(self._issue_impl, *op)
            finally:
                # the causal ids are known only after _bcast ran; after a
                # recovery the retried broadcast's fresh id is current,
                # which is the id the workers executed the op under
                oid, eid = _CZ.current()
                if _TR.enabled:
                    _TR.complete("odin.control", str(op[0]), t0,
                                 rank="driver", nworkers=self.nworkers,
                                 op_id=oid, epoch_id=eid)
                if _FL.enabled:
                    _FL.complete("odin.control", str(op[0]), "driver", t0,
                                 op_id=oid, epoch_id=eid)
        else:
            out = self._with_recovery(self._issue_impl, *op)
        self._log_op(op)
        return out

    def _issue_impl(self, *op) -> List[Any]:
        with self._lock:
            self._check_alive()
            self._drain_pending_deletes()
            self._bcast(op)
            self._epoch_len = 0
            statuses = self.comm.gather(None, root=0)
            self._epoch_id += 1
        return self._process_statuses(statuses, str(op[0]))

    def _issue_async(self, op) -> List[Any]:
        """Fire-and-forget: broadcast only, no result gather.  Errors are
        recorded on the workers and surface at the next synchronizing op."""
        if _TR.enabled or _FL.enabled:
            t0 = _TR.now()
            try:
                self._with_recovery(self._issue_async_impl, op)
            finally:
                oid, eid = _CZ.current()
                if _TR.enabled:
                    _TR.complete("odin.control", f"{op[0]}.async", t0,
                                 rank="driver", nworkers=self.nworkers,
                                 op_id=oid, epoch_id=eid)
                if _FL.enabled:
                    _FL.complete("odin.control", f"{op[0]}.async",
                                 "driver", t0, op_id=oid, epoch_id=eid)
        else:
            self._with_recovery(self._issue_async_impl, op)
        self._log_op(op)
        return [None] * self.nworkers

    def _issue_async_impl(self, op) -> None:
        with self._lock:
            self._check_alive()
            self._drain_pending_deletes()
            self._bcast((opcodes.ASYNC, op))
            self._epoch_len += 1
            if self._epoch_len >= _EPOCH_CAP:
                self._flush_locked()

    def _flush_locked(self) -> None:
        self._bcast((opcodes.FLUSH,))
        self._epoch_len = 0
        statuses = self.comm.gather(None, root=0)
        self._epoch_id += 1
        self._process_statuses(statuses, str(opcodes.FLUSH))

    def flush(self) -> None:
        """Synchronize with the workers and deliver any deferred errors
        from fire-and-forget ops in the current epoch."""
        if not self._alive:
            return
        self._with_recovery(self._flush_impl)

    def _flush_impl(self) -> None:
        with self._lock:
            if not self._alive:
                return
            self._drain_pending_deletes()
            self._flush_locked()

    def _drain_pending_deletes(self) -> None:
        """Free arrays whose handles were garbage collected.

        ``DistArray.__del__`` must not issue ops itself (GC can fire in the
        middle of another op's bcast/gather pair); it enqueues ids here and
        the next user-initiated op flushes them.  With batching the drain
        rides the current epoch as one more fire-and-forget broadcast;
        otherwise it costs its own round trip.  Caller holds the lock.
        """
        if self._pending_deletes:
            ids, self._pending_deletes = self._pending_deletes, []
            if self._oplog is not None and not self._recovering:
                # the drain rides the wire before the op that flushed it,
                # so it must precede that op in the log as well
                self._oplog.record((opcodes.DELETE_MANY, ids))
            if self._batch:
                self._bcast((opcodes.ASYNC, (opcodes.DELETE_MANY, ids)))
                self._epoch_len += 1
            else:
                self._bcast((opcodes.DELETE_MANY, ids))
                self.comm.gather(None, root=0)

    def new_array_id(self) -> int:
        with self._lock:
            self._next_array_id += 1
            return self._next_array_id

    # ------------------------------------------------------------------
    # fault recovery (repro.recover)
    # ------------------------------------------------------------------
    def _log_op(self, op: Tuple) -> None:
        """Record a successfully-issued mutating op for post-crash replay."""
        if (self._oplog is not None and not self._recovering
                and op[0] in _LOGGED_OPCODES):
            self._oplog.record(op)
            self._maybe_auto_ckpt()

    def _maybe_auto_ckpt(self) -> None:
        if (self._ckpt_every > 0 and self._oplog is not None
                and not self._recovering
                and len(self._oplog) >= self._ckpt_every):
            self.checkpoint()

    def checkpoint(self) -> int:
        """Snapshot every live array, mirrored on each worker's ring
        partner (SCR-style partner copy), and truncate the replay log.

        Returns the number of bytes checkpointed across all workers.  A
        crash *during* the checkpoint is safe: workers keep the previous
        version until the new one completes, and the log is only cleared
        on success, so recovery falls back to version ``N-1`` plus the
        full log.
        """
        self._check_alive()
        if self._oplog is None:
            raise RuntimeError(
                "checkpoint() requires recover=True (or "
                "REPRO_ODIN_RECOVER=1) so the op-log half of "
                "checkpoint/replay is maintained")
        version = self._ckpt_version + 1
        t0 = time.perf_counter()
        if _TR.enabled:
            with _TR.span("recover", "checkpoint", rank="driver",
                          version=version):
                sizes = self._with_recovery(self._issue_impl,
                                            opcodes.CKPT, version)
        else:
            sizes = self._with_recovery(self._issue_impl,
                                        opcodes.CKPT, version)
        self._ckpt_version = version
        self._oplog.clear()
        self._ckpt_map = list(range(self.nworkers))
        self._ckpt_dead = set()
        self._ckpt_n = self.nworkers
        nbytes = sum(int(s) for s in sizes)
        if _MX.enabled:
            _MX.inc("recover.checkpoints")
            _MX.inc("recover.ckpt_total_bytes", nbytes)
            _MX.observe("recover.ckpt_seconds",
                        time.perf_counter() - t0)
        return nbytes

    def _with_recovery(self, fn: Callable, *args):
        """Run a driver-side control op; on a worker failure, shrink the
        world, restore state, replay the log, and retry the op.

        Terminates because every recovery round permanently removes at
        least one worker, and an unrecoverable state raises RuntimeError
        (not a fault type) out of the retry loop.
        """
        while True:
            try:
                return fn(*args)
            except (RankFailure, CommRevokedError) as exc:
                if (isinstance(exc, RankFailure)
                        and getattr(exc, "op_id", None) is None):
                    # attribute the failure to the control op in flight;
                    # _bcast published the id before the wire went hot
                    exc.op_id = _CZ.current_op_id()
                    if hasattr(exc, "add_note"):
                        exc.add_note("raised while issuing control op_id "
                                     f"{exc.op_id}")
                if (not self._recover or self._recovering
                        or self._closing or not self._alive):
                    raise
                while True:
                    try:
                        self._recover_and_replay(exc)
                        break
                    except (RankFailure, CommRevokedError) as exc2:
                        # another rank died mid-recovery: go again (the
                        # log was not cleared, the checkpoint stands)
                        exc = exc2
                args = remap_op_dists(args, self.nworkers)

    def _recover_and_replay(self, exc: Exception) -> None:
        """ULFM-style mitigation + state recovery, driver side.

        revoke -> shrink -> re-split the worker comm -> RESTORE (workers
        rebuild checkpointed arrays from own + partner blocks and
        redistribute onto the survivor layout) -> replay the op-log ->
        re-point live DistArray handles at their post-replay
        distributions.
        """
        self._recovering = True
        t0 = time.perf_counter()
        try:
            if _MX.enabled:
                _MX.inc("recover.detections")
            if _FL.enabled:
                _FL.instant("recover", "shrink+replay.start", rank="driver",
                            cause=repr(exc),
                            op_id=getattr(exc, "op_id", None))
            old_ranks = list(self.comm._world_ranks)
            with _TR.span("recover", "shrink+replay", rank="driver",
                          cause=str(exc)):
                self.comm.revoke()
                new_full = self.comm.shrink()
                old_workers = old_ranks[1:]
                survivors = set(new_full._world_ranks)
                new_workers = list(new_full._world_ranks[1:])
                if not new_workers:
                    raise RuntimeError(
                        "unrecoverable: every ODIN worker has failed"
                    ) from exc
                # survivor j's old index, and the old indices now dead
                old_indices = [old_workers.index(wr) for wr in new_workers]
                dead_indices = [i for i, wr in enumerate(old_workers)
                                if wr not in survivors]
                self.comm = new_full
                # compose this shrink into the checkpoint-generation map
                # (exactly once per generation: a crash later in this
                # method retries with the composed map already in place)
                self._ckpt_dead |= {self._ckpt_map[i]
                                    for i in dead_indices}
                self._ckpt_map = [self._ckpt_map[i] for i in old_indices]
                # workers split their private sub-comm off the shrunk
                # comm as its first collective (tags stay aligned)
                self.comm.split(-1, 0)
                self.nworkers = len(new_workers)
                if _MX.enabled:
                    _MX.inc("recover.shrinks")
                self._issue_impl(opcodes.RESTORE, self._ckpt_version,
                                 self._ckpt_map,
                                 sorted(self._ckpt_dead), self._ckpt_n)
                replayed = 0
                # length-changing ops (TRANSFORM, GROUPBY shuffle) yield
                # different per-worker counts on the shrunk layout; their
                # paired SET_DIST must be rebuilt from the replayed
                # counts, not remapped from the logged distribution
                fresh_counts: Dict[int, List[int]] = {}
                for kind, entry in self._oplog.entries():
                    try:
                        if kind == "scatter":
                            aid, dist, dtype, data = entry
                            self._scatter_impl(
                                aid, dist.with_nworkers(self.nworkers),
                                np.asarray(data, dtype=dtype))
                        else:
                            op = remap_op_dists(entry, self.nworkers)
                            if op[0] in (opcodes.TRANSFORM,
                                         opcodes.GROUPBY):
                                results = self._issue_impl(*op)
                                fresh_counts[op[2]] = [
                                    int(c) for c, _dt in results]
                            elif (op[0] == opcodes.SET_DIST
                                    and op[1] in fresh_counts):
                                counts = fresh_counts.pop(op[1])
                                dist = BlockDistribution(
                                    (sum(counts),), 0, self.nworkers,
                                    counts=counts)
                                self._issue_impl(opcodes.SET_DIST,
                                                 op[1], dist)
                            elif self._batch and op[0] in ASYNC_OPCODES:
                                self._issue_async_impl(op)
                            else:
                                self._issue_impl(*op)
                    except (RankFailure, CommRevokedError, AbortError):
                        raise
                    except Exception:
                        # app-level op error: it was already delivered to
                        # the caller once, before the crash
                        pass
                    replayed += 1
                # synchronize (tolerantly: deferred app errors were also
                # delivered pre-crash) and re-point live handles
                try:
                    with self._lock:
                        self._flush_locked()
                except (RankFailure, CommRevokedError, AbortError):
                    raise
                except Exception:
                    pass
                self._sync_handles()
                # re-anchor (SCR-style): the surviving partner copies are
                # laid out for the old generation and cannot cover a
                # second adjacent death, so snapshot the recovered state
                # on the survivor layout and truncate the log
                version = self._ckpt_version + 1
                self._issue_impl(opcodes.CKPT, version)
                self._ckpt_version = version
                self._oplog.clear()
                self._ckpt_map = list(range(self.nworkers))
                self._ckpt_dead = set()
                self._ckpt_n = self.nworkers
            if _MX.enabled:
                _MX.inc("recover.replayed_ops", replayed)
                _MX.observe("recover.seconds", time.perf_counter() - t0)
            if _FL.enabled:
                _FL.instant("recover", "shrink+replay.done", rank="driver",
                            replayed=replayed, nworkers=self.nworkers)
        finally:
            self._recovering = False

    def _sync_handles(self) -> None:
        """Re-point live DistArray handles at their authoritative
        post-recovery distributions (worker 0's view)."""
        ids = list(self._handles.keys())
        if not ids:
            return
        views = self._issue_impl(opcodes.DIST_SYNC, ids)
        dists = views[0] or {}
        for aid, dist in dists.items():
            arr = self._handles.get(aid)
            # a None dist is a transform output awaiting its SET_DIST;
            # leave the handle's metadata alone
            if arr is not None and dist is not None:
                arr.dist = dist

    def _register_handle(self, arr) -> None:
        """Track a live DistArray so recovery can fix its metadata.

        A handle can be constructed from a distribution computed *before*
        a recovery that shrank the pool mid-op (the caller's local
        variable is not remapped by the retry); when the worker counts
        disagree, fetch the authoritative post-replay layout.
        """
        self._handles[arr.array_id] = arr
        if (self._recover and not self._recovering
                and arr.dist is not None
                and arr.dist.nworkers != self.nworkers):
            views = self._with_recovery(self._issue_impl,
                                        opcodes.DIST_SYNC, [arr.array_id])
            dist = (views[0] or {}).get(arr.array_id)
            if dist is not None:
                arr.dist = dist

    # -- array lifecycle -------------------------------------------------
    def create(self, array_id: int, dist: Distribution, dtype,
               fill_spec) -> None:
        """Allocate + initialize locally on every worker: the only
        communication is this short descriptor message."""
        self._issue(opcodes.CREATE, array_id, dist, np.dtype(dtype).str,
                    fill_spec)

    def scatter(self, array_id: int, dist: Distribution,
                array: np.ndarray) -> None:
        """Ship real data from the driver (data plane, not control)."""
        array = np.asarray(array)
        if _TR.enabled or _FL.enabled:
            # global -> local transition: real data leaves the driver
            t0 = _TR.now()
            try:
                self._with_recovery(self._scatter_impl, array_id, dist,
                                    array)
            finally:
                oid, eid = _CZ.current()
                if _TR.enabled:
                    _TR.complete("odin.control", "scatter", t0,
                                 rank="driver", nbytes=int(array.nbytes),
                                 op_id=oid, epoch_id=eid)
                if _FL.enabled:
                    _FL.complete("odin.control", "scatter", "driver", t0,
                                 nbytes=int(array.nbytes), op_id=oid)
        else:
            self._with_recovery(self._scatter_impl, array_id, dist, array)
        if self._oplog is not None and not self._recovering:
            # replaying a scatter re-sends the data, so pin a copy
            self._oplog.record_scatter(array_id, dist, array.dtype, array)
            self._maybe_auto_ckpt()

    def _scatter_impl(self, array_id: int, dist: Distribution,
                      array: np.ndarray) -> None:
        blocks = []
        for w in range(self.nworkers):
            blocks.append(np.ascontiguousarray(
                array[dist.global_selector(w)]))
        wire = (opcodes.SCATTER, array_id, dist, array.dtype.str)
        with self._lock:
            self._check_alive()
            self._drain_pending_deletes()
            if self._batch:
                # the scatter collective itself confirms delivery; the
                # per-worker status ack rides the next synchronizing op
                self._bcast((opcodes.ASYNC, wire))
                self.comm.scatter([None] + blocks, root=0)
                self._epoch_len += 1
                if self._epoch_len >= _EPOCH_CAP:
                    self._flush_locked()
                return
            self._bcast(wire)
            # workers participate in the scatter inside their op handler;
            # the driver's own slot is unused
            self.comm.scatter([None] + blocks, root=0)
            self._epoch_len = 0
            statuses = self.comm.gather(None, root=0)
            self._epoch_id += 1
        self._process_statuses(statuses, str(opcodes.SCATTER))

    def delete(self, array_id: int) -> None:
        """Queue an array for deletion (safe to call from __del__)."""
        if self._alive:
            self._pending_deletes.append(array_id)

    def gather(self, array_id: int) -> np.ndarray:
        """Assemble the full array on the driver."""
        if _TR.enabled:
            # local -> global transition: blocks reassemble on the driver
            with _TR.span("odin.control", "gather.assemble", rank="driver"):
                return self._gather_impl(array_id)
        return self._gather_impl(array_id)

    def _gather_impl(self, array_id: int) -> np.ndarray:
        pieces = self._issue(opcodes.GATHER, array_id)
        dist, blocks = pieces[0][0], [p[1] for p in pieces]
        out = np.empty(dist.global_shape, dtype=blocks[0].dtype)
        for w, block in enumerate(blocks):
            out[dist.global_selector(w)] = block
        return out

    # -- compute ----------------------------------------------------------
    def run(self, *op) -> List[Any]:
        """Generic op dispatch (used by the array layer)."""
        return self._issue(*op)

    def call_local(self, fname: str, arg_specs, kwarg_specs,
                   out_id: Optional[int] = None,
                   out_dist=None) -> List[Any]:
        """Invoke a registered @odin.local function on every worker.

        When *out_dist* is given, a worker whose return block matches that
        distribution's local shape stores it under *out_id* (otherwise the
        first array argument's distribution is the storage candidate).
        """
        return self._issue(opcodes.CALL_LOCAL, fname, arg_specs,
                           kwarg_specs, out_id, out_dist)

    # -- instrumentation ---------------------------------------------------
    def control_traffic(self):
        """(messages, bytes) sent by the ODIN process so far: the control
        plane of Fig. 1."""
        snap = self.world.counters[0].snapshot()
        return snap.sends, snap.bytes_sent

    def _worker_counters(self, world_rank: int):
        """One worker's counter snapshot; fetched over the mesh in
        process mode (its live counters are in another interpreter),
        falling back to whatever the driver absorbed at shutdown."""
        if self._backend == "process" and self._alive:
            snap = self.world.fetch_counters(world_rank)
            if snap is not None:
                return snap
        return self.world.counters[world_rank].snapshot()

    def worker_traffic(self):
        """(messages, bytes) of worker-to-worker data-plane traffic."""
        msgs = 0
        nbytes = 0
        for wr in self.comm._world_ranks[1:]:
            snap = self._worker_counters(wr)
            for peer, b in snap.by_peer.items():
                if peer != 0:  # exclude worker->driver result traffic
                    nbytes += b
            msgs += snap.sends
        return msgs, nbytes

    def reset_counters(self) -> None:
        if self._backend == "process" and self._alive:
            self.world.reset_all_counters()
            return
        for c in self.world.counters:
            c.reset()

    # -- process-backend control -------------------------------------------
    def worker_pids(self) -> List[int]:
        """OS pids of the worker processes (process backend; empty list
        for thread workers).  Index j is worker j (world rank j+1)."""
        return [p.pid for p in self._procs]

    def install_chaos(self, plan) -> None:
        """Arm a :class:`~repro.chaos.core.FaultPlan` on every rank.

        Thread workers share the process-wide engine, so the local
        install covers them.  Process workers each get a CHAOS_INSTALL
        control op first (synchronizing, so the plan is armed before any
        later op executes); their rank-local step counts start a few ops
        later than thread mode's -- the install round-trip itself --
        which shifts *where* a crash rule fires, never whether results
        stay oracle-conformant.
        """
        from ..chaos.core import ENGINE
        if self._backend == "process":
            self._issue(opcodes.CHAOS_INSTALL, plan.to_dict())
        ENGINE.install(plan)

    def uninstall_chaos(self) -> None:
        """Disarm fault injection everywhere (driver first, so an
        abort-poisoned world cannot leave the local engine hot)."""
        from ..chaos.core import ENGINE
        ENGINE.uninstall()
        if self._backend == "process" and self._alive:
            try:
                self._issue(opcodes.CHAOS_UNINSTALL)
            except Exception:  # noqa: BLE001 - aborted world: the engine
                pass           # dies with the worker processes anyway

    @staticmethod
    def broadcast_local(name: str, fn: Callable) -> None:
        """Ship an ``@odin.local`` registration to every live
        process-backend context (forked workers cannot see registry
        mutations made after the fork)."""
        live = [c for c in list(_live_process_contexts) if c._alive]
        if not live:
            return
        spec = _ship_function(fn)
        for c in live:
            c._issue(opcodes.REGISTER_LOCAL, name, spec)

    def plan_cache_stats(self) -> Dict[str, Any]:
        """Aggregate worker-side communication-plan cache statistics."""
        stats = self._issue(opcodes.PLAN_STATS)
        hits = sum(s[0] for s in stats)
        misses = sum(s[1] for s in stats)
        out = {"hits": hits, "misses": misses,
               "cached_plans": sum(s[2] for s in stats),
               "hit_rate": hits / max(hits + misses, 1)}
        # cached for the /status endpoint, which must never issue ops
        self._last_plan_stats = out
        return out

    def status(self) -> Dict[str, Any]:
        """Runtime state snapshot for the ``/status`` endpoint.

        Lock-free and communication-free by design: reads of driver-side
        counters plus the same per-rank pending/heartbeat table a
        ``DeadlockError`` would print, so it answers even when the
        workload is wedged inside a collective.  Values may be slightly
        stale under concurrent mutation -- that is the contract.
        """
        return {
            "kind": "odin.context",
            "alive": self._alive,
            "backend": self._backend,
            "nworkers": self.nworkers,
            "batching": self._batch,
            "op_id": self._op_seq,
            "epoch_id": self._epoch_id,
            "epoch_len": self._epoch_len,
            "pending_deletes": len(self._pending_deletes),
            "recover": self._recover,
            "ckpt_version": self._ckpt_version,
            "oplog_len": 0 if self._oplog is None else len(self._oplog),
            "plan_cache": self._last_plan_stats,
            "ranks": self.world.status(),
        }

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self) -> None:
        statuses = None
        with self._lock:
            if not self._alive:
                return
            self._closing = True
            try:
                self._bcast((opcodes.SHUTDOWN,))
                statuses = self.comm.gather(None, root=0)
            except AbortError:
                # world already abort-poisoned (e.g. a chaos crash): the
                # caller saw the AbortError from the failing op itself;
                # teardown must not raise it a second time
                pass
            except (RankFailure, CommRevokedError):
                # a worker died and nobody is recovering it: teardown must
                # not raise.  Revoke so any survivor blocked in a
                # collective unblocks and exits via its _closing path.
                try:
                    self.comm.revoke()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass
            self._alive = False
        if statuses is not None and self._backend == "process":
            self._absorb_proc_stats(statuses)
        for t in self._threads:
            t.join(timeout=10)
        for p in self._procs:
            p.join(timeout=10)
            if p.is_alive():
                p.kill()
                p.join(timeout=10)
        if self._backend == "process":
            from ..mpi.transport.shm import sweep_session
            self.world.close()
            sweep_session(self.world.session_id)
        # deferred errors from a trailing epoch must not vanish silently
        if statuses is not None:
            self._process_statuses(statuses, str(opcodes.SHUTDOWN))

    def _absorb_proc_stats(self, statuses) -> None:
        """Driver-side merge point: fold each process worker's counter
        snapshot and trace events (shipped in its SHUTDOWN reply) into
        the driver's tables, so post-shutdown ``worker_traffic()`` /
        trace exports see the whole world like the thread backend does.
        The payload slot is cleared so ``_process_statuses`` treats the
        reply exactly like a thread worker's ``("ok", None, deferred)``.
        """
        for i, status in enumerate(statuses[1:], start=1):
            if not (isinstance(status, tuple) and len(status) == 3):
                continue
            tag, payload, deferred = status
            if (isinstance(payload, tuple) and len(payload) == 3
                    and payload[0] == "proc-stats"):
                _kind, snap, events = payload
                wr = self.comm._world_ranks[i]
                self.world.counters[wr].absorb(snap)
                if events and _TR.enabled:
                    _TR.absorb(events)
                statuses[i] = (tag, None, deferred)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()

    def __repr__(self):
        state = "alive" if self._alive else "shut down"
        return f"OdinContext({self.nworkers} workers, {state})"


_default_context: Optional[OdinContext] = None


def init(nworkers: int = 4, timeout: Optional[float] = None,
         batch: Optional[bool] = None, recover: Optional[bool] = None,
         ckpt_every: Optional[int] = None,
         backend: Optional[str] = None) -> OdinContext:
    """Start (or restart) the default ODIN context.

    *backend* picks the worker transport: ``"thread"`` (default) or
    ``"process"``; ``None`` defers to ``REPRO_MPI_BACKEND``.
    """
    global _default_context
    if _default_context is not None and _default_context._alive:
        _default_context.shutdown()
    _default_context = OdinContext(nworkers, timeout=timeout, batch=batch,
                                   recover=recover, ckpt_every=ckpt_every,
                                   backend=backend)
    return _default_context


def shutdown() -> None:
    """Stop the default context's workers."""
    global _default_context
    if _default_context is not None:
        _default_context.shutdown()
        _default_context = None


def get_context() -> OdinContext:
    """The default context, auto-started with 4 workers if absent."""
    global _default_context
    if _default_context is None or not _default_context._alive:
        _default_context = OdinContext(4)
    return _default_context
