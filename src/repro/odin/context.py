"""The ODIN process / worker-node runtime (Fig. 1 of the paper).

The end user interacts with the *ODIN process* (the calling thread, rank 0
of an internal world).  Worker nodes (ranks 1..N) sit in a service loop
receiving small control messages -- an opcode plus index metadata, "at most
tens of bytes" of payload for creation ops -- and perform all array
allocation, computation and data movement themselves.  Workers own a
private sub-communicator so they "can communicate directly with each other,
bypassing the ODIN process", which is how redistribution and halo exchange
avoid making the driver a bottleneck.

Synchronizing ops (GATHER, reductions, anything whose result the driver
needs) round-trip a tiny status gather.  Ops with no meaningful per-worker
result (CREATE, stores, deletes, SCATTER acks) are *batched*: they are
broadcast fire-and-forget within an epoch, and any worker exception is
recorded and delivered -- with the originating op named -- at the next
synchronizing op or explicit :meth:`OdinContext.flush`.  A sequence of N
store ops therefore costs N broadcasts plus one gather instead of N of
each.  Set ``REPRO_ODIN_BATCH=0`` (or ``batch=False``) for the classic
op-per-round-trip behavior.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..mpi.comm import Intracomm
from ..mpi.errors import InjectedFault
from ..mpi.runtime import RankContext, World
from ..trace import TRACER as _TR
from .distribution import Distribution
from . import opcodes
from .worker import WorkerState, execute_op

__all__ = ["OdinContext", "init", "shutdown", "get_context",
           "worker_comm", "worker_index", "local_registry"]

# Registry of @odin.local functions.  The decorator "broadcasts the
# resulting function object to all worker nodes and injects it into their
# namespace" -- with thread workers, the namespace is a shared registry and
# the broadcast ships the (tiny) name, preserving the control-message
# economics of the paper's design.
local_registry: Dict[str, Callable] = {}

_worker_tls = threading.local()

# Opcodes whose per-worker result is always None: safe to fire-and-forget
# within a batched epoch.  SAVE and LOAD are deliberately absent (external
# file side effects should fail at the call site); result-bearing ops
# synchronize.
ASYNC_OPCODES = frozenset({
    opcodes.CREATE, opcodes.DELETE, opcodes.DELETE_MANY, opcodes.UFUNC,
    opcodes.FUSED, opcodes.REDIST, opcodes.TRANSPOSE, opcodes.SLICE,
    opcodes.SETITEM, opcodes.SET_DIST,
})

# an epoch auto-flushes after this many fire-and-forget ops so error
# delivery latency (and the workers' deferred lists) stay bounded
_EPOCH_CAP = 512


def _batching_default() -> bool:
    return os.environ.get("REPRO_ODIN_BATCH", "1") != "0"


def worker_comm() -> Intracomm:
    """The workers-only communicator; valid inside worker execution
    (e.g. within an ``@odin.local`` function)."""
    comm = getattr(_worker_tls, "comm", None)
    if comm is None:
        raise RuntimeError("worker_comm() is only available on ODIN workers "
                           "(inside @odin.local functions)")
    return comm


def worker_index() -> int:
    """This worker's index in 0..nworkers-1 (inside worker execution)."""
    idx = getattr(_worker_tls, "index", None)
    if idx is None:
        raise RuntimeError("worker_index() is only available on ODIN workers")
    return idx


def worker_state():
    """This worker's :class:`~repro.odin.worker.WorkerState` (inside
    worker execution); gives local functions access to other arrays'
    local blocks by id."""
    state = getattr(_worker_tls, "state", None)
    if state is None:
        raise RuntimeError("worker_state() is only available on ODIN "
                           "workers")
    return state


class OdinContext:
    """One driver plus *nworkers* persistent worker threads."""

    def __init__(self, nworkers: int, timeout: Optional[float] = None,
                 batch: Optional[bool] = None):
        if nworkers < 1:
            raise ValueError("need at least one worker")
        self.nworkers = nworkers
        self.world = World(nworkers + 1, timeout=timeout)
        self._driver_ctx = RankContext(self.world, 0)
        self.comm = Intracomm(self._driver_ctx,
                              list(range(nworkers + 1)))
        self._next_array_id = 0
        self._alive = True
        self._pending_deletes: List[int] = []
        self._batch = _batching_default() if batch is None else bool(batch)
        self._op_seq = 0       # control ops broadcast so far (epoch clock)
        self._epoch_len = 0    # fire-and-forget ops since the last sync
        self._lock = threading.RLock()
        self._threads = [
            threading.Thread(target=self._worker_main, args=(w,),
                             name=f"odin-worker-{w}", daemon=True)
            for w in range(nworkers)
        ]
        for t in self._threads:
            t.start()
        # Workers split off their own comm; the driver passes a negative
        # color so it is excluded (split over the full comm, collective).
        self.comm.split(-1, 0)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_main(self, windex: int) -> None:
        ctx = RankContext(self.world, windex + 1)
        ctx.bind()
        try:
            # setup is inside the try: a chaos-scripted crash can fire in
            # the startup split's collectives just as well as mid-loop
            comm = Intracomm(ctx, list(range(self.nworkers + 1)))
            wcomm = comm.split(0, windex)
            _worker_tls.comm = wcomm
            _worker_tls.index = windex
            state = WorkerState(index=windex, comm=wcomm,
                                registry=local_registry, full_comm=comm)
            _worker_tls.state = state
            # deferred errors from fire-and-forget ops in the current
            # epoch: (op seq, op name, exception).  seq counts broadcasts,
            # so it is identical across workers and matches the driver's
            # _op_seq clock.
            deferred: List[Tuple[int, str, Exception]] = []
            seq = 0
            while True:
                op = comm.bcast(None, root=0)
                seq += 1
                fire_and_forget = op[0] == opcodes.ASYNC
                if fire_and_forget:
                    op = op[1]
                if op[0] == opcodes.SHUTDOWN:
                    comm.gather(("ok", None, deferred), root=0)
                    return
                if op[0] == opcodes.FLUSH:
                    comm.gather(("ok", None, deferred), root=0)
                    deferred = []
                    continue
                try:
                    result = execute_op(state, op)
                    status = ("ok", result)
                except InjectedFault:
                    # scripted chaos crash: the rank dies, it does not
                    # report a recoverable op error
                    raise
                except Exception as exc:  # noqa: BLE001 - report to driver
                    if fire_and_forget:
                        deferred.append((seq, str(op[0]), exc))
                        continue
                    status = ("err", exc)
                if fire_and_forget:
                    continue
                comm.gather(status + (deferred,), root=0)
                deferred = []
        except InjectedFault as exc:
            # chaos-scripted rank crash: die loudly so the driver and the
            # surviving workers fail fast with AbortError instead of
            # waiting out the deadlock timeout
            self.world.abort(ctx.rank, exc)
            return
        except Exception:
            # runtime failure (e.g. world aborted): leave quietly, the
            # driver will see the abort on its own next operation.
            return
        finally:
            ctx.unbind()

    # ------------------------------------------------------------------
    # driver side
    # ------------------------------------------------------------------
    def _bcast(self, op) -> None:
        """Broadcast one wire op, advancing the epoch clock (lock held)."""
        self.comm.bcast(op, root=0)
        self._op_seq += 1

    def _check_alive(self) -> None:
        if not self._alive:
            raise RuntimeError("ODIN context has been shut down")

    def _process_statuses(self, statuses, opname: str) -> List[Any]:
        """Unpack per-worker (tag, payload, deferred) gather statuses.

        Deferred errors from earlier fire-and-forget ops take precedence
        over a failure of the current op (they happened first); among all
        collected errors the one with the smallest op sequence is raised,
        annotated with the op it came from.
        """
        results = []
        errs: List[Tuple[int, str, Exception]] = []
        for status in statuses[1:]:
            tag, payload, deferred = status
            errs.extend(deferred)
            if tag == "err":
                errs.append((self._op_seq, opname, payload))
                results.append(None)
            else:
                results.append(payload)
        if errs:
            seq, err_op, exc = min(errs, key=lambda e: e[0])
            if seq < self._op_seq:
                exc.add_note(
                    f"deferred from batched op {err_op!r}; delivered at "
                    f"the next synchronizing op ({opname!r})")
            raise exc
        return results

    def _issue(self, *op) -> List[Any]:
        """Dispatch one op: fire-and-forget when batching allows it,
        otherwise broadcast + collect per-worker results (driver)."""
        if self._batch and op[0] in ASYNC_OPCODES:
            return self._issue_async(op)
        if _TR.enabled:
            with _TR.span("odin.control", str(op[0]), rank="driver",
                          nworkers=self.nworkers):
                return self._issue_impl(*op)
        return self._issue_impl(*op)

    def _issue_impl(self, *op) -> List[Any]:
        with self._lock:
            self._check_alive()
            self._drain_pending_deletes()
            self._bcast(op)
            self._epoch_len = 0
            statuses = self.comm.gather(None, root=0)
        return self._process_statuses(statuses, str(op[0]))

    def _issue_async(self, op) -> List[Any]:
        """Fire-and-forget: broadcast only, no result gather.  Errors are
        recorded on the workers and surface at the next synchronizing op."""
        if _TR.enabled:
            with _TR.span("odin.control", f"{op[0]}.async", rank="driver",
                          nworkers=self.nworkers):
                self._issue_async_impl(op)
        else:
            self._issue_async_impl(op)
        return [None] * self.nworkers

    def _issue_async_impl(self, op) -> None:
        with self._lock:
            self._check_alive()
            self._drain_pending_deletes()
            self._bcast((opcodes.ASYNC, op))
            self._epoch_len += 1
            if self._epoch_len >= _EPOCH_CAP:
                self._flush_locked()

    def _flush_locked(self) -> None:
        self._bcast((opcodes.FLUSH,))
        self._epoch_len = 0
        statuses = self.comm.gather(None, root=0)
        self._process_statuses(statuses, str(opcodes.FLUSH))

    def flush(self) -> None:
        """Synchronize with the workers and deliver any deferred errors
        from fire-and-forget ops in the current epoch."""
        with self._lock:
            if not self._alive:
                return
            self._drain_pending_deletes()
            self._flush_locked()

    def _drain_pending_deletes(self) -> None:
        """Free arrays whose handles were garbage collected.

        ``DistArray.__del__`` must not issue ops itself (GC can fire in the
        middle of another op's bcast/gather pair); it enqueues ids here and
        the next user-initiated op flushes them.  With batching the drain
        rides the current epoch as one more fire-and-forget broadcast;
        otherwise it costs its own round trip.  Caller holds the lock.
        """
        if self._pending_deletes:
            ids, self._pending_deletes = self._pending_deletes, []
            if self._batch:
                self._bcast((opcodes.ASYNC, (opcodes.DELETE_MANY, ids)))
                self._epoch_len += 1
            else:
                self._bcast((opcodes.DELETE_MANY, ids))
                self.comm.gather(None, root=0)

    def new_array_id(self) -> int:
        with self._lock:
            self._next_array_id += 1
            return self._next_array_id

    # -- array lifecycle -------------------------------------------------
    def create(self, array_id: int, dist: Distribution, dtype,
               fill_spec) -> None:
        """Allocate + initialize locally on every worker: the only
        communication is this short descriptor message."""
        self._issue(opcodes.CREATE, array_id, dist, np.dtype(dtype).str,
                    fill_spec)

    def scatter(self, array_id: int, dist: Distribution,
                array: np.ndarray) -> None:
        """Ship real data from the driver (data plane, not control)."""
        array = np.asarray(array)
        if _TR.enabled:
            # global -> local transition: real data leaves the driver
            with _TR.span("odin.control", "scatter", rank="driver",
                          nbytes=int(array.nbytes)):
                return self._scatter_impl(array_id, dist, array)
        return self._scatter_impl(array_id, dist, array)

    def _scatter_impl(self, array_id: int, dist: Distribution,
                      array: np.ndarray) -> None:
        blocks = []
        for w in range(self.nworkers):
            blocks.append(np.ascontiguousarray(
                array[dist.global_selector(w)]))
        wire = (opcodes.SCATTER, array_id, dist, array.dtype.str)
        with self._lock:
            self._check_alive()
            self._drain_pending_deletes()
            if self._batch:
                # the scatter collective itself confirms delivery; the
                # per-worker status ack rides the next synchronizing op
                self._bcast((opcodes.ASYNC, wire))
                self.comm.scatter([None] + blocks, root=0)
                self._epoch_len += 1
                if self._epoch_len >= _EPOCH_CAP:
                    self._flush_locked()
                return
            self._bcast(wire)
            # workers participate in the scatter inside their op handler;
            # the driver's own slot is unused
            self.comm.scatter([None] + blocks, root=0)
            self._epoch_len = 0
            statuses = self.comm.gather(None, root=0)
        self._process_statuses(statuses, str(opcodes.SCATTER))

    def delete(self, array_id: int) -> None:
        """Queue an array for deletion (safe to call from __del__)."""
        if self._alive:
            self._pending_deletes.append(array_id)

    def gather(self, array_id: int) -> np.ndarray:
        """Assemble the full array on the driver."""
        if _TR.enabled:
            # local -> global transition: blocks reassemble on the driver
            with _TR.span("odin.control", "gather.assemble", rank="driver"):
                return self._gather_impl(array_id)
        return self._gather_impl(array_id)

    def _gather_impl(self, array_id: int) -> np.ndarray:
        pieces = self._issue(opcodes.GATHER, array_id)
        dist, blocks = pieces[0][0], [p[1] for p in pieces]
        out = np.empty(dist.global_shape, dtype=blocks[0].dtype)
        for w, block in enumerate(blocks):
            out[dist.global_selector(w)] = block
        return out

    # -- compute ----------------------------------------------------------
    def run(self, *op) -> List[Any]:
        """Generic op dispatch (used by the array layer)."""
        return self._issue(*op)

    def call_local(self, fname: str, arg_specs, kwarg_specs,
                   out_id: Optional[int] = None,
                   out_dist=None) -> List[Any]:
        """Invoke a registered @odin.local function on every worker.

        When *out_dist* is given, a worker whose return block matches that
        distribution's local shape stores it under *out_id* (otherwise the
        first array argument's distribution is the storage candidate).
        """
        return self._issue(opcodes.CALL_LOCAL, fname, arg_specs,
                           kwarg_specs, out_id, out_dist)

    # -- instrumentation ---------------------------------------------------
    def control_traffic(self):
        """(messages, bytes) sent by the ODIN process so far: the control
        plane of Fig. 1."""
        snap = self.world.counters[0].snapshot()
        return snap.sends, snap.bytes_sent

    def worker_traffic(self):
        """(messages, bytes) of worker-to-worker data-plane traffic."""
        msgs = 0
        nbytes = 0
        for w in range(1, self.nworkers + 1):
            snap = self.world.counters[w].snapshot()
            for peer, b in snap.by_peer.items():
                if peer != 0:  # exclude worker->driver result traffic
                    nbytes += b
            msgs += snap.sends
        return msgs, nbytes

    def reset_counters(self) -> None:
        for c in self.world.counters:
            c.reset()

    def plan_cache_stats(self) -> Dict[str, Any]:
        """Aggregate worker-side communication-plan cache statistics."""
        stats = self._issue(opcodes.PLAN_STATS)
        hits = sum(s[0] for s in stats)
        misses = sum(s[1] for s in stats)
        return {"hits": hits, "misses": misses,
                "cached_plans": sum(s[2] for s in stats),
                "hit_rate": hits / max(hits + misses, 1)}

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self) -> None:
        with self._lock:
            if not self._alive:
                return
            self._bcast((opcodes.SHUTDOWN,))
            statuses = self.comm.gather(None, root=0)
            self._alive = False
        for t in self._threads:
            t.join(timeout=10)
        # deferred errors from a trailing epoch must not vanish silently
        self._process_statuses(statuses, str(opcodes.SHUTDOWN))

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()

    def __repr__(self):
        state = "alive" if self._alive else "shut down"
        return f"OdinContext({self.nworkers} workers, {state})"


_default_context: Optional[OdinContext] = None


def init(nworkers: int = 4, timeout: Optional[float] = None,
         batch: Optional[bool] = None) -> OdinContext:
    """Start (or restart) the default ODIN context."""
    global _default_context
    if _default_context is not None and _default_context._alive:
        _default_context.shutdown()
    _default_context = OdinContext(nworkers, timeout=timeout, batch=batch)
    return _default_context


def shutdown() -> None:
    """Stop the default context's workers."""
    global _default_context
    if _default_context is not None:
        _default_context.shutdown()
        _default_context = None


def get_context() -> OdinContext:
    """The default context, auto-started with 4 workers if absent."""
    global _default_context
    if _default_context is None or not _default_context._alive:
        _default_context = OdinContext(4)
    return _default_context
