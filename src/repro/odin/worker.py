"""Worker-node execution engine.

Each worker holds the local segments of every live distributed array and
executes control ops from the driver.  All bulk data movement happens here,
over the workers-only communicator -- the ODIN process never relays array
data (Fig. 1's "worker nodes can communicate directly with each other").
"""

from __future__ import annotations

import importlib
import marshal
import os
import sys
import time
import types
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..metrics import REGISTRY as _MX
from ..mpi.comm import Intracomm
from ..obs import causal as _CZ
from ..obs.flight import FLIGHT as _FL
from ..trace import TRACER as _TR
from . import opcodes
from .distribution import (ArbitraryDistribution, BlockDistribution,
                           Distribution)

__all__ = ["WorkerState", "execute_op", "UFUNCS"]


def _plan_cache_cap() -> int:
    """Max cached communication plans per worker (LRU bound)."""
    return int(os.environ.get("REPRO_ODIN_PLAN_CACHE", "64"))

# ufuncs exposed as odin.<name>; unary and binary sets drive arity checks
UNARY_UFUNCS = {
    "negative": np.negative, "absolute": np.absolute, "abs": np.absolute,
    "sqrt": np.sqrt, "exp": np.exp, "log": np.log, "log2": np.log2,
    "log10": np.log10, "sin": np.sin, "cos": np.cos, "tan": np.tan,
    "arcsin": np.arcsin, "arccos": np.arccos, "arctan": np.arctan,
    "sinh": np.sinh, "cosh": np.cosh, "tanh": np.tanh,
    "floor": np.floor, "ceil": np.ceil, "rint": np.rint, "sign": np.sign,
    "square": np.square, "reciprocal": np.reciprocal, "conj": np.conjugate,
    "isnan": np.isnan, "isinf": np.isinf, "logical_not": np.logical_not,
}
BINARY_UFUNCS = {
    "add": np.add, "subtract": np.subtract, "multiply": np.multiply,
    "divide": np.divide, "true_divide": np.true_divide,
    "floor_divide": np.floor_divide, "power": np.power, "mod": np.mod,
    "arctan2": np.arctan2, "hypot": np.hypot, "maximum": np.maximum,
    "minimum": np.minimum, "fmax": np.fmax, "fmin": np.fmin,
    "equal": np.equal, "not_equal": np.not_equal, "less": np.less,
    "less_equal": np.less_equal, "greater": np.greater,
    "greater_equal": np.greater_equal, "logical_and": np.logical_and,
    "logical_or": np.logical_or, "logical_xor": np.logical_xor,
}
TERNARY_UFUNCS = {
    "where": np.where, "clip": np.clip,
}
UFUNCS = {**UNARY_UFUNCS, **BINARY_UFUNCS, **TERNARY_UFUNCS}

REDUCERS = {
    "sum": np.add, "prod": np.multiply, "min": np.minimum,
    "max": np.maximum, "any": np.logical_or, "all": np.logical_and,
}


@dataclass
class WorkerState:
    """Everything one worker knows."""

    index: int
    comm: Intracomm                       # workers-only communicator
    registry: Dict[str, Callable]         # @odin.local functions
    full_comm: Optional[Intracomm] = None  # driver + workers (scatter path)
    arrays: Dict[int, Tuple[np.ndarray, Distribution]] = field(
        default_factory=dict)
    # communication-plan cache (redistribution + slicing index math),
    # LRU-bounded; keyed on (kind, src dist key, dst dist key, dtype)
    plan_cache: "OrderedDict[tuple, Any]" = field(
        default_factory=OrderedDict)
    plan_cache_cap: int = field(default_factory=_plan_cache_cap)
    plan_hits: int = 0
    plan_misses: int = 0
    # SCR-style in-memory checkpoints: version -> (own snapshot, partner's
    # snapshot, partner's old worker index).  A snapshot is a deep-copied
    # {array_id: (block, dist)}.  The partner copy belongs to the previous
    # worker in the ring, so worker (d+1) % P can resurrect a dead d.
    checkpoints: Dict[int, Tuple] = field(default_factory=dict)

    def prune_checkpoints(self, keep: int = 2) -> None:
        """Keep only the newest *keep* versions (a crash mid-checkpoint
        must still be able to restore the previous one)."""
        for version in sorted(self.checkpoints)[:-keep]:
            del self.checkpoints[version]

    def get(self, array_id: int) -> Tuple[np.ndarray, Distribution]:
        try:
            return self.arrays[array_id]
        except KeyError:
            raise KeyError(f"worker {self.index}: unknown array id "
                           f"{array_id}") from None


# ----------------------------------------------------------------------
# creation
# ----------------------------------------------------------------------
def _fill_local(state: WorkerState, dist: Distribution, dtype,
                fill_spec) -> np.ndarray:
    """Allocate and initialize the local block from a tiny descriptor.

    Index-dependent fills (arange, linspace, fromfunction, random seeds)
    are computed from the worker's own global indices -- no data on the
    wire, exactly as the paper describes for ``odin.rand(shape)``.
    """
    w = state.index
    shape = dist.local_shape(w)
    kind = fill_spec[0]
    if kind == "zeros":
        return np.zeros(shape, dtype=dtype)
    if kind == "ones":
        return np.ones(shape, dtype=dtype)
    if kind == "empty":
        return np.empty(shape, dtype=dtype)
    if kind == "full":
        return np.full(shape, fill_spec[1], dtype=dtype)
    if kind == "random":
        seed = fill_spec[1]
        rng = np.random.default_rng(None if seed is None else seed + w)
        return rng.random(shape).astype(dtype, copy=False)
    if kind == "normal":
        seed = fill_spec[1]
        rng = np.random.default_rng(None if seed is None else seed + w)
        return rng.standard_normal(shape).astype(dtype, copy=False)
    if kind == "fromfunction":
        fn = state.registry[fill_spec[1]]
        per_axis = []
        for ax in range(dist.ndim):
            ids = dist.axis_indices(w, ax)
            per_axis.append(np.arange(dist.global_shape[ax])
                            if ids is None else ids)
        grids = np.meshgrid(*per_axis, indexing="ij")
        return np.asarray(fn(*grids), dtype=dtype)
    if len(dist.dist_axes) > 1:
        raise ValueError(f"fill {kind!r} is 1-D-indexed; use fromfunction "
                         f"for grid-distributed arrays")
    gi = dist.indices_for(w).astype(np.float64)
    if kind == "arange":
        start, step = fill_spec[1], fill_spec[2]
        vals = (start + step * gi).astype(dtype, copy=False)
    elif kind == "linspace":
        start, stop, num, endpoint = fill_spec[1:]
        denom = (num - 1) if endpoint else num
        step = (stop - start) / denom if denom else 0.0
        vals = (start + step * gi).astype(dtype, copy=False)
    else:
        raise ValueError(f"unknown fill spec {fill_spec!r}")
    if dist.ndim == 1:
        return vals
    # index-dependent 1-D fills broadcast along the distributed axis
    shape_b = [1] * dist.ndim
    shape_b[dist.axis] = len(gi)
    return np.broadcast_to(vals.reshape(shape_b), shape).copy()


# ----------------------------------------------------------------------
# redistribution (the workhorse: worker-to-worker, driver untouched)
# ----------------------------------------------------------------------
def _intersect_owned(mine: np.ndarray, dst: Distribution,
                     v: int) -> np.ndarray:
    """Sorted intersection of *mine* with worker v's holdings in *dst*.

    Fast path: when *mine* is sorted and *dst* assigns v a contiguous
    range (block distributions), the intersection is a searchsorted
    slice -- O(log n) instead of intersect1d's O(n log n) sort.  Both the
    sender and the receiver of a transfer call this with the same
    arguments, so the element order on the wire always agrees.
    """
    from .distribution import BlockDistribution
    if isinstance(dst, BlockDistribution) and \
            (len(mine) < 2 or bool(np.all(np.diff(mine) > 0))):
        lo = dst._offsets[v]
        hi = dst._offsets[v + 1]
        i0 = int(np.searchsorted(mine, lo))
        i1 = int(np.searchsorted(mine, hi))
        return mine[i0:i1]
    return np.intersect1d(mine, dst.indices_for(v), assume_unique=True)


def _is_multi_axis(src: Distribution, dst: Distribution) -> bool:
    return (len(src.dist_axes) > 1 or len(dst.dist_axes) > 1
            or src.general_only or dst.general_only)


class _RedistPlan:
    """Precomputed communication schedule for one (src, dst) pair on one
    worker.

    All index math -- ownership intersections, local take positions,
    output placement indexers -- is computed once from the distribution
    descriptors; execution replays the schedule: take, alltoall, place.
    Plans are pure index metadata, so one plan serves every array with
    the same (src, dst) pair regardless of contents.
    """

    __slots__ = ("kind", "out_shape", "send", "recv", "self_pair")

    def __init__(self, kind, out_shape, send, recv, self_pair):
        self.kind = kind              # "single-axis" | "general"
        self.out_shape = out_shape    # dst.local_shape(w)
        self.send = send              # [(peer, [(axis, idx), ...]), ...]
        self.recv = recv              # [(peer, placement indexer), ...]
        self.self_pair = self_pair    # (take_ops, placement) or None

    def execute(self, state: WorkerState, local: np.ndarray) -> np.ndarray:
        comm = state.comm
        out = np.empty(self.out_shape, dtype=local.dtype)
        if self.self_pair is not None:
            take_ops, place = self.self_pair
            out[place] = _apply_take(local, take_ops)
        sendobjs: List[Any] = [None] * comm.size
        for v, take_ops in self.send:
            sendobjs[v] = _apply_take(local, take_ops)
        received = comm.alltoall(sendobjs)
        for u, place in self.recv:
            out[place] = received[u]
        return out


def _apply_take(local: np.ndarray, take_ops) -> np.ndarray:
    """Sequentially gather positions along each planned axis."""
    out = local
    for ax, idx in take_ops:
        out = np.take(out, idx, axis=ax)
    return out if take_ops else np.ascontiguousarray(out)


def _place_indexer(src: Distribution, dst: Distribution, from_w: int,
                   to_w: int):
    """Indexer into to_w's output block for the piece sent by from_w."""
    sl: List[Any] = [slice(None)] * dst.ndim
    if src.axis == dst.axis:
        inter = _intersect_owned(src.indices_for(from_w), dst, to_w)
        sl[dst.axis] = dst.local_position(inter)
    else:
        # full extent locally on the dst side: global ids are positions
        sl[src.axis] = src.indices_for(from_w)
    return tuple(sl)


def _build_redist_plan(state: WorkerState, src: Distribution,
                       dst: Distribution) -> _RedistPlan:
    """Plan construction: the index math formerly done on every call.

    Both sides of every pairwise transfer compute the intersection of
    ownership deterministically from the distribution descriptors, so only
    array data crosses the wire -- no index lists.  Single-axis pairs use
    fast range intersections; grid distributions go through the general
    per-axis Cartesian-intersection engine (ownership is separable per
    axis, so the overlap of two workers is always a rectangular tile).
    """
    if _is_multi_axis(src, dst):
        return _build_general_plan(state, src, dst)
    w = state.index
    P = state.comm.size
    my_src = src.indices_for(w)
    send = []
    self_pair = None
    for v in range(P):
        if src.axis == dst.axis:
            inter = _intersect_owned(my_src, dst, v)
            if len(inter) == 0:
                continue
            take_ops = [(src.axis, src.local_position(inter))]
        else:
            # I own full slabs along dst.axis; send v's columns of my slab
            take_ops = [(dst.axis, dst.indices_for(v))]
        if v == w:
            self_pair = (take_ops, _place_indexer(src, dst, w, w))
        else:
            send.append((v, take_ops))
    recv = []
    for u in range(P):
        if u == w:
            continue
        if src.axis == dst.axis and \
                len(_intersect_owned(src.indices_for(u), dst, w)) == 0:
            continue
        recv.append((u, _place_indexer(src, dst, u, w)))
    return _RedistPlan("single-axis", dst.local_shape(w), send, recv,
                       self_pair)


def _redistribute_block(state: WorkerState, local: np.ndarray,
                        src: Distribution, dst: Distribution) -> np.ndarray:
    """Move a local block from distribution *src* to *dst* (plan-cached)."""
    plan = _redist_plan_for(state, src, dst, local.dtype)
    if _TR.enabled:
        with _TR.span("odin.worker", "redistribute.exchange",
                      worker=state.index, kind=plan.kind):
            return plan.execute(state, local)
    return plan.execute(state, local)


def _pair_tile(src: Distribution, dst: Distribution, from_w: int,
               to_w: int):
    """Per-axis sorted intersections of from_w's src block with to_w's dst
    block, or None when the tile is empty.  Axes neither side distributes
    are full-extent and omitted (slice(None))."""
    ndim = len(src.global_shape)
    tile = []
    for ax in range(ndim):
        mine = src.axis_indices(from_w, ax)
        theirs = dst.axis_indices(to_w, ax)
        if mine is None and theirs is None:
            tile.append(None)  # full extent on both sides
            continue
        if mine is None:
            inter = np.asarray(theirs, dtype=np.int64)
        elif theirs is None:
            inter = np.asarray(mine, dtype=np.int64)
        else:
            inter = np.intersect1d(mine, theirs, assume_unique=True)
        if len(inter) == 0:
            return None
        tile.append(inter)
    return tile


def _take_tile_ops(src: Distribution, worker: int, tile):
    """Planned gather positions for a pairwise tile (skips full axes)."""
    return [(ax, src.axis_local_position(worker, ax, inter))
            for ax, inter in enumerate(tile) if inter is not None]


def _tile_indexer(dst: Distribution, worker: int, tile, out_shape):
    per_axis = []
    for ax, inter in enumerate(tile):
        if inter is None:
            per_axis.append(np.arange(out_shape[ax], dtype=np.int64))
        else:
            per_axis.append(dst.axis_local_position(worker, ax, inter))
    return np.ix_(*per_axis)


def _build_general_plan(state: WorkerState, src: Distribution,
                        dst: Distribution) -> _RedistPlan:
    w = state.index
    P = state.comm.size
    out_shape = dst.local_shape(w)
    send = []
    self_pair = None
    for v in range(P):
        tile = _pair_tile(src, dst, w, v)
        if tile is None:
            continue
        take_ops = _take_tile_ops(src, w, tile)
        if v == w:
            self_pair = (take_ops, _tile_indexer(dst, w, tile, out_shape))
        else:
            send.append((v, take_ops))
    recv = []
    for u in range(P):
        if u == w:
            continue
        tile = _pair_tile(src, dst, u, w)
        if tile is None:
            continue
        recv.append((u, _tile_indexer(dst, w, tile, out_shape)))
    return _RedistPlan("general", out_shape, send, recv, self_pair)


# ----------------------------------------------------------------------
# plan cache (LRU per worker; keys derived from distribution descriptors)
# ----------------------------------------------------------------------
def _plan_cache_get(state: WorkerState, key):
    plan = state.plan_cache.get(key)
    if plan is not None:
        state.plan_cache.move_to_end(key)
        state.plan_hits += 1
        if _MX.enabled:
            _MX.inc("odin.plan_cache.hits", worker=state.index)
        return plan
    state.plan_misses += 1
    if _MX.enabled:
        _MX.inc("odin.plan_cache.misses", worker=state.index)
    return None


def _plan_cache_put(state: WorkerState, key, plan) -> None:
    cache = state.plan_cache
    cache[key] = plan
    while len(cache) > state.plan_cache_cap:
        cache.popitem(last=False)


def _redist_plan_for(state: WorkerState, src: Distribution,
                     dst: Distribution, dtype) -> _RedistPlan:
    src_key = src.cache_key()
    dst_key = dst.cache_key()
    if src_key is None or dst_key is None:
        # unkeyable distribution: build fresh, bypass the cache entirely
        return _build_redist_plan(state, src, dst)
    key = ("redist", src_key, dst_key, np.dtype(dtype).str)
    plan = _plan_cache_get(state, key)
    if plan is None:
        plan = _build_redist_plan(state, src, dst)
        _plan_cache_put(state, key, plan)
    return plan


# ----------------------------------------------------------------------
# slicing
# ----------------------------------------------------------------------
def _slice_survivors(dist: Distribution, worker: int, sl: slice):
    """Global source indices on *worker* that survive slice *sl* along the
    distributed axis, plus their new global indices."""
    start, stop, step = sl.indices(dist.axis_length)
    mine = dist.indices_for(worker)
    if step > 0:
        mask = (mine >= start) & (mine < stop) & ((mine - start) % step == 0)
    else:
        mask = (mine <= start) & (mine > stop) & ((start - mine) % -step == 0)
    kept = mine[mask]
    new_g = (kept - start) // step
    return kept, new_g


class _SlicePlan:
    """Precomputed slice-then-redistribute schedule.

    Stores the local slicing indexer, the survivor take along the
    distributed axis, and the inner redistribution plan from the implied
    intermediate distribution to the target -- so a cache hit skips the
    survivor scan and the ArbitraryDistribution construction entirely.
    """

    __slots__ = ("local_sl", "take", "axis", "inner")

    def __init__(self, local_sl, take, axis, inner):
        self.local_sl = local_sl
        self.take = take
        self.axis = axis
        self.inner = inner

    def execute(self, state: WorkerState, local: np.ndarray) -> np.ndarray:
        part = local[self.local_sl]
        part = np.take(part, self.take, axis=self.axis)
        return self.inner.execute(state, part)


def _build_slice_plan(state: WorkerState, src: Distribution, slices,
                      new_dist: Distribution) -> _SlicePlan:
    w = state.index
    # local part: every non-distributed axis is sliced in place
    local_sl: List[Any] = []
    mid_shape = list(src.global_shape)
    for ax, sl in enumerate(slices):
        if ax == src.axis:
            local_sl.append(slice(None))
        else:
            local_sl.append(sl)
            mid_shape[ax] = len(range(*sl.indices(src.global_shape[ax])))
    # distributed axis: keep survivors, renumber them globally
    axis_sl = slices[src.axis]
    kept, _new_g = _slice_survivors(src, w, axis_sl)
    take = src.axis_local_position(w, src.axis, kept)
    start, stop, step = axis_sl.indices(src.axis_length)
    mid_shape[src.axis] = len(range(start, stop, step))
    # ownership after the cut, before rebalancing: each worker holds the
    # survivors of its own segment (deterministically recomputable)
    lists = [_slice_survivors(src, v, axis_sl)[1]
             for v in range(src.nworkers)]
    inter = ArbitraryDistribution(tuple(mid_shape), src.axis, lists,
                                  validate=False)
    inner = _build_redist_plan(state, inter, new_dist)
    return _SlicePlan(tuple(local_sl), take, src.axis, inner)


def _apply_slice(state: WorkerState, local: np.ndarray, src: Distribution,
                 slices, new_dist: Distribution) -> np.ndarray:
    """Slice then redistribute to *new_dist* (same ndim preserved)."""
    src_key = src.cache_key()
    dst_key = new_dist.cache_key()
    key = None
    plan = None
    if src_key is not None and dst_key is not None:
        # slices are unhashable before 3.12: normalize to index triples
        triples = tuple(sl.indices(src.global_shape[ax])
                        for ax, sl in enumerate(slices))
        key = ("slice", src_key, triples, dst_key,
               np.dtype(local.dtype).str)
        plan = _plan_cache_get(state, key)
    if plan is None:
        plan = _build_slice_plan(state, src, slices, new_dist)
        if key is not None:
            _plan_cache_put(state, key, plan)
    if _TR.enabled:
        with _TR.span("odin.worker", "redistribute.exchange",
                      worker=state.index, kind=plan.inner.kind):
            return plan.execute(state, local)
    return plan.execute(state, local)


# ----------------------------------------------------------------------
# fused expression evaluation (loop fusion, paper section III intro)
# ----------------------------------------------------------------------
def _eval_program(state: WorkerState, program, blocks: List[np.ndarray],
                  use_seamless: bool) -> np.ndarray:
    """Evaluate a postfix elementwise program over conformable blocks.

    With ``use_seamless`` the program is compiled to a single native loop
    via :mod:`repro.seamless` (true loop fusion); otherwise a NumPy stack
    machine evaluates it block-at-a-time (still one control round-trip for
    the whole expression instead of one per op).
    """
    if use_seamless:
        try:
            from .fusion import compiled_kernel
            kernel = compiled_kernel(tuple(program), len(blocks))
            if kernel is not None:
                if _TR.enabled:
                    t0 = _TR.now()
                    out = kernel(blocks)
                    _TR.complete("odin.worker", "fused.kernel", t0,
                                 ops=len(program), engine="seamless")
                    return out
                return kernel(blocks)
        except Exception:
            pass  # fall back to the stack machine
    t0 = _TR.now() if _TR.enabled else 0.0
    stack: List[np.ndarray] = []
    for inst in program:
        tag = inst[0]
        if tag == "load":
            stack.append(blocks[inst[1]])
        elif tag == "const":
            stack.append(inst[1])
        elif tag == "unary":
            stack.append(UNARY_UFUNCS[inst[1]](stack.pop()))
        elif tag == "binary":
            b = stack.pop()
            a = stack.pop()
            stack.append(BINARY_UFUNCS[inst[1]](a, b))
        else:
            raise ValueError(f"bad instruction {inst!r}")
    if len(stack) != 1:
        raise ValueError("malformed fusion program")
    out = np.asarray(stack[0])
    if _TR.enabled:
        _TR.complete("odin.worker", "fused.stack", t0,
                     ops=len(program), engine="numpy")
    return out


def _key_hash(keys: np.ndarray) -> np.ndarray:
    """Deterministic shuffle hash for group-by keys (ints or strings)."""
    keys = np.asarray(keys)
    if keys.dtype.kind in "iu":
        return np.abs(keys.astype(np.int64) * np.int64(2654435761)) \
            & np.int64(0x7FFFFFFF)
    out = np.empty(len(keys), dtype=np.int64)
    for i, k in enumerate(keys):
        h = 0
        for ch in str(k).encode():
            h = (h * 131 + ch) & 0x7FFFFFFF
        out[i] = h
    return out


# ----------------------------------------------------------------------
# checkpoint / restore (repro.recover)
# ----------------------------------------------------------------------
_CKPT_TAG = 7001  # p2p tag for the partner ring exchange


def _checkpoint(state: WorkerState, version: int) -> int:
    """Snapshot every live array and mirror the snapshot on the ring
    partner ``(w + 1) % P``; returns the snapshot's payload bytes."""
    snapshot = {array_id: (np.array(block, copy=True), dist)
                for array_id, (block, dist) in state.arrays.items()}
    nbytes = sum(block.nbytes for block, _dist in snapshot.values())
    comm = state.comm
    P = comm.size
    if P > 1:
        # eager buffered sends: everyone sends before anyone receives,
        # so the ring cannot deadlock
        comm.send(snapshot, dest=(state.index + 1) % P, tag=_CKPT_TAG)
        partner = comm.recv(source=(state.index - 1) % P, tag=_CKPT_TAG)
    else:
        partner = {}
    state.checkpoints[version] = (snapshot, partner,
                                  (state.index - 1) % P)
    state.prune_checkpoints()
    if _MX.enabled:
        _MX.inc("recover.ckpt_bytes", nbytes, worker=state.index)
    return nbytes


def _restore(state: WorkerState, version: int, old_indices, dead_indices,
             old_n: int) -> int:
    """Rebuild every checkpointed array on the shrunk worker set.

    Runs on the post-shrink communicator; ``state.index``/``state.comm``
    are already the new ones.  ``old_indices[j]`` is new worker j's old
    index; each dead worker's blocks come from its ring partner's copy.
    Single-axis arrays are redistributed with the (cacheable) alltoall
    plan; grid/concat/undistributed arrays take an allgather-assemble
    fallback.  Returns the number of restored arrays.
    """
    own, partner, partner_of = state.checkpoints.get(
        version, ({}, {}, None))
    my_old = old_indices[state.index]
    dead = set(dead_indices)
    for d in dead:
        holder = (d + 1) % old_n
        if holder in dead:
            raise RuntimeError(
                f"unrecoverable: worker {d} and its checkpoint partner "
                f"{holder} both failed")
    # old worker index -> snapshot dict I can contribute
    mine = {my_old: own}
    if partner_of in dead and partner:
        mine[partner_of] = partner
    elif partner_of in dead and not own:
        # version 0 (no checkpoint taken): nothing to contribute is fine
        pass

    new_n = len(old_indices)
    state.arrays.clear()

    # split arrays by restore strategy using my own snapshot's metadata
    # (every worker checkpointed the same id set)
    simple, general = [], []
    for array_id, (_block, dist) in own.items():
        if (dist is not None and len(dist.dist_axes) == 1
                and not dist.general_only):
            simple.append(array_id)
        else:
            general.append(array_id)

    # -- single-axis arrays: alltoall redistribution, plan-cacheable ----
    for array_id in sorted(simple):
        _block, old_dist = own[array_id]
        # source view over the NEW workers: worker j holds the old blocks
        # of old_indices[j] plus any dead worker it partners for
        src_lists = []
        for j in range(new_n):
            covered = [old_indices[j]]
            covered += [d for d in sorted(dead)
                        if (d + 1) % old_n == old_indices[j]]
            src_lists.append(np.concatenate(
                [old_dist.indices_for(v) for v in covered])
                if covered else np.empty(0, dtype=np.int64))
        src_dist = ArbitraryDistribution(
            old_dist.global_shape, old_dist.axis, src_lists, validate=False)
        parts = [own[array_id][0]]
        parts += [mine[d][array_id][0] for d in sorted(dead)
                  if d in mine and d != my_old]
        local_src = np.concatenate(parts, axis=old_dist.axis) \
            if len(parts) > 1 else parts[0]
        new_dist = old_dist.with_nworkers(new_n)
        moved = _redistribute_block(state, local_src, src_dist, new_dist)
        state.arrays[array_id] = (moved, new_dist)

    # -- grid/concat/undistributed: allgather and assemble globally -----
    if general:
        contributions = state.comm.allgather(
            {v: {array_id: snap[array_id] for array_id in general
                 if array_id in snap}
             for v, snap in mine.items()})
        by_old: Dict[int, dict] = {}
        for contrib in contributions:
            by_old.update(contrib)
        for array_id in sorted(general):
            _block, old_dist = own[array_id]
            if old_dist is None:
                # tabular/unknown layout: concatenate rows in old worker
                # order, re-deal contiguously over the new workers
                rows = np.concatenate(
                    [by_old[v][array_id][0] for v in sorted(by_old)])
                base, extra = divmod(len(rows), new_n)
                lo = state.index * base + min(state.index, extra)
                hi = lo + base + (1 if state.index < extra else 0)
                state.arrays[array_id] = (rows[lo:hi].copy(), None)
                continue
            glob = np.empty(old_dist.global_shape,
                            dtype=own[array_id][0].dtype)
            for v in range(old_n):
                glob[old_dist.global_selector(v)] = by_old[v][array_id][0]
            new_dist = old_dist.with_nworkers(new_n)
            state.arrays[array_id] = (
                np.ascontiguousarray(glob[new_dist.global_selector(
                    state.index)]), new_dist)

    if _MX.enabled:
        _MX.inc("recover.restored_arrays", len(own), worker=state.index)
    return len(own)


# ----------------------------------------------------------------------
# function shipping (process-backend REGISTER_LOCAL)
# ----------------------------------------------------------------------
def _ship_function(fn: Callable) -> tuple:
    """Wire form of an ``@odin.local`` function for process workers.

    Plain pickling stores a module+qualname reference, which a forked
    worker cannot resolve for functions defined *after* the fork (the
    common case: test bodies).  Marshalling the code object ships the
    actual bytecode; the worker rebinds it over the live globals of the
    same module, so references like ``np`` resolve there.  Closures
    cannot cross (cell contents live in the defining frame) -- rejected
    with a pointed error rather than a NameError on the worker.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        raise TypeError(f"cannot ship {fn!r} to process workers "
                        "(not a plain Python function)")
    if fn.__closure__:
        raise TypeError(
            f"@odin.local function {fn.__qualname__!r} closes over outer "
            "variables; process-backend workers cannot rebuild closures -- "
            "pass the values as arguments instead")
    return (fn.__module__, fn.__name__, marshal.dumps(code), fn.__defaults__)


def _unship_function(spec: tuple) -> Callable:
    module, name, code_bytes, defaults = spec
    mod = sys.modules.get(module)
    if mod is None:
        try:
            mod = importlib.import_module(module)
        except Exception:  # noqa: BLE001 - fall back to a minimal namespace
            mod = None
    globs = mod.__dict__ if mod is not None else {
        "np": np, "__builtins__": __builtins__}
    return types.FunctionType(marshal.loads(code_bytes), globs, name,
                              defaults)


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def execute_op(state: WorkerState, op: tuple) -> Any:
    """Execute one control op; each op becomes one ``odin.worker`` span
    (tagged with the causal op_id from the TAGGED envelope) and, with
    metrics on, one per-opcode latency observation."""
    if not (_TR.enabled or _MX.enabled or _FL.enabled):
        return _execute_op_impl(state, op)
    t0 = time.perf_counter()
    oid, eid = _CZ.current()
    if _TR.enabled:
        with _TR.span("odin.worker", str(op[0]), worker=state.index,
                      op_id=oid, epoch_id=eid):
            out = _execute_op_impl(state, op)
    else:
        out = _execute_op_impl(state, op)
    if _MX.enabled:
        _MX.observe("odin.worker.op_seconds", time.perf_counter() - t0,
                    op=str(op[0]), worker=state.index)
    if _FL.enabled:
        _FL.complete("odin.worker", str(op[0]), _TR.thread_rank(),
                     t0 - _TR._epoch, worker=state.index, op_id=oid)
    return out


def _execute_op_impl(state: WorkerState, op: tuple) -> Any:
    code = op[0]

    if code == opcodes.CREATE:
        _code, array_id, dist, dtype_str, fill_spec = op
        state.arrays[array_id] = (
            _fill_local(state, dist, np.dtype(dtype_str), fill_spec), dist)
        return None

    if code == opcodes.SCATTER:
        _code, array_id, dist, _dtype_str = op
        block = state.full_comm.scatter(None, root=0)
        state.arrays[array_id] = (block, dist)
        return None

    if code == opcodes.DELETE:
        state.arrays.pop(op[1], None)
        return None

    if code == opcodes.DELETE_MANY:
        for array_id in op[1]:
            state.arrays.pop(array_id, None)
        return None

    if code == opcodes.GATHER:
        local, dist = state.get(op[1])
        return (dist, local)

    if code == opcodes.FETCH:
        _code, array_id, index_tuple = op
        local, dist = state.get(array_id)
        li = []
        for ax in range(dist.ndim):
            ids = dist.axis_indices(state.index, ax)
            if ids is None:
                li.append(int(index_tuple[ax]))
                continue
            pos = np.nonzero(ids == index_tuple[ax])[0]
            if len(pos) == 0:
                return None  # not this worker's tile
            li.append(int(pos[0]))
        return local[tuple(li)]

    if code == opcodes.UFUNC:
        _code, name, in_specs, out_id = op
        blocks = []
        dist = None
        for spec in in_specs:
            if spec[0] == "array":
                block, d = state.get(spec[1])
                blocks.append(block)
                dist = d if dist is None else dist
            else:
                blocks.append(spec[1])
        result = UFUNCS[name](*blocks)
        state.arrays[out_id] = (np.asarray(result), dist)
        return None

    if code == opcodes.FUSED:
        _code, program, in_ids, out_id, use_seamless = op
        blocks = []
        dist = None
        for array_id in in_ids:
            block, d = state.get(array_id)
            blocks.append(block)
            dist = d if dist is None else dist
        result = _eval_program(state, program, blocks, use_seamless)
        state.arrays[out_id] = (result, dist)
        return None

    if code == opcodes.REDIST:
        _code, src_id, dst_id, new_dist = op
        local, src_dist = state.get(src_id)
        moved = _redistribute_block(state, local, src_dist, new_dist)
        state.arrays[dst_id] = (moved, new_dist)
        return None

    if code == opcodes.TRANSPOSE:
        # axis permutation keeps every element on its worker: the new
        # distribution permutes the distributed axes the same way, so the
        # whole op is a local np.transpose -- zero communication
        _code, src_id, dst_id, axes_perm, new_dist = op
        local, _src_dist = state.get(src_id)
        state.arrays[dst_id] = (
            np.ascontiguousarray(np.transpose(local, axes_perm)), new_dist)
        return None

    if code == opcodes.SLICE:
        _code, src_id, dst_id, slices, new_dist = op
        local, src_dist = state.get(src_id)
        out = _apply_slice(state, local, src_dist, slices, new_dist)
        state.arrays[dst_id] = (out, new_dist)
        return None

    if code == opcodes.PLAN_STATS:
        return (state.plan_hits, state.plan_misses, len(state.plan_cache))

    if code == opcodes.SETITEM:
        _code, array_id, slices, value_spec = op
        local, dist = state.get(array_id)
        if not local.flags.writeable:
            # scattered/received blocks share read-only payload buffers
            # (one-copy rule); mutate a private copy
            local = local.copy()
            state.arrays[array_id] = (local, dist)
        w = state.index
        local_sl = []
        for ax, sl in enumerate(slices):
            if ax == dist.axis:
                local_sl.append(None)  # placeholder
            else:
                local_sl.append(sl)
        kept, _new_g = _slice_survivors(dist, w, slices[dist.axis])
        take = dist.axis_local_position(w, dist.axis, kept)
        local_sl[dist.axis] = take
        if value_spec[0] == "scalar":
            sl = list(local_sl)
            local[tuple(sl)] = value_spec[1]
        else:
            raise ValueError("only scalar setitem values are supported via "
                             "control messages; use local functions for "
                             "array-valued assignment")
        return None

    if code == opcodes.REDUCE:
        _code, array_id, op_name, axis = op[:4]
        local, dist = state.get(array_id)
        reducer = REDUCERS[op_name]
        if axis is None:
            if local.size == 0:
                return ("partial", None)
            return ("partial", reducer.reduce(local, axis=None))
        if len(dist.dist_axes) > 1:
            # grid: reduce locally, ship the tile with its remaining-axes
            # coordinates; the driver combines overlapping tiles
            part = reducer.reduce(local, axis=axis) if local.size else None
            coords = []
            for ax in range(dist.ndim):
                if ax == axis:
                    continue
                ids = dist.axis_indices(state.index, ax)
                coords.append(None if ids is None else ids)
            return ("tile", coords, part)
        if axis == dist.axis:
            part = reducer.reduce(local, axis=axis) if local.size else None
            return ("partial", part)
        # purely local reduction: result stays distributed, with the same
        # axis decomposition (expressed as an arbitrary distribution so
        # nonuniform block counts survive unchanged)
        reduced = reducer.reduce(local, axis=axis)
        new_shape = tuple(s for i, s in enumerate(dist.global_shape)
                          if i != axis)
        new_axis = dist.axis - (1 if axis < dist.axis else 0)
        lists = [dist.indices_for(v) for v in range(dist.nworkers)]
        new_dist = ArbitraryDistribution(new_shape, new_axis, lists,
                                         validate=False)
        out_id = op[4]
        state.arrays[out_id] = (reduced, new_dist)
        return ("stored", new_dist)

    if code == opcodes.CALL_LOCAL:
        _code, fname, arg_specs, kwarg_specs, out_id = op[:5]
        out_dist = op[5] if len(op) > 5 else None
        fn = state.registry[fname]
        args = []
        first_dist = None
        for spec in arg_specs:
            if spec[0] == "array":
                block, d = state.get(spec[1])
                args.append(block)
                first_dist = d if first_dist is None else first_dist
            else:
                args.append(spec[1])
        kwargs = {}
        for key, spec in kwarg_specs.items():
            if spec[0] == "array":
                block, d = state.get(spec[1])
                kwargs[key] = block
                first_dist = d if first_dist is None else first_dist
            else:
                kwargs[key] = spec[1]
        result = fn(*args, **kwargs)
        target = out_dist if out_dist is not None else first_dist
        if out_id is not None and isinstance(result, np.ndarray) and \
                target is not None and \
                result.shape == target.local_shape(state.index):
            state.arrays[out_id] = (result, target)
            return ("stored", target)
        return ("value", result)

    if code == opcodes.TRANSFORM:
        # apply a registered record-wise transform; the local length may
        # change (filter), so the driver fixes the distribution afterwards
        _code, src_id, dst_id, fname = op
        local, _dist = state.get(src_id)
        fn = state.registry[fname]
        result = np.asarray(fn(local))
        state.arrays[dst_id] = (result, None)
        return (int(result.shape[0]), result.dtype.str
                if result.dtype.names is None else result.dtype.descr)

    if code == opcodes.SET_DIST:
        _code, array_id, dist = op
        local, _old = state.get(array_id)
        expected = dist.local_shape(state.index)
        if tuple(local.shape) != tuple(expected):
            raise ValueError(f"stored block shape {local.shape} does not "
                             f"match assigned distribution {expected}")
        state.arrays[array_id] = (local, dist)
        return None

    if code == opcodes.GROUPBY:
        # shuffle rows by key hash over the worker comm, then aggregate
        _code, src_id, dst_id, key_field, agg_field, agg_op = op
        local, _dist = state.get(src_id)
        P = state.comm.size
        keys = local[key_field]
        dest = _key_hash(keys) % P
        outbound = [local[dest == v] for v in range(P)]
        received = state.comm.alltoall(outbound)
        mine = np.concatenate([r for r in received if len(r)]) \
            if any(len(r) for r in received) else local[:0]
        uniq, inverse = np.unique(mine[key_field], return_inverse=True)
        values = mine[agg_field]
        if agg_op == "count":
            agg = np.bincount(inverse, minlength=len(uniq)).astype(
                np.float64)
        elif agg_op == "sum":
            agg = np.bincount(inverse, weights=values.astype(np.float64),
                              minlength=len(uniq))
        elif agg_op == "mean":
            sums = np.bincount(inverse, weights=values.astype(np.float64),
                               minlength=len(uniq))
            cnts = np.bincount(inverse, minlength=len(uniq))
            agg = sums / np.maximum(cnts, 1)
        elif agg_op in ("min", "max"):
            fill = np.inf if agg_op == "min" else -np.inf
            agg = np.full(len(uniq), fill)
            ufn = np.minimum if agg_op == "min" else np.maximum
            ufn.at(agg, inverse, values.astype(np.float64))
        else:
            raise ValueError(f"unknown aggregation {agg_op!r}")
        out = np.empty(len(uniq), dtype=[("key", uniq.dtype),
                                         ("value", np.float64)])
        out["key"] = uniq
        out["value"] = agg
        state.arrays[dst_id] = (out, None)
        return (int(len(out)), out.dtype.descr)

    if code == opcodes.REGISTER_LOCAL:
        _code, name, spec = op
        state.registry[name] = _unship_function(spec)
        return None

    if code == opcodes.CHAOS_INSTALL:
        from ..chaos.core import ENGINE, FaultPlan
        ENGINE.install(FaultPlan.from_dict(op[1]))
        return None

    if code == opcodes.CHAOS_UNINSTALL:
        from ..chaos.core import ENGINE
        ENGINE.uninstall()
        return None

    if code == opcodes.CKPT:
        _code, version = op
        return _checkpoint(state, version)

    if code == opcodes.RESTORE:
        _code, version, old_indices, dead_indices, old_n = op
        return _restore(state, version, old_indices, dead_indices, old_n)

    if code == opcodes.DIST_SYNC:
        _code, ids = op
        return {array_id: state.arrays[array_id][1]
                for array_id in ids if array_id in state.arrays}

    if code == opcodes.SAVE:
        _code, array_id, pattern = op
        local, dist = state.get(array_id)
        np.save(pattern.format(rank=state.index), local)
        return None

    if code == opcodes.LOAD:
        _code, array_id, dist, dtype_str, pattern = op
        block = np.load(pattern.format(rank=state.index))
        expected = dist.local_shape(state.index)
        if block.shape != expected:
            raise ValueError(f"loaded block shape {block.shape} != expected "
                             f"{expected}")
        state.arrays[array_id] = (block.astype(np.dtype(dtype_str),
                                               copy=False), dist)
        return None

    raise ValueError(f"unknown opcode {code!r}")
