"""Array distributions: how a global N-D array is split over workers.

Paper section III-A: creation routines "take optional arguments to control
the distribution": which nodes, which dimension, nonuniform sections, and
"either block, cyclic, block-cyclic, or another arbitrary global-to-local
index mapping".  All four are here, parameterized by the distributed axis.

A distribution answers purely index-arithmetic questions (no
communication): which global indices along the distributed axis live on
worker *w*, in which local order, and conversely who owns a given global
index.  The redistribution engine in :mod:`repro.odin.redistribute` is
built on those answers.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Distribution", "BlockDistribution", "CyclicDistribution",
           "BlockCyclicDistribution", "ArbitraryDistribution",
           "GridDistribution", "ConcatDistribution", "make_distribution"]


class Distribution:
    """Base class: a single-axis decomposition of a global shape."""

    kind = "abstract"
    # distributions whose local_position needs the worker id must route
    # through the general (worker-aware) redistribution engine
    general_only = False

    def __init__(self, global_shape: Sequence[int], axis: int,
                 nworkers: int):
        self.global_shape = tuple(int(s) for s in global_shape)
        if not self.global_shape:
            raise ValueError("zero-dimensional arrays are not distributed")
        self.axis = int(axis) % len(self.global_shape)
        self.nworkers = int(nworkers)

    # -- interface ------------------------------------------------------
    def indices_for(self, worker: int) -> np.ndarray:
        """Global indices along the distributed axis owned by *worker*,
        in local storage order."""
        raise NotImplementedError

    def owner_of(self, global_idx: np.ndarray) -> np.ndarray:
        """Owning worker of each global index along the distributed axis."""
        raise NotImplementedError

    def local_position(self, global_idx: np.ndarray) -> np.ndarray:
        """Local (storage) position of each global index on its owner."""
        raise NotImplementedError

    # -- derived --------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.global_shape)

    @property
    def axis_length(self) -> int:
        return self.global_shape[self.axis]

    def local_count(self, worker: int) -> int:
        return len(self.indices_for(worker))

    def local_shape(self, worker: int) -> Tuple[int, ...]:
        shape = list(self.global_shape)
        shape[self.axis] = self.local_count(worker)
        return tuple(shape)

    def counts(self) -> List[int]:
        return [self.local_count(w) for w in range(self.nworkers)]

    def same_as(self, other: "Distribution") -> bool:
        """Conformability test: identical global shape and identical
        index-to-worker assignment (paper III-D: binary ufuncs are
        'trivially parallelizable' exactly in this case)."""
        if self.global_shape != other.global_shape:
            return False
        if self.axis != other.axis or self.nworkers != other.nworkers:
            return False
        ka, kb = self.cache_key(), other.cache_key()
        if ka is not None and ka == kb:
            # equal keys guarantee an identical index mapping; unequal
            # keys prove nothing (block vs 1-axis grid), so fall through
            return True
        return all(
            np.array_equal(self.indices_for(w), other.indices_for(w))
            for w in range(self.nworkers))

    def with_shape(self, global_shape: Sequence[int]) -> "Distribution":
        """Same scheme applied to a different global shape."""
        raise NotImplementedError

    def with_nworkers(self, nworkers: int) -> "Distribution":
        """Same scheme over a different worker count.

        This is the remap recovery applies when a communicator shrinks:
        each surviving array's target distribution is its old scheme
        re-balanced over the survivors.  Schemes with worker-count-bound
        parameters (explicit counts, arbitrary index lists) rebalance
        deterministically rather than erroring -- any valid partition is
        correct because recovery redistributes/replays the content onto
        whatever this returns.
        """
        raise NotImplementedError

    def cache_key(self):
        """Hashable value identifying the index mapping, or None when the
        distribution cannot be cheaply keyed (such a distribution opts out
        of the worker-side redistribution-plan cache).  Two distributions
        with equal keys must assign every global index to the same worker
        at the same local position."""
        return None

    # -- multi-axis protocol (used by the redistribution engine) --------
    @property
    def dist_axes(self) -> Tuple[int, ...]:
        """The axes this distribution actually splits."""
        return (self.axis,)

    def axis_indices(self, worker: int, axis: int) -> Optional[np.ndarray]:
        """Global indices along *axis* owned by *worker*, or None when
        the axis is not distributed (the worker holds its full extent)."""
        if axis == self.axis:
            return self.indices_for(worker)
        return None

    def axis_local_position(self, worker: int, axis: int,
                            gids: np.ndarray) -> np.ndarray:
        """Local storage positions of global indices along *axis*."""
        if axis == self.axis:
            return self.local_position(gids)
        return np.asarray(gids, dtype=np.int64)

    def global_selector(self, worker: int):
        """Open-mesh indexer placing this worker's block in a global array:
        ``global_arr[dist.global_selector(w)] = local_block``."""
        per_axis = []
        for ax in range(self.ndim):
            ids = self.axis_indices(worker, ax)
            per_axis.append(np.arange(self.global_shape[ax],
                                      dtype=np.int64)
                            if ids is None else ids)
        return np.ix_(*per_axis)

    def __repr__(self):
        return (f"{type(self).__name__}(shape={self.global_shape}, "
                f"axis={self.axis}, workers={self.nworkers})")

    def __eq__(self, other):
        return isinstance(other, Distribution) and self.same_as(other)


class BlockDistribution(Distribution):
    """Contiguous blocks, uniform by default or with explicit counts
    (the paper's "apportion nonuniform sections of an array to each
    node")."""

    kind = "block"

    def __init__(self, global_shape, axis: int, nworkers: int,
                 counts: Optional[Sequence[int]] = None):
        super().__init__(global_shape, axis, nworkers)
        n = self.axis_length
        if counts is None:
            base = n // nworkers
            extra = n % nworkers
            counts = [base + (1 if w < extra else 0)
                      for w in range(nworkers)]
        counts = [int(c) for c in counts]
        if len(counts) != nworkers or sum(counts) != n:
            raise ValueError(f"counts {counts} do not partition axis of "
                             f"length {n} over {nworkers} workers")
        self._counts = counts
        self._offsets = np.zeros(nworkers + 1, dtype=np.int64)
        np.cumsum(counts, out=self._offsets[1:])

    @property
    def uniform(self) -> bool:
        return len(set(self._counts[:-1] or [0])) <= 1

    def indices_for(self, worker: int) -> np.ndarray:
        return np.arange(self._offsets[worker], self._offsets[worker + 1],
                         dtype=np.int64)

    def owner_of(self, global_idx) -> np.ndarray:
        gi = np.asarray(global_idx, dtype=np.int64)
        return (np.searchsorted(self._offsets, gi, side="right") - 1) \
            .astype(np.int64)

    def local_position(self, global_idx) -> np.ndarray:
        gi = np.asarray(global_idx, dtype=np.int64)
        return gi - self._offsets[self.owner_of(gi)]

    def local_count(self, worker: int) -> int:
        return self._counts[worker]

    def with_shape(self, global_shape) -> "BlockDistribution":
        return BlockDistribution(global_shape, self.axis, self.nworkers)

    def with_nworkers(self, nworkers: int) -> "BlockDistribution":
        # explicit counts are bound to the old worker count; rebalance
        return BlockDistribution(self.global_shape, self.axis, nworkers)

    def cache_key(self):
        return ("block", self.global_shape, self.axis, self.nworkers,
                tuple(self._counts))


class CyclicDistribution(Distribution):
    """Round-robin along the axis: index i lives on worker i % P."""

    kind = "cyclic"

    def indices_for(self, worker: int) -> np.ndarray:
        return np.arange(worker, self.axis_length, self.nworkers,
                         dtype=np.int64)

    def owner_of(self, global_idx) -> np.ndarray:
        gi = np.asarray(global_idx, dtype=np.int64)
        return gi % self.nworkers

    def local_position(self, global_idx) -> np.ndarray:
        gi = np.asarray(global_idx, dtype=np.int64)
        return gi // self.nworkers

    def with_shape(self, global_shape) -> "CyclicDistribution":
        return CyclicDistribution(global_shape, self.axis, self.nworkers)

    def with_nworkers(self, nworkers: int) -> "CyclicDistribution":
        return CyclicDistribution(self.global_shape, self.axis, nworkers)

    def cache_key(self):
        return ("cyclic", self.global_shape, self.axis, self.nworkers)


class BlockCyclicDistribution(Distribution):
    """Blocks of *block_size* dealt round-robin (ScaLAPACK-style)."""

    kind = "block-cyclic"

    def __init__(self, global_shape, axis: int, nworkers: int,
                 block_size: int = 1):
        super().__init__(global_shape, axis, nworkers)
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = int(block_size)

    def indices_for(self, worker: int) -> np.ndarray:
        b = self.block_size
        n = self.axis_length
        blocks = np.arange(worker, -(-n // b), self.nworkers,
                           dtype=np.int64)
        pieces = [np.arange(blk * b, min((blk + 1) * b, n), dtype=np.int64)
                  for blk in blocks]
        return np.concatenate(pieces) if pieces else \
            np.empty(0, dtype=np.int64)

    def owner_of(self, global_idx) -> np.ndarray:
        gi = np.asarray(global_idx, dtype=np.int64)
        return (gi // self.block_size) % self.nworkers

    def local_position(self, global_idx) -> np.ndarray:
        gi = np.asarray(global_idx, dtype=np.int64)
        block = gi // self.block_size
        local_block = block // self.nworkers
        return local_block * self.block_size + gi % self.block_size

    def with_shape(self, global_shape) -> "BlockCyclicDistribution":
        return BlockCyclicDistribution(global_shape, self.axis,
                                       self.nworkers, self.block_size)

    def with_nworkers(self, nworkers: int) -> "BlockCyclicDistribution":
        return BlockCyclicDistribution(self.global_shape, self.axis,
                                       nworkers, self.block_size)

    def cache_key(self):
        return ("block-cyclic", self.global_shape, self.axis, self.nworkers,
                self.block_size)


class ArbitraryDistribution(Distribution):
    """Explicit global-to-local mapping: one index list per worker.

    ``validate=False`` skips the O(n log n) partition check for lists that
    are derived from an existing distribution (internal callers).
    """

    kind = "arbitrary"

    def __init__(self, global_shape, axis: int,
                 index_lists: Sequence[np.ndarray], validate: bool = True):
        super().__init__(global_shape, axis, len(index_lists))
        self._lists = [np.asarray(ix, dtype=np.int64) for ix in index_lists]
        n = self.axis_length
        total = sum(len(ix) for ix in self._lists)
        if total != n:
            raise ValueError("index lists must partition the axis exactly")
        if validate:
            seen = np.concatenate(self._lists) if self._lists else \
                np.empty(0, dtype=np.int64)
            if not np.array_equal(np.sort(seen), np.arange(n)):
                raise ValueError("index lists must partition the axis "
                                 "exactly")
        self._digest = None
        self._owner = np.empty(n, dtype=np.int64)
        self._pos = np.empty(n, dtype=np.int64)
        for w, ix in enumerate(self._lists):
            self._owner[ix] = w
            self._pos[ix] = np.arange(len(ix))

    def indices_for(self, worker: int) -> np.ndarray:
        return self._lists[worker]

    def owner_of(self, global_idx) -> np.ndarray:
        return self._owner[np.asarray(global_idx, dtype=np.int64)]

    def local_position(self, global_idx) -> np.ndarray:
        return self._pos[np.asarray(global_idx, dtype=np.int64)]

    def with_shape(self, global_shape) -> "Distribution":
        raise ValueError("an arbitrary distribution does not generalize to "
                         "a new shape; specify one explicitly")

    def with_nworkers(self, nworkers: int) -> "ArbitraryDistribution":
        # deterministic rebalance: old lists concatenated in worker order,
        # re-dealt as contiguous runs -- preserves the (possibly permuted)
        # global ordering the lists encode while dropping the dependence
        # on the old worker count
        order = (np.concatenate(self._lists) if self._lists
                 else np.empty(0, dtype=np.int64))
        n = len(order)
        base, extra = divmod(n, nworkers)
        lists, lo = [], 0
        for w in range(nworkers):
            hi = lo + base + (1 if w < extra else 0)
            lists.append(order[lo:hi])
            lo = hi
        return ArbitraryDistribution(self.global_shape, self.axis, lists,
                                     validate=False)

    def cache_key(self):
        if self._digest is None:
            h = hashlib.blake2b(digest_size=16)
            for ix in self._lists:
                h.update(np.ascontiguousarray(ix).tobytes())
                h.update(b"|")
            self._digest = h.hexdigest()
        return ("arbitrary", self.global_shape, self.axis, self.nworkers,
                self._digest)


class GridDistribution(Distribution):
    """Multi-axis block decomposition over a worker grid.

    Paper section III-A lists "which dimension or dimensions to distribute
    over"; this is the plural case: e.g. a (1000, 1000) array on a 2x3
    worker grid gives each worker a ~500x333 tile.  Workers map onto grid
    coordinates row-major.
    """

    kind = "grid"

    def __init__(self, global_shape, axes: Sequence[int],
                 grid: Sequence[int]):
        axes = tuple(int(a) for a in axes)
        grid = tuple(int(g) for g in grid)
        if len(axes) != len(grid):
            raise ValueError("axes and grid must have equal length")
        if len(set(axes)) != len(axes):
            raise ValueError("axes must be distinct")
        nworkers = 1
        for g in grid:
            nworkers *= g
        super().__init__(global_shape, axes[0], nworkers)
        self.axes = tuple(a % len(self.global_shape) for a in axes)
        self.grid = grid
        # uniform block offsets per distributed axis
        self._axis_offsets = {}
        for ax, g in zip(self.axes, grid):
            n = self.global_shape[ax]
            counts = np.full(g, n // g, dtype=np.int64)
            counts[:n % g] += 1
            offsets = np.zeros(g + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            self._axis_offsets[ax] = offsets

    # -- worker <-> grid coordinates ------------------------------------
    def coords_of(self, worker: int) -> Tuple[int, ...]:
        coords = []
        rem = worker
        for g in reversed(self.grid):
            coords.append(rem % g)
            rem //= g
        return tuple(reversed(coords))

    def worker_at(self, coords: Sequence[int]) -> int:
        w = 0
        for c, g in zip(coords, self.grid):
            if not 0 <= c < g:
                raise ValueError(f"grid coordinate {c} out of range")
            w = w * g + c
        return w

    # -- multi-axis protocol ---------------------------------------------
    @property
    def dist_axes(self) -> Tuple[int, ...]:
        return self.axes

    def axis_indices(self, worker: int, axis: int) -> Optional[np.ndarray]:
        if axis not in self._axis_offsets:
            return None
        dim = self.axes.index(axis)
        c = self.coords_of(worker)[dim]
        offsets = self._axis_offsets[axis]
        return np.arange(offsets[c], offsets[c + 1], dtype=np.int64)

    def axis_local_position(self, worker: int, axis: int,
                            gids: np.ndarray) -> np.ndarray:
        gids = np.asarray(gids, dtype=np.int64)
        if axis not in self._axis_offsets:
            return gids
        dim = self.axes.index(axis)
        c = self.coords_of(worker)[dim]
        return gids - self._axis_offsets[axis][c]

    # -- base interface ----------------------------------------------------
    def indices_for(self, worker: int) -> np.ndarray:
        """Indices along the *first* distributed axis (base-interface
        compatibility; prefer :meth:`axis_indices`)."""
        return self.axis_indices(worker, self.axes[0])

    def owner_of(self, global_idx) -> np.ndarray:
        raise NotImplementedError(
            "single-axis ownership is ambiguous on a grid; use "
            "axis_indices/worker_at")

    def local_position(self, global_idx) -> np.ndarray:
        raise NotImplementedError(
            "use axis_local_position with an explicit axis on a grid")

    def local_shape(self, worker: int) -> Tuple[int, ...]:
        shape = list(self.global_shape)
        for ax in self.axes:
            shape[ax] = len(self.axis_indices(worker, ax))
        return tuple(shape)

    def local_count(self, worker: int) -> int:
        return len(self.indices_for(worker))

    def same_as(self, other: "Distribution") -> bool:
        if not isinstance(other, GridDistribution):
            # a 1-axis grid is equivalent to a block distribution
            if isinstance(other, BlockDistribution) and \
                    len(self.axes) == 1:
                return other.same_as_gridlike(self)
            return False
        return (self.global_shape == other.global_shape
                and self.axes == other.axes and self.grid == other.grid)

    def with_shape(self, global_shape) -> "GridDistribution":
        return GridDistribution(global_shape, self.axes, self.grid)

    def with_nworkers(self, nworkers: int) -> "GridDistribution":
        return GridDistribution(self.global_shape, self.axes,
                                _balanced_grid(nworkers, len(self.axes)))

    def cache_key(self):
        return ("grid", self.global_shape, self.axes, self.grid)

    def __repr__(self):
        return (f"GridDistribution(shape={self.global_shape}, "
                f"axes={self.axes}, grid={self.grid})")


class ConcatDistribution(Distribution):
    """Ownership of a concatenation result, described by its parts.

    Worker w's local block is [part0's w-block, part1's w-block, ...] in
    order; globally part k's indices are shifted by the lengths of the
    preceding parts.  The descriptor stays tiny on the wire (it stores the
    part distributions, not index lists), which is why
    :func:`repro.odin.linalg.concatenate` is a control-plane-only op.
    """

    kind = "concat"
    general_only = True  # local positions depend on the worker

    def __init__(self, parts: Sequence[Distribution], axis: int):
        parts = list(parts)
        if not parts:
            raise ValueError("need at least one part")
        nworkers = parts[0].nworkers
        shape = list(parts[0].global_shape)
        shape[axis] = sum(p.global_shape[axis] for p in parts)
        super().__init__(tuple(shape), axis, nworkers)
        self.parts = parts
        self._offsets = np.zeros(len(parts) + 1, dtype=np.int64)
        np.cumsum([p.global_shape[axis] for p in parts],
                  out=self._offsets[1:])

    def indices_for(self, worker: int) -> np.ndarray:
        return np.concatenate(
            [self._offsets[k] + p.indices_for(worker)
             for k, p in enumerate(self.parts)])

    def owner_of(self, global_idx) -> np.ndarray:
        gi = np.atleast_1d(np.asarray(global_idx, dtype=np.int64))
        out = np.empty(len(gi), dtype=np.int64)
        part = np.searchsorted(self._offsets, gi, side="right") - 1
        for k, p in enumerate(self.parts):
            mask = part == k
            if mask.any():
                out[mask] = p.owner_of(gi[mask] - self._offsets[k])
        return out

    def local_position(self, global_idx) -> np.ndarray:
        raise NotImplementedError(
            "concat positions depend on the worker; use "
            "axis_local_position")

    def axis_local_position(self, worker: int, axis: int,
                            gids: np.ndarray) -> np.ndarray:
        gids = np.asarray(gids, dtype=np.int64)
        if axis != self.axis:
            return gids
        bases = np.zeros(len(self.parts), dtype=np.int64)
        np.cumsum([p.local_count(worker) for p in self.parts[:-1]],
                  out=bases[1:])
        out = np.empty(len(gids), dtype=np.int64)
        part = np.searchsorted(self._offsets, gids, side="right") - 1
        for k, p in enumerate(self.parts):
            mask = part == k
            if mask.any():
                out[mask] = bases[k] + \
                    p.local_position(gids[mask] - self._offsets[k])
        return out

    def local_count(self, worker: int) -> int:
        return sum(p.local_count(worker) for p in self.parts)

    def with_shape(self, global_shape) -> "Distribution":
        raise ValueError("a concat distribution does not generalize to a "
                         "new shape")

    def with_nworkers(self, nworkers: int) -> "ConcatDistribution":
        return ConcatDistribution(
            [p.with_nworkers(nworkers) for p in self.parts], self.axis)

    def cache_key(self):
        part_keys = tuple(p.cache_key() for p in self.parts)
        if any(k is None for k in part_keys):
            return None
        return ("concat", self.global_shape, self.axis, part_keys)


def _block_same_as_gridlike(self: "BlockDistribution",
                            grid: "GridDistribution") -> bool:
    if self.global_shape != grid.global_shape or \
            self.nworkers != grid.nworkers:
        return False
    if grid.axes != (self.axis,):
        return False
    return all(np.array_equal(self.indices_for(w),
                              grid.axis_indices(w, self.axis))
               for w in range(self.nworkers))


BlockDistribution.same_as_gridlike = _block_same_as_gridlike


def make_distribution(global_shape, nworkers: int, dist: str = "block",
                      axis: int = 0, counts=None, block_size: int = 1,
                      index_lists=None, axes=None,
                      grid=None) -> Distribution:
    """Factory used by every ODIN creation routine's ``dist=`` argument."""
    key = dist.strip().lower().replace("_", "-")
    if key in ("block", "b"):
        return BlockDistribution(global_shape, axis, nworkers, counts=counts)
    if key in ("cyclic", "c"):
        return CyclicDistribution(global_shape, axis, nworkers)
    if key in ("block-cyclic", "bc"):
        return BlockCyclicDistribution(global_shape, axis, nworkers,
                                       block_size=block_size)
    if key in ("arbitrary", "a"):
        if index_lists is None:
            raise ValueError("arbitrary distribution needs index_lists")
        return ArbitraryDistribution(global_shape, axis, index_lists)
    if key in ("grid", "g"):
        if axes is None:
            axes = (0, 1)
        if grid is None:
            grid = _balanced_grid(nworkers, len(axes))
        d = GridDistribution(global_shape, axes, grid)
        if d.nworkers != nworkers:
            raise ValueError(f"grid {grid} needs {d.nworkers} workers, "
                             f"context has {nworkers}")
        return d
    raise ValueError(f"unknown distribution {dist!r}")


def _balanced_grid(nworkers: int, ndims: int) -> Tuple[int, ...]:
    """Near-square factorization of the worker count (like dims_create)."""
    from ..mpi.cart import dims_create
    return tuple(dims_create(nworkers, ndims))
