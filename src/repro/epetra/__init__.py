"""repro.epetra -- first-generation linear algebra facade (Epetra).

The paper (section II) explains that Epetra predates usable C++ templates,
so it is fixed to ``double`` scalars and ``int`` ordinals, and that classic
PyTrilinos "mimick[ed] the C++ interface", yielding non-Pythonic methods.
This module reproduces both properties deliberately: it wraps the generic
:mod:`repro.tpetra` engine with the Epetra spellings (``NumMyElements``,
``Norm2``, ``Multiply``...), pinned to float64/int32, so the repository
demonstrates the exact interface evolution the paper argues for.

New code should prefer :mod:`repro.tpetra`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import tpetra
from ..mpi import Intracomm

__all__ = ["PyComm", "Map", "Vector", "CrsMatrix"]

_INT_MAX = np.iinfo(np.int32).max


class PyComm:
    """Epetra_Comm-style wrapper over an intracomm."""

    def __init__(self, comm: Intracomm):
        self._comm = comm

    def MyPID(self) -> int:
        return self._comm.rank

    def NumProc(self) -> int:
        return self._comm.size

    def Barrier(self) -> None:
        self._comm.barrier()

    def SumAll(self, value):
        return self._comm.allreduce(value)

    def MaxAll(self, value):
        from ..mpi import MAX
        return self._comm.allreduce(value, op=MAX)

    def MinAll(self, value):
        from ..mpi import MIN
        return self._comm.allreduce(value, op=MIN)

    def Broadcast(self, obj, root: int = 0):
        return self._comm.bcast(obj, root=root)

    @property
    def tpetra_comm(self) -> Intracomm:
        return self._comm


class Map:
    """Epetra_Map: int32 ordinals, uniform linear distribution."""

    def __init__(self, num_global: int, index_base: int, comm: PyComm):
        if num_global > _INT_MAX:
            raise OverflowError(
                "Epetra maps use 32-bit ordinals; problem too large "
                "(use tpetra.Map for 64-bit indexing)")
        if index_base != 0:
            raise NotImplementedError("only IndexBase=0 is supported")
        self._comm = comm
        self._map = tpetra.Map.create_contiguous(int(num_global),
                                                 comm.tpetra_comm)

    def NumGlobalElements(self) -> int:
        return self._map.num_global

    def NumMyElements(self) -> int:
        return self._map.num_my_elements

    def MyGlobalElements(self) -> np.ndarray:
        return self._map.my_gids.astype(np.int32)

    def GID(self, lid: int) -> int:
        return self._map.gid(lid)

    def LID(self, gid: int) -> int:
        return int(self._map.lid(int(gid)))

    def MyGID(self, gid: int) -> bool:
        return bool(self._map.owns(int(gid)))

    def Comm(self) -> PyComm:
        return self._comm

    @property
    def tpetra_map(self) -> tpetra.Map:
        return self._map


class Vector:
    """Epetra_Vector: always float64."""

    def __init__(self, map_: Map):
        self._map = map_
        self._vec = tpetra.Vector(map_.tpetra_map, dtype=np.float64)

    def PutScalar(self, alpha: float) -> int:
        self._vec.putScalar(float(alpha))
        return 0

    def Random(self) -> int:
        self._vec.randomize()
        return 0

    def Norm1(self) -> float:
        return self._vec.norm1()

    def Norm2(self) -> float:
        return self._vec.norm2()

    def NormInf(self) -> float:
        return self._vec.normInf()

    def Dot(self, other: "Vector") -> float:
        return self._vec.dot(other._vec)

    def Update(self, alpha: float, other: "Vector", beta: float) -> int:
        """this = alpha*other + beta*this."""
        self._vec.update(alpha, other._vec, beta)
        return 0

    def Scale(self, alpha: float) -> int:
        self._vec.scale(alpha)
        return 0

    def MeanValue(self) -> float:
        return self._vec.meanValue()

    def ExtractCopy(self) -> np.ndarray:
        return self._vec.local_view.copy()

    def __getitem__(self, lid: int) -> float:
        return float(self._vec.local_view[lid])

    def __setitem__(self, lid: int, value: float) -> None:
        self._vec.local_view[lid] = value

    def Map(self) -> Map:
        return self._map

    @property
    def tpetra_vector(self) -> tpetra.Vector:
        return self._vec


class CrsMatrix:
    """Epetra_CrsMatrix: float64 values, int32 indices, C++-style API."""

    def __init__(self, copy_mode: str, row_map: Map,
                 num_entries_per_row: int = 0):
        # copy_mode mirrors Epetra's (Copy/View) first argument; only Copy
        # semantics exist here.
        if copy_mode not in ("Copy", "View"):
            raise ValueError("first argument is Epetra's Copy/View flag")
        self._row_map = row_map
        self._mat = tpetra.CrsMatrix(row_map.tpetra_map, dtype=np.float64)

    def InsertGlobalValues(self, global_row: int, values, indices) -> int:
        self._mat.insert_global_values(int(global_row),
                                       np.asarray(indices, dtype=np.int64),
                                       np.asarray(values, dtype=np.float64))
        return 0

    def FillComplete(self) -> int:
        self._mat.fillComplete()
        return 0

    def Filled(self) -> bool:
        return self._mat.is_fill_complete

    def NumGlobalRows(self) -> int:
        return self._mat.num_global_rows

    def NumMyRows(self) -> int:
        return self._mat.num_my_rows

    def NumGlobalNonzeros(self) -> int:
        return self._mat.num_global_nonzeros()

    def Multiply(self, trans: bool, x: Vector, y: Vector) -> int:
        self._mat.apply(x.tpetra_vector, y.tpetra_vector, trans=trans)
        return 0

    def NormFrobenius(self) -> float:
        return self._mat.norm_frobenius()

    def NormInf(self) -> float:
        return self._mat.norm_inf()

    def ExtractDiagonalCopy(self, d: Vector) -> int:
        d.tpetra_vector.local[...] = self._mat.diagonal().local
        return 0

    def RowMap(self) -> Map:
        return self._row_map

    @property
    def tpetra_matrix(self) -> tpetra.CrsMatrix:
        return self._mat
