"""repro -- a Python HPC framework: PyTrilinos, ODIN, and Seamless.

Reproduction of Smith, Spotz & Ross-Ross, "A Python HPC framework:
PyTrilinos, ODIN, and Seamless" (SC 2012, PyHPC workshop).

The package is organized as the paper's three pillars plus their substrates:

- :mod:`repro.mpi`       -- message-passing substrate (MPI-like, thread SPMD)
- :mod:`repro.trace`     -- per-rank event tracing & analysis (REPRO_TRACE=1)
- :mod:`repro.metrics`   -- counters/gauges/histograms (REPRO_METRICS=1)
- :mod:`repro.teuchos`   -- general tools (parameter lists, timers)
- :mod:`repro.tpetra`    -- distributed linear algebra (maps, vectors, CRS matrices)
- :mod:`repro.epetra`    -- first-generation fixed-dtype facade over tpetra
- :mod:`repro.solvers`   -- Krylov, direct, preconditioners, AMG, eigen, nonlinear
- :mod:`repro.isorropia` -- partitioning and load balancing
- :mod:`repro.galeri`    -- gallery of example maps and matrices
- :mod:`repro.triutils`  -- testing utilities and matrix I/O
- :mod:`repro.odin`      -- Optimized Distributed NumPy
- :mod:`repro.seamless`  -- JIT / static compilation / C interop
- :mod:`repro.core`      -- the framework glue tying the three pillars together
"""

__version__ = "1.0.0"

__all__ = [
    "mpi",
    "trace",
    "metrics",
    "teuchos",
    "tpetra",
    "epetra",
    "solvers",
    "isorropia",
    "galeri",
    "triutils",
    "odin",
    "seamless",
    "core",
]
