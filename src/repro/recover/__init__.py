"""repro.recover -- fault recovery for the ODIN driver/worker runtime.

Three pieces close the loop that :mod:`repro.chaos` opens when it kills a
rank mid-program:

- the MPI substrate's ULFM-style primitives (``RankFailure`` detection,
  ``Comm.revoke`` / ``Comm.shrink`` / ``Comm.agree``) turn a dead rank
  into a typed, bounded-latency event instead of a hang;
- SCR-style in-memory partner checkpoints (each worker mirrors its blocks
  on the next worker in the ring) make the dead worker's state
  re-fetchable from a survivor;
- the driver-side :class:`OpLog` replays every control-plane op issued
  since the last checkpoint onto the shrunk communicator, with array
  distributions remapped over the survivor count.

See ``docs/INTERNALS.md`` section 8 for the failure model and protocol.
"""

from .oplog import OpLog, remap_op_dists

__all__ = ["OpLog", "remap_op_dists"]
