"""Driver-side epoch op-log: the replay half of checkpoint/replay.

The ODIN driver already funnels every mutation through a single broadcast
point (PR 4's batched control plane), so a faithful op-log costs one list
append per op.  On recovery the log is replayed in issue order onto the
shrunk communicator; determinism follows from the control plane's own
determinism -- the same ops applied to the same restored state produce the
same arrays, modulo the float reduction reorder the conformance ULP policy
already tolerates.

Distributions embedded in logged ops are bound to the old worker count;
:func:`remap_op_dists` rewrites them via ``Distribution.with_nworkers``
when the log is replayed on fewer workers.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from ..odin.distribution import Distribution

__all__ = ["OpLog", "remap_op_dists"]


def remap_op_dists(op: Tuple, nworkers: int) -> Tuple:
    """Return *op* with every embedded Distribution rebound to *nworkers*.

    Ops are nested tuples/lists of scalars, strings, ndarrays and
    Distribution descriptors; the walk rebuilds only the spines that
    contain a distribution.
    """
    def walk(node):
        if isinstance(node, Distribution):
            if node.nworkers == nworkers:
                return node
            return node.with_nworkers(nworkers)
        if isinstance(node, tuple):
            return tuple(walk(x) for x in node)
        if isinstance(node, list):
            return [walk(x) for x in node]
        return node

    return walk(op)


class OpLog:
    """Ordered record of mutating control-plane ops since the last
    checkpoint.

    Scatters additionally pin the scattered global array (the driver's
    payload is gone after the wire scatter, so replay needs its own
    reference).  The log lives entirely on the driver; workers hold the
    complementary state half (partner block checkpoints).
    """

    def __init__(self):
        self._ops: List[Tuple[str, Any]] = []

    def __len__(self) -> int:
        return len(self._ops)

    def record(self, op: Tuple) -> None:
        """Log a broadcast control-plane op for replay."""
        self._ops.append(("op", op))

    def record_scatter(self, array_id: int, dist: Distribution,
                       dtype: np.dtype, data: np.ndarray) -> None:
        """Log a scatter: the global payload itself must be kept, since
        replaying a scatter re-sends the data."""
        self._ops.append(("scatter",
                          (array_id, dist, dtype, np.array(data, copy=True))))

    def clear(self) -> None:
        """Drop the log -- called when a checkpoint supersedes it."""
        self._ops = []

    def entries(self) -> List[Tuple[str, Any]]:
        return list(self._ops)

    def replay_bytes(self) -> int:
        """Approximate driver memory pinned by the log (scatter payloads)."""
        return sum(entry[3].nbytes for kind, entry in self._ops
                   if kind == "scatter")
