"""Structured per-rank event tracing.

One process-wide :class:`Tracer` collects *span* (duration) and *instant*
events from every layer of the stack -- the MPI substrate, ODIN workers,
the driver control plane, and the solver stack.  Design constraints:

- **Disabled cost is one predicate per event site.**  Instrumented code
  holds a reference to the singleton and guards each site with
  ``if _TR.enabled:``; nothing else runs when tracing is off.
- **No locks on the hot path.**  Each thread appends to its own buffer
  (registered once, under a lock, on first use); export walks all
  buffers and groups events by rank.
- **Per-rank attribution.**  :meth:`RankContext.bind()
  <repro.mpi.runtime.RankContext.bind>` publishes the world rank of the
  calling thread via :meth:`Tracer.set_thread_rank`, so events emitted
  anywhere down the call stack land in the right rank's timeline.
  Unbound threads (e.g. the ODIN driver's user thread) fall back to a
  thread-name label, and every emit API accepts an explicit ``rank=``.

Span durations also accumulate into per-rank
:class:`~repro.teuchos.timer.Time` objects (via their context-manager
API), which is what the text :func:`~repro.trace.export.summary`
exporter renders and merges with ``TimeMonitor.summarize()``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from ..teuchos.timer import Time

__all__ = ["Tracer", "TRACER", "get_tracer", "enabled", "enable",
           "disable", "set_enabled", "clear", "span", "instant",
           "set_thread_rank"]

RankLabel = Union[int, str]

# Event tuples: (phase, category, name, rank, ts, dur, args)
#   phase "X" = complete (span) event, "i" = instant event
#   ts/dur are seconds relative to the tracer epoch; args a dict or None
Event = Tuple[str, str, str, RankLabel, float, float, Optional[dict]]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "").strip().lower() in (
        "1", "true", "yes", "on")


class _Buffer:
    """One thread's private event list and span-timer registry."""

    __slots__ = ("events", "timers")

    def __init__(self):
        self.events: List[Event] = []
        # (rank, "cat:name") -> accumulating Time
        self.timers: Dict[Tuple[RankLabel, str], Time] = {}


class _Span:
    """Context manager recording one complete ("X") event."""

    __slots__ = ("_tracer", "_cat", "_name", "_args", "_rank", "_t0",
                 "_timer", "_buf")

    def __init__(self, tracer: "Tracer", cat: str, name: str,
                 rank: Optional[RankLabel], args: Optional[dict]):
        self._tracer = tracer
        self._cat = cat
        self._name = name
        self._args = args
        self._rank = rank

    def __enter__(self) -> "_Span":
        tr = self._tracer
        if self._rank is None:
            self._rank = tr.thread_rank()
        self._buf = tr._thread_buffer()
        key = (self._rank, self._cat + ":" + self._name)
        timer = self._buf.timers.get(key)
        if timer is None:
            timer = self._buf.timers[key] = Time(key[1])
        self._timer = timer
        timer.start()
        self._t0 = time.perf_counter() - tr._epoch
        return self

    def __exit__(self, *exc) -> None:
        tr = self._tracer
        ts = time.perf_counter() - tr._epoch
        self._timer.stop()
        self._buf.events.append(
            ("X", self._cat, self._name, self._rank, self._t0,
             ts - self._t0, self._args))

    def add_args(self, **kwargs) -> "_Span":
        """Attach/extend event args from inside the span body."""
        if self._args is None:
            self._args = {}
        self._args.update(kwargs)
        return self


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def add_args(self, **kwargs):
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Process-wide trace collector with per-thread (per-rank) buffers."""

    def __init__(self, enabled: Optional[bool] = None):
        self.enabled: bool = _env_enabled() if enabled is None \
            else bool(enabled)
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._buffers: List[_Buffer] = []
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # rank binding
    # ------------------------------------------------------------------
    def set_thread_rank(self, rank: Optional[RankLabel]) -> None:
        """Publish the world rank of the calling thread (or ``None`` to
        clear it).  Called by ``RankContext.bind()/unbind()``."""
        self._tls.rank = rank

    def thread_rank(self) -> RankLabel:
        rank = getattr(self._tls, "rank", None)
        if rank is not None:
            return rank
        name = threading.current_thread().name
        return "main" if name == "MainThread" else name

    # ------------------------------------------------------------------
    # buffers
    # ------------------------------------------------------------------
    def _thread_buffer(self) -> _Buffer:
        buf = getattr(self._tls, "buf", None)
        if buf is None:
            buf = _Buffer()
            self._tls.buf = buf
            with self._lock:
                self._buffers.append(buf)
        return buf

    # ------------------------------------------------------------------
    # emit API
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Timestamp (seconds since the tracer epoch) for begin/complete
        pairs on hot paths."""
        return time.perf_counter() - self._epoch

    def span(self, cat: str, name: str, rank: Optional[RankLabel] = None,
             **args):
        """A context manager recording a complete event around its body.

        Returns a shared no-op when tracing is disabled, so
        ``with tracer.span(...)`` stays safe either way; hot paths should
        still guard the call with ``if tracer.enabled:``.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, cat, name, rank, args or None)

    def complete(self, cat: str, name: str, t0: float,
                 rank: Optional[RankLabel] = None, **args) -> None:
        """Record a complete event that started at ``t0 = tracer.now()``.

        The begin/complete pair is the cheapest span form: the disabled
        path is exactly one predicate at each end.
        """
        ts = time.perf_counter() - self._epoch
        if rank is None:
            rank = self.thread_rank()
        buf = self._thread_buffer()
        dur = ts - t0
        buf.events.append(("X", cat, name, rank, t0, dur, args or None))
        key = (rank, cat + ":" + name)
        timer = buf.timers.get(key)
        if timer is None:
            timer = buf.timers[key] = Time(key[1])
        timer.total += dur
        timer.calls += 1

    def instant(self, cat: str, name: str,
                rank: Optional[RankLabel] = None, **args) -> None:
        """Record a zero-duration marker event."""
        ts = time.perf_counter() - self._epoch
        if rank is None:
            rank = self.thread_rank()
        self._thread_buffer().events.append(
            ("i", cat, name, rank, ts, 0.0, args or None))

    # ------------------------------------------------------------------
    # control / introspection
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop all recorded events and span timers (keeps the epoch)."""
        with self._lock:
            for buf in self._buffers:
                buf.events.clear()
                buf.timers.clear()

    def absorb(self, events: List[Event]) -> None:
        """Merge events recorded by another process into this tracer
        (the driver-side merge point of the multiprocess transport:
        worker ranks ship their event lists back at gather/shutdown).
        Span timers are rebuilt from the "X" events so
        :meth:`span_timers` stays consistent with :meth:`events`."""
        if not events:
            return
        buf = self._thread_buffer()
        for ev in events:
            ev = tuple(ev)
            buf.events.append(ev)
            if ev[0] == "X":
                key = (ev[3], ev[1] + ":" + ev[2])
                timer = buf.timers.get(key)
                if timer is None:
                    timer = buf.timers[key] = Time(key[1])
                timer.total += ev[5]
                timer.calls += 1

    def events(self) -> List[Event]:
        """Snapshot of all events so far, in timestamp order."""
        with self._lock:
            merged: List[Event] = []
            for buf in self._buffers:
                merged.extend(buf.events)
        merged.sort(key=lambda ev: ev[4])
        return merged

    def span_timers(self) -> Dict[Tuple[RankLabel, str], Time]:
        """Aggregated per-(rank, category:name) span timers."""
        out: Dict[Tuple[RankLabel, str], Time] = {}
        with self._lock:
            buffers = list(self._buffers)
        for buf in buffers:
            for key, timer in list(buf.timers.items()):
                acc = out.get(key)
                if acc is None:
                    acc = out[key] = Time(timer.name)
                acc.total += timer.total
                acc.calls += timer.calls
        return out

    def __repr__(self):
        n = sum(len(b.events) for b in self._buffers)
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {n} events, {len(self._buffers)} buffers)"


# The process-wide singleton every instrumentation site references.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


def enabled() -> bool:
    """Is tracing currently on? (``REPRO_TRACE=1`` or :func:`enable`.)"""
    return TRACER.enabled


def enable() -> None:
    TRACER.enable()


def disable() -> None:
    TRACER.disable()


def set_enabled(flag: bool) -> None:
    TRACER.enabled = bool(flag)


def clear() -> None:
    TRACER.clear()


def span(cat: str, name: str, rank: Optional[RankLabel] = None, **args):
    return TRACER.span(cat, name, rank=rank, **args)


def instant(cat: str, name: str, rank: Optional[RankLabel] = None,
            **args) -> None:
    if TRACER.enabled:
        TRACER.instant(cat, name, rank=rank, **args)


def set_thread_rank(rank: Optional[RankLabel]) -> None:
    TRACER.set_thread_rank(rank)
