"""Unified per-rank tracing & metrics (``repro.trace``).

The measurement substrate under every performance claim in this repo:
structured span/instant events from the MPI layer (point-to-point,
collectives tagged by algorithm, RMA windows), the ODIN runtime (control
plane and worker steps), and the solver stack (per-iteration spans
carrying residual norms), all attributed to world ranks.

Enable with ``REPRO_TRACE=1`` in the environment or
:func:`repro.trace.enable`; export with :func:`write_chrome_trace`
(open in ``chrome://tracing`` / Perfetto), :func:`summary` (text,
merged with ``TimeMonitor``), or :func:`traffic_report` (per-peer
byte counters).  Post-mortem analysis lives in
:mod:`repro.trace.analyze`: load imbalance, wait states, the critical
path, and the communication matrix.  Any benchmark under
``benchmarks/`` accepts ``--trace out.json`` and ``--analyze``; its
counting sibling is :mod:`repro.metrics` (``--metrics out.json``).

When disabled (the default), every instrumented site costs a single
attribute-load-plus-branch.
"""

from .tracer import (NULL_SPAN, TRACER, Tracer, clear, disable, enable,
                     enabled, get_tracer, instant, set_enabled,
                     set_thread_rank, span)
from .export import (chrome_trace_events, summary, traffic_report,
                     write_chrome_trace)
from . import analyze

__all__ = [
    "Tracer", "TRACER", "NULL_SPAN", "get_tracer",
    "enabled", "enable", "disable", "set_enabled", "clear",
    "span", "instant", "set_thread_rank",
    "chrome_trace_events", "write_chrome_trace", "summary",
    "traffic_report", "analyze",
]
