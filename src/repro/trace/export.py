"""Trace exporters: Chrome ``trace_event`` JSON, text summary, traffic.

Three consumers of one event stream:

- :func:`write_chrome_trace` -- a JSON file loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev, one timeline row per
  rank.
- :func:`summary` -- a per-rank plain-text table of span totals, merged
  with the global ``TimeMonitor`` registry so tracer spans and legacy
  named timers land in one report.
- :func:`traffic_report` -- per-rank message/byte counters (send *and*
  receive side, per peer) from :class:`~repro.mpi.counters
  .CounterSnapshot`, correlated with the traced communication time when
  a tracer is supplied.
"""

from __future__ import annotations

import io
import json
from typing import Dict, List, Optional, Sequence, Union

from ..teuchos.timer import TimeMonitor
from .tracer import TRACER, RankLabel, Tracer

__all__ = ["chrome_trace_events", "write_chrome_trace", "summary",
           "traffic_report"]


def _rank_sort_key(rank: RankLabel):
    # integer ranks first (in order), then named lanes (driver, main, ...)
    if isinstance(rank, int):
        return (0, rank, "")
    return (1, 0, str(rank))


def _tid_table(events) -> Dict[RankLabel, int]:
    ranks = sorted({ev[3] for ev in events}, key=_rank_sort_key)
    return {rank: tid for tid, rank in enumerate(ranks)}


def chrome_trace_events(tracer: Optional[Tracer] = None) -> List[dict]:
    """The event stream in Chrome ``trace_event`` dict form.

    Spans become complete ("X") events and instants "i" events; one
    metadata event per rank names its timeline row.  Timestamps are
    microseconds since the tracer epoch.
    """
    tracer = tracer if tracer is not None else TRACER
    events = tracer.events()
    tids = _tid_table(events)
    out: List[dict] = []
    for rank, tid in tids.items():
        label = f"rank {rank}" if isinstance(rank, int) else str(rank)
        out.append({"ph": "M", "name": "thread_name", "pid": 0,
                    "tid": tid, "args": {"name": label}})
        out.append({"ph": "M", "name": "thread_sort_index", "pid": 0,
                    "tid": tid, "args": {"sort_index": tid}})
    # Perfetto reconstructs span nesting from stream order within each
    # lane: sort per tid by timestamp, with the *longer* span first at
    # equal timestamps so an enclosing span precedes the child it starts
    # simultaneously with.
    ordered = sorted(events,
                     key=lambda e: (tids[e[3]], e[4], -e[5]))
    for ph, cat, name, rank, ts, dur, args in ordered:
        ev = {"ph": ph, "cat": cat, "name": name, "pid": 0,
              "tid": tids[rank], "ts": round(ts * 1e6, 3)}
        if ph == "X":
            ev["dur"] = round(dur * 1e6, 3)
        elif ph == "i":
            ev["s"] = "t"
        if args:
            ev["args"] = args
        out.append(ev)
    return out


def write_chrome_trace(path_or_file, tracer: Optional[Tracer] = None,
                       ) -> int:
    """Write the Chrome trace JSON; returns the number of trace events.

    Load the file via ``chrome://tracing`` "Load" or drop it onto
    https://ui.perfetto.dev.
    """
    tracer = tracer if tracer is not None else TRACER
    payload = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.trace"},
    }
    if hasattr(path_or_file, "write"):
        json.dump(payload, path_or_file)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(payload, fh)
    return len(payload["traceEvents"])


def summary(tracer: Optional[Tracer] = None,
            merge_time_monitor: bool = True) -> str:
    """Per-rank span totals as text, merged with ``TimeMonitor``.

    One block per rank, one row per ``category:name``, sorted by total
    time; followed (when *merge_time_monitor*) by the global
    ``TimeMonitor.summarize()`` table so explicitly named phase timers
    appear alongside traced spans.
    """
    tracer = tracer if tracer is not None else TRACER
    timers = tracer.span_timers()
    out = io.StringIO()
    if not timers:
        out.write("(no trace spans recorded)\n")
    else:
        by_rank: Dict[RankLabel, list] = {}
        for (rank, key), timer in timers.items():
            by_rank.setdefault(rank, []).append((key, timer))
        width = max(len(key) for (_r, key) in timers) + 2
        for rank in sorted(by_rank, key=_rank_sort_key):
            label = f"rank {rank}" if isinstance(rank, int) else str(rank)
            out.write(f"-- {label} --\n")
            out.write(f"{'span':<{width}}{'total (s)':>12}{'calls':>8}"
                      f"{'mean (s)':>12}\n")
            rows = sorted(by_rank[rank], key=lambda kv: -kv[1].total)
            for key, timer in rows:
                mean = timer.total / timer.calls if timer.calls else 0.0
                out.write(f"{key:<{width}}{timer.total:>12.6f}"
                          f"{timer.calls:>8d}{mean:>12.6f}\n")
            out.write("\n")
    if merge_time_monitor:
        out.write("-- TimeMonitor --\n")
        out.write(TimeMonitor.summarize() + "\n")
    return out.getvalue()


def traffic_report(snapshots: Union[Sequence, "object"],
                   tracer: Optional[Tracer] = None) -> str:
    """Per-rank traffic table from counter snapshots.

    *snapshots* is a sequence of :class:`~repro.mpi.counters
    .CounterSnapshot` indexed by world rank, or a
    :class:`~repro.mpi.runtime.World` (whose live counters are
    snapshotted).  Per-peer sent **and** received bytes are listed; when
    a tracer with recorded spans is given, each rank's traced
    communication time (``mpi.*`` span categories) is appended so bytes
    correlate with time.
    """
    from ..mpi.counters import CounterSnapshot  # local: avoid cycle

    if hasattr(snapshots, "counters"):  # a World
        snapshots = [c.snapshot() for c in snapshots.counters]
    snapshots = list(snapshots)
    comm_time: Dict[RankLabel, float] = {}
    if tracer is not None:
        for (rank, key), timer in tracer.span_timers().items():
            if key.startswith("mpi."):
                comm_time[rank] = comm_time.get(rank, 0.0) + timer.total
    out = io.StringIO()
    header = (f"{'rank':>4}  {'sends':>7}  {'recvs':>7}  "
              f"{'bytes sent':>12}  {'bytes recvd':>12}")
    if comm_time:
        header += f"  {'comm time (s)':>14}"
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for rank, snap in enumerate(snapshots):
        line = (f"{rank:>4}  {snap.sends:>7}  {snap.recvs:>7}  "
                f"{snap.bytes_sent:>12}  {snap.bytes_recvd:>12}")
        if comm_time:
            line += f"  {comm_time.get(rank, 0.0):>14.6f}"
        out.write(line + "\n")
        sent = getattr(snap, "by_peer", {}) or {}
        recvd = getattr(snap, "by_peer_recv", {}) or {}
        peers = sorted(set(sent) | set(recvd))
        for peer in peers:
            out.write(f"      -> {peer}: {sent.get(peer, 0):>12} B"
                      f"    <- {peer}: {recvd.get(peer, 0):>12} B\n")
    mat = CounterSnapshot.matrix(snapshots)
    if mat.size and mat.any():
        from .analyze import format_matrix  # local: avoid cycle
        out.write("\n")
        out.write(format_matrix(mat, "bytes"))
    return out.getvalue()
