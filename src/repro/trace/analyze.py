"""Post-mortem trace analysis: where did the time actually go?

Takes the event stream :meth:`Tracer.events` recorded and answers the
questions per-span totals cannot:

- :func:`load_imbalance` -- per span category: max vs. mean time across
  ranks and the resulting imbalance factor (1.0 = perfectly balanced;
  the classic ``max/mean`` metric, so ``(factor-1)`` is the fraction of
  the slowest rank's time the other ranks spend idle at the next sync).
- :func:`wait_states` -- Scalasca-style wait-state detection.
  *Late sender*: a receive that blocked before its matching send
  finished; the wait is the overlap of the receive span with the
  interval before the message's arrival.  *Collective wait*: time
  between a rank entering a collective and the last rank's arrival
  (wait-at-barrier / time-to-last-arrival), clipped to the rank's own
  span.
- :func:`critical_path` -- a backward walk from the last event to the
  start through send/recv edges (matched by the per-pair ``seq``
  stamped on both trace events) and collective straggler edges: the
  chain of activity that bounded the run's wall-clock, with a top-N
  contributor table.
- :func:`communication_matrix` -- dense rank-by-rank bytes/messages
  matrices rebuilt from traced ``mpi.p2p`` sends and ``mpi.rma`` ops
  (cross-checkable against ``mpi.counters``), rendered as aligned text
  by :func:`format_matrix`.

:func:`report` stitches all four into the ``--analyze`` text report.

All functions accept raw tracer event tuples
``(ph, cat, name, rank, ts, dur, args)``; only ``"X"`` (span) events
participate, and rank labels may be ints (world ranks) or strings
(``driver``, thread names).
"""

from __future__ import annotations

import io
import json
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .tracer import TRACER, Event, RankLabel

__all__ = ["load_chrome_trace", "load_imbalance", "wait_states",
           "critical_path", "communication_matrix", "format_matrix",
           "report"]

_EPS = 1e-9


def load_chrome_trace(path_or_file) -> List[Event]:
    """Read a Chrome ``trace_event`` JSON file back into raw event tuples.

    Inverse of :func:`repro.trace.export.write_chrome_trace` (and of the
    flight recorder's crash dumps, which share the format): ``"M"``
    thread-name metadata rebuilds the tid -> rank mapping (``"rank N"``
    labels become ints, other lane names stay strings), ``"X"`` and
    ``"i"`` events become ``(ph, cat, name, rank, ts, dur, args)``
    tuples with seconds-based clocks, sorted by timestamp -- directly
    consumable by every analysis function in this module.
    """
    if hasattr(path_or_file, "read"):
        doc = json.load(path_or_file)
    else:
        with open(path_or_file) as fh:
            doc = json.load(fh)
    raw = doc["traceEvents"] if isinstance(doc, dict) else doc
    ranks: Dict[int, RankLabel] = {}
    for ev in raw:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            label = (ev.get("args") or {}).get("name", "")
            rank: RankLabel = label
            if label.startswith("rank "):
                try:
                    rank = int(label[5:])
                except ValueError:
                    pass
            ranks[ev.get("tid", 0)] = rank
    events: List[Event] = []
    for ev in raw:
        ph = ev.get("ph")
        if ph not in ("X", "i"):
            continue
        tid = ev.get("tid", 0)
        rank = ranks.get(tid, tid)
        events.append((ph, ev.get("cat", ""), ev.get("name", ""), rank,
                       float(ev.get("ts", 0.0)) / 1e6,
                       float(ev.get("dur", 0.0)) / 1e6,
                       ev.get("args") or None))
    events.sort(key=lambda e: e[4])
    return events


def _spans(events: Sequence[Event]) -> List[Event]:
    return [ev for ev in events if ev[0] == "X"]


def _key(ev: Event) -> str:
    return f"{ev[1]}:{ev[2]}"


# ----------------------------------------------------------------------
# load imbalance
# ----------------------------------------------------------------------
def load_imbalance(events: Sequence[Event],
                   by: str = "category") -> Dict[str, dict]:
    """Per-rank time statistics per span category (or ``by="name"`` for
    ``category:name`` granularity).

    Returns ``{key: {"per_rank": {rank: seconds}, "max": s, "mean": s,
    "imbalance": max/mean, "max_rank": rank}}`` over integer-rank span
    events only (named lanes like ``driver`` are a different population
    and would poison the statistics).
    """
    totals: Dict[str, Dict[int, float]] = defaultdict(
        lambda: defaultdict(float))
    for ev in _spans(events):
        if not isinstance(ev[3], int):
            continue
        key = ev[1] if by == "category" else _key(ev)
        totals[key][ev[3]] += ev[5]
    out: Dict[str, dict] = {}
    for key, per_rank in sorted(totals.items()):
        times = list(per_rank.values())
        mx = max(times)
        mean = sum(times) / len(times)
        max_rank = max(per_rank, key=lambda r: per_rank[r])
        out[key] = {
            "per_rank": dict(sorted(per_rank.items())),
            "max": mx,
            "mean": mean,
            "imbalance": mx / mean if mean > 0 else 1.0,
            "max_rank": max_rank,
        }
    return out


# ----------------------------------------------------------------------
# send/recv and collective matching
# ----------------------------------------------------------------------
def _match_p2p(spans: Sequence[Event]) -> List[Tuple[Event, Event]]:
    """(send, recv) event pairs matched by (src, dest, seq)."""
    sends: Dict[Tuple[int, int, int], Event] = {}
    pairs: List[Tuple[Event, Event]] = []
    for ev in spans:
        if ev[1] == "mpi.p2p" and ev[2] == "send" and ev[6]:
            args = ev[6]
            if "dest" in args and "seq" in args:
                sends[(ev[3], args["dest"], args["seq"])] = ev
    for ev in spans:
        if ev[1] == "mpi.p2p" and ev[2] == "recv" and ev[6]:
            args = ev[6]
            send = sends.get((args.get("source"), ev[3], args.get("seq")))
            if send is not None:
                pairs.append((send, ev))
    return pairs


def _collective_instances(spans: Sequence[Event]) \
        -> List[List[Event]]:
    """Group ``mpi.coll`` spans into per-call instances.

    SPMD ordering guarantee: the k-th occurrence of a given collective
    name on each rank belongs to the same call, so instance identity is
    ``(name, occurrence index)``.  Only instances joined by more than
    one rank are returned.
    """
    counters: Dict[Tuple[RankLabel, str], int] = defaultdict(int)
    instances: Dict[Tuple[str, int], List[Event]] = defaultdict(list)
    for ev in sorted(spans, key=lambda e: e[4]):
        if ev[1] != "mpi.coll":
            continue
        k = counters[(ev[3], ev[2])]
        counters[(ev[3], ev[2])] = k + 1
        instances[(ev[2], k)].append(ev)
    return [group for group in instances.values() if len(group) > 1]


# ----------------------------------------------------------------------
# wait states
# ----------------------------------------------------------------------
def wait_states(events: Sequence[Event]) -> Dict[str, dict]:
    """Detected wait-state time, by category and rank.

    Returns ``{"late_sender": {...}, "collective": {...}}``, each with
    ``total`` seconds, ``count`` of waits observed, and a ``per_rank``
    breakdown of who did the waiting.  Late-sender waits additionally
    carry ``by_sender``: the same seconds charged to the rank whose late
    send *caused* each wait, so an injected (or real) per-rank delay
    shows up against the delayed rank, not just its victims.
    """
    spans = _spans(events)
    late = {"total": 0.0, "count": 0,
            "per_rank": defaultdict(float),
            "by_sender": defaultdict(float)}
    for send, recv in _match_p2p(spans):
        arrival = send[4] + send[5]  # eager send: deposited by span end
        wait = min(max(0.0, arrival - recv[4]), recv[5])
        if wait > 0.0:
            late["total"] += wait
            late["count"] += 1
            late["per_rank"][recv[3]] += wait
            late["by_sender"][send[3]] += wait
    coll = {"total": 0.0, "count": 0,
            "per_rank": defaultdict(float)}
    for group in _collective_instances(spans):
        last_enter = max(ev[4] for ev in group)
        for ev in group:
            wait = min(max(0.0, last_enter - ev[4]), ev[5])
            if wait > 0.0:
                coll["total"] += wait
                coll["count"] += 1
                coll["per_rank"][ev[3]] += wait
    for d in (late, coll):
        d["per_rank"] = dict(sorted(d["per_rank"].items(),
                                    key=lambda kv: str(kv[0])))
    late["by_sender"] = dict(sorted(late["by_sender"].items(),
                                    key=lambda kv: str(kv[0])))
    return {"late_sender": late, "collective": coll}


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
def critical_path(events: Sequence[Event], top_n: int = 10,
                  max_steps: int = 100_000) -> dict:
    """Backward walk from the latest event through communication edges.

    Starting from the globally last-ending span, repeatedly step to
    whatever bounded the current activity:

    1. a ``recv`` span jumps to its matched ``send`` on the sending rank
       (the receiver could not proceed earlier than the sender);
    2. a collective span jumps to the last-arriving rank's span of the
       same instance (the straggler bounded everyone);
    3. otherwise, step backward on the same rank to the latest span that
       ended before this one began.

    The walk ends at the trace start (or at an untraced gap).  Returns
    ``{"segments": [(rank, "cat:name", start, dur), ... latest first],
    "total": seconds spanned, "contributors": [("cat:name", seconds,
    count), ...]}`` with contributors ranked by their time on the path.
    """
    spans = _spans(events)
    if not spans:
        return {"segments": [], "total": 0.0, "contributors": []}

    by_rank: Dict[RankLabel, List[Event]] = defaultdict(list)
    for ev in spans:
        by_rank[ev[3]].append(ev)
    for lst in by_rank.values():
        lst.sort(key=lambda e: (e[4] + e[5], e[4]))  # by end time
    ends: Dict[RankLabel, List[float]] = {
        rank: [e[4] + e[5] for e in lst] for rank, lst in by_rank.items()}

    send_of: Dict[Tuple[int, int, int], Event] = {}
    for ev in spans:
        if ev[1] == "mpi.p2p" and ev[2] == "send" and ev[6] \
                and "seq" in ev[6]:
            send_of[(ev[3], ev[6]["dest"], ev[6]["seq"])] = ev
    instance_of: Dict[int, List[Event]] = {}
    for group in _collective_instances(spans):
        for ev in group:
            instance_of[id(ev)] = group

    import bisect

    def prev_on_rank(ev: Event) -> Optional[Event]:
        lst = by_rank[ev[3]]
        i = bisect.bisect_right(ends[ev[3]], ev[4] + _EPS) - 1
        while i >= 0:
            cand = lst[i]
            if cand is not ev:
                return cand
            i -= 1
        return None

    cur = max(spans, key=lambda e: e[4] + e[5])
    path: List[Event] = []
    visited = set()
    steps = 0
    while cur is not None and steps < max_steps:
        if id(cur) in visited:
            break
        visited.add(id(cur))
        path.append(cur)
        steps += 1
        nxt: Optional[Event] = None
        args = cur[6] or {}
        if cur[1] == "mpi.p2p" and cur[2] == "recv" and "seq" in args:
            send = send_of.get((args.get("source"), cur[3], args["seq"]))
            # jump to the sender only if it actually bounded this recv:
            # a send that completed before the recv began left the message
            # waiting in the mailbox, so whatever delayed the *receiver*
            # (e.g. an injected chaos:delay) is the real bound
            if send is not None and send[3] != cur[3] \
                    and id(send) not in visited \
                    and send[4] + send[5] > cur[4] + _EPS:
                nxt = send
        elif cur[1] == "mpi.coll":
            group = instance_of.get(id(cur))
            if group is not None:
                straggler = max(group, key=lambda e: e[4])
                if straggler is not cur and id(straggler) not in visited:
                    nxt = straggler
        if nxt is None:
            nxt = prev_on_rank(cur)
        cur = nxt

    total = (path[0][4] + path[0][5]) - path[-1][4]
    contrib: Dict[str, List[float]] = defaultdict(lambda: [0.0, 0])
    for ev in path:
        entry = contrib[_key(ev)]
        entry[0] += ev[5]
        entry[1] += 1
    contributors = sorted(
        ((key, t, int(n)) for key, (t, n) in contrib.items()),
        key=lambda kv: -kv[1])[:top_n]
    segments = [(ev[3], _key(ev), ev[4], ev[5]) for ev in path]
    return {"segments": segments, "total": total,
            "contributors": contributors}


# ----------------------------------------------------------------------
# communication matrix
# ----------------------------------------------------------------------
def communication_matrix(events: Sequence[Event],
                         nranks: Optional[int] = None
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """(bytes, messages) rank-by-rank matrices from traced transfers.

    Row = sender (origin for RMA Put/Accumulate, target for Get), column
    = receiver.  Built purely from the event stream, so it works
    post-mortem on a loaded trace; for live worlds,
    :meth:`repro.mpi.counters.CounterSnapshot.matrix` gives the
    counter-side view the trace numbers must agree with.
    """
    flows: Dict[Tuple[int, int], List[int]] = defaultdict(
        lambda: [0, 0])
    for ev in _spans(events):
        args = ev[6] or {}
        nbytes = args.get("nbytes")
        if nbytes is None:
            continue
        if ev[1] == "mpi.p2p" and ev[2] == "send":
            edge = (ev[3], args.get("dest"))
        elif ev[1] == "mpi.rma" and ev[2] in ("Put", "Accumulate"):
            edge = (ev[3], args.get("target"))
        elif ev[1] == "mpi.rma" and ev[2] == "Get":
            edge = (args.get("target"), ev[3])
        else:
            continue
        if not (isinstance(edge[0], int) and isinstance(edge[1], int)):
            continue
        flows[edge][0] += nbytes
        flows[edge][1] += 1
    n = nranks if nranks is not None else \
        1 + max((max(e) for e in flows), default=-1)
    n = max(n, 0)
    bytes_mat = np.zeros((n, n), dtype=np.int64)
    msgs_mat = np.zeros((n, n), dtype=np.int64)
    for (src, dst), (b, m) in flows.items():
        if src < n and dst < n:
            bytes_mat[src, dst] = b
            msgs_mat[src, dst] = m
    return bytes_mat, msgs_mat


def format_matrix(mat: np.ndarray, title: str = "bytes") -> str:
    """A dense rank-by-rank matrix as an aligned text table."""
    n = mat.shape[0]
    if n == 0:
        return f"(no {title} traffic recorded)\n"
    cells = [[str(int(v)) for v in row] for row in mat]
    width = max(6, max(len(c) for row in cells for c in row) + 2,
                len(str(n - 1)) + 3)
    out = io.StringIO()
    out.write(f"{title} sent, row = source rank, column = destination "
              f"rank\n")
    out.write(" " * 6 + "".join(f"{j:>{width}}" for j in range(n)) + "\n")
    for i, row in enumerate(cells):
        out.write(f"{i:>5} " + "".join(f"{c:>{width}}" for c in row)
                  + "\n")
    return out.getvalue()


# ----------------------------------------------------------------------
# the full report
# ----------------------------------------------------------------------
def report(events: Optional[Sequence[Event]] = None, top_n: int = 10
           ) -> str:
    """The ``--analyze`` report: imbalance, wait states, critical path,
    communication matrix -- one text document."""
    if events is None:
        events = TRACER.events()
    spans = _spans(events)
    out = io.StringIO()
    out.write("== trace analysis ==\n\n")
    if not spans:
        out.write("(no span events recorded -- enable repro.trace)\n")
        return out.getvalue()
    t0 = min(ev[4] for ev in spans)
    t1 = max(ev[4] + ev[5] for ev in spans)
    out.write(f"wall clock covered by spans: {t1 - t0:.6f} s\n\n")

    out.write("-- per-rank load imbalance (by span category) --\n")
    imb = load_imbalance(events)
    if imb:
        width = max(len(k) for k in imb) + 2
        out.write(f"{'category':<{width}}{'max (s)':>12}{'mean (s)':>12}"
                  f"{'imbalance':>11}{'slowest':>9}\n")
        for key, stats in imb.items():
            out.write(f"{key:<{width}}{stats['max']:>12.6f}"
                      f"{stats['mean']:>12.6f}"
                      f"{stats['imbalance']:>10.2f}x"
                      f"{stats['max_rank']:>9}\n")
    else:
        out.write("(no integer-rank spans)\n")
    out.write("\n")

    out.write("-- wait states --\n")
    waits = wait_states(events)
    for kind, label in (("late_sender", "late sender (p2p)"),
                        ("collective", "collective (time to last "
                                       "arrival)")):
        st = waits[kind]
        out.write(f"{label}: {st['total']:.6f} s across {st['count']} "
                  f"wait(s)\n")
        if st["per_rank"]:
            ranked = sorted(st["per_rank"].items(),
                            key=lambda kv: -kv[1])[:top_n]
            for rank, t in ranked:
                out.write(f"    rank {rank}: {t:.6f} s\n")
        if st.get("by_sender"):
            blamed = sorted(st["by_sender"].items(),
                            key=lambda kv: -kv[1])[:top_n]
            out.write("  caused by late sends from:\n")
            for rank, t in blamed:
                out.write(f"    rank {rank}: {t:.6f} s\n")
    out.write("\n")

    out.write("-- critical path --\n")
    cp = critical_path(events, top_n=top_n)
    out.write(f"path: {len(cp['segments'])} segment(s) spanning "
              f"{cp['total']:.6f} s "
              f"({100.0 * cp['total'] / max(t1 - t0, 1e-12):.1f}% of "
              f"wall clock)\n")
    if cp["contributors"]:
        width = max(len(k) for k, _t, _n in cp["contributors"]) + 2
        out.write(f"top contributors on the path:\n")
        out.write(f"    {'span':<{width}}{'time (s)':>12}{'count':>8}\n")
        for key, t, n in cp["contributors"]:
            out.write(f"    {key:<{width}}{t:>12.6f}{n:>8d}\n")
    out.write("\n")

    out.write("-- communication matrix --\n")
    bytes_mat, msgs_mat = communication_matrix(events)
    out.write(format_matrix(bytes_mat, "bytes"))
    if bytes_mat.size:
        out.write(f"total traced: {int(bytes_mat.sum())} bytes in "
                  f"{int(msgs_mat.sum())} message(s)\n")
    return out.getvalue()
