"""MPI-IO style collective file access (``MPI_File``).

The paper's section III-H: "ODIN, being compatible with MPI, can make use
of MPI's distributed IO routines."  This module provides the rank-offset
file interface those routines define -- collective open/close, explicit
offset reads/writes (``Read_at``/``Write_at``), shared-pointer ordered
writes (``Write_ordered``), and a simple strided file view -- implemented
on an ordinary file with per-world locking, which on a shared filesystem
is semantically what independent MPI-IO gives.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

import numpy as np

from .comm import Intracomm
from .errors import MPIError

__all__ = ["File", "MODE_RDONLY", "MODE_WRONLY", "MODE_RDWR",
           "MODE_CREATE", "MODE_APPEND"]

MODE_RDONLY = 1
MODE_WRONLY = 2
MODE_RDWR = 4
MODE_CREATE = 8
MODE_APPEND = 16

# one lock per path: ranks are threads sharing the OS file table
_path_locks: dict = {}
_path_locks_guard = threading.Lock()


def _lock_for(path: str) -> threading.Lock:
    with _path_locks_guard:
        return _path_locks.setdefault(os.path.abspath(path),
                                      threading.Lock())


class File:
    """A collectively opened file with explicit-offset access."""

    def __init__(self, comm: Intracomm, path: str, amode: int):
        self.comm = comm
        self.path = path
        self.amode = amode
        self._view_disp = 0
        self._view_dtype = np.dtype(np.uint8)
        # rank 0 creates/truncates; everyone then opens
        if comm.rank == 0:
            if amode & MODE_CREATE and not os.path.exists(path):
                open(path, "wb").close()
            if not os.path.exists(path):
                comm.bcast(("err", FileNotFoundError(path)), root=0)
                raise FileNotFoundError(path)
            comm.bcast(("ok", None), root=0)
        else:
            tag, exc = comm.bcast(None, root=0)
            if tag == "err":
                raise exc
        flags = "r+b" if amode & (MODE_WRONLY | MODE_RDWR) else "rb"
        self._fh = open(path, flags)
        self._lock = _lock_for(path)
        self._closed = False

    @classmethod
    def Open(cls, comm: Intracomm, path: str, amode: int) -> "File":
        """mpi4py spelling: ``MPI.File.Open(comm, path, amode)``."""
        return cls(comm, path, amode)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def Set_view(self, disp: int = 0, dtype=np.uint8) -> None:
        """Set the file view: a displacement plus an element type, so
        offsets below are in *elements* of *dtype* past *disp* bytes."""
        self._view_disp = int(disp)
        self._view_dtype = np.dtype(dtype)

    def _byte_offset(self, offset: int) -> int:
        return self._view_disp + int(offset) * self._view_dtype.itemsize

    # ------------------------------------------------------------------
    # explicit-offset access
    # ------------------------------------------------------------------
    def Write_at(self, offset: int, buf) -> None:
        """Write *buf* (ndarray) at element *offset* of the view."""
        self._check_open()
        data = np.ascontiguousarray(buf)
        with self._lock:
            self._fh.seek(self._byte_offset(offset))
            self._fh.write(data.tobytes())
            self._fh.flush()

    def Read_at(self, offset: int, buf) -> None:
        """Read into *buf* (ndarray) from element *offset* of the view."""
        self._check_open()
        out = np.asarray(buf)
        with self._lock:
            self._fh.seek(self._byte_offset(offset))
            raw = self._fh.read(out.nbytes)
        if len(raw) < out.nbytes:
            raise MPIError(f"short read: wanted {out.nbytes} bytes, got "
                           f"{len(raw)}")
        flat = out.reshape(-1)
        flat[...] = np.frombuffer(raw, dtype=out.dtype)

    def Write_at_all(self, offset: int, buf) -> None:
        """Collective Write_at (completion barrier at the end)."""
        self.Write_at(offset, buf)
        self.comm.barrier()

    def Read_at_all(self, offset: int, buf) -> None:
        self.comm.barrier()   # writers before this view must be done
        self.Read_at(offset, buf)

    # ------------------------------------------------------------------
    # ordered (shared-pointer) access
    # ------------------------------------------------------------------
    def Write_ordered(self, buf) -> None:
        """Collective: rank r's block lands after ranks 0..r-1's blocks.

        Equivalent to MPI's shared-file-pointer ordered write: offsets are
        computed with an exscan of the contribution sizes.
        """
        data = np.ascontiguousarray(buf)
        counts = self.comm.allgather(data.nbytes)
        my_off = sum(counts[:self.comm.rank])
        self._check_open()
        with self._lock:
            self._fh.seek(self._view_disp + my_off)
            self._fh.write(data.tobytes())
            self._fh.flush()
        self.comm.barrier()

    def Get_size(self) -> int:
        self._check_open()
        return os.path.getsize(self.path)

    def Close(self) -> None:
        if not self._closed:
            self.comm.barrier()
            self._fh.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise MPIError("file is closed")

    def __enter__(self) -> "File":
        return self

    def __exit__(self, *exc) -> None:
        self.Close()
