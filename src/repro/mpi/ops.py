"""Reduction operations for reduce/allreduce/scan collectives.

Each :class:`Op` carries both an elementwise NumPy implementation (used for
the buffer path) and a Python-object implementation (used for the pickle
path), plus commutativity information that reduction tree algorithms need.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Op", "SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "BAND", "BOR",
           "BXOR", "MAXLOC", "MINLOC", "create_op"]


class Op:
    """A reduction operation usable with reduce/allreduce/scan."""

    __slots__ = ("name", "np_func", "py_func", "commutative")

    def __init__(self, name, np_func, py_func=None, commutative=True):
        self.name = name
        self.np_func = np_func
        self.py_func = py_func if py_func is not None else np_func
        self.commutative = commutative

    def __call__(self, a, b):
        """Combine two contributions (NumPy arrays or Python objects)."""
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return self.np_func(a, b)
        return self.py_func(a, b)

    def __repr__(self):
        return f"Op({self.name})"


def _maxloc(a, b):
    """Pairwise (value, index) max: ties resolved to the lower index."""
    av, ai = a
    bv, bi = b
    if bv > av or (bv == av and bi < ai):
        return (bv, bi)
    return (av, ai)


def _minloc(a, b):
    av, ai = a
    bv, bi = b
    if bv < av or (bv == av and bi < ai):
        return (bv, bi)
    return (av, ai)


SUM = Op("MPI_SUM", np.add)
PROD = Op("MPI_PROD", np.multiply)
MAX = Op("MPI_MAX", np.maximum, py_func=max)
MIN = Op("MPI_MIN", np.minimum, py_func=min)
LAND = Op("MPI_LAND", np.logical_and, py_func=lambda a, b: bool(a) and bool(b))
LOR = Op("MPI_LOR", np.logical_or, py_func=lambda a, b: bool(a) or bool(b))
BAND = Op("MPI_BAND", np.bitwise_and, py_func=lambda a, b: a & b)
BOR = Op("MPI_BOR", np.bitwise_or, py_func=lambda a, b: a | b)
BXOR = Op("MPI_BXOR", np.bitwise_xor, py_func=lambda a, b: a ^ b)
MAXLOC = Op("MPI_MAXLOC", _maxloc, py_func=_maxloc)
MINLOC = Op("MPI_MINLOC", _minloc, py_func=_minloc)


def create_op(func, commute=True, name="MPI_USER_OP"):
    """Create a user-defined reduction op from a binary callable.

    Mirrors ``MPI.Op.Create``.  Non-commutative ops are applied strictly in
    rank order by the collective algorithms.
    """
    return Op(name, func, py_func=func, commutative=commute)
