"""Nonblocking-communication request handles.

Sends in this runtime are eager and buffered, so a send request is complete
at creation.  Receive requests defer the mailbox retrieval to
:meth:`Request.wait` / :meth:`Request.test`.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional

from .status import Status

__all__ = ["Request", "SendRequest", "RecvRequest", "waitall", "testall"]


class Request:
    """Abstract nonblocking operation handle."""

    def wait(self, status: Optional[Status] = None) -> Any:
        raise NotImplementedError

    def test(self, status: Optional[Status] = None):
        """Return ``(flag, value)``: flag is True when complete."""
        raise NotImplementedError

    # mpi4py spelling
    Wait = wait
    Test = test


class SendRequest(Request):
    """A completed (eager) send."""

    __slots__ = ()

    def wait(self, status: Optional[Status] = None) -> None:
        return None

    def test(self, status: Optional[Status] = None):
        return True, None

    Wait = wait
    Test = test


class RecvRequest(Request):
    """A pending receive; completion happens on wait/test."""

    def __init__(self, complete_fn, poll_fn):
        self._complete_fn = complete_fn
        self._poll_fn = poll_fn
        self._done = False
        self._value: Any = None

    def wait(self, status: Optional[Status] = None) -> Any:
        if not self._done:
            self._value = self._complete_fn(status)
            self._done = True
        return self._value

    def test(self, status: Optional[Status] = None):
        if self._done:
            return True, self._value
        ok, value = self._poll_fn(status)
        if ok:
            self._done = True
            self._value = value
        return ok, self._value if ok else None

    Wait = wait
    Test = test


def waitall(requests: List[Request]) -> List[Any]:
    """Complete every request; returns their values in order."""
    return [req.wait() for req in requests]


def testall(requests: List[Request]):
    """Nonblocking completion check for a set of requests."""
    flags = [req.test()[0] for req in requests]
    if all(flags):
        return True, [req.wait() for req in requests]
    return False, None
