"""Cartesian process topologies (``MPI_Cart_create`` and friends).

ODIN's N-dimensional block distributions and the structured-grid finite
difference use case (paper section III-G) sit naturally on a Cartesian
topology: halo exchanges become shifts along grid axes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .comm import Intracomm

__all__ = ["dims_create", "CartComm"]


def dims_create(nnodes: int, ndims: int,
                dims: Optional[Sequence[int]] = None) -> List[int]:
    """Choose a balanced factorisation of *nnodes* over *ndims* dimensions.

    Entries of *dims* that are nonzero are kept fixed, as in
    ``MPI_Dims_create``.
    """
    out = [0] * ndims if dims is None else list(dims)
    if len(out) != ndims:
        raise ValueError("dims length must equal ndims")
    fixed = 1
    free_idx = [i for i, d in enumerate(out) if d == 0]
    for d in out:
        if d:
            fixed *= d
    if fixed == 0:
        raise ValueError("fixed dims must be positive")
    if nnodes % fixed:
        raise ValueError(f"{nnodes} nodes not divisible by fixed dims {out}")
    remaining = nnodes // fixed
    # Greedy: repeatedly give the largest prime factor to the smallest dim.
    factors = _prime_factors(remaining)
    sizes = {i: 1 for i in free_idx}
    for f in sorted(factors, reverse=True):
        smallest = min(free_idx, key=lambda i: sizes[i]) if free_idx else None
        if smallest is None:
            raise ValueError("no free dimension to place factors")
        sizes[smallest] *= f
    for i in free_idx:
        out[i] = sizes[i]
    return out


def _prime_factors(n: int) -> List[int]:
    factors = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


class CartComm(Intracomm):
    """A communicator with an attached Cartesian grid structure."""

    def __init__(self, parent: Intracomm, dims: Sequence[int],
                 periods: Optional[Sequence[bool]] = None):
        ndims = len(dims)
        nnodes = 1
        for d in dims:
            nnodes *= d
        if nnodes != parent.size:
            raise ValueError(
                f"grid {tuple(dims)} needs {nnodes} ranks, comm has "
                f"{parent.size}")
        periods = [False] * ndims if periods is None else list(periods)
        if len(periods) != ndims:
            raise ValueError("periods length must equal dims length")
        child = parent.dup()
        super().__init__(parent.context, child._world_ranks,
                         ctx_id=child._ctx_id)
        self.dims = list(dims)
        self.periods = periods
        self.ndims = ndims

    # -- rank <-> coordinates ------------------------------------------
    def coords_of(self, rank: int) -> Tuple[int, ...]:
        """Cartesian coordinates of a rank (row-major, like MPI)."""
        coords = []
        rem = rank
        for d in reversed(self.dims):
            coords.append(rem % d)
            rem //= d
        return tuple(reversed(coords))

    def rank_of(self, coords: Sequence[int]) -> int:
        rank = 0
        for c, d, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= d
            elif not 0 <= c < d:
                raise ValueError(f"coordinate {c} out of range 0..{d - 1}")
            rank = rank * d + c
        return rank

    @property
    def coords(self) -> Tuple[int, ...]:
        return self.coords_of(self.rank)

    def Get_coords(self, rank: int) -> List[int]:
        return list(self.coords_of(rank))

    def Shift(self, direction: int, disp: int = 1):
        """Source/destination ranks for a shift along *direction*.

        Returns ``(source, dest)``; either is ``None`` at a non-periodic
        boundary (MPI_PROC_NULL).
        """
        coords = list(self.coords)
        periodic = self.periods[direction]
        extent = self.dims[direction]

        def neighbor(offset: int) -> Optional[int]:
            c = coords[direction] + offset
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                return None
            nc = list(coords)
            nc[direction] = c
            return self.rank_of(nc)

        return neighbor(-disp), neighbor(disp)

    def neighbor_exchange(self, direction: int, send_up, send_down):
        """Exchange halo payloads with both neighbors along *direction*.

        ``send_up`` goes to the +1 neighbor, ``send_down`` to the -1
        neighbor.  Returns ``(from_down, from_up)`` (``None`` at open
        boundaries).  Tags encode direction so concurrent-axis exchanges
        cannot cross-match.
        """
        src_down, dest_up = self.Shift(direction, 1)
        tag_up = 2 * direction
        tag_down = 2 * direction + 1
        if dest_up is not None:
            self.send(send_up, dest_up, tag=tag_up)
        if src_down is not None:
            self.send(send_down, src_down, tag=tag_down)
        from_down = self.recv(src_down, tag=tag_up) if src_down is not None \
            else None
        from_up = self.recv(dest_up, tag=tag_down) if dest_up is not None \
            else None
        return from_down, from_up
