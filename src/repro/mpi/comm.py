"""Communicators: point-to-point and collective operations.

The interface follows mpi4py's conventions (see the tutorial the substrate
guides reference): lowercase methods communicate arbitrary picklable Python
objects; uppercase methods communicate NumPy buffers with near-zero
interpretation overhead.  Collectives are implemented *on top of* the
point-to-point layer with the classic algorithms (binomial trees, rings,
recursive doubling, pairwise exchange, dissemination barrier) so that
message counters reflect genuine algorithmic traffic rather than magic
shared-memory shortcuts.

Broadcast, reduce and allreduce are *adaptive*: each call picks the
cheapest algorithm for its message size, communicator size and declared
:class:`~repro.mpi.costmodel.Topology` under the active
:class:`~repro.mpi.costmodel.CostModel` (see
:func:`repro.mpi.costmodel.select_algorithm`).  The chosen algorithm is
recorded on the call's ``mpi.coll`` trace span, its ``mpi.coll.calls``
metric labels and the per-rank counters, so the selection is observable
and assertable.  Pass ``algorithm=`` to force a specific variant.
"""

from __future__ import annotations

import math
import pickle
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..chaos.core import ENGINE as _CH
from ..metrics import REGISTRY as _MX
from ..obs import causal as _CZ
from ..obs.flight import FLIGHT as _FL
from ..trace import TRACER as _TR
from . import ops as _ops
from .costmodel import (COLLECTIVE_ALGORITHMS, COMMODITY_CLUSTER, CostModel,
                        Topology, select_algorithm)
from .datatypes import decode_buffer_spec
from .errors import (CommRevokedError, RankError, RankFailure, TagError,
                     TruncationError)
from .request import RecvRequest, SendRequest
from .runtime import RankContext, _NOT_FAILED
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = ["Group", "Intracomm", "set_collective_tuning",
           "collective_label_catalogue"]


def _loads(msg):
    """Decode a received message, surfacing corruption as a typed error.

    ``pickle5`` messages carry their ndarray data as out-of-band frames;
    unpickling reconstructs arrays as *read-only views* of the frames (the
    sender's single isolation copy) -- zero additional copies on the
    receive side.  A payload truncated in flight (chaos injection, or any
    future real transport) fails to decode with an arbitrary
    ``UnpicklingError`` / ``EOFError`` / ``ValueError``; callers must
    instead see the substrate's own :class:`TruncationError` so tests and
    solvers can handle it.
    """
    try:
        if msg.kind == "pickle5":
            blob, frames = msg.payload
            return pickle.loads(blob, buffers=frames)
        return pickle.loads(msg.payload)
    except Exception as exc:
        raise TruncationError(
            f"received message payload failed to decode ({exc!r}); "
            f"payload was truncated or corrupted in flight") from exc


# ----------------------------------------------------------------------
# collective algorithm tuning (process-wide defaults)
# ----------------------------------------------------------------------

#: Cost model consulted by adaptive collectives when the communicator has
#: no instance-level override (:meth:`Intracomm.set_collective_tuning`).
_DEFAULT_COST_MODEL: CostModel = COMMODITY_CLUSTER
#: Declared node topology; ``None`` means flat (no hierarchy to exploit).
_DEFAULT_TOPOLOGY: Optional[Topology] = None

#: Object-path payloads have per-rank pickle sizes, which must never feed
#: the (SPMD-consistent) selection; without an explicit ``size_hint`` the
#: selection assumes a small message.
_OBJECT_SIZE_GUESS = 512


def set_collective_tuning(cost_model: Optional[CostModel] = None,
                          topology: Optional[Topology] = None) -> None:
    """Set the process-wide cost model / topology for adaptive collectives.

    Both are inherited by every communicator that has no instance-level
    override.  Pass :data:`~repro.mpi.costmodel.FLAT` to clear a topology.
    SPMD note: this mutates module state shared by all ranks of a thread
    world, so it is inherently SPMD-consistent; call it outside the SPMD
    region (or identically on every rank).
    """
    global _DEFAULT_COST_MODEL, _DEFAULT_TOPOLOGY
    if cost_model is not None:
        _DEFAULT_COST_MODEL = cost_model
    if topology is not None:
        _DEFAULT_TOPOLOGY = None if topology.is_flat else topology


def _block_bounds(n: int, m: int) -> List[Tuple[int, int]]:
    """Balanced split of ``n`` elements into ``m`` contiguous blocks."""
    base, extra = divmod(n, m)
    bounds = []
    start = 0
    for k in range(m):
        size = base + (1 if k < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _traced_collective(default_algorithm: str):
    """Wrap a collective so each call records one span tagged with the
    algorithm it executed, counts the (op, algorithm) pair in the rank's
    wire counters, and (when metrics are on) counts calls and this rank's
    sent bytes per algorithm.  Adaptive collectives overwrite the default
    label via :meth:`Intracomm._note_algorithm`; the label a call records
    is always the algorithm that actually ran."""
    def deco(fn):
        name = fn.__name__

        def wrapper(self, *args, **kwargs):
            if _CH.enabled:
                _CH.on_op("coll", self._ctx.rank)
            # entry guard: a collective over a revoked comm or a dead
            # member can never complete -- fail typed and immediately
            # rather than blocking until some recv inside the algorithm
            # happens to involve the dead rank (a root's bcast, for
            # instance, never receives at all)
            self._check_usable(name)
            ctrs = self._ctx.world.counters[self._ctx.rank]
            tr, mx, fl = _TR.enabled, _MX.enabled, _FL.enabled
            # plain attribute read: exactness not worth a lock here
            b0 = ctrs.bytes_sent if mx else 0
            t0 = _TR.now() if (tr or fl) else 0.0
            notes = self._algo_notes
            notes.append(default_algorithm)
            try:
                out = fn(self, *args, **kwargs)
                algorithm = notes[-1]
            finally:
                notes.pop()
            # collectives issued while an ODIN control op executes inherit
            # its causal identity (None outside any tagged op)
            op_id = _CZ.current_op_id()
            ctrs.record_coll(name, algorithm, op_id)
            if tr:
                if op_id is None:
                    _TR.complete("mpi.coll", name, t0, rank=self._ctx.rank,
                                 algorithm=algorithm, size=self._size)
                else:
                    _TR.complete("mpi.coll", name, t0, rank=self._ctx.rank,
                                 algorithm=algorithm, size=self._size,
                                 op_id=op_id)
            if fl:
                _FL.complete("mpi.coll", name, self._ctx.rank, t0,
                             algorithm=algorithm, op_id=op_id)
            if mx:
                sent = ctrs.bytes_sent - b0
                _MX.inc("mpi.coll.calls", op=name, algorithm=algorithm)
                if sent > 0:
                    _MX.inc("mpi.coll.bytes_sent", sent, op=name,
                            algorithm=algorithm)
            return out

        wrapper.__name__ = name
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        return wrapper
    return deco


#: Algorithm label recorded by every non-adaptive collective, keyed by the
#: op name that appears in spans / metrics.  The adaptive ops (bcast,
#: reduce, allreduce and their buffer twins) instead draw labels from
#: :data:`~repro.mpi.costmodel.COLLECTIVE_ALGORITHMS`.
_STATIC_LABELS: Dict[str, str] = {
    "barrier": "dissemination",
    "scatter": "linear-root",
    "gather": "linear-root",
    "allgather": "ring",
    "alltoall": "pairwise-exchange",
    "scan": "linear-chain",
    "exscan": "linear-chain",
    "reduce_scatter": "alltoall+fold",
    "Scatter": "linear-root",
    "Scatterv": "linear-root",
    "Gather": "linear-root",
    "Gatherv": "linear-root",
    "Allgather": "ring",
    "Allgatherv": "ring",
    "Alltoall": "pairwise-exchange",
    "Scan": "linear-chain",
    "Exscan": "linear-chain",
}


def collective_label_catalogue() -> Dict[str, Tuple[str, ...]]:
    """Every algorithm label each collective op may legally record.

    The audit test (and any trace consumer) checks observed
    ``algorithm=`` span/metric labels against this catalogue, so a
    collective whose label drifts from its implementation fails loudly.
    """
    cat = {op: (label, "local") for op, label in _STATIC_LABELS.items()}
    for op in ("allreduce", "Allreduce"):
        cat[op] = COLLECTIVE_ALGORITHMS["allreduce"]
    for op in ("bcast", "Bcast"):
        cat[op] = COLLECTIVE_ALGORITHMS["bcast"]
    for op in ("reduce", "Reduce"):
        cat[op] = COLLECTIVE_ALGORITHMS["reduce"]
    return cat


class Group:
    """An ordered set of world ranks; the process-group abstraction."""

    def __init__(self, world_ranks: Sequence[int]):
        self._ranks = list(world_ranks)

    @property
    def size(self) -> int:
        return len(self._ranks)

    def rank_of(self, world_rank: int) -> int:
        """Group rank of a world rank (-1 if absent)."""
        try:
            return self._ranks.index(world_rank)
        except ValueError:
            return -1

    def Incl(self, ranks: Sequence[int]) -> "Group":
        """Subgroup containing the given *group* ranks, in that order."""
        return Group([self._ranks[r] for r in ranks])

    def Excl(self, ranks: Sequence[int]) -> "Group":
        excl = set(ranks)
        return Group([wr for i, wr in enumerate(self._ranks) if i not in excl])

    def world_ranks(self) -> List[int]:
        return list(self._ranks)


class Intracomm:
    """A communicator over an ordered list of world ranks.

    Each rank holds its own instance; instances on different ranks that
    were created by the same (SPMD-ordered) sequence of calls share a
    context id, which is what isolates their message traffic.
    """

    def __init__(self, ctx: RankContext, world_ranks: Sequence[int],
                 ctx_id: Any = ("world",)):
        self._ctx = ctx
        self._world_ranks = list(world_ranks)
        # world rank -> comm rank, built once: message-source translation
        # must not pay an O(size) list scan per received message
        self._rank_of_world = {wr: r for r, wr
                               in enumerate(self._world_ranks)}
        self._ctx_id = ctx_id
        self._rank = self._rank_of_world[ctx.rank]
        self._size = len(self._world_ranks)
        self._coll_seq = 0   # per-collective context stream; SPMD-consistent
        self._child_seq = 0  # id stream for derived communicators
        self._agree_seq = 0  # agreement rendezvous stream; SPMD-consistent
        # algorithm-label stack for the _traced_collective wrappers (a
        # stack because adaptive collectives nest: allreduce -> Reduce)
        self._algo_notes: List[str] = []
        self._cost_model: Optional[CostModel] = None
        self._topology: Optional[Topology] = None

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._size

    @property
    def group(self) -> Group:
        return Group(self._world_ranks)

    @property
    def context(self) -> RankContext:
        return self._ctx

    def world_rank(self, rank: int) -> int:
        """Translate a comm rank to its world rank."""
        return self._world_ranks[rank]

    def counters(self):
        """This rank's live traffic counters (world-wide, not per-comm)."""
        return self._ctx.world.counters[self._ctx.rank]

    def traffic_snapshot(self):
        return self.counters().snapshot()

    def __repr__(self):
        return (f"Intracomm(rank={self._rank}/{self._size}, "
                f"ctx={self._ctx_id!r})")

    # ------------------------------------------------------------------
    # collective tuning
    # ------------------------------------------------------------------
    def set_collective_tuning(self, cost_model: Optional[CostModel] = None,
                              topology: Optional[Topology] = None
                              ) -> "Intracomm":
        """Override the cost model / topology for *this* communicator.

        A non-flat *topology* must partition ``range(size)`` of this
        communicator (``ValueError`` otherwise).  Pass
        :data:`~repro.mpi.costmodel.FLAT` to clear a topology.  Returns
        ``self`` so the call chains off a constructor.
        """
        if cost_model is not None:
            self._cost_model = cost_model
        if topology is not None:
            if topology.is_flat:
                self._topology = None
            else:
                topology.validate(self._size)
                self._topology = topology
        return self

    def _tuning(self) -> Tuple[CostModel, Optional[Topology]]:
        model = self._cost_model if self._cost_model is not None \
            else _DEFAULT_COST_MODEL
        topo = self._topology if self._topology is not None \
            else _DEFAULT_TOPOLOGY
        return model, topo

    def _note_algorithm(self, algorithm: str) -> None:
        """Record which algorithm the innermost active collective ran."""
        if self._algo_notes:
            self._algo_notes[-1] = algorithm

    def _select(self, coll: str, nbytes: int, count: Optional[int],
                commutative: bool, algorithm: Optional[str]) -> str:
        """Forced algorithm (validated) or the cost-model argmin."""
        if algorithm is not None:
            legal = COLLECTIVE_ALGORITHMS[coll]
            if algorithm not in legal or algorithm == "local":
                raise ValueError(
                    f"unknown {coll} algorithm {algorithm!r}; choose from "
                    f"{sorted(a for a in legal if a != 'local')}")
            return algorithm
        model, topo = self._tuning()
        return select_algorithm(coll, self._size, int(nbytes), model,
                                topology=topo, commutative=commutative,
                                count=count)

    def _groups(self) -> Optional[List[List[int]]]:
        """Usable topology groups for this communicator, else None."""
        _model, topo = self._tuning()
        if topo is None:
            return None
        return topo.groups_for(self._size)

    # ------------------------------------------------------------------
    # argument checking helpers
    # ------------------------------------------------------------------
    def _check_rank(self, rank: int, allow_any: bool = False) -> None:
        if allow_any and rank == ANY_SOURCE:
            return
        if not 0 <= rank < self._size:
            raise RankError(f"rank {rank} out of range for size {self._size}")

    @staticmethod
    def _check_tag(tag: int, allow_any: bool = False) -> None:
        if allow_any and tag == ANY_TAG:
            return
        if tag < 0:
            raise TagError(f"tag must be >= 0, got {tag}")

    def _check_usable(self, opname: str) -> None:
        """Raise the typed fault if this comm is revoked or has a dead
        member.  O(size) only once a failure exists; two attribute reads
        otherwise."""
        world = self._ctx.world
        if world._revoked and world.is_revoked(self._ctx_id):
            raise CommRevokedError(
                f"{opname} on revoked communicator ctx={self._ctx_id!r}")
        if world.has_failures:
            for wr in self._world_ranks:
                cause = world.failure_cause(wr)
                if cause is not _NOT_FAILED:
                    raise RankFailure(wr, f"{opname} (world rank {wr} is "
                                      f"a member of ctx={self._ctx_id!r})",
                                      cause)

    def _p2p_ctx(self):
        world = self._ctx.world
        if world._revoked and world.is_revoked(self._ctx_id):
            raise CommRevokedError(
                f"point-to-point op on revoked communicator "
                f"ctx={self._ctx_id!r}")
        return (self._ctx_id, "p")

    def _next_coll(self):
        """Fresh context id for one collective call (base tag 0).

        Each call gets its *own* context rather than a shared context
        with an incrementing tag, so a multi-phase algorithm is free to
        use small tag offsets for its internal phases without colliding
        with any other collective in flight on the same communicator.
        """
        seq = self._coll_seq
        self._coll_seq += 1
        return (self._ctx_id, "c", seq), 0

    # ------------------------------------------------------------------
    # point-to-point: Python objects (pickle path)
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest)
        self._check_tag(tag)
        self._ctx.send_object(self._world_ranks[dest], self._p2p_ctx(),
                              tag, obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Optional[Status] = None) -> Any:
        self._check_rank(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._world_ranks[source])
        msg = self._ctx.recv_message(self._p2p_ctx(), src_world, tag,
                                     members=self._world_ranks)
        if status is not None:
            status.source = self._rank_of_world[msg.src]
            status.tag = msg.tag
            status.count_bytes = msg.nbytes
        return _loads(msg)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> SendRequest:
        self.send(obj, dest, tag)
        return SendRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        self._check_rank(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._world_ranks[source])

        def complete(status):
            msg = self._ctx.recv_message(self._p2p_ctx(), src_world, tag,
                                         members=self._world_ranks)
            if status is not None:
                status.source = self._rank_of_world[msg.src]
                status.tag = msg.tag
                status.count_bytes = msg.nbytes
            return _loads(msg)

        def poll(status):
            msg = self._ctx.poll_message(self._p2p_ctx(), src_world, tag,
                                         remove=True)
            if msg is None:
                return False, None
            if status is not None:
                status.source = self._rank_of_world[msg.src]
                status.tag = msg.tag
                status.count_bytes = msg.nbytes
            return True, _loads(msg)

        return RecvRequest(complete, poll)

    def sendrecv(self, sendobj: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE, recvtag: int = ANY_TAG) -> Any:
        # Eager buffered sends cannot deadlock, so send-then-recv is safe.
        self.send(sendobj, dest, sendtag)
        return self.recv(source, recvtag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              status: Optional[Status] = None) -> Status:
        """Block until a matching message is available (without receiving)."""
        self._check_rank(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._world_ranks[source])
        mb = self._ctx.world.mailboxes[self._ctx.rank]
        msg = mb.retrieve(self._p2p_ctx(), src_world, tag,
                          self._ctx.world.timeout, remove=False,
                          members=self._world_ranks)
        st = status if status is not None else Status()
        st.source = self._rank_of_world[msg.src]
        st.tag = msg.tag
        st.count_bytes = msg.nbytes
        return st

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               status: Optional[Status] = None) -> bool:
        self._check_rank(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._world_ranks[source])
        msg = self._ctx.poll_message(self._p2p_ctx(), src_world, tag,
                                     remove=False)
        if msg is None:
            return False
        if status is not None:
            status.source = self._rank_of_world[msg.src]
            status.tag = msg.tag
            status.count_bytes = msg.nbytes
        return True

    # ------------------------------------------------------------------
    # point-to-point: NumPy buffers (fast path)
    # ------------------------------------------------------------------
    def Send(self, buf, dest: int, tag: int = 0) -> None:
        self._check_rank(dest)
        self._check_tag(tag)
        flat, _count, _dt = decode_buffer_spec(buf)
        self._ctx.send_buffer(self._world_ranks[dest], self._p2p_ctx(),
                              tag, flat)

    def Recv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Optional[Status] = None) -> None:
        self._check_rank(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        flat, count, dt = decode_buffer_spec(buf)
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._world_ranks[source])
        msg = self._ctx.recv_message(self._p2p_ctx(), src_world, tag,
                                     members=self._world_ranks)
        incoming = np.asarray(msg.payload)
        if incoming.nbytes > flat.nbytes:
            raise TruncationError(
                f"message of {incoming.nbytes} bytes does not fit receive "
                f"buffer of {flat.nbytes} bytes")
        n = incoming.nbytes // dt.extent
        flat[:n] = incoming.view(dt.np_dtype)[:n]
        if status is not None:
            status.source = self._rank_of_world[msg.src]
            status.tag = msg.tag
            status.count_bytes = msg.nbytes

    def Isend(self, buf, dest: int, tag: int = 0) -> SendRequest:
        self.Send(buf, dest, tag)
        return SendRequest()

    def Irecv(self, buf, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> RecvRequest:
        def complete(status):
            self.Recv(buf, source, tag, status)
            return None

        def poll(status):
            self._check_rank(source, allow_any=True)
            src_world = (ANY_SOURCE if source == ANY_SOURCE
                         else self._world_ranks[source])
            if self._ctx.poll_message(self._p2p_ctx(), src_world, tag,
                                      remove=False) is None:
                return False, None
            self.Recv(buf, source, tag, status)
            return True, None

        return RecvRequest(complete, poll)

    def Sendrecv(self, sendbuf, dest: int, sendtag: int = 0,
                 recvbuf=None, source: int = ANY_SOURCE,
                 recvtag: int = ANY_TAG,
                 status: Optional[Status] = None) -> None:
        self.Send(sendbuf, dest, sendtag)
        self.Recv(recvbuf, source, recvtag, status)

    # ------------------------------------------------------------------
    # collective plumbing: send/recv closures over a member list
    # ------------------------------------------------------------------
    def _obj_io(self, ctx_id, ws):
        """(send, recv) closures moving pickled objects between members.

        *ws* is a list of world ranks; both closures address peers by
        index into it, so one algorithm implementation serves the full
        communicator and any hierarchical subgroup alike.  Receives watch
        the whole communicator's membership, so a death anywhere aborts
        the collective instead of hanging a chain of waiters.
        """
        ctx = self._ctx
        members = self._world_ranks

        def send(payload, j, t):
            ctx.send_object(ws[j], ctx_id, t, payload)

        def recv(j, t):
            return _loads(ctx.recv_message(ctx_id, ws[j], t,
                                           members=members))

        return send, recv

    def _buf_io(self, ctx_id, ws, np_dtype, expect, opname):
        """(send, recv) closures moving fixed-size buffers between members.

        Every receive insists on exactly *expect* elements: a payload
        truncated or inflated in flight raises :class:`TruncationError`
        rather than corrupting the reduction.
        """
        ctx = self._ctx
        members = self._world_ranks

        def send(payload, j, t):
            ctx.send_buffer(ws[j], ctx_id, t, payload)

        def recv(j, t):
            msg = ctx.recv_message(ctx_id, ws[j], t, members=members)
            incoming = np.asarray(msg.payload).view(np_dtype)
            if incoming.size != expect:
                raise TruncationError(
                    f"{opname} expected {expect} elements, received "
                    f"{incoming.size}: payload truncated or oversized "
                    f"in flight")
            return incoming

        return send, recv

    def _recv_flat(self, ctx_id, src_world, tag, np_dtype, expect, opname):
        """One exact-size buffer receive (segmented-algorithm helper)."""
        msg = self._ctx.recv_message(ctx_id, src_world, tag,
                                     members=self._world_ranks)
        incoming = np.asarray(msg.payload).view(np_dtype)
        if incoming.size != expect:
            raise TruncationError(
                f"{opname} expected {expect} elements, received "
                f"{incoming.size}: payload truncated or oversized in flight")
        return incoming

    # ------------------------------------------------------------------
    # collective algorithm kernels (generic over the io closures)
    # ------------------------------------------------------------------
    def _bcast_tree(self, tag, ws, i, root_i, value, send, recv):
        """Binomial-tree broadcast over *ws* rooted at index *root_i*.

        MPICH formulation in root-rotated virtual ranks: member v
        receives from ``v - lowbit(v)`` and forwards to ``v + mask`` for
        every mask below its low bit -- ceil(log2 m) rounds, each member
        receives exactly once.
        """
        m = len(ws)
        if m == 1:
            return value
        v = (i - root_i) % m
        mask = 1
        while mask < m:
            if v & mask:
                value = recv((v - mask + root_i) % m, tag)
                break
            mask <<= 1
        mask >>= 1
        while mask:
            if v + mask < m:
                send(value, (v + mask + root_i) % m, tag)
            mask >>= 1
        return value

    def _fold_tree(self, tag, ws, i, acc, combine, send, recv):
        """Rank-ordered binomial fold to member 0.

        Member i always combines ``combine(own_run, higher_run)`` where
        the higher run starts exactly where its own ends, so the fold
        applies *combine* strictly in member order -- valid for
        non-commutative (but associative) operations.  Returns the result
        at member 0, ``None`` elsewhere.
        """
        mask = 1
        m = len(ws)
        while mask < m:
            if i & mask:
                send(acc, i & ~mask, tag)
                return None
            partner = i | mask
            if partner < m:
                acc = combine(acc, recv(partner, tag))
            mask <<= 1
        return acc

    def _reduce_rotated(self, tag, ws, i, root_i, acc, combine, send, recv):
        """Commutative binomial-tree reduce rooted at *root_i*."""
        m = len(ws)
        v = (i - root_i) % m
        mask = 1
        while mask < m:
            if v & mask:
                send(acc, ((v & ~mask) + root_i) % m, tag)
                return None
            partner = v | mask
            if partner < m:
                acc = combine(acc, recv((partner + root_i) % m, tag))
            mask <<= 1
        return acc

    def _reduce_ordered(self, tag, ws, i, root_i, acc, combine, send, recv):
        """Rank-ordered tree fold plus a forward hop to the root.

        Uses tags ``tag`` (fold) and ``tag + 1`` (member 0 -> root).
        """
        acc = self._fold_tree(tag, ws, i, acc, combine, send, recv)
        if root_i == 0:
            return acc
        if i == 0:
            send(acc, root_i, tag + 1)
            return None
        if i == root_i:
            return recv(0, tag + 1)
        return None

    def _reduce_gather_fold(self, tag, ws, i, root_i, value, combine,
                            send, recv):
        """Everyone sends to the root, which folds in member order.

        O(m * msg) root memory pressure -- kept only as an explicitly
        selectable baseline, never chosen by the cost model.
        """
        m = len(ws)
        if i != root_i:
            send(value, root_i, tag)
            return None
        acc = None
        for j in range(m):
            part = value if j == i else recv(j, tag)
            acc = part if acc is None else combine(acc, part)
        return acc

    def _allreduce_recdbl(self, tag, ws, i, acc, combine, send, recv):
        """Recursive-doubling allreduce with non-power-of-two folding.

        The first ``2r`` members (``r = m - 2^floor(lg m)``) pair-fold so
        a power-of-two subset runs the doubling; folded-out members get
        the result back afterwards.  Combination order is member order
        throughout (participants own contiguous ascending member runs and
        the doubling merges adjacent runs), so the kernel is valid for
        non-commutative ops too.  Tags: ``tag`` fold-in, ``tag + 1``
        doubling exchanges, ``tag + 2`` result return.
        """
        m = len(ws)
        q = 1 << (m.bit_length() - 1)
        r = m - q
        if i < 2 * r:
            if i & 1:
                send(acc, i - 1, tag)
                return recv(i - 1, tag + 2)
            acc = combine(acc, recv(i + 1, tag))
            pn = i // 2
        else:
            pn = i - r
        mask = 1
        while mask < q:
            pj = pn ^ mask
            j = 2 * pj if pj < r else pj + r
            send(acc, j, tag + 1)
            other = recv(j, tag + 1)
            acc = combine(other, acc) if pj < pn else combine(acc, other)
            mask <<= 1
        if pn < r:
            send(acc, 2 * pn + 1, tag + 2)
        return acc

    def _buf_allreduce_ring(self, ctx_id, tag, ws, i, acc, op):
        """Ring allreduce: ring reduce-scatter then ring allgather.

        2(m-1) steps each moving ~1/m of the vector; bandwidth-optimal,
        latency-heavy.  Commutative ops only (blocks fold in ring arrival
        order).  Tags: ``tag`` reduce-scatter, ``tag + 1`` allgather.
        """
        m = len(ws)
        ctx = self._ctx
        dt = acc.dtype
        bounds = _block_bounds(acc.size, m)
        right = ws[(i + 1) % m]
        left = ws[(i - 1) % m]
        for k in range(m - 1):
            s0, s1 = bounds[(i - k) % m]
            ctx.send_buffer(right, ctx_id, tag, acc[s0:s1])
            r0, r1 = bounds[(i - k - 1) % m]
            incoming = self._recv_flat(ctx_id, left, tag, dt, r1 - r0,
                                       "Allreduce(ring)")
            acc[r0:r1] = op.np_func(acc[r0:r1], incoming)
        # member i now owns the fully reduced block (i + 1) % m
        cur = (i + 1) % m
        for _k in range(m - 1):
            s0, s1 = bounds[cur]
            ctx.send_buffer(right, ctx_id, tag + 1, acc[s0:s1])
            cur = (cur - 1) % m
            r0, r1 = bounds[cur]
            incoming = self._recv_flat(ctx_id, left, tag + 1, dt, r1 - r0,
                                       "Allreduce(ring)")
            acc[r0:r1] = incoming
        return acc

    def _buf_allreduce_rabenseifner(self, ctx_id, tag, ws, i, acc, op):
        """Rabenseifner allreduce: recursive-halving reduce-scatter plus
        recursive-doubling allgather -- ring's bandwidth term at tree
        latency.  Commutative ops only.  Tags: ``tag`` pow2 fold-in,
        ``tag + 1`` halving, ``tag + 2`` doubling, ``tag + 3`` result
        return to folded-out members.
        """
        m = len(ws)
        ctx = self._ctx
        dt = acc.dtype
        q = 1 << (m.bit_length() - 1)
        r = m - q
        if i < 2 * r:
            if i & 1:
                ctx.send_buffer(ws[i - 1], ctx_id, tag, acc)
                incoming = self._recv_flat(ctx_id, ws[i - 1], tag + 3, dt,
                                           acc.size,
                                           "Allreduce(rabenseifner)")
                acc[:] = incoming
                return acc
            incoming = self._recv_flat(ctx_id, ws[i + 1], tag, dt, acc.size,
                                       "Allreduce(rabenseifner)")
            acc = op.np_func(acc, incoming)
            pn = i // 2
        else:
            pn = i - r

        def wrank(pk):
            return ws[2 * pk if pk < r else pk + r]

        bounds = _block_bounds(acc.size, q)
        off = [b[0] for b in bounds] + [acc.size]
        # recursive halving: each round swap half of the live window with
        # the partner and fold the half we keep
        lo, hi = 0, q
        mask = q >> 1
        while mask:
            pj = pn ^ mask
            mid = lo + mask
            if pn & mask:
                send_sl = acc[off[lo]:off[mid]]
                keep0, keep1 = off[mid], off[hi]
                lo = mid
            else:
                send_sl = acc[off[mid]:off[hi]]
                keep0, keep1 = off[lo], off[mid]
                hi = mid
            ctx.send_buffer(wrank(pj), ctx_id, tag + 1, send_sl)
            incoming = self._recv_flat(ctx_id, wrank(pj), tag + 1, dt,
                                       keep1 - keep0,
                                       "Allreduce(rabenseifner)")
            acc[keep0:keep1] = op.np_func(acc[keep0:keep1], incoming)
            mask >>= 1
        # recursive doubling allgather of the owned blocks
        mask = 1
        while mask < q:
            pj = pn ^ mask
            my_lo = (pn // mask) * mask
            pr_lo = (pj // mask) * mask
            ctx.send_buffer(wrank(pj), ctx_id, tag + 2,
                            acc[off[my_lo]:off[my_lo + mask]])
            incoming = self._recv_flat(ctx_id, wrank(pj), tag + 2, dt,
                                       off[pr_lo + mask] - off[pr_lo],
                                       "Allreduce(rabenseifner)")
            acc[off[pr_lo]:off[pr_lo + mask]] = incoming
            mask <<= 1
        if pn < r:
            ctx.send_buffer(ws[2 * pn + 1], ctx_id, tag + 3, acc)
        return acc

    def _buf_reduce_ring(self, ctx_id, tag, ws, i, root_i, acc, op):
        """Ring reduce: ring reduce-scatter, owned blocks hop to the root.

        Commutative ops only.  Tags: ``tag`` reduce-scatter, ``tag + 1``
        block gather at the root.
        """
        m = len(ws)
        ctx = self._ctx
        dt = acc.dtype
        bounds = _block_bounds(acc.size, m)
        right = ws[(i + 1) % m]
        left = ws[(i - 1) % m]
        for k in range(m - 1):
            s0, s1 = bounds[(i - k) % m]
            ctx.send_buffer(right, ctx_id, tag, acc[s0:s1])
            r0, r1 = bounds[(i - k - 1) % m]
            incoming = self._recv_flat(ctx_id, left, tag, dt, r1 - r0,
                                       "Reduce(ring)")
            acc[r0:r1] = op.np_func(acc[r0:r1], incoming)
        own = (i + 1) % m
        o0, o1 = bounds[own]
        if i != root_i:
            ctx.send_buffer(ws[root_i], ctx_id, tag + 1, acc[o0:o1])
            return None
        out = np.empty_like(acc)
        out[o0:o1] = acc[o0:o1]
        for b in range(m):
            owner = (b - 1) % m
            if owner == i:
                continue
            b0, b1 = bounds[b]
            incoming = self._recv_flat(ctx_id, ws[owner], tag + 1, dt,
                                       b1 - b0, "Reduce(ring)")
            out[b0:b1] = incoming
        return out

    def _buf_bcast_scatter_allgather(self, ctx_id, tag, ws, i, root_i,
                                     flat, count, np_dtype):
        """van de Geijn broadcast: binomial scatter + ring allgather.

        Halves the bandwidth term of the binomial tree for large
        messages at the cost of extra latency.  Tags: ``tag`` scatter,
        ``tag + 1`` allgather.
        """
        m = len(ws)
        ctx = self._ctx
        bounds = _block_bounds(count, m)
        off = [b[0] for b in bounds] + [count]
        v = (i - root_i) % m

        def wrank(vr):
            return ws[(vr + root_i) % m]

        # binomial scatter in virtual-rank space: v receives blocks
        # [v, v + lowbit(v)) from v - lowbit(v), then halves its span
        # downward
        mask = 1
        while mask < m:
            if v & mask:
                hi_blk = min(v + mask, m)
                incoming = self._recv_flat(
                    ctx_id, wrank(v - mask), tag, np_dtype,
                    off[hi_blk] - off[v], "Bcast(scatter-allgather)")
                flat[off[v]:off[hi_blk]] = incoming
                break
            mask <<= 1
        mask >>= 1
        while mask:
            dv = v + mask
            if dv < m:
                hi_blk = min(dv + mask, m)
                ctx.send_buffer(wrank(dv), ctx_id, tag,
                                flat[off[dv]:off[hi_blk]])
            mask >>= 1
        # ring allgather in virtual-rank space
        right = wrank((v + 1) % m)
        left = wrank((v - 1) % m)
        cur = v
        for _k in range(m - 1):
            ctx.send_buffer(right, ctx_id, tag + 1,
                            flat[off[cur]:off[cur + 1]])
            cur = (cur - 1) % m
            incoming = self._recv_flat(ctx_id, left, tag + 1, np_dtype,
                                       off[cur + 1] - off[cur],
                                       "Bcast(scatter-allgather)")
            flat[off[cur]:off[cur + 1]] = incoming

    def _obj_bcast_scatter_allgather(self, ctx_id, tag, ws, i, root_i, obj):
        """Scatter-allgather broadcast of a pickled object.

        The root serializes once; the byte blob then rides the buffer
        kernel (a size header travels down a binomial tree first so
        non-roots can allocate).  Tags ``tag`` (header) through
        ``tag + 2``.
        """
        if i == root_i:
            blob = pickle.dumps(obj, protocol=5)
            data = np.frombuffer(blob, dtype=np.uint8).copy()
            n = data.size
        else:
            data = None
            n = None
        send, recv = self._obj_io(ctx_id, ws)
        n = self._bcast_tree(tag, ws, i, root_i, n, send, recv)
        if data is None:
            data = np.empty(int(n), dtype=np.uint8)
        self._buf_bcast_scatter_allgather(ctx_id, tag + 1, ws, i, root_i,
                                          data, int(n), np.dtype(np.uint8))
        if i == root_i:
            return obj
        try:
            return pickle.loads(data.tobytes())
        except Exception as exc:
            raise TruncationError(
                f"scatter-allgather bcast payload failed to decode "
                f"({exc!r}); payload was truncated or corrupted in "
                f"flight") from exc

    def _hier_bcast(self, ctx_id, tag, groups, root, value, io_for):
        """Hierarchical broadcast: root -> its group leader -> leaders'
        binomial tree -> intra-group binomial trees.

        *groups* are comm-rank groups from the declared topology;
        *io_for(ws)* builds (send, recv) closures for a member list, so
        the same skeleton drives the object and buffer paths.  Tags:
        ``tag`` root hop, ``tag + 1`` leader tree, ``tag + 2`` intra.
        """
        full_ws = self._world_ranks
        me = self._rank
        mine = next(g for g in groups if me in g)
        leaders = [g[0] for g in groups]
        gidx = next(k for k, g in enumerate(groups) if root in g)
        lead0 = groups[gidx][0]
        if root != lead0:
            send, recv = io_for(full_ws)
            if me == root:
                send(value, lead0, tag)
            elif me == lead0:
                value = recv(root, tag)
        if me in leaders:
            lws = [full_ws[r] for r in leaders]
            send, recv = io_for(lws)
            value = self._bcast_tree(tag + 1, lws, leaders.index(me), gidx,
                                     value, send, recv)
        gws = [full_ws[r] for r in mine]
        send, recv = io_for(gws)
        return self._bcast_tree(tag + 2, gws, mine.index(me), 0, value,
                                send, recv)

    def _hier_allreduce(self, ctx_id, tag, groups, value, combine, io_for):
        """Hierarchical allreduce: intra-group fold -> leader
        recursive-doubling -> intra-group broadcast.  Commutative ops
        only (group membership need not follow rank order).  Tags:
        ``tag`` intra fold, ``tag + 1``..``tag + 3`` leader exchange,
        ``tag + 4`` intra broadcast.
        """
        full_ws = self._world_ranks
        me = self._rank
        mine = next(g for g in groups if me in g)
        gws = [full_ws[r] for r in mine]
        gi = mine.index(me)
        send, recv = io_for(gws)
        acc = self._fold_tree(tag, gws, gi, value, combine, send, recv)
        if gi == 0:
            leaders = [g[0] for g in groups]
            lws = [full_ws[r] for r in leaders]
            lsend, lrecv = io_for(lws)
            acc = self._allreduce_recdbl(tag + 1, lws, leaders.index(me),
                                         acc, combine, lsend, lrecv)
        return self._bcast_tree(tag + 4, gws, gi, 0, acc, send, recv)

    # ------------------------------------------------------------------
    # collectives: object (pickle) path
    # ------------------------------------------------------------------
    @_traced_collective("dissemination")
    def barrier(self) -> None:
        """Dissemination barrier: ceil(log2 p) rounds of pairwise signals."""
        ctx_id, tag = self._next_coll()
        p = self._size
        if p == 1:
            return
        rounds = max(1, math.ceil(math.log2(p)))
        me = self._rank
        for k in range(rounds):
            dist = 1 << k
            dest = (me + dist) % p
            src = (me - dist) % p
            self._ctx.send_object(self._world_ranks[dest], ctx_id,
                                  tag + k, None)
            self._ctx.recv_message(ctx_id, self._world_ranks[src],
                                   tag + k)

    Barrier = barrier

    @_traced_collective("binomial-tree")
    def bcast(self, obj: Any = None, root: int = 0,
              size_hint: Optional[int] = None,
              algorithm: Optional[str] = None) -> Any:
        """Size-adaptive broadcast of a Python object.

        *size_hint* (approximate serialized bytes, SPMD-consistent)
        admits the large-message scatter-allgather variant; without it
        the pickled size is per-rank-unknowable and selection assumes a
        small message.  *algorithm* forces a specific variant.
        """
        self._check_rank(root)
        p = self._size
        if p == 1:
            self._note_algorithm("local")
            return obj
        nbytes = int(size_hint) if size_hint else _OBJECT_SIZE_GUESS
        count = int(size_hint) if size_hint else None
        algo = self._select("bcast", nbytes, count, True, algorithm)
        groups = self._groups()
        if algo == "hierarchical" and groups is None:
            raise ValueError(
                "hierarchical bcast requires a topology declared for "
                "this communicator size")
        self._note_algorithm(algo)
        ctx_id, tag = self._next_coll()
        ws = self._world_ranks
        if algo == "scatter-allgather":
            return self._obj_bcast_scatter_allgather(ctx_id, tag, ws,
                                                     self._rank, root, obj)
        if algo == "hierarchical":
            return self._hier_bcast(ctx_id, tag, groups, root, obj,
                                    lambda mws: self._obj_io(ctx_id, mws))
        send, recv = self._obj_io(ctx_id, ws)
        return self._bcast_tree(tag, ws, self._rank, root, obj, send, recv)

    @_traced_collective("linear-root")
    def scatter(self, sendobj: Optional[Sequence] = None,
                root: int = 0) -> Any:
        self._check_rank(root)
        ctx_id, tag = self._next_coll()
        if self._rank == root:
            if sendobj is None or len(sendobj) != self._size:
                raise ValueError("root must supply a sequence of comm.size "
                                 "elements to scatter")
            mine = sendobj[root]
            for r in range(self._size):
                if r != root:
                    self._ctx.send_object(self._world_ranks[r], ctx_id,
                                          tag, sendobj[r])
            return mine
        msg = self._ctx.recv_message(ctx_id, self._world_ranks[root], tag)
        return _loads(msg)

    @_traced_collective("linear-root")
    def gather(self, sendobj: Any, root: int = 0) -> Optional[List[Any]]:
        self._check_rank(root)
        ctx_id, tag = self._next_coll()
        if self._rank == root:
            out: List[Any] = [None] * self._size
            out[root] = sendobj
            for r in range(self._size):
                if r != root:
                    msg = self._ctx.recv_message(
                        ctx_id, self._world_ranks[r], tag)
                    out[r] = _loads(msg)
            return out
        self._ctx.send_object(self._world_ranks[root], ctx_id, tag, sendobj)
        return None

    @_traced_collective("ring")
    def allgather(self, sendobj: Any) -> List[Any]:
        """Ring allgather: p-1 steps, each forwarding one block."""
        ctx_id, tag = self._next_coll()
        p = self._size
        out: List[Any] = [None] * p
        out[self._rank] = sendobj
        if p == 1:
            return out
        right = self._world_ranks[(self._rank + 1) % p]
        left_rank = (self._rank - 1) % p
        left = self._world_ranks[left_rank]
        cur = sendobj
        cur_idx = self._rank
        for _step in range(p - 1):
            self._ctx.send_object(right, ctx_id, tag, (cur_idx, cur))
            msg = self._ctx.recv_message(ctx_id, left, tag)
            cur_idx, cur = _loads(msg)
            out[cur_idx] = cur
        return out

    @_traced_collective("pairwise-exchange")
    def alltoall(self, sendobjs: Sequence[Any]) -> List[Any]:
        """Pairwise-exchange alltoall."""
        if len(sendobjs) != self._size:
            raise ValueError("alltoall needs comm.size send objects")
        ctx_id, tag = self._next_coll()
        p = self._size
        out: List[Any] = [None] * p
        out[self._rank] = sendobjs[self._rank]
        for offset in range(1, p):
            dest = (self._rank + offset) % p
            src = (self._rank - offset) % p
            self._ctx.send_object(self._world_ranks[dest], ctx_id, tag,
                                  sendobjs[dest])
            msg = self._ctx.recv_message(ctx_id, self._world_ranks[src], tag)
            out[src] = _loads(msg)
        return out

    @_traced_collective("binomial-tree")
    def reduce(self, sendobj: Any, op: _ops.Op = _ops.SUM,
               root: int = 0, size_hint: Optional[int] = None,
               algorithm: Optional[str] = None) -> Any:
        """Size-adaptive reduction to *root*.

        Commutative ops default to the rotated binomial tree;
        non-commutative ops fold in strict rank order
        (``rank-ordered-tree``).  ndarray payloads delegate to the buffer
        machinery, where large vectors may take the ring variant.
        """
        self._check_rank(root)
        p = self._size
        if p == 1:
            self._note_algorithm("local")
            return sendobj
        if isinstance(sendobj, np.ndarray) and sendobj.dtype != object:
            arr = np.ascontiguousarray(sendobj)
            recvarr = np.empty(arr.shape, arr.dtype) \
                if self._rank == root else None
            self._reduce_buffer(arr, recvarr, op, root, algorithm)
            return recvarr
        nbytes = int(size_hint) if size_hint else _OBJECT_SIZE_GUESS
        algo = self._select("reduce", nbytes, None, op.commutative,
                            algorithm)
        if not op.commutative and algo in ("binomial-tree", "ring"):
            raise ValueError(
                f"reduce algorithm {algo!r} reorders operands; use "
                f"rank-ordered-tree or gather-fold for non-commutative ops")
        if algo == "ring":
            raise ValueError("ring reduce requires ndarray payloads")
        self._note_algorithm(algo)
        ctx_id, tag = self._next_coll()
        ws = self._world_ranks
        send, recv = self._obj_io(ctx_id, ws)
        i = self._rank
        if algo == "rank-ordered-tree":
            return self._reduce_ordered(tag, ws, i, root, sendobj, op,
                                        send, recv)
        if algo == "gather-fold":
            return self._reduce_gather_fold(tag, ws, i, root, sendobj, op,
                                            send, recv)
        return self._reduce_rotated(tag, ws, i, root, sendobj, op,
                                    send, recv)

    @_traced_collective("reduce+bcast")
    def allreduce(self, sendobj: Any, op: _ops.Op = _ops.SUM,
                  size_hint: Optional[int] = None,
                  algorithm: Optional[str] = None) -> Any:
        """Size-adaptive allreduce.

        ndarray payloads delegate to the buffer machinery (ring /
        Rabenseifner eligible); other objects pick between reduce+bcast,
        recursive doubling and the hierarchical variant.  *size_hint*
        (approximate serialized bytes, SPMD-consistent) steers selection
        for object payloads.
        """
        p = self._size
        if p == 1:
            self._note_algorithm("local")
            return sendobj
        if isinstance(sendobj, np.ndarray) and sendobj.dtype != object:
            arr = np.ascontiguousarray(sendobj)
            out = np.empty(arr.shape, arr.dtype)
            self._allreduce_buffer(arr, out, op, algorithm)
            return out
        nbytes = int(size_hint) if size_hint else _OBJECT_SIZE_GUESS
        algo = self._select("allreduce", nbytes, None, op.commutative,
                            algorithm)
        if algo in ("ring", "rabenseifner"):
            raise ValueError(
                f"allreduce algorithm {algo!r} requires ndarray payloads")
        groups = self._groups()
        if algo == "hierarchical":
            if groups is None:
                raise ValueError(
                    "hierarchical allreduce requires a topology declared "
                    "for this communicator size")
            if not op.commutative:
                raise ValueError("hierarchical allreduce requires a "
                                 "commutative op")
        self._note_algorithm(algo)
        if algo == "reduce+bcast":
            result = self.reduce(sendobj, op=op, root=0,
                                 size_hint=size_hint)
            return self.bcast(result, root=0, size_hint=size_hint)
        ctx_id, tag = self._next_coll()
        ws = self._world_ranks
        if algo == "hierarchical":
            return self._hier_allreduce(ctx_id, tag, groups, sendobj, op,
                                        lambda mws: self._obj_io(ctx_id,
                                                                 mws))
        send, recv = self._obj_io(ctx_id, ws)
        return self._allreduce_recdbl(tag, ws, self._rank, sendobj, op,
                                      send, recv)

    @_traced_collective("linear-chain")
    def scan(self, sendobj: Any, op: _ops.Op = _ops.SUM) -> Any:
        """Inclusive prefix reduction along rank order (linear chain)."""
        ctx_id, tag = self._next_coll()
        acc = sendobj
        if self._rank > 0:
            msg = self._ctx.recv_message(
                ctx_id, self._world_ranks[self._rank - 1], tag)
            acc = op(_loads(msg), sendobj)
        if self._rank + 1 < self._size:
            self._ctx.send_object(self._world_ranks[self._rank + 1],
                                  ctx_id, tag, acc)
        return acc

    @_traced_collective("linear-chain")
    def exscan(self, sendobj: Any, op: _ops.Op = _ops.SUM) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``."""
        ctx_id, tag = self._next_coll()
        prefix = None
        if self._rank > 0:
            msg = self._ctx.recv_message(
                ctx_id, self._world_ranks[self._rank - 1], tag)
            prefix = _loads(msg)
        if self._rank + 1 < self._size:
            acc = sendobj if prefix is None else op(prefix, sendobj)
            self._ctx.send_object(self._world_ranks[self._rank + 1],
                                  ctx_id, tag, acc)
        return prefix

    # ------------------------------------------------------------------
    # collectives: buffer path
    # ------------------------------------------------------------------
    @_traced_collective("binomial-tree")
    def Bcast(self, buf, root: int = 0,
              algorithm: Optional[str] = None) -> None:
        """Size-adaptive broadcast of a NumPy buffer."""
        self._check_rank(root)
        p = self._size
        if p == 1:
            self._note_algorithm("local")
            return
        flat, count, dt = decode_buffer_spec(buf)
        algo = self._select("bcast", count * dt.extent, count, True,
                            algorithm)
        groups = self._groups()
        if algo == "hierarchical" and groups is None:
            raise ValueError(
                "hierarchical Bcast requires a topology declared for "
                "this communicator size")
        self._note_algorithm(algo)
        ctx_id, tag = self._next_coll()
        ws = self._world_ranks
        if algo == "scatter-allgather":
            self._buf_bcast_scatter_allgather(ctx_id, tag, ws, self._rank,
                                              root, flat, count,
                                              dt.np_dtype)
            return

        def io_for(mws):
            return self._buf_io(ctx_id, mws, dt.np_dtype, count, "Bcast")

        if algo == "hierarchical":
            value = self._hier_bcast(ctx_id, tag, groups, root,
                                     flat[:count], io_for)
        else:
            send, recv = io_for(ws)
            value = self._bcast_tree(tag, ws, self._rank, root,
                                     flat[:count], send, recv)
        if self._rank != root:
            flat[:count] = value

    @_traced_collective("linear-root")
    def Scatter(self, sendbuf, recvbuf, root: int = 0) -> None:
        """Scatter equal contiguous blocks of *sendbuf* from the root."""
        self._check_rank(root)
        rflat, rcount, rdt = decode_buffer_spec(recvbuf)
        counts = [rcount] * self._size
        displs = [rcount * r for r in range(self._size)]
        self.Scatterv(sendbuf, counts, displs, recvbuf, root=root)

    @_traced_collective("linear-root")
    def Scatterv(self, sendbuf, counts, displs, recvbuf,
                 root: int = 0) -> None:
        self._check_rank(root)
        ctx_id, tag = self._next_coll()
        rflat, rcount, rdt = decode_buffer_spec(recvbuf)
        if self._rank == root:
            sflat, _scount, sdt = decode_buffer_spec(sendbuf)
            for r in range(self._size):
                block = sflat[displs[r]:displs[r] + counts[r]]
                if r == root:
                    rflat[:counts[r]] = block
                else:
                    self._ctx.send_buffer(self._world_ranks[r], ctx_id,
                                          tag, block)
        else:
            msg = self._ctx.recv_message(ctx_id, self._world_ranks[root], tag)
            incoming = np.asarray(msg.payload).view(rdt.np_dtype)
            if incoming.size > rcount:
                raise TruncationError("Scatterv recv buffer too small")
            rflat[:incoming.size] = incoming

    @_traced_collective("linear-root")
    def Gather(self, sendbuf, recvbuf, root: int = 0) -> None:
        sflat, scount, _sdt = decode_buffer_spec(sendbuf)
        counts = [scount] * self._size
        displs = [scount * r for r in range(self._size)]
        self.Gatherv(sendbuf, recvbuf, counts, displs, root=root)

    @_traced_collective("linear-root")
    def Gatherv(self, sendbuf, recvbuf, counts, displs,
                root: int = 0) -> None:
        self._check_rank(root)
        ctx_id, tag = self._next_coll()
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        if self._rank == root:
            rflat, _rcount, rdt = decode_buffer_spec(recvbuf)
            rflat[displs[root]:displs[root] + scount] = sflat[:scount]
            for r in range(self._size):
                if r == root:
                    continue
                msg = self._ctx.recv_message(ctx_id, self._world_ranks[r],
                                             tag)
                incoming = np.asarray(msg.payload).view(rdt.np_dtype)
                if incoming.size > counts[r]:
                    raise TruncationError("Gatherv recv slot too small")
                rflat[displs[r]:displs[r] + incoming.size] = incoming
        else:
            self._ctx.send_buffer(self._world_ranks[root], ctx_id, tag,
                                  sflat[:scount])

    @_traced_collective("ring")
    def Allgather(self, sendbuf, recvbuf) -> None:
        sflat, scount, _dt = decode_buffer_spec(sendbuf)
        counts = [scount] * self._size
        displs = [scount * r for r in range(self._size)]
        self.Allgatherv(sendbuf, recvbuf, counts, displs)

    @_traced_collective("ring")
    def Allgatherv(self, sendbuf, recvbuf, counts, displs) -> None:
        """Ring allgather over buffers."""
        ctx_id, tag = self._next_coll()
        p = self._size
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        rflat, _rcount, rdt = decode_buffer_spec(recvbuf)
        me = self._rank
        rflat[displs[me]:displs[me] + scount] = sflat[:scount].view(rdt.np_dtype)
        if p == 1:
            return
        right = self._world_ranks[(me + 1) % p]
        left = self._world_ranks[(me - 1) % p]
        cur_idx = me
        for _step in range(p - 1):
            block = rflat[displs[cur_idx]:displs[cur_idx] + counts[cur_idx]]
            # prepend the block index as a tiny header via object send would
            # lose the buffer path; instead derive the index from ring math.
            self._ctx.send_buffer(right, ctx_id, tag, block)
            msg = self._ctx.recv_message(ctx_id, left, tag)
            cur_idx = (cur_idx - 1) % p
            incoming = np.asarray(msg.payload).view(rdt.np_dtype)
            if incoming.size != counts[cur_idx]:
                raise TruncationError(
                    f"Allgatherv expected {counts[cur_idx]} elements for "
                    f"block {cur_idx}, received {incoming.size}: payload "
                    f"truncated or oversized in flight")
            rflat[displs[cur_idx]:displs[cur_idx] + counts[cur_idx]] = incoming

    @_traced_collective("pairwise-exchange")
    def Alltoall(self, sendbuf, recvbuf) -> None:
        ctx_id, tag = self._next_coll()
        p = self._size
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        rflat, rcount, rdt = decode_buffer_spec(recvbuf)
        if scount % p or rcount % p:
            raise ValueError("Alltoall buffers must divide evenly by size")
        sblk = scount // p
        rblk = rcount // p
        rflat[self._rank * rblk:(self._rank + 1) * rblk] = \
            sflat[self._rank * sblk:(self._rank + 1) * sblk].view(rdt.np_dtype)
        for offset in range(1, p):
            dest = (self._rank + offset) % p
            src = (self._rank - offset) % p
            self._ctx.send_buffer(self._world_ranks[dest], ctx_id, tag,
                                  sflat[dest * sblk:(dest + 1) * sblk])
            msg = self._ctx.recv_message(ctx_id, self._world_ranks[src], tag)
            incoming = np.asarray(msg.payload).view(rdt.np_dtype)
            if incoming.size != rblk:
                raise TruncationError(
                    f"Alltoall expected {rblk} elements from rank {src}, "
                    f"received {incoming.size}: payload truncated or "
                    f"oversized in flight")
            rflat[src * rblk:(src + 1) * rblk] = incoming

    def _reduce_buffer(self, sendbuf, recvbuf, op, root, algorithm) -> None:
        """Shared engine behind :meth:`Reduce` and ndarray :meth:`reduce`."""
        p = self._size
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        acc = sflat[:scount].astype(sdt.np_dtype, copy=True)
        if p == 1:
            self._note_algorithm("local")
            if recvbuf is not None:
                rflat, _rc, rdt = decode_buffer_spec(recvbuf)
                rflat[:acc.size] = acc.view(rdt.np_dtype)
            return
        algo = self._select("reduce", acc.nbytes, scount, op.commutative,
                            algorithm)
        if not op.commutative and algo in ("binomial-tree", "ring"):
            raise ValueError(
                f"Reduce algorithm {algo!r} reorders operands; use "
                f"rank-ordered-tree or gather-fold for non-commutative ops")
        self._note_algorithm(algo)
        ctx_id, tag = self._next_coll()
        ws = self._world_ranks
        i = self._rank
        if algo == "ring":
            result = self._buf_reduce_ring(ctx_id, tag, ws, i, root, acc,
                                           op)
        else:
            send, recv = self._buf_io(ctx_id, ws, sdt.np_dtype, scount,
                                      "Reduce")
            if algo == "rank-ordered-tree":
                result = self._reduce_ordered(tag, ws, i, root, acc,
                                              op.np_func, send, recv)
            elif algo == "gather-fold":
                result = self._reduce_gather_fold(tag, ws, i, root, acc,
                                                  op.np_func, send, recv)
            else:
                result = self._reduce_rotated(tag, ws, i, root, acc,
                                              op.np_func, send, recv)
        if i == root and recvbuf is not None and result is not None:
            rflat, _rc, rdt = decode_buffer_spec(recvbuf)
            rflat[:scount] = np.asarray(result).view(rdt.np_dtype)[:scount]

    @_traced_collective("binomial-tree")
    def Reduce(self, sendbuf, recvbuf, op: _ops.Op = _ops.SUM,
               root: int = 0, algorithm: Optional[str] = None) -> None:
        """Size-adaptive reduction of a NumPy buffer to *root*."""
        self._check_rank(root)
        self._reduce_buffer(sendbuf, recvbuf, op, root, algorithm)

    def _allreduce_buffer(self, sendbuf, recvbuf, op, algorithm) -> None:
        """Shared engine behind :meth:`Allreduce` and ndarray
        :meth:`allreduce`."""
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        rflat, _rcount, rdt = decode_buffer_spec(recvbuf)
        acc = sflat[:scount].astype(sdt.np_dtype, copy=True)
        p = self._size
        if p == 1:
            self._note_algorithm("local")
            rflat[:scount] = acc.view(rdt.np_dtype)
            return
        algo = self._select("allreduce", acc.nbytes, scount,
                            op.commutative, algorithm)
        if not op.commutative and algo in ("ring", "rabenseifner"):
            raise ValueError(
                f"Allreduce algorithm {algo!r} reorders operands; "
                f"non-commutative ops need reduce+bcast or "
                f"recursive-doubling")
        groups = None
        if algo == "hierarchical":
            groups = self._groups()
            if groups is None:
                raise ValueError(
                    "hierarchical Allreduce requires a topology declared "
                    "for this communicator size")
            if not op.commutative:
                raise ValueError("hierarchical Allreduce requires a "
                                 "commutative op")
        self._note_algorithm(algo)
        if algo == "reduce+bcast":
            self.Reduce(sendbuf, recvbuf, op=op, root=0)
            self.Bcast(recvbuf, root=0)
            return
        ctx_id, tag = self._next_coll()
        ws = self._world_ranks
        i = self._rank
        if algo == "ring":
            result = self._buf_allreduce_ring(ctx_id, tag, ws, i, acc, op)
        elif algo == "rabenseifner":
            result = self._buf_allreduce_rabenseifner(ctx_id, tag, ws, i,
                                                      acc, op)
        elif algo == "hierarchical":
            result = self._hier_allreduce(
                ctx_id, tag, groups, acc, op.np_func,
                lambda mws: self._buf_io(ctx_id, mws, sdt.np_dtype,
                                         scount, "Allreduce"))
        else:
            send, recv = self._buf_io(ctx_id, ws, sdt.np_dtype, scount,
                                      "Allreduce")
            result = self._allreduce_recdbl(tag, ws, i, acc, op.np_func,
                                            send, recv)
        rflat[:scount] = np.asarray(result).view(rdt.np_dtype)[:scount]

    @_traced_collective("reduce+bcast")
    def Allreduce(self, sendbuf, recvbuf, op: _ops.Op = _ops.SUM,
                  algorithm: Optional[str] = None) -> None:
        """Size-adaptive allreduce of a NumPy buffer."""
        self._allreduce_buffer(sendbuf, recvbuf, op, algorithm)

    @_traced_collective("alltoall+fold")
    def reduce_scatter(self, sendobjs: Sequence[Any],
                       op: _ops.Op = _ops.SUM) -> Any:
        """Reduce comm.size contributions elementwise, scatter the results:
        rank r receives the reduction of everyone's sendobjs[r]."""
        if len(sendobjs) != self._size:
            raise ValueError("reduce_scatter needs comm.size send objects")
        shuffled = self.alltoall(list(sendobjs))
        acc = shuffled[0]
        for part in shuffled[1:]:
            acc = op(acc, part)
        return acc

    @_traced_collective("linear-chain")
    def Scan(self, sendbuf, recvbuf, op: _ops.Op = _ops.SUM) -> None:
        """Inclusive prefix reduction over buffers (linear chain)."""
        ctx_id, tag = self._next_coll()
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        acc = sflat[:scount].astype(sdt.np_dtype, copy=True)
        if self._rank > 0:
            msg = self._ctx.recv_message(
                ctx_id, self._world_ranks[self._rank - 1], tag)
            incoming = np.asarray(msg.payload).view(sdt.np_dtype)
            if incoming.size != acc.size:
                raise TruncationError(
                    f"Scan expected {acc.size} elements, received "
                    f"{incoming.size}: payload truncated in flight")
            acc = op.np_func(incoming, acc)
        if self._rank + 1 < self._size:
            self._ctx.send_buffer(self._world_ranks[self._rank + 1],
                                  ctx_id, tag, acc)
        rflat, _rc, rdt = decode_buffer_spec(recvbuf)
        rflat[:acc.size] = acc.view(rdt.np_dtype)

    @_traced_collective("linear-chain")
    def Exscan(self, sendbuf, recvbuf, op: _ops.Op = _ops.SUM) -> None:
        """Exclusive prefix reduction over buffers; rank 0's recvbuf is
        left untouched (MPI leaves it undefined)."""
        ctx_id, tag = self._next_coll()
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        prefix = None
        if self._rank > 0:
            msg = self._ctx.recv_message(
                ctx_id, self._world_ranks[self._rank - 1], tag)
            prefix = np.asarray(msg.payload).view(sdt.np_dtype).copy()
            if prefix.size != scount:
                raise TruncationError(
                    f"Exscan expected {scount} elements, received "
                    f"{prefix.size}: payload truncated in flight")
        if self._rank + 1 < self._size:
            acc = sflat[:scount].astype(sdt.np_dtype, copy=True) \
                if prefix is None else op.np_func(prefix, sflat[:scount])
            self._ctx.send_buffer(self._world_ranks[self._rank + 1],
                                  ctx_id, tag, np.asarray(acc))
        if prefix is not None:
            rflat, _rc, rdt = decode_buffer_spec(recvbuf)
            rflat[:prefix.size] = prefix.view(rdt.np_dtype)

    # ------------------------------------------------------------------
    # communicator construction
    # ------------------------------------------------------------------
    def dup(self) -> "Intracomm":
        """Duplicate: same group, isolated context."""
        seq = self._child_seq
        self._child_seq += 1
        return Intracomm(self._ctx, self._world_ranks,
                         ctx_id=(self._ctx_id, "dup", seq))

    Dup = dup

    def split(self, color: int, key: int = 0) -> Optional["Intracomm"]:
        """Partition the communicator by *color*, ordering ranks by *key*.

        Returns ``None`` on ranks passing a negative color (MPI_UNDEFINED).
        """
        seq = self._child_seq
        self._child_seq += 1
        triples = self.allgather((color, key, self._rank))
        if color < 0:
            return None
        members = sorted(
            (k, r) for (c, k, r) in triples if c == color)
        ranks = [self._world_ranks[r] for (_k, r) in members]
        return Intracomm(self._ctx, ranks,
                         ctx_id=(self._ctx_id, "split", seq, color))

    Split = split

    def Create(self, group: Group) -> Optional["Intracomm"]:
        """Communicator over a subgroup (collective over the parent)."""
        seq = self._child_seq
        self._child_seq += 1
        self.barrier()
        if group.rank_of(self._ctx.rank) < 0:
            return None
        return Intracomm(self._ctx, group.world_ranks(),
                         ctx_id=(self._ctx_id, "create", seq))

    def Free(self) -> None:
        """No-op: contexts are garbage collected."""

    # ------------------------------------------------------------------
    # ULFM fault tolerance: revoke / agree / shrink
    # ------------------------------------------------------------------
    def revoke(self) -> None:
        """Revoke this communicator (ULFM ``MPI_Comm_revoke``).

        Non-collective: any single member may call it.  All members'
        in-flight and future operations on this communicator raise
        :class:`CommRevokedError` (blocked waiters wake within the 0.25 s
        detection period).  Derived communicators are not revoked.
        Idempotent.
        """
        self._ctx.world.revoke_ctx(self._ctx_id)
        if _TR.enabled:
            _TR.instant("mpi.coll", "revoke", rank=self._ctx.rank)
        if _MX.enabled:
            _MX.inc("mpi.coll.calls", op="revoke", algorithm="revoke")

    def agree(self, value: Any = 1, combine=None) -> Any:
        """Fault-tolerant agreement (ULFM ``MPI_Comm_agree``).

        Returns ``combine`` over the contributions of every member that
        has not failed -- identically on all survivors, even if members
        die mid-agreement.  The default *combine* is the bitwise AND of
        integer contributions, matching the MPI standard's operator.
        Works on revoked communicators (it is the one collective that
        must, since recovery is negotiated after a revoke).
        """
        seq = self._agree_seq
        self._agree_seq += 1
        if combine is None:
            def combine(values):
                out = ~0
                for v in values:
                    out &= int(v)
                return out
        return self._ctx.world.agreement(
            (self._ctx_id, "agree", seq), self._ctx.rank, value,
            self._world_ranks, combine)

    def shrink(self) -> "Intracomm":
        """New communicator over the surviving members, densely re-ranked
        in parent rank order (ULFM ``MPI_Comm_shrink``).

        Members first agree on the union of their failed-rank views, so
        every survivor constructs the same group.  Works on revoked
        communicators.  A member that dies *after* contributing to the
        agreement may still appear in the shrunk group; the next
        operation on it raises :class:`RankFailure` and the caller can
        shrink again.
        """
        seq = self._agree_seq
        self._agree_seq += 1
        world = self._ctx.world
        failed = world.agreement(
            (self._ctx_id, "shrink", seq), self._ctx.rank,
            frozenset(world.failed_ranks()), self._world_ranks,
            lambda views: frozenset().union(*views))
        survivors = [wr for wr in self._world_ranks if wr not in failed]
        if _TR.enabled:
            _TR.instant("mpi.coll", "shrink", rank=self._ctx.rank,
                        survivors=len(survivors), failed=len(failed))
        if _MX.enabled:
            _MX.inc("mpi.coll.calls", op="shrink", algorithm="shrink")
        return Intracomm(self._ctx, survivors,
                         ctx_id=(self._ctx_id, "shrink", seq))

    def Abort(self, errorcode: int = 1) -> None:
        self._ctx.world.abort(self._ctx.rank,
                              RuntimeError(f"MPI_Abort({errorcode})"))
        self._ctx.world.check_abort()
