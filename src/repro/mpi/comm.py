"""Communicators: point-to-point and collective operations.

The interface follows mpi4py's conventions (see the tutorial the substrate
guides reference): lowercase methods communicate arbitrary picklable Python
objects; uppercase methods communicate NumPy buffers with near-zero
interpretation overhead.  Collectives are implemented *on top of* the
point-to-point layer with the classic algorithms (binomial trees, rings,
pairwise exchange, dissemination barrier) so that message counters reflect
genuine algorithmic traffic rather than magic shared-memory shortcuts.
"""

from __future__ import annotations

import math
import pickle
from typing import Any, List, Optional, Sequence

import numpy as np

from ..chaos.core import ENGINE as _CH
from ..metrics import REGISTRY as _MX
from ..trace import TRACER as _TR
from . import ops as _ops
from .datatypes import decode_buffer_spec
from .errors import (CommRevokedError, RankError, RankFailure, TagError,
                     TruncationError)
from .request import RecvRequest, SendRequest
from .runtime import RankContext, _NOT_FAILED
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = ["Group", "Intracomm"]


def _loads(msg):
    """Decode a received message, surfacing corruption as a typed error.

    ``pickle5`` messages carry their ndarray data as out-of-band frames;
    unpickling reconstructs arrays as *read-only views* of the frames (the
    sender's single isolation copy) -- zero additional copies on the
    receive side.  A payload truncated in flight (chaos injection, or any
    future real transport) fails to decode with an arbitrary
    ``UnpicklingError`` / ``EOFError`` / ``ValueError``; callers must
    instead see the substrate's own :class:`TruncationError` so tests and
    solvers can handle it.
    """
    try:
        if msg.kind == "pickle5":
            blob, frames = msg.payload
            return pickle.loads(blob, buffers=frames)
        return pickle.loads(msg.payload)
    except Exception as exc:
        raise TruncationError(
            f"received message payload failed to decode ({exc!r}); "
            f"payload was truncated or corrupted in flight") from exc


def _traced_collective(algorithm: str):
    """Wrap a collective so each call records one span tagged with the
    algorithm it implements, and (when metrics are on) counts calls and
    this rank's sent bytes per algorithm.  Disabled cost: two predicates
    (plus the wrapper call frame) per invocation -- negligible next to
    pickling and condition-variable waits."""
    def deco(fn):
        name = fn.__name__

        def wrapper(self, *args, **kwargs):
            if _CH.enabled:
                _CH.on_op("coll", self._ctx.rank)
            # entry guard: a collective over a revoked comm or a dead
            # member can never complete -- fail typed and immediately
            # rather than blocking until some recv inside the algorithm
            # happens to involve the dead rank (a root's bcast, for
            # instance, never receives at all)
            self._check_usable(name)
            tr, mx = _TR.enabled, _MX.enabled
            if not (tr or mx):
                return fn(self, *args, **kwargs)
            if mx:
                # plain attribute read: exactness not worth a lock here
                b0 = self._ctx.world.counters[self._ctx.rank].bytes_sent
            t0 = _TR.now() if tr else 0.0
            out = fn(self, *args, **kwargs)
            if tr:
                _TR.complete("mpi.coll", name, t0, rank=self._ctx.rank,
                             algorithm=algorithm, size=self._size)
            if mx:
                sent = (self._ctx.world.counters[self._ctx.rank].bytes_sent
                        - b0)
                _MX.inc("mpi.coll.calls", op=name, algorithm=algorithm)
                if sent > 0:
                    _MX.inc("mpi.coll.bytes_sent", sent, op=name,
                            algorithm=algorithm)
            return out

        wrapper.__name__ = name
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        return wrapper
    return deco


class Group:
    """An ordered set of world ranks; the process-group abstraction."""

    def __init__(self, world_ranks: Sequence[int]):
        self._ranks = list(world_ranks)

    @property
    def size(self) -> int:
        return len(self._ranks)

    def rank_of(self, world_rank: int) -> int:
        """Group rank of a world rank (-1 if absent)."""
        try:
            return self._ranks.index(world_rank)
        except ValueError:
            return -1

    def Incl(self, ranks: Sequence[int]) -> "Group":
        """Subgroup containing the given *group* ranks, in that order."""
        return Group([self._ranks[r] for r in ranks])

    def Excl(self, ranks: Sequence[int]) -> "Group":
        excl = set(ranks)
        return Group([wr for i, wr in enumerate(self._ranks) if i not in excl])

    def world_ranks(self) -> List[int]:
        return list(self._ranks)


class Intracomm:
    """A communicator over an ordered list of world ranks.

    Each rank holds its own instance; instances on different ranks that
    were created by the same (SPMD-ordered) sequence of calls share a
    context id, which is what isolates their message traffic.
    """

    def __init__(self, ctx: RankContext, world_ranks: Sequence[int],
                 ctx_id: Any = ("world",)):
        self._ctx = ctx
        self._world_ranks = list(world_ranks)
        # world rank -> comm rank, built once: message-source translation
        # must not pay an O(size) list scan per received message
        self._rank_of_world = {wr: r for r, wr
                               in enumerate(self._world_ranks)}
        self._ctx_id = ctx_id
        self._rank = self._rank_of_world[ctx.rank]
        self._size = len(self._world_ranks)
        self._coll_seq = 0   # per-collective tag stream; SPMD-consistent
        self._child_seq = 0  # id stream for derived communicators
        self._agree_seq = 0  # agreement rendezvous stream; SPMD-consistent

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._size

    @property
    def group(self) -> Group:
        return Group(self._world_ranks)

    @property
    def context(self) -> RankContext:
        return self._ctx

    def world_rank(self, rank: int) -> int:
        """Translate a comm rank to its world rank."""
        return self._world_ranks[rank]

    def counters(self):
        """This rank's live traffic counters (world-wide, not per-comm)."""
        return self._ctx.world.counters[self._ctx.rank]

    def traffic_snapshot(self):
        return self.counters().snapshot()

    def __repr__(self):
        return (f"Intracomm(rank={self._rank}/{self._size}, "
                f"ctx={self._ctx_id!r})")

    # ------------------------------------------------------------------
    # argument checking helpers
    # ------------------------------------------------------------------
    def _check_rank(self, rank: int, allow_any: bool = False) -> None:
        if allow_any and rank == ANY_SOURCE:
            return
        if not 0 <= rank < self._size:
            raise RankError(f"rank {rank} out of range for size {self._size}")

    @staticmethod
    def _check_tag(tag: int, allow_any: bool = False) -> None:
        if allow_any and tag == ANY_TAG:
            return
        if tag < 0:
            raise TagError(f"tag must be >= 0, got {tag}")

    def _check_usable(self, opname: str) -> None:
        """Raise the typed fault if this comm is revoked or has a dead
        member.  O(size) only once a failure exists; two attribute reads
        otherwise."""
        world = self._ctx.world
        if world._revoked and world.is_revoked(self._ctx_id):
            raise CommRevokedError(
                f"{opname} on revoked communicator ctx={self._ctx_id!r}")
        if world.has_failures:
            for wr in self._world_ranks:
                cause = world.failure_cause(wr)
                if cause is not _NOT_FAILED:
                    raise RankFailure(wr, f"{opname} (world rank {wr} is "
                                      f"a member of ctx={self._ctx_id!r})",
                                      cause)

    def _p2p_ctx(self):
        world = self._ctx.world
        if world._revoked and world.is_revoked(self._ctx_id):
            raise CommRevokedError(
                f"point-to-point op on revoked communicator "
                f"ctx={self._ctx_id!r}")
        return (self._ctx_id, "p")

    def _next_coll(self):
        tag = self._coll_seq
        self._coll_seq += 1
        return (self._ctx_id, "c"), tag

    # ------------------------------------------------------------------
    # point-to-point: Python objects (pickle path)
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest)
        self._check_tag(tag)
        self._ctx.send_object(self._world_ranks[dest], self._p2p_ctx(),
                              tag, obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Optional[Status] = None) -> Any:
        self._check_rank(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._world_ranks[source])
        msg = self._ctx.recv_message(self._p2p_ctx(), src_world, tag,
                                     members=self._world_ranks)
        if status is not None:
            status.source = self._rank_of_world[msg.src]
            status.tag = msg.tag
            status.count_bytes = msg.nbytes
        return _loads(msg)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> SendRequest:
        self.send(obj, dest, tag)
        return SendRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        self._check_rank(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._world_ranks[source])

        def complete(status):
            msg = self._ctx.recv_message(self._p2p_ctx(), src_world, tag,
                                         members=self._world_ranks)
            if status is not None:
                status.source = self._rank_of_world[msg.src]
                status.tag = msg.tag
                status.count_bytes = msg.nbytes
            return _loads(msg)

        def poll(status):
            msg = self._ctx.poll_message(self._p2p_ctx(), src_world, tag,
                                         remove=True)
            if msg is None:
                return False, None
            if status is not None:
                status.source = self._rank_of_world[msg.src]
                status.tag = msg.tag
                status.count_bytes = msg.nbytes
            return True, _loads(msg)

        return RecvRequest(complete, poll)

    def sendrecv(self, sendobj: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE, recvtag: int = ANY_TAG) -> Any:
        # Eager buffered sends cannot deadlock, so send-then-recv is safe.
        self.send(sendobj, dest, sendtag)
        return self.recv(source, recvtag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              status: Optional[Status] = None) -> Status:
        """Block until a matching message is available (without receiving)."""
        self._check_rank(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._world_ranks[source])
        mb = self._ctx.world.mailboxes[self._ctx.rank]
        msg = mb.retrieve(self._p2p_ctx(), src_world, tag,
                          self._ctx.world.timeout, remove=False,
                          members=self._world_ranks)
        st = status if status is not None else Status()
        st.source = self._rank_of_world[msg.src]
        st.tag = msg.tag
        st.count_bytes = msg.nbytes
        return st

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               status: Optional[Status] = None) -> bool:
        self._check_rank(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._world_ranks[source])
        msg = self._ctx.poll_message(self._p2p_ctx(), src_world, tag,
                                     remove=False)
        if msg is None:
            return False
        if status is not None:
            status.source = self._rank_of_world[msg.src]
            status.tag = msg.tag
            status.count_bytes = msg.nbytes
        return True

    # ------------------------------------------------------------------
    # point-to-point: NumPy buffers (fast path)
    # ------------------------------------------------------------------
    def Send(self, buf, dest: int, tag: int = 0) -> None:
        self._check_rank(dest)
        self._check_tag(tag)
        flat, _count, _dt = decode_buffer_spec(buf)
        self._ctx.send_buffer(self._world_ranks[dest], self._p2p_ctx(),
                              tag, flat)

    def Recv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Optional[Status] = None) -> None:
        self._check_rank(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        flat, count, dt = decode_buffer_spec(buf)
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._world_ranks[source])
        msg = self._ctx.recv_message(self._p2p_ctx(), src_world, tag,
                                     members=self._world_ranks)
        incoming = np.asarray(msg.payload)
        if incoming.nbytes > flat.nbytes:
            raise TruncationError(
                f"message of {incoming.nbytes} bytes does not fit receive "
                f"buffer of {flat.nbytes} bytes")
        n = incoming.nbytes // dt.extent
        flat[:n] = incoming.view(dt.np_dtype)[:n]
        if status is not None:
            status.source = self._rank_of_world[msg.src]
            status.tag = msg.tag
            status.count_bytes = msg.nbytes

    def Isend(self, buf, dest: int, tag: int = 0) -> SendRequest:
        self.Send(buf, dest, tag)
        return SendRequest()

    def Irecv(self, buf, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> RecvRequest:
        def complete(status):
            self.Recv(buf, source, tag, status)
            return None

        def poll(status):
            self._check_rank(source, allow_any=True)
            src_world = (ANY_SOURCE if source == ANY_SOURCE
                         else self._world_ranks[source])
            if self._ctx.poll_message(self._p2p_ctx(), src_world, tag,
                                      remove=False) is None:
                return False, None
            self.Recv(buf, source, tag, status)
            return True, None

        return RecvRequest(complete, poll)

    def Sendrecv(self, sendbuf, dest: int, sendtag: int = 0,
                 recvbuf=None, source: int = ANY_SOURCE,
                 recvtag: int = ANY_TAG,
                 status: Optional[Status] = None) -> None:
        self.Send(sendbuf, dest, sendtag)
        self.Recv(recvbuf, source, recvtag, status)

    # ------------------------------------------------------------------
    # collectives: object (pickle) path
    # ------------------------------------------------------------------
    @_traced_collective("dissemination")
    def barrier(self) -> None:
        """Dissemination barrier: ceil(log2 p) rounds of pairwise signals."""
        ctx_id, tag = self._next_coll()
        p = self._size
        if p == 1:
            return
        rounds = max(1, math.ceil(math.log2(p)))
        me = self._rank
        for k in range(rounds):
            dist = 1 << k
            dest = (me + dist) % p
            src = (me - dist) % p
            self._ctx.send_object(self._world_ranks[dest], ctx_id,
                                  tag * rounds + k, None)
            self._ctx.recv_message(ctx_id, self._world_ranks[src],
                                   tag * rounds + k)

    Barrier = barrier

    @_traced_collective("binomial-tree")
    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Binomial-tree broadcast of a Python object."""
        self._check_rank(root)
        ctx_id, tag = self._next_coll()
        p = self._size
        if p == 1:
            return obj
        # Rotate ranks so the root is virtual rank 0.
        vrank = (self._rank - root) % p
        if vrank != 0:
            src = (((vrank - 1) // 2) + root) % p  # parent in binary tree
            msg = self._ctx.recv_message(ctx_id, self._world_ranks[src], tag)
            obj = _loads(msg)
        for child in (2 * vrank + 1, 2 * vrank + 2):
            if child < p:
                dest = (child + root) % p
                self._ctx.send_object(self._world_ranks[dest], ctx_id,
                                      tag, obj)
        return obj

    @_traced_collective("linear-root")
    def scatter(self, sendobj: Optional[Sequence] = None,
                root: int = 0) -> Any:
        self._check_rank(root)
        ctx_id, tag = self._next_coll()
        if self._rank == root:
            if sendobj is None or len(sendobj) != self._size:
                raise ValueError("root must supply a sequence of comm.size "
                                 "elements to scatter")
            mine = sendobj[root]
            for r in range(self._size):
                if r != root:
                    self._ctx.send_object(self._world_ranks[r], ctx_id,
                                          tag, sendobj[r])
            return mine
        msg = self._ctx.recv_message(ctx_id, self._world_ranks[root], tag)
        return _loads(msg)

    @_traced_collective("linear-root")
    def gather(self, sendobj: Any, root: int = 0) -> Optional[List[Any]]:
        self._check_rank(root)
        ctx_id, tag = self._next_coll()
        if self._rank == root:
            out: List[Any] = [None] * self._size
            out[root] = sendobj
            for r in range(self._size):
                if r != root:
                    msg = self._ctx.recv_message(
                        ctx_id, self._world_ranks[r], tag)
                    out[r] = _loads(msg)
            return out
        self._ctx.send_object(self._world_ranks[root], ctx_id, tag, sendobj)
        return None

    @_traced_collective("ring")
    def allgather(self, sendobj: Any) -> List[Any]:
        """Ring allgather: p-1 steps, each forwarding one block."""
        ctx_id, tag = self._next_coll()
        p = self._size
        out: List[Any] = [None] * p
        out[self._rank] = sendobj
        if p == 1:
            return out
        right = self._world_ranks[(self._rank + 1) % p]
        left_rank = (self._rank - 1) % p
        left = self._world_ranks[left_rank]
        cur = sendobj
        cur_idx = self._rank
        for _step in range(p - 1):
            self._ctx.send_object(right, ctx_id, tag, (cur_idx, cur))
            msg = self._ctx.recv_message(ctx_id, left, tag)
            cur_idx, cur = _loads(msg)
            out[cur_idx] = cur
        return out

    @_traced_collective("pairwise-exchange")
    def alltoall(self, sendobjs: Sequence[Any]) -> List[Any]:
        """Pairwise-exchange alltoall."""
        if len(sendobjs) != self._size:
            raise ValueError("alltoall needs comm.size send objects")
        ctx_id, tag = self._next_coll()
        p = self._size
        out: List[Any] = [None] * p
        out[self._rank] = sendobjs[self._rank]
        for offset in range(1, p):
            dest = (self._rank + offset) % p
            src = (self._rank - offset) % p
            self._ctx.send_object(self._world_ranks[dest], ctx_id, tag,
                                  sendobjs[dest])
            msg = self._ctx.recv_message(ctx_id, self._world_ranks[src], tag)
            out[src] = _loads(msg)
        return out

    @_traced_collective("binomial-tree")
    def reduce(self, sendobj: Any, op: _ops.Op = _ops.SUM,
               root: int = 0) -> Any:
        """Binomial-tree reduction (rank-ordered fold if non-commutative)."""
        self._check_rank(root)
        if not op.commutative:
            parts = self.gather(sendobj, root=root)
            if self._rank != root:
                return None
            acc = parts[0]
            for part in parts[1:]:
                acc = op(acc, part)
            return acc
        ctx_id, tag = self._next_coll()
        p = self._size
        vrank = (self._rank - root) % p
        acc = sendobj
        mask = 1
        while mask < p:
            if vrank & mask:
                dest = ((vrank & ~mask) + root) % p
                self._ctx.send_object(self._world_ranks[dest], ctx_id,
                                      tag, acc)
                return None
            partner = vrank | mask
            if partner < p:
                src = (partner + root) % p
                msg = self._ctx.recv_message(ctx_id, self._world_ranks[src],
                                             tag)
                acc = op(acc, _loads(msg))
            mask <<= 1
        return acc if self._rank == root else None

    @_traced_collective("reduce+bcast")
    def allreduce(self, sendobj: Any, op: _ops.Op = _ops.SUM) -> Any:
        result = self.reduce(sendobj, op=op, root=0)
        return self.bcast(result, root=0)

    @_traced_collective("linear-chain")
    def scan(self, sendobj: Any, op: _ops.Op = _ops.SUM) -> Any:
        """Inclusive prefix reduction along rank order (linear chain)."""
        ctx_id, tag = self._next_coll()
        acc = sendobj
        if self._rank > 0:
            msg = self._ctx.recv_message(
                ctx_id, self._world_ranks[self._rank - 1], tag)
            acc = op(_loads(msg), sendobj)
        if self._rank + 1 < self._size:
            self._ctx.send_object(self._world_ranks[self._rank + 1],
                                  ctx_id, tag, acc)
        return acc

    @_traced_collective("linear-chain")
    def exscan(self, sendobj: Any, op: _ops.Op = _ops.SUM) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``."""
        ctx_id, tag = self._next_coll()
        prefix = None
        if self._rank > 0:
            msg = self._ctx.recv_message(
                ctx_id, self._world_ranks[self._rank - 1], tag)
            prefix = _loads(msg)
        if self._rank + 1 < self._size:
            acc = sendobj if prefix is None else op(prefix, sendobj)
            self._ctx.send_object(self._world_ranks[self._rank + 1],
                                  ctx_id, tag, acc)
        return prefix

    # ------------------------------------------------------------------
    # collectives: buffer path
    # ------------------------------------------------------------------
    @_traced_collective("binomial-tree")
    def Bcast(self, buf, root: int = 0) -> None:
        self._check_rank(root)
        ctx_id, tag = self._next_coll()
        p = self._size
        if p == 1:
            return
        flat, count, dt = decode_buffer_spec(buf)
        vrank = (self._rank - root) % p
        if vrank != 0:
            src = (((vrank - 1) // 2) + root) % p
            msg = self._ctx.recv_message(ctx_id, self._world_ranks[src], tag)
            incoming = np.asarray(msg.payload).view(dt.np_dtype)
            if incoming.size < count:
                raise TruncationError(
                    f"Bcast expected {count} elements, received "
                    f"{incoming.size}: payload truncated in flight")
            flat[:count] = incoming[:count]
        for child in (2 * vrank + 1, 2 * vrank + 2):
            if child < p:
                dest = (child + root) % p
                self._ctx.send_buffer(self._world_ranks[dest], ctx_id, tag,
                                      flat[:count])

    @_traced_collective("linear-root")
    def Scatter(self, sendbuf, recvbuf, root: int = 0) -> None:
        """Scatter equal contiguous blocks of *sendbuf* from the root."""
        self._check_rank(root)
        rflat, rcount, rdt = decode_buffer_spec(recvbuf)
        counts = [rcount] * self._size
        displs = [rcount * r for r in range(self._size)]
        self.Scatterv(sendbuf, counts, displs, recvbuf, root=root)

    @_traced_collective("linear-root")
    def Scatterv(self, sendbuf, counts, displs, recvbuf,
                 root: int = 0) -> None:
        self._check_rank(root)
        ctx_id, tag = self._next_coll()
        rflat, rcount, rdt = decode_buffer_spec(recvbuf)
        if self._rank == root:
            sflat, _scount, sdt = decode_buffer_spec(sendbuf)
            for r in range(self._size):
                block = sflat[displs[r]:displs[r] + counts[r]]
                if r == root:
                    rflat[:counts[r]] = block
                else:
                    self._ctx.send_buffer(self._world_ranks[r], ctx_id,
                                          tag, block)
        else:
            msg = self._ctx.recv_message(ctx_id, self._world_ranks[root], tag)
            incoming = np.asarray(msg.payload).view(rdt.np_dtype)
            if incoming.size > rcount:
                raise TruncationError("Scatterv recv buffer too small")
            rflat[:incoming.size] = incoming

    @_traced_collective("linear-root")
    def Gather(self, sendbuf, recvbuf, root: int = 0) -> None:
        sflat, scount, _sdt = decode_buffer_spec(sendbuf)
        counts = [scount] * self._size
        displs = [scount * r for r in range(self._size)]
        self.Gatherv(sendbuf, recvbuf, counts, displs, root=root)

    @_traced_collective("linear-root")
    def Gatherv(self, sendbuf, recvbuf, counts, displs,
                root: int = 0) -> None:
        self._check_rank(root)
        ctx_id, tag = self._next_coll()
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        if self._rank == root:
            rflat, _rcount, rdt = decode_buffer_spec(recvbuf)
            rflat[displs[root]:displs[root] + scount] = sflat[:scount]
            for r in range(self._size):
                if r == root:
                    continue
                msg = self._ctx.recv_message(ctx_id, self._world_ranks[r],
                                             tag)
                incoming = np.asarray(msg.payload).view(rdt.np_dtype)
                if incoming.size > counts[r]:
                    raise TruncationError("Gatherv recv slot too small")
                rflat[displs[r]:displs[r] + incoming.size] = incoming
        else:
            self._ctx.send_buffer(self._world_ranks[root], ctx_id, tag,
                                  sflat[:scount])

    @_traced_collective("ring")
    def Allgather(self, sendbuf, recvbuf) -> None:
        sflat, scount, _dt = decode_buffer_spec(sendbuf)
        counts = [scount] * self._size
        displs = [scount * r for r in range(self._size)]
        self.Allgatherv(sendbuf, recvbuf, counts, displs)

    @_traced_collective("ring")
    def Allgatherv(self, sendbuf, recvbuf, counts, displs) -> None:
        """Ring allgather over buffers."""
        ctx_id, tag = self._next_coll()
        p = self._size
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        rflat, _rcount, rdt = decode_buffer_spec(recvbuf)
        me = self._rank
        rflat[displs[me]:displs[me] + scount] = sflat[:scount].view(rdt.np_dtype)
        if p == 1:
            return
        right = self._world_ranks[(me + 1) % p]
        left = self._world_ranks[(me - 1) % p]
        cur_idx = me
        for _step in range(p - 1):
            block = rflat[displs[cur_idx]:displs[cur_idx] + counts[cur_idx]]
            # prepend the block index as a tiny header via object send would
            # lose the buffer path; instead derive the index from ring math.
            self._ctx.send_buffer(right, ctx_id, tag, block)
            msg = self._ctx.recv_message(ctx_id, left, tag)
            cur_idx = (cur_idx - 1) % p
            incoming = np.asarray(msg.payload).view(rdt.np_dtype)
            if incoming.size < counts[cur_idx]:
                raise TruncationError(
                    f"Allgatherv expected {counts[cur_idx]} elements for "
                    f"block {cur_idx}, received {incoming.size}: payload "
                    f"truncated in flight")
            rflat[displs[cur_idx]:displs[cur_idx] + incoming.size] = incoming

    @_traced_collective("pairwise-exchange")
    def Alltoall(self, sendbuf, recvbuf) -> None:
        ctx_id, tag = self._next_coll()
        p = self._size
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        rflat, rcount, rdt = decode_buffer_spec(recvbuf)
        if scount % p or rcount % p:
            raise ValueError("Alltoall buffers must divide evenly by size")
        sblk = scount // p
        rblk = rcount // p
        rflat[self._rank * rblk:(self._rank + 1) * rblk] = \
            sflat[self._rank * sblk:(self._rank + 1) * sblk].view(rdt.np_dtype)
        for offset in range(1, p):
            dest = (self._rank + offset) % p
            src = (self._rank - offset) % p
            self._ctx.send_buffer(self._world_ranks[dest], ctx_id, tag,
                                  sflat[dest * sblk:(dest + 1) * sblk])
            msg = self._ctx.recv_message(ctx_id, self._world_ranks[src], tag)
            incoming = np.asarray(msg.payload).view(rdt.np_dtype)
            if incoming.size < rblk:
                raise TruncationError(
                    f"Alltoall expected {rblk} elements from rank {src}, "
                    f"received {incoming.size}: payload truncated in flight")
            rflat[src * rblk:src * rblk + incoming.size] = incoming

    @_traced_collective("binomial-tree")
    def Reduce(self, sendbuf, recvbuf, op: _ops.Op = _ops.SUM,
               root: int = 0) -> None:
        self._check_rank(root)
        ctx_id, tag = self._next_coll()
        p = self._size
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        acc = sflat[:scount].astype(sdt.np_dtype, copy=True)
        vrank = (self._rank - root) % p
        mask = 1
        done_root = True
        while mask < p:
            if vrank & mask:
                dest = ((vrank & ~mask) + root) % p
                self._ctx.send_buffer(self._world_ranks[dest], ctx_id,
                                      tag, acc)
                done_root = False
                break
            partner = vrank | mask
            if partner < p:
                src = (partner + root) % p
                msg = self._ctx.recv_message(ctx_id, self._world_ranks[src],
                                             tag)
                incoming = np.asarray(msg.payload).view(sdt.np_dtype)
                if incoming.size != acc.size:
                    raise TruncationError(
                        f"Reduce expected {acc.size} elements from rank "
                        f"{src}, received {incoming.size}: payload "
                        f"truncated in flight")
                acc = op.np_func(acc, incoming)
            mask <<= 1
        if done_root and self._rank == root and recvbuf is not None:
            rflat, _rc, rdt = decode_buffer_spec(recvbuf)
            rflat[:acc.size] = acc.view(rdt.np_dtype)

    @_traced_collective("reduce+bcast")
    def Allreduce(self, sendbuf, recvbuf, op: _ops.Op = _ops.SUM) -> None:
        self.Reduce(sendbuf, recvbuf, op=op, root=0)
        self.Bcast(recvbuf, root=0)

    @_traced_collective("alltoall+fold")
    def reduce_scatter(self, sendobjs: Sequence[Any],
                       op: _ops.Op = _ops.SUM) -> Any:
        """Reduce comm.size contributions elementwise, scatter the results:
        rank r receives the reduction of everyone's sendobjs[r]."""
        if len(sendobjs) != self._size:
            raise ValueError("reduce_scatter needs comm.size send objects")
        shuffled = self.alltoall(list(sendobjs))
        acc = shuffled[0]
        for part in shuffled[1:]:
            acc = op(acc, part)
        return acc

    @_traced_collective("linear-chain")
    def Scan(self, sendbuf, recvbuf, op: _ops.Op = _ops.SUM) -> None:
        """Inclusive prefix reduction over buffers (linear chain)."""
        ctx_id, tag = self._next_coll()
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        acc = sflat[:scount].astype(sdt.np_dtype, copy=True)
        if self._rank > 0:
            msg = self._ctx.recv_message(
                ctx_id, self._world_ranks[self._rank - 1], tag)
            incoming = np.asarray(msg.payload).view(sdt.np_dtype)
            if incoming.size != acc.size:
                raise TruncationError(
                    f"Scan expected {acc.size} elements, received "
                    f"{incoming.size}: payload truncated in flight")
            acc = op.np_func(incoming, acc)
        if self._rank + 1 < self._size:
            self._ctx.send_buffer(self._world_ranks[self._rank + 1],
                                  ctx_id, tag, acc)
        rflat, _rc, rdt = decode_buffer_spec(recvbuf)
        rflat[:acc.size] = acc.view(rdt.np_dtype)

    @_traced_collective("linear-chain")
    def Exscan(self, sendbuf, recvbuf, op: _ops.Op = _ops.SUM) -> None:
        """Exclusive prefix reduction over buffers; rank 0's recvbuf is
        left untouched (MPI leaves it undefined)."""
        ctx_id, tag = self._next_coll()
        sflat, scount, sdt = decode_buffer_spec(sendbuf)
        prefix = None
        if self._rank > 0:
            msg = self._ctx.recv_message(
                ctx_id, self._world_ranks[self._rank - 1], tag)
            prefix = np.asarray(msg.payload).view(sdt.np_dtype).copy()
            if prefix.size != scount:
                raise TruncationError(
                    f"Exscan expected {scount} elements, received "
                    f"{prefix.size}: payload truncated in flight")
        if self._rank + 1 < self._size:
            acc = sflat[:scount].astype(sdt.np_dtype, copy=True) \
                if prefix is None else op.np_func(prefix, sflat[:scount])
            self._ctx.send_buffer(self._world_ranks[self._rank + 1],
                                  ctx_id, tag, np.asarray(acc))
        if prefix is not None:
            rflat, _rc, rdt = decode_buffer_spec(recvbuf)
            rflat[:prefix.size] = prefix.view(rdt.np_dtype)

    # ------------------------------------------------------------------
    # communicator construction
    # ------------------------------------------------------------------
    def dup(self) -> "Intracomm":
        """Duplicate: same group, isolated context."""
        seq = self._child_seq
        self._child_seq += 1
        return Intracomm(self._ctx, self._world_ranks,
                         ctx_id=(self._ctx_id, "dup", seq))

    Dup = dup

    def split(self, color: int, key: int = 0) -> Optional["Intracomm"]:
        """Partition the communicator by *color*, ordering ranks by *key*.

        Returns ``None`` on ranks passing a negative color (MPI_UNDEFINED).
        """
        seq = self._child_seq
        self._child_seq += 1
        triples = self.allgather((color, key, self._rank))
        if color < 0:
            return None
        members = sorted(
            (k, r) for (c, k, r) in triples if c == color)
        ranks = [self._world_ranks[r] for (_k, r) in members]
        return Intracomm(self._ctx, ranks,
                         ctx_id=(self._ctx_id, "split", seq, color))

    Split = split

    def Create(self, group: Group) -> Optional["Intracomm"]:
        """Communicator over a subgroup (collective over the parent)."""
        seq = self._child_seq
        self._child_seq += 1
        self.barrier()
        if group.rank_of(self._ctx.rank) < 0:
            return None
        return Intracomm(self._ctx, group.world_ranks(),
                         ctx_id=(self._ctx_id, "create", seq))

    def Free(self) -> None:
        """No-op: contexts are garbage collected."""

    # ------------------------------------------------------------------
    # ULFM fault tolerance: revoke / agree / shrink
    # ------------------------------------------------------------------
    def revoke(self) -> None:
        """Revoke this communicator (ULFM ``MPI_Comm_revoke``).

        Non-collective: any single member may call it.  All members'
        in-flight and future operations on this communicator raise
        :class:`CommRevokedError` (blocked waiters wake within the 0.25 s
        detection period).  Derived communicators are not revoked.
        Idempotent.
        """
        self._ctx.world.revoke_ctx(self._ctx_id)
        if _TR.enabled:
            _TR.instant("mpi.coll", "revoke", rank=self._ctx.rank)
        if _MX.enabled:
            _MX.inc("mpi.coll.calls", op="revoke", algorithm="revoke")

    def agree(self, value: Any = 1, combine=None) -> Any:
        """Fault-tolerant agreement (ULFM ``MPI_Comm_agree``).

        Returns ``combine`` over the contributions of every member that
        has not failed -- identically on all survivors, even if members
        die mid-agreement.  The default *combine* is the bitwise AND of
        integer contributions, matching the MPI standard's operator.
        Works on revoked communicators (it is the one collective that
        must, since recovery is negotiated after a revoke).
        """
        seq = self._agree_seq
        self._agree_seq += 1
        if combine is None:
            def combine(values):
                out = ~0
                for v in values:
                    out &= int(v)
                return out
        return self._ctx.world.agreement(
            (self._ctx_id, "agree", seq), self._ctx.rank, value,
            self._world_ranks, combine)

    def shrink(self) -> "Intracomm":
        """New communicator over the surviving members, densely re-ranked
        in parent rank order (ULFM ``MPI_Comm_shrink``).

        Members first agree on the union of their failed-rank views, so
        every survivor constructs the same group.  Works on revoked
        communicators.  A member that dies *after* contributing to the
        agreement may still appear in the shrunk group; the next
        operation on it raises :class:`RankFailure` and the caller can
        shrink again.
        """
        seq = self._agree_seq
        self._agree_seq += 1
        world = self._ctx.world
        failed = world.agreement(
            (self._ctx_id, "shrink", seq), self._ctx.rank,
            frozenset(world.failed_ranks()), self._world_ranks,
            lambda views: frozenset().union(*views))
        survivors = [wr for wr in self._world_ranks if wr not in failed]
        if _TR.enabled:
            _TR.instant("mpi.coll", "shrink", rank=self._ctx.rank,
                        survivors=len(survivors), failed=len(failed))
        if _MX.enabled:
            _MX.inc("mpi.coll.calls", op="shrink", algorithm="shrink")
        return Intracomm(self._ctx, survivors,
                         ctx_id=(self._ctx_id, "shrink", seq))

    def Abort(self, errorcode: int = 1) -> None:
        self._ctx.world.abort(self._ctx.rank,
                              RuntimeError(f"MPI_Abort({errorcode})"))
        self._ctx.world.check_abort()
