"""Per-rank communication instrumentation.

Every message that passes through the runtime is counted here, so
higher layers (ODIN's communication-strategy chooser, the Fig.-1 control
plane experiment, the alpha-beta scaling model) work from *measured*
traffic rather than estimates.  Both directions are attributed per peer:
``by_peer`` maps destination world rank to bytes sent, ``by_peer_recv``
maps source world rank to bytes received.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, defaultdict
from typing import Sequence

import numpy as np

__all__ = ["CommCounters", "CounterSnapshot"]

# by_causal keeps per-op_id collective counts for this many distinct
# recent op_ids (FIFO eviction): enough to audit any live control op or
# recent crash window without unbounded growth over a long run
_CAUSAL_CAP = 512


class CounterSnapshot:
    """Immutable copy of one rank's counters at a point in time."""

    __slots__ = ("sends", "recvs", "bytes_sent", "bytes_recvd", "by_peer",
                 "by_peer_recv", "coll_calls", "by_causal")

    def __init__(self, sends, recvs, bytes_sent, bytes_recvd, by_peer,
                 by_peer_recv=(), coll_calls=(), by_causal=()):
        self.sends = sends
        self.recvs = recvs
        self.bytes_sent = bytes_sent
        self.bytes_recvd = bytes_recvd
        self.by_peer = dict(by_peer)
        self.by_peer_recv = dict(by_peer_recv)
        # (collective op name, algorithm label) -> completed call count;
        # the counter-side record of what the trace spans claim, so the
        # two can be cross-checked without a tracer attached
        self.coll_calls = dict(coll_calls)
        # causal op_id -> {collective op name: calls} for recent ODIN
        # control ops (bounded; see _CAUSAL_CAP)
        self.by_causal = {k: dict(v) for k, v in dict(by_causal).items()}

    def algorithms_used(self, op: str = None):
        """Algorithm labels recorded for *op* (or any op when None)."""
        return {algo for (name, algo) in self.coll_calls
                if op is None or name == op}

    def __sub__(self, other):
        """Traffic delta between two snapshots (self - other).

        *other* may be ``None`` (a rank that crashed before its baseline
        could be captured): the delta is then ``self`` unchanged, so
        post-mortem reports over a partially-dead world never raise.
        """
        if other is None:
            return CounterSnapshot(self.sends, self.recvs, self.bytes_sent,
                                   self.bytes_recvd, self.by_peer,
                                   self.by_peer_recv, self.coll_calls,
                                   self.by_causal)
        by_peer = defaultdict(int, self.by_peer)
        for peer, nbytes in other.by_peer.items():
            by_peer[peer] -= nbytes
        by_peer_recv = defaultdict(int, self.by_peer_recv)
        for peer, nbytes in other.by_peer_recv.items():
            by_peer_recv[peer] -= nbytes
        coll_calls = defaultdict(int, self.coll_calls)
        for key, n in other.coll_calls.items():
            coll_calls[key] -= n
        by_causal = {}
        for oid, ops in self.by_causal.items():
            prior = other.by_causal.get(oid, {})
            delta = {op: n - prior.get(op, 0) for op, n in ops.items()}
            delta = {op: n for op, n in delta.items() if n}
            if delta:
                by_causal[oid] = delta
        return CounterSnapshot(
            self.sends - other.sends,
            self.recvs - other.recvs,
            self.bytes_sent - other.bytes_sent,
            self.bytes_recvd - other.bytes_recvd,
            {p: b for p, b in by_peer.items() if b},
            {p: b for p, b in by_peer_recv.items() if b},
            {k: n for k, n in coll_calls.items() if n},
            by_causal,
        )

    @staticmethod
    def matrix(snapshots: Sequence["CounterSnapshot"],
               nranks: int = None) -> np.ndarray:
        """Dense rank-by-rank bytes array from per-rank snapshots.

        ``matrix[i, j]`` is the bytes rank *i* sent to rank *j*,
        reconciled from both sides of the wire: the sender's ``by_peer``
        and the receiver's ``by_peer_recv`` (elementwise max, so
        one-sided transfers counted on a single end still appear).
        This is the single aggregation point behind both
        :func:`repro.trace.export.traffic_report` and the analyzer's
        communication-matrix report.

        A ``None`` entry stands for a rank that crashed mid-run (its
        counters were lost): its rows/columns come out zero except where
        surviving peers counted traffic against it -- missing peer keys
        never raise.
        """
        peers = [p for snap in snapshots if snap is not None
                 for p in (*snap.by_peer, *snap.by_peer_recv)]
        n = max(len(snapshots), 1 + max(peers, default=-1)) \
            if nranks is None else nranks
        mat = np.zeros((n, n), dtype=np.int64)
        for i, snap in enumerate(snapshots):
            if snap is None:
                continue
            for peer, nbytes in snap.by_peer.items():
                if peer < n:
                    mat[i, peer] = max(mat[i, peer], nbytes)
            for peer, nbytes in snap.by_peer_recv.items():
                if peer < n:
                    mat[peer, i] = max(mat[peer, i], nbytes)
        return mat

    def __repr__(self):
        return (f"CounterSnapshot(sends={self.sends}, recvs={self.recvs}, "
                f"bytes_sent={self.bytes_sent}, bytes_recvd={self.bytes_recvd})")


class CommCounters:
    """Mutable per-rank traffic counters. Thread-safe."""

    def __init__(self):
        self._lock = threading.Lock()
        self.sends = 0
        self.recvs = 0
        self.bytes_sent = 0
        self.bytes_recvd = 0
        # dest rank (world numbering) -> bytes sent to that peer
        self.by_peer = defaultdict(int)
        # source rank (world numbering) -> bytes received from that peer
        self.by_peer_recv = defaultdict(int)
        # (op, algorithm) -> completed collective calls
        self.coll_calls = defaultdict(int)
        # causal op_id -> {op: calls}, bounded FIFO over recent op_ids
        self.by_causal = OrderedDict()

    def record_coll(self, op: str, algorithm: str,
                    op_id=None) -> None:
        with self._lock:
            self.coll_calls[(op, algorithm)] += 1
            if op_id is not None:
                ops = self.by_causal.get(op_id)
                if ops is None:
                    ops = self.by_causal[op_id] = {}
                    while len(self.by_causal) > _CAUSAL_CAP:
                        self.by_causal.popitem(last=False)
                ops[op] = ops.get(op, 0) + 1

    def record_send(self, dest_world_rank: int, nbytes: int) -> None:
        with self._lock:
            self.sends += 1
            self.bytes_sent += nbytes
            self.by_peer[dest_world_rank] += nbytes

    def record_recv(self, src_world_rank: int, nbytes: int) -> None:
        with self._lock:
            self.recvs += 1
            self.bytes_recvd += nbytes
            self.by_peer_recv[src_world_rank] += nbytes

    def absorb(self, snap: CounterSnapshot) -> None:
        """Merge a snapshot into this counter (driver-side merge of a
        remote rank's counters in the process backend: the snapshot
        crossed the wire, the live object could not)."""
        if snap is None:
            return
        with self._lock:
            self.sends += snap.sends
            self.recvs += snap.recvs
            self.bytes_sent += snap.bytes_sent
            self.bytes_recvd += snap.bytes_recvd
            for peer, nbytes in snap.by_peer.items():
                self.by_peer[peer] += nbytes
            for peer, nbytes in snap.by_peer_recv.items():
                self.by_peer_recv[peer] += nbytes
            for key, n in snap.coll_calls.items():
                self.coll_calls[key] += n
            for oid, ops in snap.by_causal.items():
                cur = self.by_causal.get(oid)
                if cur is None:
                    cur = self.by_causal[oid] = {}
                    while len(self.by_causal) > _CAUSAL_CAP:
                        self.by_causal.popitem(last=False)
                for op, n in ops.items():
                    cur[op] = cur.get(op, 0) + n

    def snapshot(self) -> CounterSnapshot:
        with self._lock:
            return CounterSnapshot(self.sends, self.recvs, self.bytes_sent,
                                   self.bytes_recvd, self.by_peer,
                                   self.by_peer_recv, self.coll_calls,
                                   self.by_causal)

    def reset(self) -> None:
        with self._lock:
            self.sends = self.recvs = 0
            self.bytes_sent = self.bytes_recvd = 0
            self.by_peer.clear()
            self.by_peer_recv.clear()
            self.coll_calls.clear()
            self.by_causal.clear()
